//! Scenario-engine contracts: seed-pinned determinism of full replays,
//! strand-safety of churn pruning under arbitrary MAC subsets, and
//! end-to-end parity between the in-process replay driver and the real
//! `grafics-serve` HTTP server.

use grafics_core::{Grafics, GraficsConfig, RetentionPolicy};
use grafics_scenario::{
    prune_removed_macs, replay, replay_http, RefreshMode, ReplayConfig, Scenario,
};
use grafics_types::{MacAddr, RefreshTrigger};
use proptest::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::sync::OnceLock;

/// A drift preset shrunk to test size.
fn shrunk(name: &str, epochs: usize, absorbs: usize, probes: usize) -> Scenario {
    let mut s = Scenario::preset(name).expect("known preset");
    s.buildings = 2;
    s.records_per_floor = 30;
    s.epochs.truncate(epochs);
    for e in &mut s.epochs {
        e.absorb_per_building = absorbs;
        e.probe_per_building = probes;
    }
    s
}

/// Same seed, same scenario, same config ⇒ bit-identical reports — the
/// whole pipeline (world generation, drift, absorb RNG indices, margin
/// windows, trigger decisions, probe serving) replays exactly. A
/// different seed tells a different story.
#[test]
fn replay_is_bit_deterministic_for_a_pinned_seed() {
    let scenario = shrunk("campus-churn", 4, 15, 35);
    let cfg = ReplayConfig {
        refresh: RefreshMode::MarginTrigger(RefreshTrigger::MarginDrop {
            window: 24,
            ratio: 0.98,
        }),
        ..ReplayConfig::default()
    };
    let a = replay(&scenario, &cfg).unwrap();
    let b = replay(&scenario, &cfg).unwrap();
    assert_eq!(
        serde_json::to_string(&a).unwrap(),
        serde_json::to_string(&b).unwrap(),
        "same seed must replay bit-identically"
    );

    let other = replay(
        &scenario,
        &ReplayConfig {
            seed: cfg.seed + 1,
            refresh: cfg.refresh,
            ..ReplayConfig::default()
        },
    )
    .unwrap();
    assert_ne!(
        serde_json::to_string(&a).unwrap(),
        serde_json::to_string(&other).unwrap(),
        "a different seed must generate a different world"
    );
}

/// A small trained model plus its known MACs, trained once and cloned
/// per proptest case.
fn trained() -> &'static (Grafics, Vec<MacAddr>) {
    static MODEL: OnceLock<(Grafics, Vec<MacAddr>)> = OnceLock::new();
    MODEL.get_or_init(|| {
        let mut rng = ChaCha8Rng::seed_from_u64(41);
        let ds = grafics_data::BuildingModel::office("prune", 2)
            .with_records_per_floor(25)
            .simulate(&mut rng)
            .filter_rare_macs(2)
            .with_label_budget(4, &mut rng);
        let model = Grafics::train(&ds, &GraficsConfig::fast(), &mut rng).unwrap();
        let macs: Vec<MacAddr> = model.graph().macs().collect();
        (model, macs)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Satellite: however churn picks the decommissioned set — any
    /// subset of the model's MACs, in any order, duplicates included —
    /// [`prune_removed_macs`] never strands a record with zero known
    /// MACs, and accounts every known MAC as either pruned or skipped.
    #[test]
    fn churn_prune_never_strands_a_record(
        picks in prop::collection::vec(0usize..64, 1..48),
    ) {
        let (model, macs) = trained();
        let mut model = model.clone();
        let doomed: Vec<MacAddr> = picks.iter().map(|&i| macs[i % macs.len()]).collect();
        let known: std::collections::BTreeSet<MacAddr> = doomed.iter().copied().collect();
        let outcome = prune_removed_macs(&mut model, &doomed);
        prop_assert!(
            outcome.pruned + outcome.skipped >= known.len(),
            "every known MAC must be accounted: {outcome:?} vs {} distinct",
            known.len()
        );
        for (rid, node) in model.graph().record_ids() {
            prop_assert!(
                model.graph().degree(node) >= 1,
                "record {rid:?} stranded with zero known MACs"
            );
        }
    }
}

/// End-to-end parity: replaying the same scenario through a real
/// `grafics-serve` HTTP server — every record over the wire — must
/// produce the same per-epoch serving results as the in-process driver:
/// same served counts, same accuracy, same fallback rate, and margin
/// quantiles equal to the bit.
#[test]
fn http_replay_matches_in_process_replay_per_epoch() {
    // `podium` drifts without churn, so the HTTP driver's no-pruning
    // limitation does not diverge the worlds.
    let scenario = shrunk("podium", 3, 10, 15);
    let cfg = ReplayConfig {
        retention: RetentionPolicy::KeepAll,
        refresh: RefreshMode::None,
        ..ReplayConfig::default()
    };
    let local = replay(&scenario, &cfg).unwrap();
    let wire = replay_http(&scenario, &cfg).unwrap();
    assert_eq!(local.epochs.len(), wire.epochs.len());
    for (e, (l, w)) in local.epochs.iter().zip(&wire.epochs).enumerate() {
        assert_eq!(l.probes, w.probes, "epoch {e} probes");
        assert_eq!(l.served, w.served, "epoch {e} served");
        assert_eq!(l.absorbed, w.absorbed, "epoch {e} absorbed");
        assert_eq!(l.absorb_errors, w.absorb_errors, "epoch {e} absorb errors");
        assert_eq!(
            l.accuracy.to_bits(),
            w.accuracy.to_bits(),
            "epoch {e}: accuracy must survive the HTTP hop bit-exactly ({} vs {})",
            l.accuracy,
            w.accuracy
        );
        assert_eq!(
            l.fallback_rate.to_bits(),
            w.fallback_rate.to_bits(),
            "epoch {e} fallback rate"
        );
        assert_eq!(
            l.margin_p10.to_bits(),
            w.margin_p10.to_bits(),
            "epoch {e} margin p10"
        );
        assert_eq!(
            l.margin_p50.to_bits(),
            w.margin_p50.to_bits(),
            "epoch {e} margin p50"
        );
        assert_eq!(
            l.resident_records, w.resident_records,
            "epoch {e} resident records"
        );
    }
}
