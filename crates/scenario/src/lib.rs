//! Drift-and-churn scenario engine for GRAFICS fleets.
//!
//! The paper's §III-A motivation — *"APs could be replaced, added, or
//! removed at any time"* — is a statement about deployments evolving
//! **over months**, not about any single inference. This crate turns
//! that sentence into a measurable workload:
//!
//! - [`Scenario`] — a typed timeline: a [`FleetPreset`]-generated world
//!   plus a sequence of [`Epoch`]s, each applying [`Event`]s (AP churn,
//!   transmit-power drift, device-population mixes, cross-building
//!   signal bleed) before a fresh absorb stream and a held-out probe
//!   set. Scenarios are plain `serde` values with JSON load/save, so a
//!   reproduction is a shareable artifact, and every draw comes from a
//!   seeded ChaCha stream — the same seed replays bit-identically.
//! - [`ScenarioWorld`] — the mutable deployment state a scenario
//!   evolves: per-building layouts drifted in place via
//!   `BuildingModel::drift_layout`, plus the population and bleed state
//!   the generators consult.
//! - [`replay`] / [`replay_http`] — drive a trained
//!   [`GraficsFleet`](grafics_core::GraficsFleet) through the timeline
//!   (in-process, or through a real `grafics-serve` HTTP server for
//!   end-to-end parity) and emit a [`ScenarioReport`]: accuracy,
//!   floor-margin quantiles, fallback rate, shard memory and
//!   refresh/publish counts per epoch.
//! - [`RefreshMode`] — what closes the loop: replay the same timeline
//!   under a fixed refresh cadence or under
//!   [`RefreshTrigger::MarginDrop`](grafics_types::RefreshTrigger) and
//!   compare the accuracy-over-time curves refresh for refresh.
//!
//! # Example
//!
//! ```
//! use grafics_scenario::{replay, ReplayConfig, Scenario};
//!
//! let mut scenario = Scenario::preset("stable").unwrap();
//! scenario.epochs.truncate(2); // keep the doctest fast
//! for e in &mut scenario.epochs {
//!     e.absorb_per_building = 5;
//!     e.probe_per_building = 10;
//! }
//! scenario.buildings = 2;
//! scenario.records_per_floor = 30;
//! let report = replay(&scenario, &ReplayConfig::default()).unwrap();
//! assert_eq!(report.epochs.len(), 2);
//! assert!(report.epochs[0].accuracy > 0.5);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod model;
mod replay;
mod world;

pub use model::{Epoch, Event, Scenario, Schedule};
pub use replay::{
    prune_removed_macs, replay, replay_http, EpochReport, PruneOutcome, RefreshMode, ReplayConfig,
    ScenarioReport,
};
pub use world::{EpochChanges, ScenarioWorld};

// Re-exported so scenario callers name the preset without a direct
// `grafics-data` dependency.
pub use grafics_data::FleetPreset;

use rand::Rng;

/// Box–Muller standard normal (the workspace avoids `rand_distr`; this
/// mirrors the data crate's internal helper).
pub(crate) fn standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}
