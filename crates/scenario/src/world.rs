//! The mutable deployment state a scenario evolves: per-building models
//! and layouts, the active device populations, pending drift ramps, and
//! the cross-building bleed fraction.

use crate::model::{Event, Scenario, Schedule};
use crate::standard_normal;
use grafics_data::{BuildingLayout, BuildingModel};
use grafics_types::{FloorId, MacAddr, Reading, SignalRecord};
use rand::Rng;
use std::collections::BTreeSet;

/// How many of a neighbouring building's strongest readings bleed into
/// a straddling record — enough AP mass that the overlap router sees a
/// genuinely ambiguous record instead of a near-miss.
const BLEED_READINGS: usize = 8;

/// One building's live deployment.
struct BuildingState {
    model: BuildingModel,
    layout: BuildingLayout,
}

/// A pending [`Schedule::Linear`] power ramp: `per_epoch` dB of jitter
/// at each remaining epoch boundary.
struct Ramp {
    per_epoch: f64,
    left: usize,
}

/// What one epoch's events changed, beyond the in-place layout drift:
/// the MACs removed from each building (by index), for the replay
/// harness to prune from the shards' write models.
#[derive(Debug, Clone, Default)]
pub struct EpochChanges {
    /// `(building index, MAC)` pairs removed by [`Event::ApChurn`].
    pub removed: Vec<(usize, MacAddr)>,
}

/// The evolving world a [`Scenario`] replays against: generated once
/// from the scenario's [`FleetPreset`](grafics_data::FleetPreset), then
/// mutated in place by each epoch's events. All randomness comes from
/// the RNG the caller threads through, so world evolution is a pure
/// function of `(scenario, seed)`.
pub struct ScenarioWorld {
    buildings: Vec<BuildingState>,
    populations: Vec<(f64, f64)>, // (weight, offset_db)
    ramps: Vec<Ramp>,
    bleed_frac: f64,
}

impl ScenarioWorld {
    /// Generates the initial world: one model per
    /// [`Scenario::preset`]-listed building, each with a concrete
    /// sampled AP layout.
    pub fn new<R: Rng + ?Sized>(scenario: &Scenario, rng: &mut R) -> Self {
        Self::from_models(
            scenario
                .preset
                .generate(scenario.buildings, scenario.records_per_floor, rng),
            rng,
        )
    }

    /// A world over explicit building models instead of a
    /// [`FleetPreset`](grafics_data::FleetPreset)-generated population —
    /// for benches that need a specific building but still want the
    /// event machinery. Each model gets a concrete sampled layout.
    pub fn from_models<R: Rng + ?Sized>(models: Vec<BuildingModel>, rng: &mut R) -> Self {
        let buildings = models
            .into_iter()
            .map(|model| {
                let layout = model.layout(rng);
                BuildingState { model, layout }
            })
            .collect();
        ScenarioWorld {
            buildings,
            populations: vec![(1.0, 0.0)],
            ramps: Vec::new(),
            bleed_frac: 0.0,
        }
    }

    /// Buildings in the world.
    #[must_use]
    pub fn len(&self) -> usize {
        self.buildings.len()
    }

    /// `true` when the preset generated no buildings.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.buildings.is_empty()
    }

    /// Building `b`'s generative model.
    #[must_use]
    pub fn model(&self, b: usize) -> &BuildingModel {
        &self.buildings[b].model
    }

    /// Building `b`'s current (possibly drifted) AP deployment.
    #[must_use]
    pub fn layout(&self, b: usize) -> &BuildingLayout {
        &self.buildings[b].layout
    }

    /// Applies one epoch's events (plus any pending linear ramps).
    /// `epochs_remaining` counts this epoch and everything after it —
    /// what a [`Schedule::Linear`] drift spreads itself over.
    pub fn apply_epoch<R: Rng + ?Sized>(
        &mut self,
        events: &[Event],
        epochs_remaining: usize,
        rng: &mut R,
    ) -> EpochChanges {
        let mut changes = EpochChanges::default();
        // Pending ramps first: an epoch boundary is when gradual drift
        // lands, whether or not this epoch has events of its own.
        for r in 0..self.ramps.len() {
            let per = self.ramps[r].per_epoch;
            self.jitter_all(per, rng);
            self.ramps[r].left -= 1;
        }
        self.ramps.retain(|r| r.left > 0);

        for event in events {
            match event {
                Event::ApChurn {
                    replace_frac,
                    add_frac,
                } => {
                    for (b, st) in self.buildings.iter_mut().enumerate() {
                        let before: BTreeSet<MacAddr> = st.layout.macs().into_iter().collect();
                        st.model
                            .drift_layout(&mut st.layout, *replace_frac, *add_frac, 0.0, rng);
                        let after: BTreeSet<MacAddr> = st.layout.macs().into_iter().collect();
                        changes
                            .removed
                            .extend(before.difference(&after).map(|&mac| (b, mac)));
                    }
                }
                Event::SignalDrift {
                    power_jitter_db,
                    schedule,
                } => match schedule {
                    Schedule::Step => self.jitter_all(*power_jitter_db, rng),
                    Schedule::Linear => {
                        let per = power_jitter_db / epochs_remaining.max(1) as f64;
                        self.jitter_all(per, rng);
                        if epochs_remaining > 1 {
                            self.ramps.push(Ramp {
                                per_epoch: per,
                                left: epochs_remaining - 1,
                            });
                        }
                    }
                },
                Event::DeviceMix {
                    sigma_db,
                    pop_weights,
                } => {
                    self.populations = pop_weights
                        .iter()
                        .map(|&w| (w.max(0.0), sigma_db * standard_normal(rng)))
                        .collect();
                    if self.populations.is_empty() {
                        self.populations = vec![(1.0, 0.0)];
                    }
                }
                Event::CrossBuildingBleed { frac } => {
                    self.bleed_frac = frac.clamp(0.0, 1.0);
                }
            }
        }
        changes
    }

    /// Transmit-power jitter on every deployed AP, all buildings.
    fn jitter_all<R: Rng + ?Sized>(&mut self, jitter_db: f64, rng: &mut R) {
        if jitter_db == 0.0 {
            return;
        }
        for st in &mut self.buildings {
            st.model
                .drift_layout(&mut st.layout, 0.0, 0.0, jitter_db, rng);
        }
    }

    /// Picks a device population by weight and returns its RSS offset.
    fn population_offset<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        if self.populations.len() == 1 {
            return self.populations[0].1;
        }
        let total: f64 = self.populations.iter().map(|(w, _)| w).sum();
        if total <= 0.0 {
            return 0.0;
        }
        let mut pick = rng.gen::<f64>() * total;
        for &(w, offset) in &self.populations {
            pick -= w;
            if pick <= 0.0 {
                return offset;
            }
        }
        self.populations[self.populations.len() - 1].1
    }

    /// One crowdsourced record from building `b` under the current
    /// world state: device-population offset applied, and (at the
    /// current bleed fraction) possibly straddling the next building.
    /// The returned floor is ground truth *in building `b`*.
    pub fn gen_sample<R: Rng + ?Sized>(
        &self,
        b: usize,
        rng: &mut R,
    ) -> Option<(SignalRecord, FloorId)> {
        let st = &self.buildings[b];
        let floor = rng.gen_range(0..st.model.floors.max(1));
        let offset = self.population_offset(rng);
        let record = st.model.scan_with_offset(&st.layout, floor, offset, rng)?;
        if self.bleed_frac > 0.0 && self.buildings.len() > 1 && rng.gen::<f64>() < self.bleed_frac {
            let nb = (b + 1) % self.buildings.len();
            let ns = &self.buildings[nb];
            let nfloor = rng.gen_range(0..ns.model.floors.max(1));
            if let Some(neighbour) = ns.model.scan_with_offset(&ns.layout, nfloor, offset, rng) {
                let mut bleed: Vec<Reading> = neighbour.readings().to_vec();
                bleed.sort_by_key(|r| std::cmp::Reverse(r.rssi));
                let mut readings = record.readings().to_vec();
                readings.extend(bleed.into_iter().take(BLEED_READINGS));
                if let Ok(merged) = SignalRecord::new(readings) {
                    return Some((merged, FloorId(floor)));
                }
            }
        }
        Some((record, FloorId(floor)))
    }

    /// A deterministic record stream: `per_building` samples from each
    /// building in index order, tagged `(building index, true floor,
    /// record)`. Scans that hear no AP (vanishingly rare) are skipped.
    pub fn gen_stream<R: Rng + ?Sized>(
        &self,
        per_building: usize,
        rng: &mut R,
    ) -> Vec<(usize, FloorId, SignalRecord)> {
        let mut out = Vec::with_capacity(per_building * self.buildings.len());
        for b in 0..self.buildings.len() {
            for _ in 0..per_building {
                if let Some((record, floor)) = self.gen_sample(b, rng) {
                    out.push((b, floor, record));
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Scenario;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn tiny() -> Scenario {
        let mut s = Scenario::preset("stable").unwrap();
        s.buildings = 2;
        s.records_per_floor = 20;
        s
    }

    #[test]
    fn churn_reports_exactly_the_removed_macs() {
        let s = tiny();
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let mut world = ScenarioWorld::new(&s, &mut rng);
        let before: Vec<BTreeSet<MacAddr>> = (0..world.len())
            .map(|b| world.layout(b).macs().into_iter().collect())
            .collect();
        let changes = world.apply_epoch(
            &[Event::ApChurn {
                replace_frac: 0.3,
                add_frac: 0.1,
            }],
            3,
            &mut rng,
        );
        assert!(!changes.removed.is_empty());
        for (b, mac) in &changes.removed {
            assert!(before[*b].contains(mac), "removed MAC was never deployed");
            let after: BTreeSet<MacAddr> = world.layout(*b).macs().into_iter().collect();
            assert!(!after.contains(mac), "removed MAC still deployed");
        }
    }

    #[test]
    fn linear_drift_keeps_ramping_on_quiet_epochs() {
        let s = tiny();
        let mut rng = ChaCha8Rng::seed_from_u64(8);
        let mut world = ScenarioWorld::new(&s, &mut rng);
        let power0: f64 = world.layout(0).aps[0].tx_power_dbm;
        world.apply_epoch(
            &[Event::SignalDrift {
                power_jitter_db: 6.0,
                schedule: Schedule::Linear,
            }],
            3,
            &mut rng,
        );
        // Two more quiet epochs: the ramp keeps landing.
        world.apply_epoch(&[], 2, &mut rng);
        world.apply_epoch(&[], 1, &mut rng);
        // And then it is exhausted — a further epoch drifts nothing.
        let drifted: f64 = world.layout(0).aps[0].tx_power_dbm;
        assert_ne!(power0, drifted);
        let settled = world.layout(0).aps.clone();
        world.apply_epoch(&[], 0, &mut rng);
        assert_eq!(settled, world.layout(0).aps);
    }

    #[test]
    fn bleed_produces_records_straddling_buildings() {
        let s = tiny();
        let mut rng = ChaCha8Rng::seed_from_u64(9);
        let mut world = ScenarioWorld::new(&s, &mut rng);
        world.apply_epoch(&[Event::CrossBuildingBleed { frac: 1.0 }], 1, &mut rng);
        let own: BTreeSet<MacAddr> = world.layout(0).macs().into_iter().collect();
        let other: BTreeSet<MacAddr> = world.layout(1).macs().into_iter().collect();
        let mut straddlers = 0;
        for _ in 0..20 {
            let (record, _) = world.gen_sample(0, &mut rng).unwrap();
            let macs: BTreeSet<MacAddr> = record.macs().collect();
            if macs.intersection(&own).count() > 0 && macs.intersection(&other).count() > 0 {
                straddlers += 1;
            }
        }
        assert!(straddlers > 10, "only {straddlers}/20 records straddle");
    }

    #[test]
    fn same_seed_same_streams() {
        let s = tiny();
        let make = || {
            let mut rng = ChaCha8Rng::seed_from_u64(11);
            let mut world = ScenarioWorld::new(&s, &mut rng);
            world.apply_epoch(
                &[Event::DeviceMix {
                    sigma_db: 3.0,
                    pop_weights: vec![0.5, 0.5],
                }],
                2,
                &mut rng,
            );
            world.gen_stream(10, &mut rng)
        };
        assert_eq!(make(), make());
    }
}
