//! The scenario timeline model: typed drift events, epochs, and named
//! presets — plain `serde` values, shareable as JSON artifacts.

use grafics_data::FleetPreset;
use serde::{Deserialize, Serialize};

/// How a [`Event::SignalDrift`] unfolds over the remaining timeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Schedule {
    /// The full jitter lands in the event's epoch — an overnight
    /// maintenance pass that re-provisioned transmit powers.
    Step,
    /// The jitter is spread evenly over the event's epoch and every
    /// epoch after it — seasonal attenuation, slow battery sag, gradual
    /// occupancy change.
    Linear,
}

/// One typed change to the deployed world, applied at the start of an
/// [`Epoch`]. Every event draws from the scenario's seeded ChaCha
/// stream, so the same scenario JSON plus the same seed replays the
/// same world bit for bit.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Event {
    /// AP replacement wave: every building loses a random
    /// `replace_frac` of its BSSIDs and gains `add_frac` (of the
    /// original count) freshly MAC'd radios —
    /// `BuildingModel::drift_layout` with no power jitter. The removed
    /// MACs are reported so the replay harness can prune them from the
    /// shards' write models (`Grafics::remove_ap`).
    ApChurn {
        /// Fraction of deployed BSSIDs removed (0..=1).
        replace_frac: f64,
        /// Fresh radios added, as a fraction of the original BSSID
        /// count (0..=1).
        add_frac: f64,
    },
    /// Transmit-power drift on surviving APs: per-AP Gaussian jitter of
    /// `power_jitter_db` dB, landed per `schedule`.
    SignalDrift {
        /// Jitter standard deviation, dB.
        power_jitter_db: f64,
        /// Step (all at once) or Linear (spread over remaining epochs).
        schedule: Schedule,
    },
    /// A new device population starts contributing records: each listed
    /// population gets a constant RSS offset drawn from `N(0, sigma_db)`
    /// at event time, and every subsequent record samples a population
    /// by weight — cheap handsets reading every AP a few dB weaker than
    /// the phones that built the corpus.
    DeviceMix {
        /// Standard deviation of the per-population offsets, dB.
        sigma_db: f64,
        /// Relative population weights (need not sum to 1).
        pop_weights: Vec<f64>,
    },
    /// Podium/atrium records: with probability `frac`, a generated
    /// record also hears the strongest APs of a *neighbouring* building
    /// — exactly the records a strict overlap router declines, stressing
    /// the broadcast-fallback path.
    CrossBuildingBleed {
        /// Fraction of records that straddle two buildings (0..=1).
        frac: f64,
    },
}

/// One step of the timeline: events applied to the world, then an
/// absorb stream, then a held-out probe set.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Epoch {
    /// Display label ("month-3").
    pub label: String,
    /// Events applied at the start of this epoch.
    pub events: Vec<Event>,
    /// Crowdsourced records absorbed per building this epoch.
    pub absorb_per_building: usize,
    /// Held-out probes served (and scored) per building this epoch.
    pub probe_per_building: usize,
}

impl Epoch {
    /// A quiet epoch: records flow, nothing changes.
    #[must_use]
    pub fn quiet(label: &str, absorb: usize, probe: usize) -> Self {
        Epoch {
            label: label.to_owned(),
            events: Vec::new(),
            absorb_per_building: absorb,
            probe_per_building: probe,
        }
    }

    /// An epoch with events.
    #[must_use]
    pub fn with_events(label: &str, absorb: usize, probe: usize, events: Vec<Event>) -> Self {
        Epoch {
            events,
            ..Epoch::quiet(label, absorb, probe)
        }
    }
}

/// A full drift-and-churn timeline over a [`FleetPreset`]-generated
/// world. Serializable: `Scenario::load`/[`Scenario::save`] make
/// scenarios shareable JSON artifacts.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Scenario {
    /// Scenario name (reported in [`ScenarioReport`]).
    ///
    /// [`ScenarioReport`]: crate::ScenarioReport
    pub name: String,
    /// Which building population to generate.
    pub preset: FleetPreset,
    /// Buildings to generate (ignored by [`FleetPreset::HongKong`],
    /// which always has five).
    pub buildings: usize,
    /// Crowdsourced records per floor in the *training* corpus.
    pub records_per_floor: usize,
    /// The timeline.
    pub epochs: Vec<Epoch>,
}

/// Default absorb/probe volumes for the named presets — sized so a full
/// preset replay finishes in CI seconds, not minutes.
const ABSORB: usize = 40;
const PROBE: usize = 40;

impl Scenario {
    /// The named presets [`Scenario::preset`] knows.
    #[must_use]
    pub fn preset_names() -> &'static [&'static str] {
        &["stable", "mall-renovation", "campus-churn", "podium"]
    }

    /// A named preset scenario, or `None` for an unknown name:
    ///
    /// - `stable` — six quiet epochs; the control arm. Accuracy should
    ///   hold flat and no drift trigger should fire.
    /// - `mall-renovation` — a renovation shock: quarter of the APs
    ///   replaced in one epoch (plus a power re-provisioning step),
    ///   followed by a smaller second wave.
    /// - `campus-churn` — slow rot: a few percent AP churn every epoch,
    ///   a linear power ramp, and a cheap-handset population arriving
    ///   mid-timeline.
    /// - `podium` — two malls over a shared podium: a third of records
    ///   straddle buildings, stressing router fallback.
    #[must_use]
    pub fn preset(name: &str) -> Option<Scenario> {
        let base = |name: &str, epochs: Vec<Epoch>| Scenario {
            name: name.to_owned(),
            preset: FleetPreset::Microsoft,
            buildings: 3,
            records_per_floor: 60,
            epochs,
        };
        match name {
            "stable" => Some(base(
                "stable",
                (1..=6)
                    .map(|m| Epoch::quiet(&format!("month-{m}"), ABSORB, PROBE))
                    .collect(),
            )),
            "mall-renovation" => Some(base(
                "mall-renovation",
                vec![
                    Epoch::quiet("month-1", ABSORB, PROBE),
                    Epoch::quiet("month-2", ABSORB, PROBE),
                    Epoch::with_events(
                        "month-3-renovation",
                        ABSORB,
                        PROBE,
                        vec![
                            Event::ApChurn {
                                replace_frac: 0.25,
                                add_frac: 0.25,
                            },
                            Event::SignalDrift {
                                power_jitter_db: 2.0,
                                schedule: Schedule::Step,
                            },
                        ],
                    ),
                    Epoch::with_events(
                        "month-4-snagging",
                        ABSORB,
                        PROBE,
                        vec![Event::ApChurn {
                            replace_frac: 0.15,
                            add_frac: 0.15,
                        }],
                    ),
                    Epoch::quiet("month-5", ABSORB, PROBE),
                    Epoch::quiet("month-6", ABSORB, PROBE),
                ],
            )),
            "campus-churn" => Some(base(
                "campus-churn",
                (1..=6)
                    .map(|m| {
                        let mut events = Vec::new();
                        if m >= 2 {
                            events.push(Event::ApChurn {
                                replace_frac: 0.08,
                                add_frac: 0.08,
                            });
                        }
                        if m == 2 {
                            events.push(Event::SignalDrift {
                                power_jitter_db: 3.0,
                                schedule: Schedule::Linear,
                            });
                        }
                        if m == 4 {
                            events.push(Event::DeviceMix {
                                sigma_db: 4.0,
                                pop_weights: vec![0.6, 0.3, 0.1],
                            });
                        }
                        Epoch::with_events(&format!("month-{m}"), ABSORB, PROBE, events)
                    })
                    .collect(),
            )),
            "podium" => Some(base(
                "podium",
                (1..=6)
                    .map(|m| {
                        let mut events = Vec::new();
                        if m == 2 {
                            events.push(Event::CrossBuildingBleed { frac: 0.35 });
                        }
                        if m == 4 {
                            events.push(Event::SignalDrift {
                                power_jitter_db: 1.5,
                                schedule: Schedule::Step,
                            });
                        }
                        Epoch::with_events(&format!("month-{m}"), ABSORB, PROBE, events)
                    })
                    .collect(),
            )),
            _ => None,
        }
    }

    /// Pretty JSON for saving/sharing.
    #[must_use]
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).unwrap_or_else(|_| "{}".to_owned())
    }

    /// Parses a scenario from JSON.
    ///
    /// # Errors
    ///
    /// A human-readable message on malformed JSON.
    pub fn from_json(json: &str) -> Result<Self, String> {
        serde_json::from_str(json).map_err(|e| format!("bad scenario JSON: {e}"))
    }

    /// Writes the scenario as pretty JSON.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn save(&self, path: &std::path::Path) -> std::io::Result<()> {
        std::fs::write(path, self.to_json())
    }

    /// Loads a scenario from a JSON file.
    ///
    /// # Errors
    ///
    /// Filesystem errors, or `InvalidData` on malformed JSON.
    pub fn load(path: &std::path::Path) -> std::io::Result<Self> {
        let json = std::fs::read_to_string(path)?;
        Self::from_json(&json).map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_preset_parses_and_round_trips() {
        for name in Scenario::preset_names() {
            let s = Scenario::preset(name).expect(name);
            assert_eq!(&s.name, name);
            assert!(!s.epochs.is_empty());
            let back = Scenario::from_json(&s.to_json()).expect("round trip");
            assert_eq!(s, back);
        }
        assert!(Scenario::preset("no-such").is_none());
    }

    #[test]
    fn save_load_round_trip() {
        let dir = std::env::temp_dir().join("grafics-scenario-model-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("podium.json");
        let s = Scenario::preset("podium").unwrap();
        s.save(&path).unwrap();
        assert_eq!(Scenario::load(&path).unwrap(), s);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn drift_presets_actually_drift() {
        for name in ["mall-renovation", "campus-churn"] {
            let s = Scenario::preset(name).unwrap();
            let churns = s
                .epochs
                .iter()
                .flat_map(|e| &e.events)
                .filter(|e| matches!(e, Event::ApChurn { .. }))
                .count();
            assert!(churns >= 1, "{name} has no churn");
        }
    }
}
