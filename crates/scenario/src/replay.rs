//! The replay harness: drive a trained fleet through a scenario epoch
//! by epoch — in-process, or through a real `grafics-serve` HTTP server
//! — and emit the accuracy-over-time [`ScenarioReport`].
//!
//! Both drivers share the same world evolution, the same deterministic
//! absorb sequence (`record_rng(seed, seq)` with one process-wide
//! counter, exactly the serve tier's `/v1/absorb` numbering) and the
//! same per-epoch probe seeds, so in-process predictions and HTTP
//! predictions are bit-identical answers to the same questions.

use crate::model::Scenario;
use crate::world::{EpochChanges, ScenarioWorld};
use grafics_core::{Grafics, GraficsConfig, GraficsFleet, RetentionPolicy};
use grafics_serve::{BatchBody, HttpClient, HttpServer, ServeConfig};
use grafics_types::{BuildingId, FloorId, MacAddr, RefreshTrigger, SignalRecord};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

/// How the replay enacts write-side refreshes at each epoch boundary.
/// Every mode publishes all shards every epoch (snapshot freshness is
/// held equal); the modes differ only in *when they pay for a
/// re-train* — which is exactly what the scenario matrix compares.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum RefreshMode {
    /// Publish only; never refresh. The staleness baseline.
    None,
    /// Blind fixed cadence: refresh every shard each `k`-th epoch.
    Cadence(u32),
    /// Drift-triggered: refresh a shard only when its served-margin
    /// window says confidence degraded
    /// ([`Shard::margin_refresh_due`](grafics_core::Shard::margin_refresh_due)).
    MarginTrigger(RefreshTrigger),
}

impl RefreshMode {
    /// The mode as a report-friendly string (`none`, `cadence:2`,
    /// `margin:32:0.8`).
    #[must_use]
    pub fn label(&self) -> String {
        match self {
            RefreshMode::None => "none".to_owned(),
            RefreshMode::Cadence(k) => format!("cadence:{k}"),
            RefreshMode::MarginTrigger(RefreshTrigger::MarginDrop { window, ratio }) => {
                format!("margin:{window}:{ratio}")
            }
            #[allow(unreachable_patterns)]
            RefreshMode::MarginTrigger(_) => "margin:?".to_owned(),
        }
    }
}

/// Replay knobs. [`Default`] is the CI-friendly profile: fast training
/// config, single probe thread (bit-exact reports), no refresh.
#[derive(Debug, Clone)]
pub struct ReplayConfig {
    /// Master seed: world generation, training, absorb RNG streams and
    /// probe streams all derive from it.
    pub seed: u64,
    /// Labelled samples per floor kept for training (the paper's
    /// few-labels regime).
    pub labels_per_floor: usize,
    /// Worker threads for probe serving. Keep 1 for bit-exact reports:
    /// margin *quantiles* are thread-invariant, but the margin-window
    /// ring's eviction order is not once a shard overflows its ring.
    pub threads: usize,
    /// Retention policy applied to every shard.
    pub retention: RetentionPolicy,
    /// Refresh mode enacted at each epoch boundary.
    pub refresh: RefreshMode,
    /// Training configuration (`None` = [`GraficsConfig::fast`]).
    pub grafics: Option<GraficsConfig>,
}

impl Default for ReplayConfig {
    fn default() -> Self {
        ReplayConfig {
            seed: 2022,
            labels_per_floor: 4,
            threads: 1,
            retention: RetentionPolicy::KeepAll,
            refresh: RefreshMode::None,
            grafics: None,
        }
    }
}

/// One epoch's scored outcome.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EpochReport {
    /// Epoch label from the scenario.
    pub label: String,
    /// Probes generated this epoch.
    pub probes: usize,
    /// Probes that produced a prediction.
    pub served: usize,
    /// Building+floor accuracy over the *generated* probes (an
    /// unserved probe counts as wrong — dropping a record is not a
    /// free pass).
    pub accuracy: f64,
    /// Served answers that came from the broadcast fallback.
    pub fallback_rate: f64,
    /// p10 of the served finite floor margins (0 when none).
    pub margin_p10: f64,
    /// p50 of the served finite floor margins (0 when none).
    pub margin_p50: f64,
    /// Records resident across all write sides after the epoch.
    pub resident_records: usize,
    /// Records absorbed this epoch.
    pub absorbed: usize,
    /// Absorb attempts rejected this epoch.
    pub absorb_errors: usize,
    /// MACs the epoch's churn removed from the world.
    pub removed_macs: usize,
    /// Removed MACs actually pruned from write models (the rest were
    /// kept to avoid stranding a record with zero known MACs).
    pub pruned_macs: usize,
    /// Write-side refreshes performed at this epoch's boundary.
    pub refreshes: u64,
    /// Shard publishes performed at this epoch's boundary.
    pub publishes: u64,
}

/// The full accuracy-over-time series for one `(scenario, config)` run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScenarioReport {
    /// Scenario name.
    pub scenario: String,
    /// Master seed the run derived everything from.
    pub seed: u64,
    /// [`RefreshMode::label`] of the run.
    pub refresh: String,
    /// One entry per scenario epoch, in order.
    pub epochs: Vec<EpochReport>,
}

impl ScenarioReport {
    /// Pretty JSON for saving/sharing (the `--out` artifact).
    #[must_use]
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).unwrap_or_else(|_| "{}".to_owned())
    }

    /// Parses a report from JSON.
    ///
    /// # Errors
    ///
    /// A human-readable message on malformed JSON.
    pub fn from_json(json: &str) -> Result<Self, String> {
        serde_json::from_str(json).map_err(|e| format!("bad report JSON: {e}"))
    }

    /// Total write-side refreshes across the timeline.
    #[must_use]
    pub fn total_refreshes(&self) -> u64 {
        self.epochs.iter().map(|e| e.refreshes).sum()
    }

    /// Mean per-epoch accuracy.
    #[must_use]
    pub fn mean_accuracy(&self) -> f64 {
        if self.epochs.is_empty() {
            return 0.0;
        }
        self.epochs.iter().map(|e| e.accuracy).sum::<f64>() / self.epochs.len() as f64
    }

    /// Worst epoch accuracy — what a drift dip actually costs.
    #[must_use]
    pub fn min_accuracy(&self) -> f64 {
        self.epochs
            .iter()
            .map(|e| e.accuracy)
            .fold(f64::INFINITY, f64::min)
            .min(1.0)
    }
}

/// Outcome of a [`prune_removed_macs`] pass.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PruneOutcome {
    /// MACs removed from the model.
    pub pruned: usize,
    /// MACs kept because removal would strand a record (or the graph
    /// refused the removal).
    pub skipped: usize,
}

/// Prunes churned-away MACs from a write-side model, **skipping any MAC
/// whose removal would leave a neighbouring record with zero known
/// MACs** — a record with no readings left cannot be embedded, routed,
/// or refreshed, so stranding one corrupts the shard for good. MACs the
/// model never knew are ignored (absorbed records may simply not have
/// heard them).
pub fn prune_removed_macs(model: &mut Grafics, macs: &[MacAddr]) -> PruneOutcome {
    let mut out = PruneOutcome::default();
    for &mac in macs {
        let Some(mac_node) = model.graph().mac_node(mac) else {
            continue;
        };
        let strands = model
            .graph()
            .neighbors(mac_node)
            .iter()
            .any(|&(record, _)| model.graph().neighbors(record).len() <= 1);
        if strands || model.remove_ap(mac).is_err() {
            out.skipped += 1;
        } else {
            out.pruned += 1;
        }
    }
    out
}

/// Per-building training seed — the bench harness's stream, so a
/// scenario fleet at seed `s` is the familiar fleet from the smoke
/// benches.
fn building_seed(seed: u64, b: usize) -> u64 {
    seed.wrapping_mul(0x9e37_79b9_7f4a_7c15)
        .wrapping_add((b as u64) << 32)
}

/// The probe-serving seed of epoch `e` (both drivers use it verbatim).
fn epoch_seed(seed: u64, e: usize) -> u64 {
    seed ^ (e as u64 + 1).wrapping_mul(0xd6e8_feb8_6659_fd93)
}

/// The world-evolution RNG of epoch `e`.
fn epoch_rng(seed: u64, e: usize) -> ChaCha8Rng {
    ChaCha8Rng::seed_from_u64(seed ^ (e as u64 + 1).wrapping_mul(0x9e37_79b9_7f4a_7c15))
}

/// Generates the world and trains one shard per building on its
/// *initial* layout (the corpus predates all drift).
fn build_world_and_fleet(
    scenario: &Scenario,
    cfg: &ReplayConfig,
) -> Result<(ScenarioWorld, GraficsFleet), String> {
    let mut world_rng = ChaCha8Rng::seed_from_u64(cfg.seed);
    let world = ScenarioWorld::new(scenario, &mut world_rng);
    if world.is_empty() {
        return Err("scenario generated no buildings".to_owned());
    }
    let config = cfg.grafics.unwrap_or_else(GraficsConfig::fast);
    let mut fleet = GraficsFleet::new();
    fleet.set_retention(cfg.retention);
    for b in 0..world.len() {
        let mut rng = ChaCha8Rng::seed_from_u64(building_seed(cfg.seed, b));
        let ds = world
            .model(b)
            .simulate_with_layout(world.layout(b), &mut rng)
            .filter_rare_macs(2);
        let train = ds.with_label_budget(cfg.labels_per_floor, &mut rng);
        let model = Grafics::train(&train, &config, &mut rng)
            .map_err(|e| format!("training building {b}: {e}"))?;
        fleet
            .add_shard(BuildingId(b as u32), model)
            .map_err(|e| format!("adding shard {b}: {e}"))?;
    }
    Ok((world, fleet))
}

/// One epoch's deterministic inputs, shared by both drivers.
struct EpochStreams {
    changes: EpochChanges,
    absorbs: Vec<(usize, FloorId, SignalRecord)>,
    probes: Vec<(usize, FloorId, SignalRecord)>,
}

fn epoch_streams(
    world: &mut ScenarioWorld,
    scenario: &Scenario,
    e: usize,
    seed: u64,
) -> EpochStreams {
    let epoch = &scenario.epochs[e];
    let mut rng = epoch_rng(seed, e);
    let changes = world.apply_epoch(&epoch.events, scenario.epochs.len() - e, &mut rng);
    let absorbs = world.gen_stream(epoch.absorb_per_building, &mut rng);
    let probes = world.gen_stream(epoch.probe_per_building, &mut rng);
    EpochStreams {
        changes,
        absorbs,
        probes,
    }
}

/// One prediction in driver-neutral form.
type Flat = Option<(u32, i16, f64, bool)>; // (building, floor, margin, fallback)

/// Scores one epoch's probes and fills the serving half of its report.
fn score(
    probes: &[(usize, FloorId, SignalRecord)],
    predictions: &[Flat],
    report: &mut EpochReport,
) {
    let mut served = 0usize;
    let mut hits = 0usize;
    let mut fallbacks = 0usize;
    let mut margins: Vec<f64> = Vec::new();
    for ((b, truth, _), pred) in probes.iter().zip(predictions) {
        let Some((building, floor, margin, fallback)) = pred else {
            continue;
        };
        served += 1;
        fallbacks += usize::from(*fallback);
        if *building == *b as u32 && *floor == truth.0 {
            hits += 1;
        }
        if margin.is_finite() {
            margins.push(*margin);
        }
    }
    margins.sort_by(f64::total_cmp);
    let q = |q: f64| -> f64 {
        if margins.is_empty() {
            return 0.0;
        }
        let n = margins.len();
        margins[((q * n as f64).ceil() as usize).clamp(1, n) - 1]
    };
    report.probes = probes.len();
    report.served = served;
    report.accuracy = if probes.is_empty() {
        0.0
    } else {
        hits as f64 / probes.len() as f64
    };
    report.fallback_rate = if served == 0 {
        0.0
    } else {
        fallbacks as f64 / served as f64
    };
    report.margin_p10 = q(0.10);
    report.margin_p50 = q(0.50);
}

fn blank_report(label: &str) -> EpochReport {
    EpochReport {
        label: label.to_owned(),
        probes: 0,
        served: 0,
        accuracy: 0.0,
        fallback_rate: 0.0,
        margin_p10: 0.0,
        margin_p50: 0.0,
        resident_records: 0,
        absorbed: 0,
        absorb_errors: 0,
        removed_macs: 0,
        pruned_macs: 0,
        refreshes: 0,
        publishes: 0,
    }
}

/// Replays `scenario` against an in-process fleet and returns the
/// accuracy-over-time report. Deterministic: the same `(scenario,
/// config)` pair produces a bit-identical [`ScenarioReport`].
///
/// Per epoch: apply events → prune churned MACs from write models
/// ([`prune_removed_macs`]) → absorb the epoch's record stream on the
/// serve tier's deterministic `record_rng(seed, seq)` numbering →
/// enact the [`RefreshMode`] and publish every shard → serve and score
/// the held-out probes (margins recorded by the serve path feed the
/// next epoch's trigger evaluation).
///
/// # Errors
///
/// A message when the preset generates no buildings or training fails.
pub fn replay(scenario: &Scenario, cfg: &ReplayConfig) -> Result<ScenarioReport, String> {
    let (mut world, fleet) = build_world_and_fleet(scenario, cfg)?;
    let mut refresh_rng = ChaCha8Rng::seed_from_u64(cfg.seed ^ 0x7363_656e_6172_696f); // "scenario"
    let mut absorb_seq: u64 = 0;
    let mut epochs = Vec::with_capacity(scenario.epochs.len());

    for (e, epoch) in scenario.epochs.iter().enumerate() {
        let mut report = blank_report(&epoch.label);
        let streams = epoch_streams(&mut world, scenario, e, cfg.seed);

        // Churn hygiene: drop removed APs from the write models where
        // it is safe to do so.
        report.removed_macs = streams.changes.removed.len();
        for (b, mac) in &streams.changes.removed {
            if let Some(shard) = fleet.shard(BuildingId(*b as u32)) {
                let outcome = shard.with_write_model(|model| prune_removed_macs(model, &[*mac]));
                report.pruned_macs += outcome.pruned;
            }
        }

        // Ingest: the HTTP absorb numbering (one process-wide sequence,
        // bumped per attempt).
        for (b, _, record) in &streams.absorbs {
            let seq = absorb_seq;
            absorb_seq += 1;
            match fleet.absorb_to_durable(BuildingId(*b as u32), record, cfg.seed, seq) {
                Ok(_) => report.absorbed += 1,
                Err(_) => report.absorb_errors += 1,
            }
        }

        // Maintenance boundary: refresh per the mode, then publish all
        // shards (all modes publish equally — the comparison is about
        // refresh cost, not snapshot staleness).
        match cfg.refresh {
            RefreshMode::None => {}
            RefreshMode::Cadence(k) => {
                if k > 0 && (e as u32 + 1).is_multiple_of(k) {
                    for shard in fleet.shards() {
                        if shard.refresh_write_side(&mut refresh_rng).is_ok() {
                            report.refreshes += 1;
                        }
                    }
                }
            }
            RefreshMode::MarginTrigger(trigger) => {
                for shard in fleet.shards() {
                    if shard.margin_refresh_due(trigger)
                        && shard.refresh_write_side(&mut refresh_rng).is_ok()
                    {
                        report.refreshes += 1;
                    }
                }
            }
        }
        fleet.publish_all();
        report.publishes = fleet.len() as u64;

        // Probe and score.
        let records: Vec<SignalRecord> = streams.probes.iter().map(|(_, _, r)| r.clone()).collect();
        let predictions =
            fleet.serve_batch_with_fallback(&records, epoch_seed(cfg.seed, e), cfg.threads);
        let flat: Vec<Flat> = predictions
            .iter()
            .map(|p| {
                p.as_ref()
                    .map(|p| (p.building.0, p.floor.0, p.margin, p.fallback))
            })
            .collect();
        score(&streams.probes, &flat, &mut report);
        report.resident_records = fleet
            .stats()
            .shards
            .iter()
            .map(|s| s.resident_records)
            .sum();
        epochs.push(report);
    }

    Ok(ScenarioReport {
        scenario: scenario.name.clone(),
        seed: cfg.seed,
        refresh: cfg.refresh.label(),
        epochs,
    })
}

/// [`replay`] through a real `grafics-serve` HTTP server: same world,
/// same training, same absorb numbering and probe seeds — but every
/// record crosses the wire (`/v1/absorb`, `/v1/publish`,
/// `/v1/infer_batch`), so per-epoch serving results must equal the
/// in-process run's. The e2e parity test pins exactly that.
///
/// Limitations versus in-process replay: only [`RefreshMode::None`]
/// (the HTTP API exposes no refresh endpoint), and removed MACs are
/// not pruned — use a churn-free scenario for parity runs.
///
/// # Errors
///
/// Training errors, refused refresh modes, and any transport or HTTP
/// error.
pub fn replay_http(scenario: &Scenario, cfg: &ReplayConfig) -> std::io::Result<ScenarioReport> {
    if cfg.refresh != RefreshMode::None {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidInput,
            "replay_http supports RefreshMode::None only (no refresh endpoint over HTTP)",
        ));
    }
    let (mut world, fleet) = build_world_and_fleet(scenario, cfg).map_err(std::io::Error::other)?;
    let serve_cfg = ServeConfig {
        seed: cfg.seed,
        ..ServeConfig::default()
    };
    let server = HttpServer::bind(fleet, "127.0.0.1:0", serve_cfg)?.spawn()?;
    let result = drive_http(&mut world, scenario, cfg, server.addr());
    let shutdown = server.shutdown();
    let report = result?;
    shutdown?;
    Ok(report)
}

fn drive_http(
    world: &mut ScenarioWorld,
    scenario: &Scenario,
    cfg: &ReplayConfig,
    addr: std::net::SocketAddr,
) -> std::io::Result<ScenarioReport> {
    let mut client = HttpClient::connect(addr)?;
    let mut epochs = Vec::with_capacity(scenario.epochs.len());
    for (e, epoch) in scenario.epochs.iter().enumerate() {
        let mut report = blank_report(&epoch.label);
        let streams = epoch_streams(world, scenario, e, cfg.seed);
        report.removed_macs = streams.changes.removed.len();

        for (b, _, record) in &streams.absorbs {
            let body = serde_json::to_string(&serde_json::json!({
                "record": record,
                "building": *b as u32,
            }))
            .unwrap_or_default();
            let (status, _) = client.post("/v1/absorb", &body)?;
            if status == 200 {
                report.absorbed += 1;
            } else {
                report.absorb_errors += 1;
            }
        }

        let (status, body) = client.post("/v1/publish", "")?;
        if status != 200 {
            return Err(std::io::Error::other(format!("publish: {status} {body}")));
        }
        report.publishes = world.len() as u64;

        let records: Vec<&SignalRecord> = streams.probes.iter().map(|(_, _, r)| r).collect();
        let body = serde_json::to_string(&serde_json::json!({
            "records": records,
            "seed": epoch_seed(cfg.seed, e),
            "threads": cfg.threads,
            "fallback": true,
        }))
        .unwrap_or_default();
        let (status, body) = client.post("/v1/infer_batch", &body)?;
        if status != 200 {
            return Err(std::io::Error::other(format!(
                "infer_batch: {status} {body}"
            )));
        }
        let batch: BatchBody = serde_json::from_str(&body)
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()))?;
        let flat: Vec<Flat> = batch
            .predictions
            .iter()
            .map(|p| {
                p.as_ref().map(|p| {
                    (
                        p.building,
                        p.floor,
                        p.margin.unwrap_or(f64::INFINITY),
                        p.fallback,
                    )
                })
            })
            .collect();
        score(&streams.probes, &flat, &mut report);

        let (status, metrics) = client.get("/metrics")?;
        if status == 200 {
            report.resident_records = gauge(&metrics, "grafics_resident_records") as usize;
        }
        epochs.push(report);
    }
    Ok(ScenarioReport {
        scenario: scenario.name.clone(),
        seed: cfg.seed,
        refresh: cfg.refresh.label(),
        epochs,
    })
}

/// Reads one un-labelled gauge/counter value from a `/metrics` body.
fn gauge(metrics: &str, name: &str) -> f64 {
    metrics
        .lines()
        .find_map(|line| {
            let rest = line.strip_prefix(name)?;
            let value = rest.trim_start();
            if value == rest {
                return None; // labelled series or longer metric name
            }
            value.parse::<f64>().ok()
        })
        .unwrap_or(0.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gauge_parses_exposition_lines() {
        let body = "# TYPE grafics_resident_records gauge\ngrafics_resident_records 420\ngrafics_resident_records_more 9\n";
        assert_eq!(gauge(body, "grafics_resident_records"), 420.0);
        assert_eq!(gauge(body, "grafics_missing"), 0.0);
    }

    #[test]
    fn refresh_mode_labels() {
        assert_eq!(RefreshMode::None.label(), "none");
        assert_eq!(RefreshMode::Cadence(2).label(), "cadence:2");
        assert_eq!(
            RefreshMode::MarginTrigger(RefreshTrigger::MarginDrop {
                window: 32,
                ratio: 0.8
            })
            .label(),
            "margin:32:0.8"
        );
    }
}
