//! Incrementally maintained weighted sampling for the online serving path.
//!
//! The offline trainer draws negatives from a static [`crate::AliasTable`]
//! built once per training run — O(n) preprocessing amortised over millions
//! of draws. The *online* path is the opposite regime: one query touches a
//! handful of nodes but historically rebuilt the whole `d_z^{3/4}` table
//! (an O(n) `powf` sweep plus an O(n) alias construction) per inference.
//!
//! [`DynamicWeightedSampler`] is a Fenwick (binary indexed) tree over the
//! unnormalised weights: `set`/`push` cost O(log n), one draw costs
//! O(log n), and the exact per-slot weights are kept alongside the tree so
//! the represented distribution never drifts from what the caller set.
//! [`NegativeSampler`] specialises it to the Eq. (10) negative-sampling
//! distribution `Pr(z) ∝ d_z^e` over a [`crate::BipartiteGraph`]'s node
//! space, with O(deg) resync after each graph mutation.

use crate::{AliasTable, BipartiteGraph, NodeIdx};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// A dynamic discrete distribution over `0..len` supporting O(log n)
/// weight updates, appends, and draws.
///
/// # Examples
///
/// ```
/// use grafics_graph::DynamicWeightedSampler;
/// use rand::SeedableRng;
///
/// let mut s = DynamicWeightedSampler::new(&[1.0, 0.0, 3.0]);
/// s.set(1, 4.0); // slot 1 now carries half the mass
/// let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(0);
/// let mut counts = [0usize; 3];
/// for _ in 0..8_000 {
///     counts[s.sample(&mut rng).unwrap()] += 1;
/// }
/// assert!(counts[1] > 3_600 && counts[1] < 4_400);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DynamicWeightedSampler {
    /// Exact per-slot weights (the source of truth for the distribution).
    weights: Vec<f64>,
    /// Fenwick partial sums, 1-based: `tree[i]` covers `(i - lowbit(i), i]`.
    tree: Vec<f64>,
    /// Number of slots with positive weight. The tree's sums accumulate
    /// rounding over incremental updates, so emptiness is decided by this
    /// exact counter, never by `total() > 0`.
    positive: usize,
}

#[inline]
const fn lowbit(i: usize) -> usize {
    i & i.wrapping_neg()
}

impl DynamicWeightedSampler {
    /// Builds a sampler over `weights`. Negative or non-finite entries are
    /// clamped to zero (a zero-weight slot is legal and never drawn).
    #[must_use]
    pub fn new(weights: &[f64]) -> Self {
        let mut s = DynamicWeightedSampler {
            weights: Vec::with_capacity(weights.len()),
            tree: Vec::with_capacity(weights.len() + 1),
            positive: 0,
        };
        s.tree.push(0.0);
        for &w in weights {
            s.push(w);
        }
        s
    }

    /// Number of slots.
    #[must_use]
    pub fn len(&self) -> usize {
        self.weights.len()
    }

    /// `true` if the sampler has no slots.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.weights.is_empty()
    }

    /// The exact weight of `slot`.
    #[must_use]
    pub fn weight(&self, slot: usize) -> f64 {
        self.weights[slot]
    }

    /// The exact per-slot weights.
    #[must_use]
    pub fn weights(&self) -> &[f64] {
        &self.weights
    }

    /// Total mass as tracked by the tree (may differ from the exact sum of
    /// [`DynamicWeightedSampler::weights`] by accumulated rounding of at
    /// most a few ulps per update).
    #[must_use]
    pub fn total(&self) -> f64 {
        // Prefix sum over the whole range.
        let mut i = self.weights.len();
        let mut t = 0.0;
        while i > 0 {
            t += self.tree[i];
            i -= lowbit(i);
        }
        t
    }

    /// Number of slots with strictly positive weight (tracked exactly).
    #[must_use]
    pub fn positive_slots(&self) -> usize {
        self.positive
    }

    /// Appends a slot with weight `w` in O(log n).
    pub fn push(&mut self, w: f64) {
        let w = if w.is_finite() && w > 0.0 { w } else { 0.0 };
        self.positive += usize::from(w > 0.0);
        self.weights.push(w);
        // 1-based index of the new slot; tree[i] = Σ weights over
        // (i - lowbit(i), i]: the new weight plus the already-final
        // subtrees immediately to its left.
        let i = self.weights.len();
        let mut v = w;
        let mut j = i - 1;
        let floor = i - lowbit(i);
        while j > floor {
            v += self.tree[j];
            j -= lowbit(j);
        }
        self.tree.push(v);
    }

    /// Sets the weight of `slot` in O(log n). Negative or non-finite
    /// weights are clamped to zero.
    pub fn set(&mut self, slot: usize, w: f64) {
        let w = if w.is_finite() && w > 0.0 { w } else { 0.0 };
        let delta = w - self.weights[slot];
        if delta == 0.0 {
            return;
        }
        self.positive -= usize::from(self.weights[slot] > 0.0);
        self.positive += usize::from(w > 0.0);
        self.weights[slot] = w;
        let mut i = slot + 1;
        while i <= self.weights.len() {
            self.tree[i] += delta;
            i += lowbit(i);
        }
    }

    /// Draws one slot with probability proportional to its weight, from a
    /// single uniform draw in `[0, 1)`. Returns `None` if the total mass
    /// is zero.
    #[must_use]
    pub fn sample_with(&self, u: f64) -> Option<usize> {
        if self.positive == 0 {
            return None;
        }
        let total = self.total();
        if total.is_nan() || total <= 0.0 {
            // Drift pushed the tracked total to ~0 while exact positive
            // weights remain: fall back to the first positive slot.
            return self.weights.iter().position(|&w| w > 0.0);
        }
        let mut target = u * total;
        let n = self.weights.len();
        let mut mask = n.next_power_of_two();
        let mut pos = 0usize; // count of slots with cumulative sum <= target
        while mask > 0 {
            let next = pos + mask;
            if next <= n && self.tree[next] <= target {
                target -= self.tree[next];
                pos = next;
            }
            mask >>= 1;
        }
        let mut slot = pos.min(n - 1);
        // Rounding at a block boundary can land on a zero-weight slot;
        // advance to the next positive one (probability-0 event, bounded
        // by the gap length).
        while self.weights[slot] == 0.0 && slot + 1 < n {
            slot += 1;
        }
        if self.weights[slot] == 0.0 {
            slot = self.weights.iter().rposition(|&w| w > 0.0)?;
        }
        Some(slot)
    }

    /// Draws one slot using `rng` (one `f64` draw). Returns `None` if the
    /// total mass is zero.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<usize> {
        self.sample_with(rng.gen::<f64>())
    }
}

/// The negative-sampling distribution `Pr(z) ∝ d_z^e` (Eq. (10)) over a
/// bipartite graph's node-index space, maintained incrementally.
///
/// Build once from the trained graph with
/// [`NegativeSampler::from_graph`]; after a graph mutation, resync only
/// the touched slots with [`NegativeSampler::sync_node`] /
/// [`NegativeSampler::sync_appended`] — O(deg·log n) per record insertion
/// or removal instead of the O(n) per-query rebuild of
/// [`BipartiteGraph::negative_sampling_weights`] + alias construction.
///
/// Two layers cooperate:
///
/// - the **exact weights** (a [`DynamicWeightedSampler`]) track every
///   mutation immediately, so the represented distribution never drifts —
///   a property test pins it bit-for-bit against the from-scratch sweep
///   under random add/remove sequences;
/// - an **alias-table snapshot** serves the actual draws in O(1). It is
///   rebuilt from the exact weights at *epoch boundaries* — after
///   `max(64, n/16)` slot changes — so a burst of graph mutations pays
///   amortised O(1) extra per touched slot, and pure read-only serving
///   traffic never rebuilds at all.
///
/// Between epochs a draw can therefore see a slightly stale distribution:
/// nodes added since the last epoch are not yet candidates (exactly the
/// frozen-background semantics the online path wants) and up to 1/16 of
/// slots reflect a degree off by the few mutations since. Negatives are
/// noise by construction (Eq. (10) is itself a heuristic), so this has no
/// measurable effect on embedding quality — while keeping the per-draw
/// cost identical to offline training's alias draws.
///
/// Tombstoned and isolated nodes carry zero exact mass, exactly like the
/// from-scratch weight sweep.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NegativeSampler {
    exponent: f64,
    sampler: DynamicWeightedSampler,
    /// O(1)-draw snapshot of the exact weights as of the last epoch;
    /// `None` only while no slot carries mass. Serialised so a save/load
    /// roundtrip reproduces the draw stream exactly.
    snapshot: Option<AliasTable>,
    /// Slot changes since the snapshot was built.
    stale: usize,
}

impl NegativeSampler {
    /// Builds the sampler from every node slot of `graph` (O(n)), with a
    /// fresh snapshot.
    #[must_use]
    pub fn from_graph(graph: &BipartiteGraph, exponent: f64) -> Self {
        let sampler = DynamicWeightedSampler::new(&graph.negative_sampling_weights(exponent));
        let snapshot = AliasTable::new(sampler.weights());
        NegativeSampler {
            exponent,
            sampler,
            snapshot,
            stale: 0,
        }
    }

    /// The distribution exponent `e`.
    #[must_use]
    pub fn exponent(&self) -> f64 {
        self.exponent
    }

    /// Number of node slots covered.
    #[must_use]
    pub fn len(&self) -> usize {
        self.sampler.len()
    }

    /// `true` if no node slots are covered.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.sampler.is_empty()
    }

    /// `true` if no node currently carries sampling mass.
    #[must_use]
    pub fn is_exhausted(&self) -> bool {
        self.sampler.positive_slots() == 0
    }

    /// The exact unnormalised weight of `node`'s slot.
    #[must_use]
    pub fn weight(&self, node: NodeIdx) -> f64 {
        self.sampler.weight(node.index())
    }

    /// The exact unnormalised weights, slot per node index.
    #[must_use]
    pub fn weights(&self) -> &[f64] {
        self.sampler.weights()
    }

    /// Recomputes the slot of one existing node from the graph's current
    /// degree (O(log n), amortised snapshot upkeep included). Call for
    /// every pre-existing node whose degree a mutation changed (the
    /// neighbors of an inserted/removed node, and the removed node
    /// itself).
    pub fn sync_node(&mut self, graph: &BipartiteGraph, node: NodeIdx) {
        self.sampler.set(
            node.index(),
            graph.negative_sampling_weight(node, self.exponent),
        );
        self.note_changed(1);
    }

    /// Appends slots for nodes created since the sampler last covered the
    /// graph (O(new·log n), amortised snapshot upkeep included). Call
    /// after `add_record` to cover the new record node and any new MAC
    /// nodes.
    pub fn sync_appended(&mut self, graph: &BipartiteGraph) {
        let from = self.sampler.len();
        for i in from..graph.node_capacity() {
            self.sampler
                .push(graph.negative_sampling_weight(NodeIdx(i as u32), self.exponent));
        }
        self.note_changed(self.sampler.len() - from);
    }

    /// The whole resync for one record insertion: covers the appended
    /// nodes (the record and any new MACs) and recomputes every
    /// pre-existing neighbor whose degree the insertion bumped. Call
    /// right after `graph.add_record` created `node`. This is *the*
    /// insert choreography — mutation paths must not hand-roll it.
    pub fn sync_inserted(&mut self, graph: &BipartiteGraph, node: NodeIdx) {
        self.sync_appended(graph);
        for &(m, _) in graph.neighbors(node) {
            if m.index() < node.index() {
                self.sync_node(graph, m);
            }
        }
    }

    /// The whole resync for one node removal: zeroes the removed `node`'s
    /// slot and recomputes each of its `former` neighbors (captured
    /// *before* the removal). This is *the* removal choreography —
    /// mutation paths must not hand-roll it.
    pub fn sync_removed(&mut self, graph: &BipartiteGraph, node: NodeIdx, former: &[NodeIdx]) {
        self.sync_node(graph, node);
        for &n in former {
            self.sync_node(graph, n);
        }
    }

    /// Rebuilds the O(1)-draw snapshot from the exact weights now —
    /// forces an epoch boundary. `Grafics::refresh` calls this through
    /// [`NegativeSampler::from_graph`]; tests use it to compare the live
    /// draw distribution against a from-scratch rebuild.
    pub fn rebuild_snapshot(&mut self) {
        self.snapshot = AliasTable::new(self.sampler.weights());
        self.stale = 0;
    }

    /// Slot changes since the snapshot epoch (diagnostics).
    #[must_use]
    pub fn staleness(&self) -> usize {
        self.stale
    }

    fn note_changed(&mut self, slots: usize) {
        self.stale += slots;
        let threshold = 64.max(self.sampler.len() / 16);
        if self.stale >= threshold || (self.snapshot.is_none() && !self.is_exhausted()) {
            self.rebuild_snapshot();
        }
    }

    /// Draws one node in O(1) from the snapshot (one 64-bit RNG draw).
    /// Returns `None` if every covered node has zero exact mass.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<NodeIdx> {
        if self.is_exhausted() {
            return None;
        }
        match &self.snapshot {
            Some(table) => {
                let i = table.sample_with(rng.next_u64());
                Some(NodeIdx(u32::try_from(i).expect("node space fits u32")))
            }
            // Unreachable by the epoch invariant (positive mass forces a
            // snapshot); the exact structure stands in defensively.
            None => self
                .sampler
                .sample(rng)
                .map(|i| NodeIdx(u32::try_from(i).expect("node space fits u32"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{AliasTable, WeightFunction};
    use grafics_types::{MacAddr, Reading, Rssi, SignalRecord};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn empirical_distribution_matches_alias_table() {
        let weights = [0.5, 0.0, 3.0, 1.5, 5.0, 0.0, 2.0];
        let total: f64 = weights.iter().sum();
        let dynamic = DynamicWeightedSampler::new(&weights);
        let _alias = AliasTable::new(&weights).unwrap();
        let mut rng = ChaCha8Rng::seed_from_u64(11);
        let n = 200_000;
        let mut counts = [0usize; 7];
        for _ in 0..n {
            counts[dynamic.sample(&mut rng).unwrap()] += 1;
        }
        for (i, &c) in counts.iter().enumerate() {
            let expected = weights[i] / total;
            let observed = c as f64 / n as f64;
            assert!(
                (observed - expected).abs() < 0.01,
                "slot {i}: observed {observed}, expected {expected}"
            );
        }
        assert_eq!(counts[1], 0);
        assert_eq!(counts[5], 0);
    }

    #[test]
    fn set_and_push_track_exact_weights() {
        let mut s = DynamicWeightedSampler::new(&[1.0, 2.0]);
        s.push(4.0);
        s.set(0, 0.0);
        s.set(1, 5.0);
        assert_eq!(s.weights(), &[0.0, 5.0, 4.0]);
        assert!((s.total() - 9.0).abs() < 1e-12);
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        for _ in 0..5_000 {
            assert_ne!(s.sample(&mut rng), Some(0));
        }
    }

    #[test]
    fn degenerate_inputs_are_clamped_not_fatal() {
        let mut s = DynamicWeightedSampler::new(&[f64::NAN, -3.0, f64::INFINITY]);
        assert_eq!(s.weights(), &[0.0, 0.0, 0.0]);
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        assert_eq!(s.sample(&mut rng), None);
        s.set(1, 2.0);
        assert_eq!(s.sample(&mut rng), Some(1));
        assert!(DynamicWeightedSampler::new(&[]).sample(&mut rng).is_none());
    }

    #[test]
    fn incremental_equals_from_scratch() {
        let mut rng = ChaCha8Rng::seed_from_u64(9);
        let mut incremental = DynamicWeightedSampler::new(&[]);
        let mut reference: Vec<f64> = Vec::new();
        for step in 0..500 {
            if step % 3 == 0 || reference.is_empty() {
                let w = rng.gen_range(0.0..10.0);
                incremental.push(w);
                reference.push(w);
            } else {
                let i = rng.gen_range(0..reference.len());
                let w = rng.gen_range(0.0..10.0);
                incremental.set(i, w);
                reference[i] = w;
            }
        }
        let scratch = DynamicWeightedSampler::new(&reference);
        assert_eq!(incremental.weights(), scratch.weights());
        assert!((incremental.total() - scratch.total()).abs() <= 1e-9 * scratch.total());
        // Same draw given the same uniform, across the whole unit range.
        for k in 0..1_000 {
            let u = k as f64 / 1_000.0;
            assert_eq!(incremental.sample_with(u), scratch.sample_with(u));
        }
    }

    fn rec(macs: &[(u64, f64)]) -> SignalRecord {
        SignalRecord::new(
            macs.iter()
                .map(|&(m, r)| Reading::new(MacAddr::from_u64(m), Rssi::new(r).unwrap()))
                .collect(),
        )
        .unwrap()
    }

    #[test]
    fn negative_sampler_tracks_graph_mutations() {
        let mut g = BipartiteGraph::new(WeightFunction::default());
        g.add_record(&rec(&[(1, -66.0), (2, -60.0)]));
        g.add_record(&rec(&[(2, -70.0), (3, -70.0)]));
        let mut neg = NegativeSampler::from_graph(&g, 0.75);

        // Insert: cover the appended nodes, resync the touched MACs.
        let rid = g.add_record(&rec(&[(2, -50.0), (9, -55.0)]));
        let node = g.record_node(rid).unwrap();
        neg.sync_inserted(&g, node);
        assert_eq!(neg.weights(), &g.negative_sampling_weights(0.75)[..]);

        // Remove an AP: resync the tombstone and its former neighbors.
        let mac2 = g.mac_node(MacAddr::from_u64(2)).unwrap();
        let former: Vec<NodeIdx> = g.neighbors(mac2).iter().map(|&(n, _)| n).collect();
        g.remove_mac(MacAddr::from_u64(2)).unwrap();
        neg.sync_removed(&g, mac2, &former);
        assert_eq!(neg.weights(), &g.negative_sampling_weights(0.75)[..]);
        assert!(!neg.is_exhausted());
    }

    #[test]
    fn serde_roundtrip_preserves_draws() {
        let s = DynamicWeightedSampler::new(&[1.0, 2.5, 0.0, 4.0]);
        let json = serde_json::to_string(&s).unwrap();
        let back: DynamicWeightedSampler = serde_json::from_str(&json).unwrap();
        assert_eq!(s, back);
        for k in 0..100 {
            let u = k as f64 / 100.0;
            assert_eq!(s.sample_with(u), back.sample_with(u));
        }
    }
}
