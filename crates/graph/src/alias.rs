//! Walker's alias method for O(1) sampling from a discrete distribution.
//!
//! The E-LINE trainer draws millions of edges (∝ weight) and negative nodes
//! (∝ degree^{3/4}) per epoch; the alias method gives constant-time draws
//! after O(n) preprocessing.

use rand::Rng;

/// A pre-processed discrete distribution supporting O(1) sampling.
///
/// # Examples
///
/// ```
/// use grafics_graph::AliasTable;
/// use rand::SeedableRng;
///
/// let table = AliasTable::new(&[1.0, 3.0]).unwrap();
/// let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(0);
/// let mut counts = [0usize; 2];
/// for _ in 0..10_000 {
///     counts[table.sample(&mut rng)] += 1;
/// }
/// // index 1 carries 75% of the mass
/// assert!(counts[1] > 7_000 && counts[1] < 8_000);
/// ```
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct AliasTable {
    prob: Vec<f64>,
    alias: Vec<u32>,
}

impl AliasTable {
    /// Builds a table from unnormalised non-negative weights.
    ///
    /// Returns `None` if `weights` is empty, contains a negative or
    /// non-finite value, or sums to zero.
    #[must_use]
    pub fn new(weights: &[f64]) -> Option<Self> {
        if weights.is_empty() || weights.len() > u32::MAX as usize {
            return None;
        }
        let total: f64 = weights.iter().sum();
        if !total.is_finite() || total <= 0.0 || weights.iter().any(|&w| w.is_nan() || w < 0.0) {
            return None;
        }
        let n = weights.len();
        let scale = n as f64 / total;
        let mut prob: Vec<f64> = weights.iter().map(|&w| w * scale).collect();
        let mut alias = vec![0u32; n];
        let mut small: Vec<u32> = Vec::new();
        let mut large: Vec<u32> = Vec::new();
        for (i, &p) in prob.iter().enumerate() {
            if p < 1.0 {
                small.push(i as u32);
            } else {
                large.push(i as u32);
            }
        }
        while let (Some(&s), Some(&l)) = (small.last(), large.last()) {
            small.pop();
            alias[s as usize] = l;
            prob[l as usize] -= 1.0 - prob[s as usize];
            if prob[l as usize] < 1.0 {
                large.pop();
                small.push(l);
            }
        }
        // Numerical stragglers: everything left has probability ~1.
        for &i in small.iter().chain(large.iter()) {
            prob[i as usize] = 1.0;
            alias[i as usize] = i;
        }
        Some(AliasTable { prob, alias })
    }

    /// Number of outcomes.
    #[must_use]
    pub fn len(&self) -> usize {
        self.prob.len()
    }

    /// `true` if the table has no outcomes (never: construction forbids it).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.prob.is_empty()
    }

    /// Draws one index in O(1).
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let i = rng.gen_range(0..self.prob.len());
        if rng.gen::<f64>() < self.prob[i] {
            i
        } else {
            self.alias[i] as usize
        }
    }

    /// Draws one index from a single pre-drawn 64-bit random word: the
    /// high 32 bits select the column (fixed-point multiply, no division),
    /// the low 32 bits decide between the column and its alias.
    ///
    /// This halves the RNG draws of [`AliasTable::sample`] (which needs a
    /// bounded integer *and* a float), which matters when the Hogwild
    /// trainer samples tens of millions of edges and negatives per second.
    #[must_use]
    #[inline]
    pub fn sample_with(&self, raw: u64) -> usize {
        let n = self.prob.len() as u64;
        let i = (((raw >> 32) * n) >> 32) as usize;
        let coin = (raw & 0xffff_ffff) as f64 * (1.0 / 4_294_967_296.0);
        if coin < self.prob[i] {
            i
        } else {
            self.alias[i] as usize
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn rejects_degenerate_inputs() {
        assert!(AliasTable::new(&[]).is_none());
        assert!(AliasTable::new(&[0.0, 0.0]).is_none());
        assert!(AliasTable::new(&[1.0, -1.0]).is_none());
        assert!(AliasTable::new(&[f64::NAN]).is_none());
        assert!(AliasTable::new(&[f64::INFINITY]).is_none());
    }

    #[test]
    fn single_outcome() {
        let t = AliasTable::new(&[5.0]).unwrap();
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        for _ in 0..100 {
            assert_eq!(t.sample(&mut rng), 0);
        }
    }

    #[test]
    fn zero_weight_entries_never_sampled() {
        let t = AliasTable::new(&[0.0, 1.0, 0.0, 2.0]).unwrap();
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        for _ in 0..10_000 {
            let s = t.sample(&mut rng);
            assert!(s == 1 || s == 3);
        }
    }

    #[test]
    fn empirical_distribution_matches() {
        let weights = [0.5, 1.5, 3.0, 5.0];
        let total: f64 = weights.iter().sum();
        let t = AliasTable::new(&weights).unwrap();
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let n = 200_000;
        let mut counts = [0usize; 4];
        for _ in 0..n {
            counts[t.sample(&mut rng)] += 1;
        }
        for i in 0..4 {
            let expected = weights[i] / total;
            let observed = counts[i] as f64 / n as f64;
            assert!(
                (observed - expected).abs() < 0.01,
                "outcome {i}: observed {observed}, expected {expected}"
            );
        }
    }

    #[test]
    fn sample_with_matches_distribution() {
        use rand::RngCore;
        let weights = [1.0, 3.0, 0.0, 4.0];
        let total: f64 = weights.iter().sum();
        let t = AliasTable::new(&weights).unwrap();
        let mut rng = ChaCha8Rng::seed_from_u64(9);
        let n = 200_000;
        let mut counts = [0usize; 4];
        for _ in 0..n {
            counts[t.sample_with(rng.next_u64())] += 1;
        }
        assert_eq!(counts[2], 0, "zero-weight outcome drawn");
        for i in [0usize, 1, 3] {
            let expected = weights[i] / total;
            let observed = counts[i] as f64 / n as f64;
            assert!(
                (observed - expected).abs() < 0.01,
                "outcome {i}: observed {observed}, expected {expected}"
            );
        }
    }

    #[test]
    fn uniform_weights() {
        let t = AliasTable::new(&[1.0; 10]).unwrap();
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        let mut counts = [0usize; 10];
        for _ in 0..100_000 {
            counts[t.sample(&mut rng)] += 1;
        }
        for &c in &counts {
            assert!((c as f64 - 10_000.0).abs() < 600.0);
        }
    }
}
