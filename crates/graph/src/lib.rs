//! The weighted bipartite graph at the heart of GRAFICS (§IV-A of the
//! paper), plus the alias-method samplers used by its embedding stage.
//!
//! RF signal records sit on one side of the graph and access-point MAC
//! addresses on the other. An edge `(m, v)` exists iff MAC `m` was observed
//! in record `v`, weighted by `c_mv = f(RSS_mv)` where `f` is a
//! [`WeightFunction`]. This representation:
//!
//! - has **no missing-value problem** — absent MACs are simply absent edges,
//!   never sentinel values (§II);
//! - is **dynamic** — new records and new MACs append nodes, removed APs
//!   delete nodes, both in O(degree) (§III-A);
//! - preserves RSS information in the edge weights.
//!
//! # Examples
//!
//! ```
//! use grafics_graph::{BipartiteGraph, WeightFunction};
//! use grafics_types::{MacAddr, Reading, Rssi, SignalRecord};
//!
//! let mut g = BipartiteGraph::new(WeightFunction::default());
//! let rec = SignalRecord::new(vec![
//!     Reading::new(MacAddr::from_u64(1), Rssi::new(-66.0).unwrap()),
//!     Reading::new(MacAddr::from_u64(2), Rssi::new(-60.0).unwrap()),
//! ]).unwrap();
//! let v = g.add_record(&rec);
//! assert_eq!(g.record_count(), 1);
//! assert_eq!(g.mac_count(), 2);
//! assert_eq!(g.degree(g.record_node(v).unwrap()), 2);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod alias;
mod bipartite;
mod dynamic;
mod weight;

pub use alias::AliasTable;
pub use bipartite::{BipartiteGraph, EdgeRef, GraphError, GraphStats, NodeIdx, NodeKind};
pub use dynamic::{DynamicWeightedSampler, NegativeSampler};
pub use weight::WeightFunction;
