//! The dynamic weighted bipartite graph `G = (M, V, E)` of §IV-A.

use crate::WeightFunction;
use grafics_types::{Dataset, MacAddr, RecordId, SignalRecord};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::fmt;

/// Unified index of a node in `M ∪ V`.
///
/// MAC nodes and record nodes share one dense index space, which is what
/// the embedding layer wants: one embedding row per node. Indices are
/// assigned on insertion and never reused; removed nodes become tombstones.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
#[serde(transparent)]
pub struct NodeIdx(pub u32);

impl NodeIdx {
    /// Returns the index as a `usize`.
    #[must_use]
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for NodeIdx {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// What a node represents.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum NodeKind {
    /// An access-point MAC address (the `M` side).
    Mac(MacAddr),
    /// An RF signal record (the `V` side).
    Record(RecordId),
}

/// One undirected edge `(mac, record)` with its weight `c_mv`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EdgeRef {
    /// The MAC-side endpoint.
    pub mac: NodeIdx,
    /// The record-side endpoint.
    pub record: NodeIdx,
    /// Edge weight `c_mv = f(RSS_mv) > 0`.
    pub weight: f64,
}

/// Errors from graph mutations.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum GraphError {
    /// The referenced record does not exist or was removed.
    UnknownRecord(RecordId),
    /// The referenced MAC does not exist or was removed.
    UnknownMac(MacAddr),
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::UnknownRecord(r) => write!(f, "unknown or removed record {r}"),
            GraphError::UnknownMac(m) => write!(f, "unknown or removed MAC {m}"),
        }
    }
}

impl std::error::Error for GraphError {}

/// The dynamic weighted bipartite graph of records and MACs.
///
/// See the [crate docs](crate) for the model. All mutation operations are
/// O(degree) of the touched nodes. Node indices are stable for the lifetime
/// of the graph (tombstoned on removal, never reused), so embedding
/// matrices indexed by [`NodeIdx`] stay valid as the graph grows.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BipartiteGraph {
    weight_fn: WeightFunction,
    kinds: Vec<NodeKind>,
    adj: Vec<Vec<(NodeIdx, f64)>>,
    weighted_degree: Vec<f64>,
    removed: Vec<bool>,
    mac_lookup: HashMap<MacAddr, NodeIdx>,
    record_nodes: Vec<Option<NodeIdx>>,
    edge_count: usize,
}

impl BipartiteGraph {
    /// Creates an empty graph using `weight_fn` for edge weights.
    #[must_use]
    pub fn new(weight_fn: WeightFunction) -> Self {
        BipartiteGraph {
            weight_fn,
            kinds: Vec::new(),
            adj: Vec::new(),
            weighted_degree: Vec::new(),
            removed: Vec::new(),
            mac_lookup: HashMap::new(),
            record_nodes: Vec::new(),
            edge_count: 0,
        }
    }

    /// Builds a graph from every sample in `dataset`, in order. The `i`-th
    /// sample becomes record id `i`.
    #[must_use]
    pub fn from_dataset(dataset: &Dataset, weight_fn: WeightFunction) -> Self {
        let mut g = BipartiteGraph::new(weight_fn);
        for sample in dataset.samples() {
            g.add_record(&sample.record);
        }
        g
    }

    /// The weight function in force.
    #[must_use]
    pub fn weight_function(&self) -> WeightFunction {
        self.weight_fn
    }

    fn alloc_node(&mut self, kind: NodeKind) -> NodeIdx {
        let idx = NodeIdx(u32::try_from(self.kinds.len()).expect("node count exceeds u32"));
        self.kinds.push(kind);
        self.adj.push(Vec::new());
        self.weighted_degree.push(0.0);
        self.removed.push(false);
        idx
    }

    /// Inserts a record as a new `V`-side node, creating `M`-side nodes for
    /// any MACs not seen before (§V-A: the graph is extended online).
    /// Returns the new record's id.
    pub fn add_record(&mut self, record: &SignalRecord) -> RecordId {
        let rid =
            RecordId(u32::try_from(self.record_nodes.len()).expect("record count exceeds u32"));
        let v = self.alloc_node(NodeKind::Record(rid));
        self.record_nodes.push(Some(v));
        for reading in record.readings() {
            let m = match self.mac_lookup.get(&reading.mac) {
                Some(&m) if !self.removed[m.index()] => m,
                _ => {
                    let m = self.alloc_node(NodeKind::Mac(reading.mac));
                    self.mac_lookup.insert(reading.mac, m);
                    m
                }
            };
            let w = self.weight_fn.weight(reading.rssi);
            self.adj[v.index()].push((m, w));
            self.adj[m.index()].push((v, w));
            self.weighted_degree[v.index()] += w;
            self.weighted_degree[m.index()] += w;
            self.edge_count += 1;
        }
        rid
    }

    /// Removes a record node and all its edges (e.g. expiring stale
    /// crowdsourced data). The node index is tombstoned, never reused.
    ///
    /// # Errors
    ///
    /// [`GraphError::UnknownRecord`] if the record does not exist or was
    /// already removed.
    pub fn remove_record(&mut self, rid: RecordId) -> Result<(), GraphError> {
        let v = self
            .record_nodes
            .get(rid.index())
            .copied()
            .flatten()
            .ok_or(GraphError::UnknownRecord(rid))?;
        self.record_nodes[rid.index()] = None;
        self.tombstone(v);
        Ok(())
    }

    /// Removes a MAC node and all its edges (AP decommissioned, §III-A).
    ///
    /// # Errors
    ///
    /// [`GraphError::UnknownMac`] if the MAC is not in the graph.
    pub fn remove_mac(&mut self, mac: MacAddr) -> Result<(), GraphError> {
        let m = self
            .mac_lookup
            .remove(&mac)
            .ok_or(GraphError::UnknownMac(mac))?;
        self.tombstone(m);
        Ok(())
    }

    fn tombstone(&mut self, node: NodeIdx) {
        let neighbors = std::mem::take(&mut self.adj[node.index()]);
        self.edge_count -= neighbors.len();
        self.weighted_degree[node.index()] = 0.0;
        for (nbr, w) in neighbors {
            let list = &mut self.adj[nbr.index()];
            if let Some(pos) = list.iter().position(|&(n, _)| n == node) {
                list.swap_remove(pos);
                self.weighted_degree[nbr.index()] -= w;
            }
        }
        self.removed[node.index()] = true;
    }

    /// Total number of node slots, including tombstones. Embedding matrices
    /// should have this many rows.
    #[must_use]
    pub fn node_capacity(&self) -> usize {
        self.kinds.len()
    }

    /// Number of live (non-removed) nodes.
    #[must_use]
    pub fn node_count(&self) -> usize {
        self.removed.iter().filter(|&&r| !r).count()
    }

    /// Number of live record nodes.
    #[must_use]
    pub fn record_count(&self) -> usize {
        self.record_nodes.iter().filter(|n| n.is_some()).count()
    }

    /// Number of live MAC nodes.
    #[must_use]
    pub fn mac_count(&self) -> usize {
        self.mac_lookup.len()
    }

    /// Number of live edges.
    #[must_use]
    pub fn edge_count(&self) -> usize {
        self.edge_count
    }

    /// What node `idx` represents. Tombstoned nodes still report their
    /// original kind.
    #[must_use]
    pub fn kind(&self, idx: NodeIdx) -> NodeKind {
        self.kinds[idx.index()]
    }

    /// `true` if `idx` has been removed.
    #[must_use]
    pub fn is_removed(&self, idx: NodeIdx) -> bool {
        self.removed[idx.index()]
    }

    /// The node for a MAC, if present.
    #[must_use]
    pub fn mac_node(&self, mac: MacAddr) -> Option<NodeIdx> {
        self.mac_lookup.get(&mac).copied()
    }

    /// Iterates over the MAC inventory: exactly the MACs
    /// [`BipartiteGraph::mac_node`] resolves (what the fleet routers
    /// consult), in unspecified order. Lets a router tier mirror a
    /// building's AP inventory without holding the model.
    pub fn macs(&self) -> impl Iterator<Item = MacAddr> + '_ {
        self.mac_lookup.keys().copied()
    }

    /// The node for a record, if present.
    #[must_use]
    pub fn record_node(&self, rid: RecordId) -> Option<NodeIdx> {
        self.record_nodes.get(rid.index()).copied().flatten()
    }

    /// Neighbors of `idx` with edge weights. Empty for tombstones.
    #[must_use]
    pub fn neighbors(&self, idx: NodeIdx) -> &[(NodeIdx, f64)] {
        &self.adj[idx.index()]
    }

    /// Unweighted degree of `idx`.
    #[must_use]
    pub fn degree(&self, idx: NodeIdx) -> usize {
        self.adj[idx.index()].len()
    }

    /// Weighted degree `λ_i = Σ_l c_il` of `idx` (Eq. (5)).
    #[must_use]
    pub fn weighted_degree(&self, idx: NodeIdx) -> f64 {
        self.weighted_degree[idx.index()]
    }

    /// Iterates over the live records in id order, with their nodes.
    pub fn record_ids(&self) -> impl Iterator<Item = (RecordId, NodeIdx)> + '_ {
        self.record_nodes
            .iter()
            .enumerate()
            .filter_map(|(i, n)| n.map(|node| (RecordId(i as u32), node)))
    }

    /// Iterates over every live undirected edge exactly once
    /// (record side → MAC side).
    pub fn edges(&self) -> impl Iterator<Item = EdgeRef> + '_ {
        self.record_nodes.iter().flatten().flat_map(move |&v| {
            self.adj[v.index()].iter().map(move |&(m, weight)| EdgeRef {
                mac: m,
                record: v,
                weight,
            })
        })
    }

    /// `true` if at least one MAC of `record` is already in the graph.
    /// Per §V (footnote 1), a new sample containing only never-seen MACs
    /// was likely collected outside the building and should be discarded.
    #[must_use]
    pub fn overlaps(&self, record: &SignalRecord) -> bool {
        record.macs().any(|m| self.mac_node(m).is_some())
    }

    /// Unnormalised negative-sampling weights `d_z^{exponent}` over the full
    /// node index space (Eq. (10); the paper uses `exponent = 3/4`).
    /// Tombstones and isolated nodes get zero mass.
    #[must_use]
    pub fn negative_sampling_weights(&self, exponent: f64) -> Vec<f64> {
        self.adj
            .iter()
            .enumerate()
            .map(|(i, nbrs)| {
                if self.removed[i] || nbrs.is_empty() {
                    0.0
                } else {
                    (nbrs.len() as f64).powf(exponent)
                }
            })
            .collect()
    }

    /// The single-node negative-sampling weight `d_z^{exponent}` — the
    /// per-slot quantity of
    /// [`BipartiteGraph::negative_sampling_weights`], used by the
    /// incremental [`crate::NegativeSampler`] to resync only the nodes a
    /// mutation touched.
    #[must_use]
    pub fn negative_sampling_weight(&self, idx: NodeIdx, exponent: f64) -> f64 {
        let nbrs = &self.adj[idx.index()];
        if self.removed[idx.index()] || nbrs.is_empty() {
            0.0
        } else {
            (nbrs.len() as f64).powf(exponent)
        }
    }

    /// Collects live edges and their weights, for building an edge-sampling
    /// alias table. Each undirected edge appears once.
    #[must_use]
    pub fn edge_list(&self) -> (Vec<EdgeRef>, Vec<f64>) {
        let edges: Vec<EdgeRef> = self.edges().collect();
        let weights = edges.iter().map(|e| e.weight).collect();
        (edges, weights)
    }

    /// Structural statistics, for diagnostics and capacity planning.
    #[must_use]
    pub fn stats(&self) -> GraphStats {
        let mut mac_degrees: Vec<usize> = Vec::new();
        let mut record_degrees: Vec<usize> = Vec::new();
        for (i, kind) in self.kinds.iter().enumerate() {
            if self.removed[i] {
                continue;
            }
            match kind {
                NodeKind::Mac(_) => mac_degrees.push(self.adj[i].len()),
                NodeKind::Record(_) => record_degrees.push(self.adj[i].len()),
            }
        }
        let mean = |v: &[usize]| {
            if v.is_empty() {
                0.0
            } else {
                v.iter().sum::<usize>() as f64 / v.len() as f64
            }
        };
        let max = |v: &[usize]| v.iter().copied().max().unwrap_or(0);
        GraphStats {
            records: record_degrees.len(),
            macs: mac_degrees.len(),
            edges: self.edge_count,
            tombstones: self.removed.iter().filter(|&&r| r).count(),
            mean_record_degree: mean(&record_degrees),
            mean_mac_degree: mean(&mac_degrees),
            max_record_degree: max(&record_degrees),
            max_mac_degree: max(&mac_degrees),
            singleton_macs: mac_degrees.iter().filter(|&&d| d <= 1).count(),
        }
    }
}

/// Structural statistics of a bipartite graph.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GraphStats {
    /// Live record nodes.
    pub records: usize,
    /// Live MAC nodes.
    pub macs: usize,
    /// Live edges.
    pub edges: usize,
    /// Tombstoned node slots (removed records/MACs).
    pub tombstones: usize,
    /// Mean record degree (MACs per record).
    pub mean_record_degree: f64,
    /// Mean MAC degree (records per MAC).
    pub mean_mac_degree: f64,
    /// Maximum record degree.
    pub max_record_degree: usize,
    /// Maximum MAC degree.
    pub max_mac_degree: usize,
    /// MACs connected to at most one record (ephemeral/hotspot suspects).
    pub singleton_macs: usize,
}

#[cfg(test)]
mod tests {
    use super::*;
    use grafics_types::{Reading, Rssi};

    fn rec(macs: &[(u64, f64)]) -> SignalRecord {
        SignalRecord::new(
            macs.iter()
                .map(|&(m, r)| Reading::new(MacAddr::from_u64(m), Rssi::new(r).unwrap()))
                .collect(),
        )
        .unwrap()
    }

    fn paper_example() -> BipartiteGraph {
        // Fig. 4 of the paper: v1 -> {MAC1:-66, MAC2:-60}, v2 -> {MAC2:-70, MAC3:-70}.
        let mut g = BipartiteGraph::new(WeightFunction::default());
        g.add_record(&rec(&[(1, -66.0), (2, -60.0)]));
        g.add_record(&rec(&[(2, -70.0), (3, -70.0)]));
        g
    }

    #[test]
    fn fig4_structure() {
        let g = paper_example();
        assert_eq!(g.record_count(), 2);
        assert_eq!(g.mac_count(), 3);
        assert_eq!(g.edge_count(), 4);
        let mac2 = g.mac_node(MacAddr::from_u64(2)).unwrap();
        assert_eq!(g.degree(mac2), 2);
        // weights: f(-60) = 60 from v1, f(-70) = 50 from v2
        assert!((g.weighted_degree(mac2) - 110.0).abs() < 1e-12);
    }

    #[test]
    fn shared_mac_not_duplicated() {
        let g = paper_example();
        assert_eq!(g.node_count(), 5); // 2 records + 3 macs
    }

    #[test]
    fn edges_iterate_once_each() {
        let g = paper_example();
        let edges: Vec<EdgeRef> = g.edges().collect();
        assert_eq!(edges.len(), 4);
        for e in &edges {
            assert!(matches!(g.kind(e.mac), NodeKind::Mac(_)));
            assert!(matches!(g.kind(e.record), NodeKind::Record(_)));
            assert!(e.weight > 0.0);
        }
    }

    #[test]
    fn remove_mac_cleans_adjacency() {
        let mut g = paper_example();
        let mac2 = MacAddr::from_u64(2);
        g.remove_mac(mac2).unwrap();
        assert_eq!(g.mac_count(), 2);
        assert_eq!(g.edge_count(), 2);
        assert_eq!(g.mac_node(mac2), None);
        let v0 = g.record_node(RecordId(0)).unwrap();
        assert_eq!(g.degree(v0), 1);
        // weighted degrees stay consistent
        assert!((g.weighted_degree(v0) - 54.0).abs() < 1e-12); // f(-66)=54
        assert!(g.remove_mac(mac2).is_err());
    }

    #[test]
    fn remove_record_cleans_adjacency() {
        let mut g = paper_example();
        g.remove_record(RecordId(0)).unwrap();
        assert_eq!(g.record_count(), 1);
        assert_eq!(g.edge_count(), 2);
        let mac1 = g.mac_node(MacAddr::from_u64(1)).unwrap();
        assert_eq!(g.degree(mac1), 0);
        assert!(g.remove_record(RecordId(0)).is_err());
        assert!(g.remove_record(RecordId(9)).is_err());
    }

    #[test]
    fn readding_removed_mac_creates_fresh_node() {
        let mut g = paper_example();
        let old = g.mac_node(MacAddr::from_u64(2)).unwrap();
        g.remove_mac(MacAddr::from_u64(2)).unwrap();
        g.add_record(&rec(&[(2, -50.0)]));
        let new = g.mac_node(MacAddr::from_u64(2)).unwrap();
        assert_ne!(old, new);
        assert!(g.is_removed(old));
        assert!(!g.is_removed(new));
    }

    #[test]
    fn overlaps_rule() {
        let g = paper_example();
        assert!(g.overlaps(&rec(&[(3, -80.0), (99, -50.0)])));
        assert!(!g.overlaps(&rec(&[(98, -80.0), (99, -50.0)])));
    }

    #[test]
    fn negative_sampling_weights_shape() {
        let mut g = paper_example();
        g.remove_mac(MacAddr::from_u64(1)).unwrap();
        let w = g.negative_sampling_weights(0.75);
        assert_eq!(w.len(), g.node_capacity());
        let mac1_idx = 1; // insertion order: v0, mac1, mac2, v1, mac3
        assert_eq!(w[mac1_idx], 0.0);
        let mac2 = g.mac_node(MacAddr::from_u64(2)).unwrap();
        assert!((w[mac2.index()] - 2f64.powf(0.75)).abs() < 1e-12);
    }

    #[test]
    fn from_dataset_ids_follow_sample_order() {
        use grafics_types::{Dataset, FloorId, Sample};
        let ds = Dataset::from_samples(vec![
            Sample::labeled(rec(&[(1, -60.0)]), FloorId(0)),
            Sample::labeled(rec(&[(2, -70.0)]), FloorId(1)),
        ]);
        let g = BipartiteGraph::from_dataset(&ds, WeightFunction::default());
        assert_eq!(g.record_count(), 2);
        assert!(g.record_node(RecordId(0)).is_some());
        assert!(g.record_node(RecordId(1)).is_some());
    }

    #[test]
    fn weighted_degree_is_sum_of_incident_weights() {
        let g = paper_example();
        for idx in 0..g.node_capacity() {
            let node = NodeIdx(idx as u32);
            let sum: f64 = g.neighbors(node).iter().map(|&(_, w)| w).sum();
            assert!((g.weighted_degree(node) - sum).abs() < 1e-9);
        }
    }

    #[test]
    fn stats_reflect_structure() {
        let mut g = paper_example();
        let st = g.stats();
        assert_eq!(st.records, 2);
        assert_eq!(st.macs, 3);
        assert_eq!(st.edges, 4);
        assert_eq!(st.tombstones, 0);
        assert!((st.mean_record_degree - 2.0).abs() < 1e-12);
        assert_eq!(st.max_mac_degree, 2);
        assert_eq!(st.singleton_macs, 2); // MAC1 and MAC3 touch one record

        g.remove_record(RecordId(0)).unwrap();
        let st = g.stats();
        assert_eq!(st.records, 1);
        assert_eq!(st.tombstones, 1);
        assert_eq!(st.edges, 2);
    }

    #[test]
    fn serde_roundtrip() {
        let g = paper_example();
        let json = serde_json::to_string(&g).unwrap();
        let back: BipartiteGraph = serde_json::from_str(&json).unwrap();
        assert_eq!(back.record_count(), 2);
        assert_eq!(back.edge_count(), 4);
        assert_eq!(
            back.mac_node(MacAddr::from_u64(2)),
            g.mac_node(MacAddr::from_u64(2))
        );
    }
}
