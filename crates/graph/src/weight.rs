//! Edge-weight functions mapping RSS values to positive edge weights
//! (Eq. (2) and the Fig. 16 ablation of the paper).

use grafics_types::Rssi;
use serde::{Deserialize, Serialize};

/// Maps an RSS reading to a strictly positive bipartite-graph edge weight.
///
/// The paper evaluates two choices (Fig. 16):
///
/// - [`WeightFunction::Offset`] — `f(RSS) = RSS + α`, with
///   `α > max |RSS|` so weights stay positive. This *preserves the
///   differences* between RSS values and is the paper's recommended (and
///   our default) choice, with `α = 120`.
/// - [`WeightFunction::Power`] — `g(RSS) = 10^(RSS/10)` (dBm → mW). This
///   compresses weak signals so strongly that most edges end up with nearly
///   identical tiny weights, which the paper shows degrades embeddings.
///
/// # Examples
///
/// ```
/// use grafics_graph::WeightFunction;
/// use grafics_types::Rssi;
///
/// let f = WeightFunction::default();
/// assert_eq!(f.weight(Rssi::new(-66.0).unwrap()), 54.0);
///
/// let g = WeightFunction::Power;
/// assert!((g.weight(Rssi::new(-30.0).unwrap()) - 1e-3).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
#[non_exhaustive]
pub enum WeightFunction {
    /// `f(RSS) = RSS + alpha` (paper default, `alpha = 120`).
    Offset {
        /// Constant offset added to the RSS value in dBm. Must exceed the
        /// magnitude of the weakest possible reading (120 dBm) for the
        /// weight to stay positive.
        alpha: f64,
    },
    /// `g(RSS) = 10^(RSS / 10)` — dBm converted to linear milliwatts.
    Power,
}

impl WeightFunction {
    /// The paper's default: `f(RSS) = RSS + 120`.
    #[must_use]
    pub const fn offset_default() -> Self {
        WeightFunction::Offset { alpha: 120.0 }
    }

    /// Evaluates the weight function. The result is strictly positive for
    /// every valid [`Rssi`] (which is bounded below by −120 dBm) provided
    /// `alpha >= 120`; weights are clamped to a tiny positive epsilon
    /// otherwise so downstream samplers never see zero or negative mass.
    #[must_use]
    pub fn weight(self, rssi: Rssi) -> f64 {
        const EPS: f64 = 1e-9;
        let w = match self {
            WeightFunction::Offset { alpha } => rssi.dbm() + alpha,
            WeightFunction::Power => rssi.milliwatts(),
        };
        if w > EPS {
            w
        } else {
            EPS
        }
    }
}

impl Default for WeightFunction {
    fn default() -> Self {
        WeightFunction::offset_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn offset_preserves_differences() {
        let f = WeightFunction::default();
        let a = f.weight(Rssi::new(-40.0).unwrap());
        let b = f.weight(Rssi::new(-90.0).unwrap());
        assert_eq!(a - b, 50.0);
    }

    #[test]
    fn power_compresses_differences() {
        let g = WeightFunction::Power;
        let a = g.weight(Rssi::new(-40.0).unwrap());
        let b = g.weight(Rssi::new(-90.0).unwrap());
        // Both are tiny; their absolute difference is < 1e-4 mW even though
        // the dBm gap is 50 — exactly why the paper finds g(·) inferior.
        assert!(a - b < 1e-4);
    }

    #[test]
    fn always_positive_over_valid_range() {
        for func in [WeightFunction::default(), WeightFunction::Power] {
            for dbm in (-120..=20).step_by(5) {
                let w = func.weight(Rssi::new(dbm as f64).unwrap());
                assert!(w > 0.0, "{func:?} produced non-positive weight at {dbm}");
            }
        }
    }

    #[test]
    fn small_alpha_clamps_to_epsilon() {
        let f = WeightFunction::Offset { alpha: 50.0 };
        assert!(f.weight(Rssi::new(-120.0).unwrap()) > 0.0);
    }
}
