//! Property-based tests for the bipartite graph and alias sampler.

use grafics_graph::{AliasTable, BipartiteGraph, NegativeSampler, NodeIdx, WeightFunction};
use grafics_types::{MacAddr, Reading, RecordId, Rssi, SignalRecord};
use proptest::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// Strategy: a record over a small MAC universe with valid RSS values.
fn arb_record() -> impl Strategy<Value = SignalRecord> {
    prop::collection::vec((0u64..30, -100.0f64..-30.0), 1..15).prop_map(|pairs| {
        SignalRecord::new(
            pairs
                .into_iter()
                .map(|(m, r)| Reading::new(MacAddr::from_u64(m), Rssi::new(r).unwrap()))
                .collect(),
        )
        .expect("non-empty by strategy")
    })
}

proptest! {
    /// Handshake: the sum of record-side degrees equals the edge count,
    /// as does the sum of MAC-side degrees, for any record stream.
    #[test]
    fn degree_handshake(records in prop::collection::vec(arb_record(), 1..40)) {
        let mut g = BipartiteGraph::new(WeightFunction::default());
        for r in &records {
            g.add_record(r);
        }
        let mut rec_deg = 0usize;
        let mut mac_deg = 0usize;
        for i in 0..g.node_capacity() {
            let idx = NodeIdx(i as u32);
            match g.kind(idx) {
                grafics_graph::NodeKind::Record(_) => rec_deg += g.degree(idx),
                grafics_graph::NodeKind::Mac(_) => mac_deg += g.degree(idx),
            }
        }
        prop_assert_eq!(rec_deg, g.edge_count());
        prop_assert_eq!(mac_deg, g.edge_count());
    }

    /// Every edge connects a record node to a MAC node (bipartiteness).
    #[test]
    fn graph_is_bipartite(records in prop::collection::vec(arb_record(), 1..30)) {
        let mut g = BipartiteGraph::new(WeightFunction::default());
        for r in &records {
            g.add_record(r);
        }
        for e in g.edges() {
            prop_assert!(matches!(g.kind(e.mac), grafics_graph::NodeKind::Mac(_)));
            prop_assert!(matches!(g.kind(e.record), grafics_graph::NodeKind::Record(_)));
            prop_assert!(e.weight > 0.0 && e.weight.is_finite());
        }
    }

    /// A record node's degree equals the number of distinct MACs in the
    /// record it was built from.
    #[test]
    fn record_degree_matches_record_len(records in prop::collection::vec(arb_record(), 1..30)) {
        let mut g = BipartiteGraph::new(WeightFunction::default());
        for (i, r) in records.iter().enumerate() {
            let rid = g.add_record(r);
            prop_assert_eq!(rid, RecordId(i as u32));
            let node = g.record_node(rid).unwrap();
            prop_assert_eq!(g.degree(node), r.len());
        }
    }

    /// Removing every record empties the edge set and zeroes all weighted
    /// degrees, regardless of insertion order.
    #[test]
    fn remove_all_records_empties_graph(records in prop::collection::vec(arb_record(), 1..25)) {
        let mut g = BipartiteGraph::new(WeightFunction::default());
        let ids: Vec<RecordId> = records.iter().map(|r| g.add_record(r)).collect();
        for rid in ids {
            g.remove_record(rid).unwrap();
        }
        prop_assert_eq!(g.edge_count(), 0);
        prop_assert_eq!(g.record_count(), 0);
        for i in 0..g.node_capacity() {
            prop_assert!(g.weighted_degree(NodeIdx(i as u32)).abs() < 1e-9);
        }
    }

    /// Tombstoned nodes never appear in live adjacency lists.
    #[test]
    fn tombstones_unreachable(
        records in prop::collection::vec(arb_record(), 2..25),
        kill_mac in 0u64..30,
    ) {
        let mut g = BipartiteGraph::new(WeightFunction::default());
        for r in &records {
            g.add_record(r);
        }
        let mac = MacAddr::from_u64(kill_mac);
        if let Some(dead) = g.mac_node(mac) {
            g.remove_mac(mac).unwrap();
            for i in 0..g.node_capacity() {
                for &(nbr, _) in g.neighbors(NodeIdx(i as u32)) {
                    prop_assert_ne!(nbr, dead);
                }
            }
        }
    }

    /// Alias-table sampling over random weights only ever returns indices
    /// with positive weight.
    #[test]
    fn alias_sampler_support(weights in prop::collection::vec(0.0f64..10.0, 1..50), seed in 0u64..1000) {
        prop_assume!(weights.iter().sum::<f64>() > 0.0);
        let t = AliasTable::new(&weights).unwrap();
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        for _ in 0..200 {
            let s = t.sample(&mut rng);
            prop_assert!(weights[s] > 0.0, "sampled zero-weight index {}", s);
        }
    }

    /// The incrementally synced [`NegativeSampler`] represents exactly the
    /// distribution of a from-scratch rebuild, under any interleaving of
    /// record insertions, record removals, and AP removals: its weight
    /// vector equals the `negative_sampling_weights` sweep an alias-table
    /// rebuild would consume, and its empirical draw frequencies match the
    /// rebuilt [`AliasTable`]'s.
    #[test]
    fn incremental_negative_sampler_matches_rebuilt_table(
        records in prop::collection::vec(arb_record(), 1..20),
        ops in prop::collection::vec((0u8..4, 0usize..64), 1..40),
    ) {
        let mut g = BipartiteGraph::new(WeightFunction::default());
        let mut neg = NegativeSampler::from_graph(&g, 0.75);
        let mut next_add = 0usize;
        for &(kind, pick) in &ops {
            match kind {
                // Bias towards insertion so removal ops find targets.
                0 | 1 => {
                    let rid = g.add_record(&records[next_add % records.len()]);
                    next_add += 1;
                    let node = g.record_node(rid).unwrap();
                    neg.sync_inserted(&g, node);
                }
                2 => {
                    let live: Vec<RecordId> = g.record_ids().map(|(rid, _)| rid).collect();
                    if let Some(&rid) = live.get(pick.checked_rem(live.len()).unwrap_or(0)) {
                        let node = g.record_node(rid).unwrap();
                        let former: Vec<NodeIdx> =
                            g.neighbors(node).iter().map(|&(n, _)| n).collect();
                        g.remove_record(rid).unwrap();
                        neg.sync_removed(&g, node, &former);
                    }
                }
                _ => {
                    let macs: Vec<MacAddr> = (0..g.node_capacity())
                        .filter_map(|i| {
                            let idx = NodeIdx(i as u32);
                            match g.kind(idx) {
                                grafics_graph::NodeKind::Mac(m) if !g.is_removed(idx) => Some(m),
                                _ => None,
                            }
                        })
                        .collect();
                    if let Some(&mac) = macs.get(pick.checked_rem(macs.len()).unwrap_or(0)) {
                        let node = g.mac_node(mac).unwrap();
                        let former: Vec<NodeIdx> =
                            g.neighbors(node).iter().map(|&(n, _)| n).collect();
                        g.remove_mac(mac).unwrap();
                        neg.sync_removed(&g, node, &former);
                    }
                }
            }
        }

        // The incremental weights are bit-equal to the from-scratch sweep.
        let fresh = g.negative_sampling_weights(0.75);
        prop_assert_eq!(neg.weights(), &fresh[..]);

        // And at an epoch boundary the draw frequencies match the rebuilt
        // alias table's (deterministic given the fixed seeds below).
        neg.rebuild_snapshot();
        if let Some(alias) = AliasTable::new(&fresh) {
            let total: f64 = fresh.iter().sum();
            let draws = 30_000;
            let mut from_dynamic = vec![0usize; fresh.len()];
            let mut from_alias = vec![0usize; fresh.len()];
            let mut rng_d = ChaCha8Rng::seed_from_u64(42);
            let mut rng_a = ChaCha8Rng::seed_from_u64(43);
            for _ in 0..draws {
                from_dynamic[neg.sample(&mut rng_d).unwrap().index()] += 1;
                from_alias[alias.sample(&mut rng_a)] += 1;
            }
            for (i, &w) in fresh.iter().enumerate() {
                let expected = w / total;
                let got_d = from_dynamic[i] as f64 / draws as f64;
                let got_a = from_alias[i] as f64 / draws as f64;
                prop_assert!(
                    (got_d - expected).abs() < 0.02 && (got_a - expected).abs() < 0.02,
                    "slot {}: dynamic {:.4} alias {:.4} expected {:.4}",
                    i, got_d, got_a, expected
                );
            }
        } else {
            prop_assert!(neg.is_exhausted());
        }
    }

    /// Negative-sampling weights are zero exactly for isolated/removed
    /// nodes and positive otherwise.
    #[test]
    fn negative_weights_support(records in prop::collection::vec(arb_record(), 1..25)) {
        let mut g = BipartiteGraph::new(WeightFunction::default());
        for r in &records {
            g.add_record(r);
        }
        g.remove_record(RecordId(0)).unwrap();
        let w = g.negative_sampling_weights(0.75);
        for (i, &weight) in w.iter().enumerate().take(g.node_capacity()) {
            let idx = NodeIdx(i as u32);
            let live = !g.is_removed(idx) && g.degree(idx) > 0;
            prop_assert_eq!(weight > 0.0, live, "node {} weight {}", i, weight);
        }
    }
}
