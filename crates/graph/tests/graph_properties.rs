//! Property-based tests for the bipartite graph and alias sampler.

use grafics_graph::{AliasTable, BipartiteGraph, NodeIdx, WeightFunction};
use grafics_types::{MacAddr, Reading, RecordId, Rssi, SignalRecord};
use proptest::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// Strategy: a record over a small MAC universe with valid RSS values.
fn arb_record() -> impl Strategy<Value = SignalRecord> {
    prop::collection::vec((0u64..30, -100.0f64..-30.0), 1..15).prop_map(|pairs| {
        SignalRecord::new(
            pairs
                .into_iter()
                .map(|(m, r)| Reading::new(MacAddr::from_u64(m), Rssi::new(r).unwrap()))
                .collect(),
        )
        .expect("non-empty by strategy")
    })
}

proptest! {
    /// Handshake: the sum of record-side degrees equals the edge count,
    /// as does the sum of MAC-side degrees, for any record stream.
    #[test]
    fn degree_handshake(records in prop::collection::vec(arb_record(), 1..40)) {
        let mut g = BipartiteGraph::new(WeightFunction::default());
        for r in &records {
            g.add_record(r);
        }
        let mut rec_deg = 0usize;
        let mut mac_deg = 0usize;
        for i in 0..g.node_capacity() {
            let idx = NodeIdx(i as u32);
            match g.kind(idx) {
                grafics_graph::NodeKind::Record(_) => rec_deg += g.degree(idx),
                grafics_graph::NodeKind::Mac(_) => mac_deg += g.degree(idx),
            }
        }
        prop_assert_eq!(rec_deg, g.edge_count());
        prop_assert_eq!(mac_deg, g.edge_count());
    }

    /// Every edge connects a record node to a MAC node (bipartiteness).
    #[test]
    fn graph_is_bipartite(records in prop::collection::vec(arb_record(), 1..30)) {
        let mut g = BipartiteGraph::new(WeightFunction::default());
        for r in &records {
            g.add_record(r);
        }
        for e in g.edges() {
            prop_assert!(matches!(g.kind(e.mac), grafics_graph::NodeKind::Mac(_)));
            prop_assert!(matches!(g.kind(e.record), grafics_graph::NodeKind::Record(_)));
            prop_assert!(e.weight > 0.0 && e.weight.is_finite());
        }
    }

    /// A record node's degree equals the number of distinct MACs in the
    /// record it was built from.
    #[test]
    fn record_degree_matches_record_len(records in prop::collection::vec(arb_record(), 1..30)) {
        let mut g = BipartiteGraph::new(WeightFunction::default());
        for (i, r) in records.iter().enumerate() {
            let rid = g.add_record(r);
            prop_assert_eq!(rid, RecordId(i as u32));
            let node = g.record_node(rid).unwrap();
            prop_assert_eq!(g.degree(node), r.len());
        }
    }

    /// Removing every record empties the edge set and zeroes all weighted
    /// degrees, regardless of insertion order.
    #[test]
    fn remove_all_records_empties_graph(records in prop::collection::vec(arb_record(), 1..25)) {
        let mut g = BipartiteGraph::new(WeightFunction::default());
        let ids: Vec<RecordId> = records.iter().map(|r| g.add_record(r)).collect();
        for rid in ids {
            g.remove_record(rid).unwrap();
        }
        prop_assert_eq!(g.edge_count(), 0);
        prop_assert_eq!(g.record_count(), 0);
        for i in 0..g.node_capacity() {
            prop_assert!(g.weighted_degree(NodeIdx(i as u32)).abs() < 1e-9);
        }
    }

    /// Tombstoned nodes never appear in live adjacency lists.
    #[test]
    fn tombstones_unreachable(
        records in prop::collection::vec(arb_record(), 2..25),
        kill_mac in 0u64..30,
    ) {
        let mut g = BipartiteGraph::new(WeightFunction::default());
        for r in &records {
            g.add_record(r);
        }
        let mac = MacAddr::from_u64(kill_mac);
        if let Some(dead) = g.mac_node(mac) {
            g.remove_mac(mac).unwrap();
            for i in 0..g.node_capacity() {
                for &(nbr, _) in g.neighbors(NodeIdx(i as u32)) {
                    prop_assert_ne!(nbr, dead);
                }
            }
        }
    }

    /// Alias-table sampling over random weights only ever returns indices
    /// with positive weight.
    #[test]
    fn alias_sampler_support(weights in prop::collection::vec(0.0f64..10.0, 1..50), seed in 0u64..1000) {
        prop_assume!(weights.iter().sum::<f64>() > 0.0);
        let t = AliasTable::new(&weights).unwrap();
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        for _ in 0..200 {
            let s = t.sample(&mut rng);
            prop_assert!(weights[s] > 0.0, "sampled zero-weight index {}", s);
        }
    }

    /// Negative-sampling weights are zero exactly for isolated/removed
    /// nodes and positive otherwise.
    #[test]
    fn negative_weights_support(records in prop::collection::vec(arb_record(), 1..25)) {
        let mut g = BipartiteGraph::new(WeightFunction::default());
        for r in &records {
            g.add_record(r);
        }
        g.remove_record(RecordId(0)).unwrap();
        let w = g.negative_sampling_weights(0.75);
        for (i, &weight) in w.iter().enumerate().take(g.node_capacity()) {
            let idx = NodeIdx(i as u32);
            let live = !g.is_removed(idx) && g.degree(idx) > 0;
            prop_assert_eq!(weight > 0.0, live, "node {} weight {}", i, weight);
        }
    }
}
