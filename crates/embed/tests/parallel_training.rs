//! Tests pinning the Hogwild trainer's contract: `threads = 1` is
//! bit-for-bit the serial trainer, and `threads = 4` converges to the
//! same quality on a seeded synthetic building.

use grafics_embed::{ElineTrainer, EmbeddingConfig, EmbeddingModel, Objective};
use grafics_graph::{BipartiteGraph, NodeIdx, WeightFunction};
use grafics_types::{MacAddr, Reading, Rssi, SignalRecord};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn rec(macs: &[u64]) -> SignalRecord {
    SignalRecord::new(
        macs.iter()
            .map(|&m| Reading::new(MacAddr::from_u64(m), Rssi::new(-60.0).unwrap()))
            .collect(),
    )
    .unwrap()
}

/// A 3-community graph: records in community `c` draw MACs from pool `c`.
fn three_floor_graph(rng: &mut ChaCha8Rng) -> (BipartiteGraph, Vec<Vec<NodeIdx>>) {
    use rand::seq::SliceRandom;
    let mut g = BipartiteGraph::new(WeightFunction::default());
    let mut communities = vec![Vec::new(), Vec::new(), Vec::new()];
    let pools: [Vec<u64>; 3] = [
        (0..12).collect(),
        (100..112).collect(),
        (200..212).collect(),
    ];
    for k in 0..36 {
        let c = k % 3;
        let macs: Vec<u64> = pools[c].choose_multiple(rng, 5).copied().collect();
        let rid = g.add_record(&rec(&macs));
        communities[c].push(g.record_node(rid).unwrap());
    }
    (g, communities)
}

/// Mean positive-pair loss `-log σ(u'_mac · u_record)` over every edge —
/// an externally computable version of the trainer's probe loss.
fn edge_loss(model: &EmbeddingModel, g: &BipartiteGraph) -> f64 {
    let mut sum = 0.0;
    let mut n = 0usize;
    for e in g.edges() {
        let dot: f32 = model
            .ego(e.record)
            .iter()
            .zip(model.context(e.mac))
            .map(|(&a, &b)| a * b)
            .sum();
        let sig = 1.0 / (1.0 + f64::from(-dot.clamp(-30.0, 30.0)).exp());
        sum += -sig.max(1e-12).ln();
        n += 1;
    }
    sum / n as f64
}

fn mean_dist(model: &EmbeddingModel, xs: &[NodeIdx], ys: &[NodeIdx]) -> f64 {
    let mut sum = 0.0;
    let mut n = 0usize;
    for &x in xs {
        for &y in ys {
            if x != y {
                sum += model.ego_distance(x, y);
                n += 1;
            }
        }
    }
    sum / n as f64
}

/// `train()` with `threads = 1` must take the exact serial code path:
/// bit-for-bit the model `train_with_stats` (which *is* the serial
/// implementation, unconditionally) produces, for every objective. If a
/// future change routed `threads = 1` through the Hogwild path, the
/// float streams would diverge and this comparison would fail.
#[test]
fn single_thread_is_bit_identical_to_serial() {
    for objective in [
        Objective::ELine,
        Objective::LineSecond,
        Objective::LineFirst,
        Objective::LineBoth,
    ] {
        let mut rng_graph = ChaCha8Rng::seed_from_u64(11);
        let (g, _) = three_floor_graph(&mut rng_graph);

        let cfg = EmbeddingConfig {
            dim: 8,
            epochs: 12,
            threads: 1,
            objective,
            ..Default::default()
        };

        let mut rng_a = ChaCha8Rng::seed_from_u64(77);
        let (a, _) = ElineTrainer::new(cfg)
            .train_with_stats(&g, &mut rng_a)
            .unwrap();
        let mut rng_b = ChaCha8Rng::seed_from_u64(77);
        let b = ElineTrainer::new(cfg).train(&g, &mut rng_b).unwrap();

        assert_eq!(a.rows(), b.rows());
        for node in 0..a.rows() {
            let n = NodeIdx(node as u32);
            assert_eq!(a.ego(n), b.ego(n), "{objective}: ego row {node} diverged");
            assert_eq!(
                a.context(n),
                b.context(n),
                "{objective}: context row {node} diverged"
            );
        }
    }
}

/// The Hogwild path at `threads = 4` must converge: final edge loss within
/// tolerance of the serial trainer on the same seeded graph, communities
/// separated, all coordinates finite.
#[test]
fn hogwild_four_threads_converges_like_serial() {
    let mut rng_graph = ChaCha8Rng::seed_from_u64(21);
    let (g, communities) = three_floor_graph(&mut rng_graph);

    let cfg = EmbeddingConfig {
        dim: 8,
        epochs: 60,
        ..Default::default()
    };
    let mut rng_serial = ChaCha8Rng::seed_from_u64(5);
    let serial = ElineTrainer::new(cfg).train(&g, &mut rng_serial).unwrap();

    let par_cfg = EmbeddingConfig { threads: 4, ..cfg };
    let mut rng_par = ChaCha8Rng::seed_from_u64(5);
    let parallel = ElineTrainer::new(par_cfg).train(&g, &mut rng_par).unwrap();

    assert!(parallel.all_finite());
    assert_eq!(parallel.rows(), serial.rows());

    let serial_loss = edge_loss(&serial, &g);
    let parallel_loss = edge_loss(&parallel, &g);
    assert!(
        parallel_loss < serial_loss * 1.25 + 0.05,
        "Hogwild loss {parallel_loss:.4} should match serial {serial_loss:.4}"
    );

    // And the embedding must actually be useful: communities separate.
    let intra = (mean_dist(&parallel, &communities[0], &communities[0])
        + mean_dist(&parallel, &communities[1], &communities[1])
        + mean_dist(&parallel, &communities[2], &communities[2]))
        / 3.0;
    let inter = (mean_dist(&parallel, &communities[0], &communities[1])
        + mean_dist(&parallel, &communities[0], &communities[2])
        + mean_dist(&parallel, &communities[1], &communities[2]))
        / 3.0;
    assert!(
        inter > 1.5 * intra,
        "Hogwild embedding should separate communities: inter {inter:.4} vs intra {intra:.4}"
    );
}

/// More workers than samples must not hang or panic (degenerate split).
#[test]
fn more_threads_than_work_is_safe() {
    let mut rng = ChaCha8Rng::seed_from_u64(3);
    let mut g = BipartiteGraph::new(WeightFunction::default());
    g.add_record(&rec(&[1, 2]));
    let cfg = EmbeddingConfig {
        dim: 4,
        epochs: 1,
        threads: 16,
        ..Default::default()
    };
    let model = ElineTrainer::new(cfg).train(&g, &mut rng).unwrap();
    assert!(model.all_finite());
}

/// Hogwild across every objective stays finite (mirror of the serial
/// property test at a smaller scale).
#[test]
fn hogwild_all_objectives_finite() {
    for objective in [
        Objective::ELine,
        Objective::LineSecond,
        Objective::LineFirst,
        Objective::LineBoth,
    ] {
        let mut rng = ChaCha8Rng::seed_from_u64(31);
        let (g, _) = three_floor_graph(&mut rng);
        let cfg = EmbeddingConfig {
            dim: 8,
            epochs: 8,
            threads: 3,
            objective,
            ..Default::default()
        };
        let model = ElineTrainer::new(cfg).train(&g, &mut rng).unwrap();
        assert!(
            model.all_finite(),
            "{objective} produced non-finite embeddings"
        );
    }
}
