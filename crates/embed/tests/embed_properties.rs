//! Property-based tests for the embedding layer: training never produces
//! non-finite embeddings, online embedding never touches frozen rows, and
//! configs validate consistently.

use grafics_embed::{ElineTrainer, EmbeddingConfig, Objective};
use grafics_graph::{BipartiteGraph, NodeIdx, WeightFunction};
use grafics_types::{MacAddr, Reading, Rssi, SignalRecord};
use proptest::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn arb_record() -> impl Strategy<Value = SignalRecord> {
    prop::collection::vec((0u64..25, -95.0f64..-35.0), 1..10).prop_map(|pairs| {
        SignalRecord::new(
            pairs
                .into_iter()
                .map(|(m, r)| Reading::new(MacAddr::from_u64(m), Rssi::new(r).unwrap()))
                .collect(),
        )
        .expect("non-empty")
    })
}

fn graph_from(records: &[SignalRecord]) -> BipartiteGraph {
    let mut g = BipartiteGraph::new(WeightFunction::default());
    for r in records {
        g.add_record(r);
    }
    g
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Whatever the record stream and objective, training yields finite
    /// embeddings of the right shape.
    #[test]
    fn training_always_finite(
        records in prop::collection::vec(arb_record(), 2..15),
        seed in 0u64..500,
        objective_idx in 0usize..3,
    ) {
        let g = graph_from(&records);
        let objective = [Objective::LineFirst, Objective::LineSecond, Objective::ELine][objective_idx];
        let cfg = EmbeddingConfig { epochs: 3, dim: 4, objective, ..Default::default() };
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let model = ElineTrainer::new(cfg).train(&g, &mut rng).unwrap();
        prop_assert!(model.all_finite());
        prop_assert_eq!(model.rows(), g.node_capacity());
        prop_assert_eq!(model.dim(), 4);
    }

    /// Online embedding of a new node changes ONLY that node's rows.
    #[test]
    fn online_embedding_touches_only_new_node(
        records in prop::collection::vec(arb_record(), 3..12),
        new_record in arb_record(),
        seed in 0u64..500,
    ) {
        let mut g = graph_from(&records);
        let cfg = EmbeddingConfig { epochs: 3, dim: 4, online_samples_per_edge: 20, ..Default::default() };
        let trainer = ElineTrainer::new(cfg);
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let mut model = trainer.train(&g, &mut rng).unwrap();

        let before: Vec<Vec<f32>> =
            (0..model.rows()).map(|i| model.ego(NodeIdx(i as u32)).to_vec()).collect();
        let rid = g.add_record(&new_record);
        let node = g.record_node(rid).unwrap();
        trainer.embed_new_node(&g, &mut model, node, &mut rng).unwrap();

        for (i, row) in before.iter().enumerate() {
            let idx = NodeIdx(i as u32);
            if idx != node {
                // Pre-existing MAC rows and record rows are frozen; only
                // *new* MAC nodes (appended after `before` was captured)
                // and the new record node may differ.
                prop_assert_eq!(model.ego(idx), row.as_slice(), "row {} moved", i);
            }
        }
        prop_assert!(model.all_finite());
    }

    /// Ego distances form a pseudometric: symmetric, zero to self,
    /// triangle inequality (within float tolerance).
    #[test]
    fn ego_distance_is_pseudometric(
        records in prop::collection::vec(arb_record(), 3..10),
        seed in 0u64..100,
    ) {
        let g = graph_from(&records);
        let cfg = EmbeddingConfig { epochs: 2, dim: 4, ..Default::default() };
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let model = ElineTrainer::new(cfg).train(&g, &mut rng).unwrap();
        let n = model.rows().min(6);
        for a in 0..n {
            let (na, ) = (NodeIdx(a as u32),);
            prop_assert_eq!(model.ego_distance(na, na), 0.0);
            for b in 0..n {
                let nb = NodeIdx(b as u32);
                let ab = model.ego_distance(na, nb);
                prop_assert!((ab - model.ego_distance(nb, na)).abs() < 1e-9);
                for c0 in 0..n {
                    let nc = NodeIdx(c0 as u32);
                    prop_assert!(
                        ab <= model.ego_distance(na, nc) + model.ego_distance(nc, nb) + 1e-6
                    );
                }
            }
        }
    }
}
