//! Configuration and errors for the embedding trainers.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Which proximity objective drives training.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
#[non_exhaustive]
pub enum Objective {
    /// LINE first-order proximity: `log σ(u_j · u_i)`. Connected nodes
    /// attract. On a bipartite graph this only relates nodes of *different*
    /// types, which the paper shows is unhelpful for floor identification.
    LineFirst,
    /// LINE second-order proximity: `log σ(u'_j · u_i)` (Eq. (5)).
    LineSecond,
    /// LINE with *both* proximities trained jointly on the same vectors.
    /// §IV-B reports that on the bipartite graph "LINE performs better
    /// with the second-order proximity only than the one using both
    /// proximities" — this variant reproduces that comparison. (The
    /// original LINE paper trains the orders separately and concatenates;
    /// we train jointly, which exhibits the same qualitative degradation:
    /// the first-order term drags record and MAC nodes together.)
    LineBoth,
    /// E-LINE (Eq. (10)): second-order plus the mirrored term
    /// `log σ(u_j · u'_i)` (Eq. (8)), capturing multi-hop local
    /// neighbourhoods. The paper's recommended objective and our default.
    #[default]
    ELine,
}

impl fmt::Display for Objective {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Objective::LineFirst => write!(f, "LINE-1st"),
            Objective::LineSecond => write!(f, "LINE-2nd"),
            Objective::LineBoth => write!(f, "LINE-1st+2nd"),
            Objective::ELine => write!(f, "E-LINE"),
        }
    }
}

/// How many SGD samples the *online* refinement of one query spends.
///
/// The historical behaviour is [`OnlineBudget::Fixed`]: every query runs
/// exactly `spe × deg` samples. [`OnlineBudget::Adaptive`] lets the
/// serving path stop refining early once the top-1/top-2 centroid margin
/// is already decisive — the embedding has stopped changing the answer,
/// so the remaining samples are pure latency. Adaptive budgets are only
/// honoured on the read-only query path ([`crate::ElineTrainer`]'s
/// `embed_query_budgeted`); the mutable absorb path always runs its
/// configured fixed budget so WAL replay streams never re-roll.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum OnlineBudget {
    /// Exactly `spe` samples per incident edge — bit-identical to the
    /// historical path when `spe == online_samples_per_edge`.
    Fixed(usize),
    /// Up to `max_spe` samples per edge, probing for a decisive margin
    /// every `min_spe` samples per edge.
    Adaptive {
        /// Samples per edge when no probe is ever decisive. With
        /// `margin_ratio <= 0` (never decisive) the refinement is
        /// bit-identical to `Fixed(max_spe)`.
        max_spe: usize,
        /// Probe cadence: the margin is checked every `min_spe` samples
        /// per edge, so at least `min_spe × deg` samples always run.
        min_spe: usize,
        /// A probe is decisive when the runner-up centroid (on a
        /// different floor) is at least `(1 + margin_ratio)×` the best
        /// squared distance away. `<= 0` disables early stopping.
        margin_ratio: f64,
    },
}

impl OnlineBudget {
    /// The samples-per-edge ceiling: `spe` for fixed budgets, `max_spe`
    /// for adaptive ones.
    #[must_use]
    pub fn max_spe(&self) -> usize {
        match *self {
            OnlineBudget::Fixed(spe) => spe,
            OnlineBudget::Adaptive { max_spe, .. } => max_spe,
        }
    }

    /// Validates the budget.
    ///
    /// # Errors
    ///
    /// Returns [`EmbedError::InvalidConfig`] if any field is out of range.
    pub fn validate(&self) -> Result<(), EmbedError> {
        let bad = |what: &str| {
            Err(EmbedError::InvalidConfig {
                what: what.to_owned(),
            })
        };
        match *self {
            OnlineBudget::Fixed(spe) => {
                if spe == 0 {
                    return bad("online budget: fixed spe must be >= 1");
                }
            }
            OnlineBudget::Adaptive {
                max_spe,
                min_spe,
                margin_ratio,
            } => {
                if min_spe == 0 {
                    return bad("online budget: min_spe must be >= 1");
                }
                if max_spe < min_spe {
                    return bad("online budget: max_spe must be >= min_spe");
                }
                if !margin_ratio.is_finite() {
                    return bad("online budget: margin_ratio must be finite");
                }
            }
        }
        Ok(())
    }
}

/// Hyper-parameters for offline training and online node embedding.
///
/// Defaults follow §VI-A of the paper where stated (embedding dimension 8,
/// dropout 0.1, `Pr(z) ∝ d^{3/4}`); the initial learning rate defaults to
/// 0.025 with the standard LINE linear decay, which converges to the same
/// embeddings as the paper's fixed small rate but in far fewer samples —
/// set `initial_lr: 0.001, lr_decay: false` to match the paper exactly.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EmbeddingConfig {
    /// Embedding dimensionality for both ego and context vectors.
    pub dim: usize,
    /// Training objective.
    pub objective: Objective,
    /// Number of passes; total SGD samples = `epochs × edge_count`.
    pub epochs: usize,
    /// Number of negative samples `K` per positive edge (Eq. (10)).
    pub negatives: usize,
    /// Initial SGD learning rate.
    pub initial_lr: f64,
    /// If `true`, the learning rate decays linearly to 1e-4 × initial.
    pub lr_decay: bool,
    /// Probability of dropping each gradient coordinate (the paper trains
    /// E-LINE with dropout 0.1 for regularisation).
    pub dropout: f64,
    /// Exponent of the negative-sampling distribution `Pr(z) ∝ d_z^e`.
    pub negative_exponent: f64,
    /// SGD samples used when embedding a *new* node online, per incident
    /// edge of the new node.
    pub online_samples_per_edge: usize,
    /// Optional override of the online refinement budget. `None` (the
    /// default, and what every pre-existing saved config deserialises
    /// to) keeps the historical behaviour:
    /// `Fixed(online_samples_per_edge)`.
    pub online_budget: Option<OnlineBudget>,
    /// Worker threads for offline training. `1` (the default) runs the
    /// exact serial trainer; `>= 2` switches [`crate::ElineTrainer::train`]
    /// to the lock-free Hogwild path, whose floating-point results are
    /// non-deterministic across runs (update interleaving) but whose
    /// converged quality matches the serial trainer. Online embedding of a
    /// single node is always serial — it touches two rows and finishes in
    /// microseconds.
    pub threads: usize,
}

impl Default for EmbeddingConfig {
    fn default() -> Self {
        EmbeddingConfig {
            dim: 8,
            objective: Objective::ELine,
            epochs: 60,
            negatives: 5,
            initial_lr: 0.025,
            lr_decay: true,
            dropout: 0.1,
            negative_exponent: 0.75,
            online_samples_per_edge: 200,
            online_budget: None,
            threads: 1,
        }
    }
}

impl EmbeddingConfig {
    /// Learning rate at sample `t` of `total`: linear decay to
    /// `1e-4 × initial` when [`EmbeddingConfig::lr_decay`] is set,
    /// constant otherwise. Shared by the offline trainer and the online
    /// serving path so both decay identically.
    #[inline]
    #[must_use]
    pub(crate) fn lr_at(&self, t: usize, total: usize) -> f32 {
        let lr0 = self.initial_lr as f32;
        if self.lr_decay {
            let frac = 1.0 - t as f32 / total as f32;
            lr0 * frac.max(1e-4)
        } else {
            lr0
        }
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`EmbedError::InvalidConfig`] if any field is out of range.
    pub fn validate(&self) -> Result<(), EmbedError> {
        let bad = |what: &str| {
            Err(EmbedError::InvalidConfig {
                what: what.to_owned(),
            })
        };
        if self.dim == 0 {
            return bad("dim must be >= 1");
        }
        if self.epochs == 0 {
            return bad("epochs must be >= 1");
        }
        if !(self.initial_lr > 0.0 && self.initial_lr.is_finite()) {
            return bad("initial_lr must be positive and finite");
        }
        if !(0.0..1.0).contains(&self.dropout) {
            return bad("dropout must lie in [0, 1)");
        }
        if !(self.negative_exponent >= 0.0 && self.negative_exponent.is_finite()) {
            return bad("negative_exponent must be non-negative");
        }
        if self.online_samples_per_edge == 0 {
            return bad("online_samples_per_edge must be >= 1");
        }
        if let Some(budget) = self.online_budget {
            budget.validate()?;
        }
        if self.threads == 0 {
            return bad("threads must be >= 1");
        }
        Ok(())
    }

    /// The effective online refinement budget:
    /// [`EmbeddingConfig::online_budget`] when set, otherwise the
    /// historical `Fixed(online_samples_per_edge)`.
    #[must_use]
    pub fn resolved_budget(&self) -> OnlineBudget {
        self.online_budget
            .unwrap_or(OnlineBudget::Fixed(self.online_samples_per_edge))
    }
}

/// Errors from embedding training.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum EmbedError {
    /// A configuration field was out of range.
    InvalidConfig {
        /// Human-readable description of the violated constraint.
        what: String,
    },
    /// The graph has no edges, so nothing can be trained.
    EmptyGraph,
    /// The node passed to online embedding has no edges into the graph
    /// (§V footnote 1: likely collected outside the building).
    IsolatedNode,
}

impl fmt::Display for EmbedError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EmbedError::InvalidConfig { what } => write!(f, "invalid embedding config: {what}"),
            EmbedError::EmptyGraph => write!(f, "cannot train embeddings on a graph with no edges"),
            EmbedError::IsolatedNode => {
                write!(
                    f,
                    "node has no edges into the graph (likely outside the building)"
                )
            }
        }
    }
}

impl std::error::Error for EmbedError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_paper() {
        let c = EmbeddingConfig::default();
        assert_eq!(c.dim, 8);
        assert_eq!(c.negatives, 5);
        assert_eq!(c.objective, Objective::ELine);
        assert!((c.dropout - 0.1).abs() < 1e-12);
        assert!((c.negative_exponent - 0.75).abs() < 1e-12);
        assert!(c.validate().is_ok());
    }

    #[test]
    fn validation_catches_bad_fields() {
        for (patch, _desc) in [
            (
                EmbeddingConfig {
                    dim: 0,
                    ..Default::default()
                },
                "dim",
            ),
            (
                EmbeddingConfig {
                    epochs: 0,
                    ..Default::default()
                },
                "epochs",
            ),
            (
                EmbeddingConfig {
                    initial_lr: 0.0,
                    ..Default::default()
                },
                "lr",
            ),
            (
                EmbeddingConfig {
                    initial_lr: f64::NAN,
                    ..Default::default()
                },
                "lr nan",
            ),
            (
                EmbeddingConfig {
                    dropout: 1.0,
                    ..Default::default()
                },
                "dropout",
            ),
            (
                EmbeddingConfig {
                    dropout: -0.1,
                    ..Default::default()
                },
                "dropout neg",
            ),
            (
                EmbeddingConfig {
                    negative_exponent: -1.0,
                    ..Default::default()
                },
                "exp",
            ),
            (
                EmbeddingConfig {
                    online_samples_per_edge: 0,
                    ..Default::default()
                },
                "online",
            ),
            (
                EmbeddingConfig {
                    threads: 0,
                    ..Default::default()
                },
                "threads",
            ),
        ] {
            assert!(patch.validate().is_err());
        }
    }

    #[test]
    fn online_budget_validation_and_resolution() {
        assert!(OnlineBudget::Fixed(40).validate().is_ok());
        assert!(OnlineBudget::Fixed(0).validate().is_err());
        let good = OnlineBudget::Adaptive {
            max_spe: 200,
            min_spe: 20,
            margin_ratio: 0.5,
        };
        assert!(good.validate().is_ok());
        assert_eq!(good.max_spe(), 200);
        for bad in [
            OnlineBudget::Adaptive {
                max_spe: 10,
                min_spe: 20,
                margin_ratio: 0.5,
            },
            OnlineBudget::Adaptive {
                max_spe: 200,
                min_spe: 0,
                margin_ratio: 0.5,
            },
            OnlineBudget::Adaptive {
                max_spe: 200,
                min_spe: 20,
                margin_ratio: f64::NAN,
            },
        ] {
            assert!(bad.validate().is_err());
        }
        let cfg = EmbeddingConfig {
            online_budget: Some(OnlineBudget::Fixed(0)),
            ..Default::default()
        };
        assert!(cfg.validate().is_err());
        assert_eq!(
            EmbeddingConfig::default().resolved_budget(),
            OnlineBudget::Fixed(200)
        );
    }

    #[test]
    fn objective_display() {
        assert_eq!(Objective::ELine.to_string(), "E-LINE");
        assert_eq!(Objective::LineSecond.to_string(), "LINE-2nd");
        assert_eq!(Objective::LineFirst.to_string(), "LINE-1st");
    }
}
