//! Offline training (§IV-B) and online node embedding (§V-A).

use crate::config::{EmbedError, EmbeddingConfig, Objective};
use crate::model::{EmbeddingModel, Space};
use crate::sgd::Sgd;
use grafics_graph::{AliasTable, BipartiteGraph, NegativeSampler, NodeIdx};
use rand::Rng;

/// Trains LINE / E-LINE embeddings over a [`BipartiteGraph`].
///
/// The trainer samples edges proportionally to their weight `c_ij` and
/// negatives proportionally to `d_z^{3/4}` (Eq. (10)). Each sampled
/// *undirected* edge is processed in both directions, matching the paper's
/// symmetric objective over `i ∈ M ∪ V, j ∈ N(i)`.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct ElineTrainer {
    config: EmbeddingConfig,
}

impl ElineTrainer {
    /// Creates a trainer with the given hyper-parameters.
    #[must_use]
    pub fn new(config: EmbeddingConfig) -> Self {
        ElineTrainer { config }
    }

    /// The trainer's configuration.
    #[must_use]
    pub fn config(&self) -> &EmbeddingConfig {
        &self.config
    }

    /// Changes the worker-thread budget for subsequent
    /// [`ElineTrainer::train`] calls (clamped to at least 1): `1` selects
    /// the exact serial trainer, `>= 2` the Hogwild path. Lets a
    /// deployment re-thread a deserialised model for the hardware it is
    /// served on.
    pub fn set_threads(&mut self, threads: usize) {
        self.config.threads = threads.max(1);
    }

    /// Learns embeddings for every node of `graph` from scratch.
    ///
    /// With [`EmbeddingConfig::threads`] `== 1` (the default) this runs the
    /// exact serial trainer; with `threads >= 2` it runs the lock-free
    /// Hogwild trainer (see [`crate`] docs), which reaches the same
    /// converged quality but is not bit-reproducible across runs because
    /// worker updates interleave nondeterministically.
    ///
    /// # Errors
    ///
    /// - [`EmbedError::InvalidConfig`] if the configuration is out of range.
    /// - [`EmbedError::EmptyGraph`] if the graph has no edges.
    pub fn train<R: Rng + ?Sized>(
        &self,
        graph: &BipartiteGraph,
        rng: &mut R,
    ) -> Result<EmbeddingModel, EmbedError> {
        if self.config.threads > 1 {
            self.config.validate()?;
            crate::parallel::train_hogwild(&self.config, graph, rng)
        } else {
            self.train_with_stats(graph, rng).map(|(model, _)| model)
        }
    }

    /// Like [`ElineTrainer::train`], additionally recording a convergence
    /// trace: ten checkpoints of the estimated positive-pair loss
    /// `−log σ(u'_j · u_i)` over a fixed probe set of edges. Useful for
    /// tuning `epochs` on a new corpus.
    ///
    /// Always runs the *serial* trainer regardless of
    /// [`EmbeddingConfig::threads`]: the probe trace is only meaningful
    /// over a deterministic sample order.
    ///
    /// # Errors
    ///
    /// Same as [`ElineTrainer::train`].
    pub fn train_with_stats<R: Rng + ?Sized>(
        &self,
        graph: &BipartiteGraph,
        rng: &mut R,
    ) -> Result<(EmbeddingModel, TrainingStats), EmbedError> {
        self.config.validate()?;
        let (edges, weights) = graph.edge_list();
        let edge_alias = AliasTable::new(&weights).ok_or(EmbedError::EmptyGraph)?;
        let neg_alias =
            AliasTable::new(&graph.negative_sampling_weights(self.config.negative_exponent))
                .ok_or(EmbedError::EmptyGraph)?;

        let cfg = &self.config;
        let mut model = EmbeddingModel::init(graph.node_capacity(), cfg.dim, rng);
        let mut sgd = Sgd::new(cfg.dim);
        let mut negatives = Vec::with_capacity(cfg.negatives);

        // Fixed probe set for the convergence trace: edges plus frozen
        // negatives, so the traced quantity is an unbiased estimate of the
        // Eq. (10) objective on a constant mini-corpus.
        let probe: Vec<(usize, Vec<NodeIdx>)> = (0..edges.len().min(256))
            .map(|_| {
                let e = edge_alias.sample(rng);
                let mut negs = Vec::with_capacity(cfg.negatives);
                sample_negatives(
                    &neg_alias,
                    edges[e].record,
                    edges[e].mac,
                    cfg.negatives,
                    &mut negs,
                    rng,
                );
                (e, negs)
            })
            .collect();
        let mut stats = TrainingStats {
            checkpoints: Vec::with_capacity(11),
        };
        let total = cfg.epochs.saturating_mul(edges.len()).max(1);
        let checkpoint_every = (total / 10).max(1);
        for t in 0..total {
            if t % checkpoint_every == 0 {
                stats
                    .checkpoints
                    .push((t, probe_loss(&model, &edges, &probe)));
            }
            let lr = self.lr_at(t, total);
            let e = edges[edge_alias.sample(rng)];
            for (i, j) in [(e.record, e.mac), (e.mac, e.record)] {
                sample_negatives(&neg_alias, i, j, cfg.negatives, &mut negatives, rng);
                match cfg.objective {
                    Objective::LineFirst => {
                        sgd.step(
                            &mut model,
                            (Space::Ego, i),
                            (Space::Ego, j),
                            Space::Ego,
                            &negatives,
                            lr,
                            true,
                            true,
                            cfg.dropout as f32,
                            rng,
                        );
                    }
                    Objective::LineSecond => {
                        sgd.step(
                            &mut model,
                            (Space::Ego, i),
                            (Space::Context, j),
                            Space::Context,
                            &negatives,
                            lr,
                            true,
                            true,
                            cfg.dropout as f32,
                            rng,
                        );
                    }
                    Objective::LineBoth => {
                        // First-order term on the ego space …
                        sgd.step(
                            &mut model,
                            (Space::Ego, i),
                            (Space::Ego, j),
                            Space::Ego,
                            &negatives,
                            lr,
                            true,
                            true,
                            cfg.dropout as f32,
                            rng,
                        );
                        // … plus the second-order term, jointly.
                        sgd.step(
                            &mut model,
                            (Space::Ego, i),
                            (Space::Context, j),
                            Space::Context,
                            &negatives,
                            lr,
                            true,
                            true,
                            cfg.dropout as f32,
                            rng,
                        );
                    }
                    Objective::ELine => {
                        // Second-order term: Pr(u'_j | u_i)  (Eq. (5)).
                        sgd.step(
                            &mut model,
                            (Space::Ego, i),
                            (Space::Context, j),
                            Space::Context,
                            &negatives,
                            lr,
                            true,
                            true,
                            cfg.dropout as f32,
                            rng,
                        );
                        // Mirrored term: Pr(u_j | u'_i)  (Eq. (8)).
                        sgd.step(
                            &mut model,
                            (Space::Context, i),
                            (Space::Ego, j),
                            Space::Ego,
                            &negatives,
                            lr,
                            true,
                            true,
                            cfg.dropout as f32,
                            rng,
                        );
                    }
                }
            }
        }
        debug_assert!(model.all_finite());
        stats
            .checkpoints
            .push((total, probe_loss(&model, &edges, &probe)));
        Ok((model, stats))
    }

    /// Embeds one *new* node (typically a freshly inserted record, §V-A)
    /// while every other node's embeddings stay frozen, which keeps online
    /// inference cheap and deterministic with respect to the trained model.
    ///
    /// The caller must already have inserted the node into `graph`;
    /// `model` is grown to the graph's current capacity automatically.
    ///
    /// This convenience form builds a fresh [`NegativeSampler`] over the
    /// whole graph (O(n)) per call. Serving-path callers should hold an
    /// incrementally synced sampler and reusable [`crate::OnlineScratch`]
    /// and call [`ElineTrainer::embed_new_node_with`] instead, which
    /// costs O(deg · log n) per query.
    ///
    /// # Errors
    ///
    /// - [`EmbedError::InvalidConfig`] if the configuration is out of range.
    /// - [`EmbedError::IsolatedNode`] if the node has no incident edges —
    ///   per §V footnote 1, such samples were likely collected outside the
    ///   building and should be discarded by the caller.
    pub fn embed_new_node<R: Rng + ?Sized>(
        &self,
        graph: &BipartiteGraph,
        model: &mut EmbeddingModel,
        node: NodeIdx,
        rng: &mut R,
    ) -> Result<(), EmbedError> {
        let neg = NegativeSampler::from_graph(graph, self.config.negative_exponent);
        let mut scratch = crate::OnlineScratch::new();
        self.embed_new_node_with(graph, model, node, &neg, &mut scratch, rng)
    }

    #[inline]
    fn lr_at(&self, t: usize, total: usize) -> f32 {
        self.config.lr_at(t, total)
    }
}

/// A convergence trace: `(samples processed, probe loss)` pairs.
///
/// The probe loss is the mean `−log σ(u'_mac · u_record)` over a fixed
/// random set of edges — the positive part of Eq. (10). It should fall
/// steeply early in training and flatten once the embeddings converge.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct TrainingStats {
    /// `(samples, loss)` checkpoints, in training order.
    pub checkpoints: Vec<(usize, f64)>,
}

impl TrainingStats {
    /// Loss at the first checkpoint (random init).
    #[must_use]
    pub fn initial_loss(&self) -> f64 {
        self.checkpoints.first().map_or(f64::NAN, |&(_, l)| l)
    }

    /// Loss at the last checkpoint (end of training).
    #[must_use]
    pub fn final_loss(&self) -> f64 {
        self.checkpoints.last().map_or(f64::NAN, |&(_, l)| l)
    }
}

/// Mean Eq.-(10)-style objective estimate over the probe set:
/// `−log σ(u'_mac · u_record) − Σ_z log σ(−u'_z · u_record)` with the
/// probe's frozen negatives `z`.
fn probe_loss(
    model: &EmbeddingModel,
    edges: &[grafics_graph::EdgeRef],
    probe: &[(usize, Vec<NodeIdx>)],
) -> f64 {
    if probe.is_empty() {
        return f64::NAN;
    }
    let dot = |a: &[f32], b: &[f32]| -> f32 { a.iter().zip(b).map(|(&x, &y)| x * y).sum() };
    let nll = |x: f32| -> f64 { -f64::from(crate::sgd::sigmoid(x)).max(1e-9).ln() };
    let mut sum = 0.0;
    for (idx, negs) in probe {
        let e = edges[*idx];
        sum += nll(dot(model.ego(e.record), model.context(e.mac)));
        for &z in negs {
            sum += nll(-dot(model.ego(e.record), model.context(z)));
        }
    }
    sum / probe.len() as f64
}

/// Draws `k` negative nodes, rejecting the endpoints of the positive pair.
fn sample_negatives<R: Rng + ?Sized>(
    alias: &AliasTable,
    i: NodeIdx,
    j: NodeIdx,
    k: usize,
    out: &mut Vec<NodeIdx>,
    rng: &mut R,
) {
    crate::sgd::fill_rejecting(k, out, || {
        let z = NodeIdx(alias.sample(rng) as u32);
        (z != i && z != j).then_some(z)
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use grafics_graph::WeightFunction;
    use grafics_types::{MacAddr, Reading, Rssi, SignalRecord};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn rec(macs: &[u64]) -> SignalRecord {
        SignalRecord::new(
            macs.iter()
                .map(|&m| Reading::new(MacAddr::from_u64(m), Rssi::new(-60.0).unwrap()))
                .collect(),
        )
        .unwrap()
    }

    /// Two "floors": floor A records use MACs 0..10, floor B records use
    /// MACs 100..110. Returns (graph, floor-A record nodes, floor-B record
    /// nodes). Records within a floor share MACs only transitively.
    fn two_floor_graph(rng: &mut ChaCha8Rng) -> (BipartiteGraph, Vec<NodeIdx>, Vec<NodeIdx>) {
        use rand::seq::SliceRandom;
        let mut g = BipartiteGraph::new(WeightFunction::default());
        let mut a = Vec::new();
        let mut b = Vec::new();
        let pool_a: Vec<u64> = (0..10).collect();
        let pool_b: Vec<u64> = (100..110).collect();
        for k in 0..20 {
            let pool = if k % 2 == 0 { &pool_a } else { &pool_b };
            let macs: Vec<u64> = pool.choose_multiple(rng, 4).copied().collect();
            let rid = g.add_record(&rec(&macs));
            let node = g.record_node(rid).unwrap();
            if k % 2 == 0 {
                a.push(node);
            } else {
                b.push(node);
            }
        }
        (g, a, b)
    }

    fn mean_dist(model: &EmbeddingModel, xs: &[NodeIdx], ys: &[NodeIdx]) -> f64 {
        let mut sum = 0.0;
        let mut n = 0usize;
        for &x in xs {
            for &y in ys {
                if x != y {
                    sum += model.ego_distance(x, y);
                    n += 1;
                }
            }
        }
        sum / n as f64
    }

    #[test]
    fn eline_separates_communities() {
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let (g, a, b) = two_floor_graph(&mut rng);
        let cfg = EmbeddingConfig {
            dim: 8,
            epochs: 80,
            ..Default::default()
        };
        let model = ElineTrainer::new(cfg).train(&g, &mut rng).unwrap();
        assert!(model.all_finite());
        let intra = (mean_dist(&model, &a, &a) + mean_dist(&model, &b, &b)) / 2.0;
        let inter = mean_dist(&model, &a, &b);
        assert!(
            inter > 1.5 * intra,
            "inter-floor distance {inter} should exceed 1.5x intra {intra}"
        );
    }

    #[test]
    fn line_second_also_separates_but_runs() {
        let mut rng = ChaCha8Rng::seed_from_u64(8);
        let (g, a, b) = two_floor_graph(&mut rng);
        let cfg = EmbeddingConfig {
            dim: 8,
            epochs: 80,
            objective: Objective::LineSecond,
            ..Default::default()
        };
        let model = ElineTrainer::new(cfg).train(&g, &mut rng).unwrap();
        let intra = (mean_dist(&model, &a, &a) + mean_dist(&model, &b, &b)) / 2.0;
        let inter = mean_dist(&model, &a, &b);
        assert!(
            inter > intra,
            "LINE-2nd should still separate: inter {inter} vs intra {intra}"
        );
    }

    #[test]
    fn line_both_trains_and_supports_online() {
        let mut rng = ChaCha8Rng::seed_from_u64(21);
        let (mut g, a, _) = two_floor_graph(&mut rng);
        let cfg = EmbeddingConfig {
            dim: 8,
            epochs: 30,
            objective: Objective::LineBoth,
            ..Default::default()
        };
        let trainer = ElineTrainer::new(cfg);
        let mut model = trainer.train(&g, &mut rng).unwrap();
        assert!(model.all_finite());
        let rid = g.add_record(&rec(&[0, 1, 2, 3]));
        let node = g.record_node(rid).unwrap();
        trainer
            .embed_new_node(&g, &mut model, node, &mut rng)
            .unwrap();
        assert!(model.all_finite());
        let _ = a;
    }

    #[test]
    fn line_first_trains_without_error() {
        let mut rng = ChaCha8Rng::seed_from_u64(9);
        let (g, _, _) = two_floor_graph(&mut rng);
        let cfg = EmbeddingConfig {
            dim: 4,
            epochs: 10,
            objective: Objective::LineFirst,
            ..Default::default()
        };
        let model = ElineTrainer::new(cfg).train(&g, &mut rng).unwrap();
        assert!(model.all_finite());
    }

    #[test]
    fn empty_graph_is_an_error() {
        let g = BipartiteGraph::new(WeightFunction::default());
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let err = ElineTrainer::new(EmbeddingConfig::default()).train(&g, &mut rng);
        assert_eq!(err.unwrap_err(), EmbedError::EmptyGraph);
    }

    #[test]
    fn invalid_config_is_an_error() {
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let (g, _, _) = two_floor_graph(&mut rng);
        let cfg = EmbeddingConfig {
            dim: 0,
            ..Default::default()
        };
        assert!(matches!(
            ElineTrainer::new(cfg).train(&g, &mut rng),
            Err(EmbedError::InvalidConfig { .. })
        ));
    }

    #[test]
    fn online_embedding_freezes_existing_rows() {
        let mut rng = ChaCha8Rng::seed_from_u64(10);
        let (mut g, a, _) = two_floor_graph(&mut rng);
        let trainer = ElineTrainer::new(EmbeddingConfig {
            epochs: 40,
            ..Default::default()
        });
        let mut model = trainer.train(&g, &mut rng).unwrap();
        let frozen_before: Vec<f32> = model.ego(a[0]).to_vec();

        let rid = g.add_record(&rec(&[0, 1, 2, 3]));
        let node = g.record_node(rid).unwrap();
        trainer
            .embed_new_node(&g, &mut model, node, &mut rng)
            .unwrap();
        assert_eq!(
            model.ego(a[0]),
            frozen_before.as_slice(),
            "existing rows must not move"
        );
        assert!(model.all_finite());
    }

    #[test]
    fn online_embedding_lands_near_own_floor() {
        let mut rng = ChaCha8Rng::seed_from_u64(11);
        let (mut g, a, b) = two_floor_graph(&mut rng);
        let trainer = ElineTrainer::new(EmbeddingConfig {
            epochs: 80,
            ..Default::default()
        });
        let mut model = trainer.train(&g, &mut rng).unwrap();

        // New record from floor A's MAC pool.
        let rid = g.add_record(&rec(&[0, 2, 4, 6]));
        let node = g.record_node(rid).unwrap();
        trainer
            .embed_new_node(&g, &mut model, node, &mut rng)
            .unwrap();

        let to_a = mean_dist(&model, &[node], &a);
        let to_b = mean_dist(&model, &[node], &b);
        assert!(
            to_a < to_b,
            "new floor-A record is nearer A ({to_a}) than B ({to_b})"
        );
    }

    #[test]
    fn isolated_node_rejected_online() {
        let mut rng = ChaCha8Rng::seed_from_u64(12);
        let (mut g, _, _) = two_floor_graph(&mut rng);
        let trainer = ElineTrainer::new(EmbeddingConfig::default());
        let mut model = trainer.train(&g, &mut rng).unwrap();
        // A record whose only MAC is brand new has edges only to that new
        // MAC; removing the MAC isolates the record node.
        let rid = g.add_record(&rec(&[999]));
        g.remove_mac(MacAddr::from_u64(999)).unwrap();
        let node = g.record_node(rid).unwrap();
        let err = trainer.embed_new_node(&g, &mut model, node, &mut rng);
        assert_eq!(err.unwrap_err(), EmbedError::IsolatedNode);
    }

    #[test]
    fn training_stats_show_convergence() {
        let mut rng = ChaCha8Rng::seed_from_u64(33);
        let (g, _, _) = two_floor_graph(&mut rng);
        let cfg = EmbeddingConfig {
            epochs: 80,
            ..Default::default()
        };
        let (_, stats) = ElineTrainer::new(cfg)
            .train_with_stats(&g, &mut rng)
            .unwrap();
        assert!(stats.checkpoints.len() >= 10);
        assert!(
            stats.final_loss() < stats.initial_loss(),
            "loss should fall: {} -> {}",
            stats.initial_loss(),
            stats.final_loss()
        );
        // Checkpoints in sample order.
        assert!(stats.checkpoints.windows(2).all(|w| w[0].0 < w[1].0));
        assert!(stats.final_loss().is_finite());
    }

    #[test]
    fn training_is_deterministic_per_seed() {
        let mut rng1 = ChaCha8Rng::seed_from_u64(42);
        let (g1, a, _) = two_floor_graph(&mut rng1);
        let cfg = EmbeddingConfig {
            epochs: 10,
            ..Default::default()
        };
        let m1 = ElineTrainer::new(cfg).train(&g1, &mut rng1).unwrap();

        let mut rng2 = ChaCha8Rng::seed_from_u64(42);
        let (g2, _, _) = two_floor_graph(&mut rng2);
        let m2 = ElineTrainer::new(cfg).train(&g2, &mut rng2).unwrap();
        assert_eq!(m1.ego(a[0]), m2.ego(a[0]));
    }
}
