//! LINE and E-LINE graph embedding (§IV-B of the GRAFICS paper).
//!
//! Given the weighted bipartite record/MAC graph, this crate learns an
//! *ego* embedding `u_i` and a *context* embedding `u'_i` for every node by
//! stochastic gradient descent over sampled edges with negative sampling
//! (Eq. (10) of the paper).
//!
//! Three objectives are provided (see [`Objective`]):
//!
//! - **LINE, first-order** — `log σ(u_j · u_i)`: connected nodes embed
//!   closely. Of little use on a bipartite graph (edges only cross sides),
//!   included as a baseline.
//! - **LINE, second-order** — `log σ(u'_j · u_i)`: nodes sharing one-hop
//!   neighbours embed closely.
//! - **E-LINE** — the paper's contribution: the second-order term *plus*
//!   its mirror `log σ(u_j · u'_i)`, which propagates similarity through
//!   multi-hop local neighbourhoods. Two records on the same floor that
//!   share few MACs directly, but whose MACs co-occur in other records,
//!   still end up close in the ego space.
//!
//! Online inference (§V-A) is supported by [`ElineTrainer::embed_new_node`],
//! which optimises only the new node's two vectors while every previously
//! learned embedding stays frozen.
//!
//! # Parallel training
//!
//! Setting [`EmbeddingConfig::threads`] `>= 2` switches
//! [`ElineTrainer::train`] to a lock-free *Hogwild* trainer: workers share
//! the embedding matrices through relaxed atomic loads/stores and update
//! them without synchronisation, each drawing edges and negatives from its
//! own deterministically seeded `ChaCha8Rng` via batched single-word alias
//! sampling, with a shared sigmoid lookup table on the hot path. Row
//! collisions are rare for realistic graphs, so staleness behaves as extra
//! SGD noise; converged quality matches the serial trainer, but results
//! are not bit-reproducible across runs. `threads == 1` preserves the
//! serial trainer exactly.
//!
//! # Examples
//!
//! ```
//! use grafics_embed::{ElineTrainer, EmbeddingConfig, Objective};
//! use grafics_graph::{BipartiteGraph, WeightFunction};
//! use grafics_types::{MacAddr, Reading, Rssi, SignalRecord};
//! use rand::SeedableRng;
//!
//! let mut g = BipartiteGraph::new(WeightFunction::default());
//! for macs in [[1u64, 2], [2, 3], [1, 3]] {
//!     let rec = SignalRecord::new(macs.iter().map(|&m| {
//!         Reading::new(MacAddr::from_u64(m), Rssi::new(-60.0).unwrap())
//!     }).collect()).unwrap();
//!     g.add_record(&rec);
//! }
//! let cfg = EmbeddingConfig { dim: 4, epochs: 20, ..EmbeddingConfig::default() };
//! let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(1);
//! let model = ElineTrainer::new(cfg).train(&g, &mut rng).unwrap();
//! assert_eq!(model.dim(), 4);
//! assert_eq!(model.rows(), g.node_capacity());
//! ```

// `deny` rather than `forbid`: the Hogwild trainer's `SharedModel` opts
// back in for one documented pointer cast (see `parallel.rs`); everything
// else in the crate stays unsafe-free.
#![deny(unsafe_code)]
#![warn(missing_docs)]

mod config;
mod model;
mod online;
mod parallel;
mod sgd;
mod trainer;

pub use config::{EmbedError, EmbeddingConfig, Objective, OnlineBudget};
pub use model::EmbeddingModel;
pub use online::{OnlineScratch, RefineOutcome};
pub use trainer::{ElineTrainer, TrainingStats};

// The serving path's negative distribution lives with the graph; re-export
// it so online callers need only this crate.
pub use grafics_graph::NegativeSampler;
