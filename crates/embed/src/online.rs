//! The online serving path (§V-A): embedding one new record against a
//! frozen model, allocation-free and shareable.
//!
//! Both entry points run the *same* SGD routine, so at equal RNG seeds and
//! equal [`NegativeSampler`] state they produce bit-identical embeddings:
//!
//! - [`ElineTrainer::embed_new_node_with`] — the graph-extending path used
//!   by `Grafics::infer`: the new node's rows live in the (grown)
//!   [`EmbeddingModel`] and stay there.
//! - [`ElineTrainer::embed_query`] — the read-only path used by
//!   `GraficsServer`: the new node's rows (and the fresh rows of any
//!   never-seen MAC) live in the caller's [`OnlineScratch`]; the shared
//!   model, graph, and sampler are only read, so one model can serve many
//!   threads concurrently.
//!
//! Per query the routine touches O(deg) neighbor rows and draws negatives
//! in O(log n) from the incrementally maintained [`NegativeSampler`] —
//! replacing the historical per-query O(n) rebuild (`d_z^{3/4}` sweep plus
//! alias-table construction) that dominated serving cost on large graphs.
//! The hot loop reuses the scratch buffers across calls and performs no
//! allocation, and uses the same sigmoid lookup table and unrolled dot
//! kernels as the Hogwild offline trainer.

use crate::config::{EmbedError, EmbeddingConfig, Objective, OnlineBudget};
use crate::model::{EmbeddingModel, Space};
use crate::sgd::{
    axpy_lanes, dot_fixed, dot_lanes, fast_sigmoid, sigmoid_table, SIGMOID_TABLE_SIZE,
};
use grafics_graph::{BipartiteGraph, NegativeSampler, NodeIdx};
use grafics_types::kernels::axpy_fixed_f32;
use grafics_types::SignalRecord;
use rand::Rng;

use crate::trainer::ElineTrainer;

/// Reusable buffers for the online embedding hot loop. Create one per
/// serving thread (or one per [`super::ElineTrainer`] call site) and pass
/// it to every call: after warm-up, a query performs no heap allocation.
#[derive(Debug, Clone, Default)]
pub struct OnlineScratch {
    /// Neighbor indices of the query node (graph nodes, or virtual
    /// indices past the graph's capacity for never-seen MACs).
    nbrs: Vec<u32>,
    /// Cumulative edge weights parallel to `nbrs`.
    cum: Vec<f64>,
    /// Negative draws of the current step.
    negatives: Vec<u32>,
    /// Source-gradient accumulator.
    grad: Vec<f32>,
    /// Freshly initialised ego rows: the query node's row, then one row
    /// per never-seen MAC (read-only serving path).
    rows_ego: Vec<f32>,
    /// Context counterpart of `rows_ego`.
    rows_context: Vec<f32>,
    /// The finished query embedding as `f64`, ready for the cluster model.
    query: Vec<f64>,
}

impl OnlineScratch {
    /// Creates empty scratch buffers.
    #[must_use]
    pub fn new() -> Self {
        OnlineScratch::default()
    }

    /// The ego embedding produced by the last
    /// [`ElineTrainer::embed_query`] call, as `f64`.
    #[must_use]
    pub fn query(&self) -> &[f64] {
        &self.query
    }
}

/// What one budgeted online refinement actually spent — returned by
/// `ElineTrainer::embed_query_budgeted` so serving tiers can report
/// early-stop rates and total refinement work on `/metrics`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RefineOutcome {
    /// SGD samples executed.
    pub samples: usize,
    /// The ceiling the budget allowed (`max_spe × deg`).
    pub budget: usize,
}

impl RefineOutcome {
    /// `true` if the refinement stopped before exhausting its budget.
    #[must_use]
    pub fn early_stop(&self) -> bool {
        self.samples < self.budget
    }
}

/// The adaptive budget's early-stop probe: `decisive` is called with the
/// current (partially refined) ego row every `chunk` samples — strictly
/// inside the loop, never at sample 0 or after the last sample — and a
/// `true` return ends the refinement. The probe must not consume RNG.
struct Probe<'p> {
    chunk: usize,
    decisive: &'p mut dyn FnMut(&[f32]) -> bool,
}

/// Read-only row storage for one online embedding: the frozen matrices
/// (row indices `< node`) plus the fresh rows of MACs first seen with the
/// query (indices `> node`). The query node's own rows are held separately
/// and mutably by the caller.
struct FrozenRows<'a> {
    dim: usize,
    node: usize,
    head_ego: &'a [f32],
    head_context: &'a [f32],
    tail_ego: &'a [f32],
    tail_context: &'a [f32],
}

impl FrozenRows<'_> {
    #[inline(always)]
    fn row(&self, space: Space, idx: usize) -> &[f32] {
        let (head, tail) = match space {
            Space::Ego => (self.head_ego, self.tail_ego),
            Space::Context => (self.head_context, self.tail_context),
        };
        let start = if idx < self.node {
            return &head[idx * self.dim..(idx + 1) * self.dim];
        } else {
            (idx - self.node - 1) * self.dim
        };
        &tail[start..start + self.dim]
    }
}

/// Draws `k` negatives from the incremental sampler (one 64-bit RNG draw
/// each), rejecting the query node and the current positive `j` — the
/// shared rejection policy of `sgd::fill_rejecting`. An exhausted sampler
/// (no positive mass — impossible for an anchored query, whose known
/// MACs all carry degree) yields no negatives and consumes no RNG.
#[inline]
fn draw_negatives<R: Rng + ?Sized>(
    neg: &NegativeSampler,
    node: usize,
    j: usize,
    k: usize,
    out: &mut Vec<u32>,
    rng: &mut R,
) {
    crate::sgd::fill_rejecting(k, out, || {
        let z = neg.sample(rng)?;
        (z.index() != node && z.index() != j).then_some(z.0)
    });
}

/// Dot product monomorphised over the embedding dimension; `DIM == 0`
/// selects the lane-blocked runtime-length kernel (bit-identical to the
/// fixed one at equal lengths — the branch is a compile-time constant
/// and folds away), so `d > 16` serves on the same 4-accumulator FMA
/// scheme as the paper's default dimensions.
#[inline(always)]
fn dot_k<const DIM: usize>(a: &[f32], b: &[f32]) -> f32 {
    if DIM == 0 {
        dot_lanes(a, b)
    } else {
        let a: &[f32; DIM] = a.try_into().expect("row length equals DIM");
        let b: &[f32; DIM] = b.try_into().expect("row length equals DIM");
        dot_fixed::<DIM>(a, b)
    }
}

/// `acc += g * v`, monomorphised like [`dot_k`]; both forms emit fused
/// multiply-adds, the fixed one with no bounds checks.
#[inline(always)]
fn axpy_k<const DIM: usize>(acc: &mut [f32], g: f32, v: &[f32]) {
    if DIM == 0 {
        axpy_lanes(acc, g, v);
    } else {
        let acc: &mut [f32; DIM] = acc.try_into().expect("row length equals DIM");
        let v: &[f32; DIM] = v.try_into().expect("row length equals DIM");
        axpy_fixed_f32::<DIM>(acc, g, v);
    }
}

/// One positive-plus-negatives step updating only `src` (a row of the
/// query node): the `update_targets = false` specialisation of the serial
/// trainer's SGD step, on the fast kernels.
#[inline]
#[allow(clippy::too_many_arguments)]
fn pos_neg_step<const DIM: usize>(
    table: &[f32; SIGMOID_TABLE_SIZE],
    frozen: &FrozenRows<'_>,
    src: &mut [f32],
    tgt_row: &[f32],
    neg_space: Space,
    negatives: &[u32],
    lr: f32,
    grad: &mut [f32],
) {
    grad.fill(0.0);
    let g = lr * (1.0 - fast_sigmoid(table, dot_k::<DIM>(src, tgt_row)));
    axpy_k::<DIM>(grad, g, tgt_row);
    for &z in negatives {
        let zrow = frozen.row(neg_space, z as usize);
        let g = lr * (0.0 - fast_sigmoid(table, dot_k::<DIM>(src, zrow)));
        axpy_k::<DIM>(grad, g, zrow);
    }
    axpy_k::<DIM>(src, 1.0, grad);
}

/// A positive-only pull of `src` towards a frozen row — the online
/// "node as target" update (`update_target_only` in the serial trainer).
#[inline]
fn pos_step<const DIM: usize>(
    table: &[f32; SIGMOID_TABLE_SIZE],
    src: &mut [f32],
    tgt_row: &[f32],
    lr: f32,
) {
    let g = lr * (1.0 - fast_sigmoid(table, dot_k::<DIM>(src, tgt_row)));
    axpy_k::<DIM>(src, g, tgt_row);
}

/// Dispatches the online SGD loop to a kernel monomorphised for the
/// common embedding dimensions (the paper's default is 8); other
/// dimensions take the dynamic-length path. `spe` is the
/// samples-per-edge ceiling; a [`Probe`] can end the loop early.
/// Returns the number of samples executed.
#[allow(clippy::too_many_arguments)]
fn run_online_sgd<R: Rng + ?Sized>(
    cfg: &EmbeddingConfig,
    spe: usize,
    probe: Option<Probe<'_>>,
    frozen: &FrozenRows<'_>,
    node_ego: &mut [f32],
    node_context: &mut [f32],
    nbrs: &[u32],
    cum: &[f64],
    neg: &NegativeSampler,
    negatives: &mut Vec<u32>,
    grad: &mut Vec<f32>,
    rng: &mut R,
) -> usize {
    match cfg.dim {
        4 => run_online_sgd_k::<4, R>(
            cfg,
            spe,
            probe,
            frozen,
            node_ego,
            node_context,
            nbrs,
            cum,
            neg,
            negatives,
            grad,
            rng,
        ),
        8 => run_online_sgd_k::<8, R>(
            cfg,
            spe,
            probe,
            frozen,
            node_ego,
            node_context,
            nbrs,
            cum,
            neg,
            negatives,
            grad,
            rng,
        ),
        16 => run_online_sgd_k::<16, R>(
            cfg,
            spe,
            probe,
            frozen,
            node_ego,
            node_context,
            nbrs,
            cum,
            neg,
            negatives,
            grad,
            rng,
        ),
        _ => run_online_sgd_k::<0, R>(
            cfg,
            spe,
            probe,
            frozen,
            node_ego,
            node_context,
            nbrs,
            cum,
            neg,
            negatives,
            grad,
            rng,
        ),
    }
}

/// The shared online SGD loop. `nbrs`/`cum` list the query's neighbors
/// with cumulative weights; `node_ego`/`node_context` are the only rows
/// written. The learning-rate schedule always spans the full
/// `spe × deg` budget, so an early-stopped refinement is a strict
/// prefix — bit-identical as far as it ran — of the never-stopped one,
/// and a probe that is never decisive changes nothing at all.
#[allow(clippy::too_many_arguments)]
fn run_online_sgd_k<const DIM: usize, R: Rng + ?Sized>(
    cfg: &EmbeddingConfig,
    spe: usize,
    mut probe: Option<Probe<'_>>,
    frozen: &FrozenRows<'_>,
    node_ego: &mut [f32],
    node_context: &mut [f32],
    nbrs: &[u32],
    cum: &[f64],
    neg: &NegativeSampler,
    negatives: &mut Vec<u32>,
    grad: &mut Vec<f32>,
    rng: &mut R,
) -> usize {
    let table = sigmoid_table();
    grad.resize(cfg.dim, 0.0);
    let total = spe * nbrs.len();
    let total_weight = *cum.last().expect("at least one neighbor");
    for t in 0..total {
        if let Some(p) = probe.as_mut() {
            if t > 0 && t % p.chunk == 0 && (p.decisive)(node_ego) {
                // Early stop: the RNG draws of the skipped samples are
                // *not* burned, so the stream position depends on where
                // the probe fired (read-only queries own their stream;
                // the absorb path never probes).
                return t;
            }
        }
        let lr = cfg.lr_at(t, total);
        // Weighted neighbor pick: one uniform draw, binary search over the
        // cumulative weights (O(log deg), allocation-free).
        let u = rng.gen::<f64>() * total_weight;
        let pick = cum.partition_point(|&c| c <= u).min(nbrs.len() - 1);
        let j = nbrs[pick] as usize;
        draw_negatives(neg, frozen.node, j, cfg.negatives, negatives, rng);

        // Direction node → j: only the node's source vector moves.
        // Direction j → node: only the node's target vector moves.
        match cfg.objective {
            Objective::LineFirst => {
                pos_neg_step::<DIM>(
                    table,
                    frozen,
                    node_ego,
                    frozen.row(Space::Ego, j),
                    Space::Ego,
                    negatives,
                    lr,
                    grad,
                );
            }
            Objective::LineSecond => {
                pos_neg_step::<DIM>(
                    table,
                    frozen,
                    node_ego,
                    frozen.row(Space::Context, j),
                    Space::Context,
                    negatives,
                    lr,
                    grad,
                );
                pos_step::<DIM>(table, node_context, frozen.row(Space::Ego, j), lr);
            }
            Objective::LineBoth => {
                pos_neg_step::<DIM>(
                    table,
                    frozen,
                    node_ego,
                    frozen.row(Space::Ego, j),
                    Space::Ego,
                    negatives,
                    lr,
                    grad,
                );
                pos_neg_step::<DIM>(
                    table,
                    frozen,
                    node_ego,
                    frozen.row(Space::Context, j),
                    Space::Context,
                    negatives,
                    lr,
                    grad,
                );
                pos_step::<DIM>(table, node_context, frozen.row(Space::Ego, j), lr);
            }
            Objective::ELine => {
                // Node as source of both objective terms (Eqs. (5), (8)).
                pos_neg_step::<DIM>(
                    table,
                    frozen,
                    node_ego,
                    frozen.row(Space::Context, j),
                    Space::Context,
                    negatives,
                    lr,
                    grad,
                );
                pos_neg_step::<DIM>(
                    table,
                    frozen,
                    node_context,
                    frozen.row(Space::Ego, j),
                    Space::Ego,
                    negatives,
                    lr,
                    grad,
                );
                // Node as target: u'_node from frozen u_j, u_node from
                // frozen u'_j.
                pos_step::<DIM>(table, node_context, frozen.row(Space::Ego, j), lr);
                pos_step::<DIM>(table, node_ego, frozen.row(Space::Context, j), lr);
            }
        }
    }
    total
}

impl ElineTrainer {
    /// Embeds one *new* graph node against the frozen model using the
    /// incrementally maintained negative sampler and reusable scratch —
    /// the serving-engine form of [`ElineTrainer::embed_new_node`].
    ///
    /// `neg` must represent the negative distribution the caller wants the
    /// refinement to see; `Grafics` passes the sampler state from *before*
    /// the node's insertion, so the graph-extending path and the read-only
    /// [`ElineTrainer::embed_query`] path see identical distributions (the
    /// frozen background graph) and stay bit-identical per seed.
    ///
    /// # Errors
    ///
    /// - [`EmbedError::InvalidConfig`] if the configuration is out of range.
    /// - [`EmbedError::IsolatedNode`] if the node has no incident edges.
    pub fn embed_new_node_with<R: Rng + ?Sized>(
        &self,
        graph: &BipartiteGraph,
        model: &mut EmbeddingModel,
        node: NodeIdx,
        neg: &NegativeSampler,
        scratch: &mut OnlineScratch,
        rng: &mut R,
    ) -> Result<(), EmbedError> {
        let cfg = self.config();
        cfg.validate()?;
        let neighbors = graph.neighbors(node);
        if neighbors.is_empty() {
            return Err(EmbedError::IsolatedNode);
        }
        model.grow(graph.node_capacity(), rng);

        scratch.nbrs.clear();
        scratch.cum.clear();
        let mut acc = 0.0;
        for &(m, w) in neighbors {
            scratch.nbrs.push(m.0);
            acc += w;
            scratch.cum.push(acc);
        }

        let split = model.split_at_node(node);
        let frozen = FrozenRows {
            dim: cfg.dim,
            node: node.index(),
            head_ego: split.frozen_ego,
            head_context: split.frozen_context,
            tail_ego: split.tail_ego,
            tail_context: split.tail_context,
        };
        // The absorb path always runs its full fixed budget: adaptive
        // early stopping here would shift the RNG stream that WAL replay
        // and the journalled absorb sequence depend on.
        run_online_sgd(
            cfg,
            cfg.online_samples_per_edge,
            None,
            &frozen,
            split.node_ego,
            split.node_context,
            &scratch.nbrs,
            &scratch.cum,
            neg,
            &mut scratch.negatives,
            &mut scratch.grad,
            rng,
        );
        Ok(())
    }

    /// Embeds one query record against the frozen graph and model
    /// **without mutating anything shared**: the query node's rows — and
    /// fresh rows for any MAC the graph has never seen, initialised with
    /// the same draws [`EmbeddingModel::grow`] would make — live entirely
    /// in `scratch`. Returns the query's finished ego embedding.
    ///
    /// Given the same RNG seed and the same sampler state, the returned
    /// embedding is bit-identical to what
    /// [`ElineTrainer::embed_new_node_with`] would write for this record
    /// after a graph insertion.
    ///
    /// # Errors
    ///
    /// - [`EmbedError::InvalidConfig`] if the configuration is out of range.
    /// - [`EmbedError::IsolatedNode`] if no reading maps to a live MAC of
    ///   `graph` — the record cannot be anchored to the frozen building
    ///   graph (§V footnote 1: likely collected outside the building).
    pub fn embed_query<'a, R: Rng + ?Sized>(
        &self,
        graph: &BipartiteGraph,
        model: &EmbeddingModel,
        record: &SignalRecord,
        neg: &NegativeSampler,
        scratch: &'a mut OnlineScratch,
        rng: &mut R,
    ) -> Result<&'a [f64], EmbedError> {
        let spe = self.config().online_samples_per_edge;
        let (query, _) = self.embed_query_budgeted(
            graph,
            model,
            record,
            neg,
            OnlineBudget::Fixed(spe),
            &mut |_| false,
            scratch,
            rng,
        )?;
        Ok(query)
    }

    /// [`ElineTrainer::embed_query`] with an explicit [`OnlineBudget`]:
    /// an [`OnlineBudget::Adaptive`] budget probes `decisive` with the
    /// current ego row every `min_spe` samples per edge and stops
    /// refining on a `true` return, reporting what it spent in the
    /// returned [`RefineOutcome`].
    ///
    /// Determinism contract: the learning-rate schedule spans the full
    /// `max_spe` budget and the probe consumes no RNG, so a refinement
    /// whose probe never fires — including any `Adaptive` budget with
    /// `margin_ratio <= 0` — is bit-identical to `Fixed(max_spe)`,
    /// ending with the RNG in the same state. An early stop leaves the
    /// RNG wherever the probe fired; that is safe here because the
    /// read-only query path owns its per-record stream, and is exactly
    /// why the mutable absorb path never probes.
    ///
    /// # Errors
    ///
    /// As [`ElineTrainer::embed_query`], plus
    /// [`EmbedError::InvalidConfig`] for an out-of-range `budget`.
    #[allow(clippy::too_many_arguments)]
    pub fn embed_query_budgeted<'a, R: Rng + ?Sized>(
        &self,
        graph: &BipartiteGraph,
        model: &EmbeddingModel,
        record: &SignalRecord,
        neg: &NegativeSampler,
        budget: OnlineBudget,
        decisive: &mut dyn FnMut(&[f32]) -> bool,
        scratch: &'a mut OnlineScratch,
        rng: &mut R,
    ) -> Result<(&'a [f64], RefineOutcome), EmbedError> {
        let cfg = self.config();
        cfg.validate()?;
        budget.validate()?;
        let dim = cfg.dim;
        let cap = graph.node_capacity();

        // Neighbor worklist in reading order (sorted by MAC — the same
        // order `add_record` creates adjacency in). Never-seen MACs get
        // virtual indices past the node's own, mirroring the indices
        // `add_record` would allocate.
        scratch.nbrs.clear();
        scratch.cum.clear();
        let mut acc = 0.0;
        let mut fresh = 0u32;
        let mut anchored = false;
        for reading in record.readings() {
            let idx = match graph.mac_node(reading.mac) {
                Some(m) if !graph.is_removed(m) => {
                    anchored = true;
                    m.0
                }
                _ => {
                    fresh += 1;
                    cap as u32 + fresh
                }
            };
            scratch.nbrs.push(idx);
            acc += graph.weight_function().weight(reading.rssi);
            scratch.cum.push(acc);
        }
        if !anchored {
            return Err(EmbedError::IsolatedNode);
        }

        // Fresh rows: the query node first, then one row per never-seen
        // MAC. The per-coordinate (ego, context) draw interleaving below
        // replicates `EmbeddingModel::draw_rows` element for element, so
        // this path consumes the RNG exactly like the `grow` call the
        // graph-extending path makes after `add_record`.
        let bound = 0.5 / dim as f32;
        scratch.rows_ego.clear();
        scratch.rows_context.clear();
        for _ in 0..(1 + fresh as usize) * dim {
            scratch.rows_ego.push(rng.gen_range(-bound..=bound));
            scratch.rows_context.push(rng.gen_range(-bound..=bound));
        }
        let (node_ego, tail_ego) = scratch.rows_ego.split_at_mut(dim);
        let (node_context, tail_context) = scratch.rows_context.split_at_mut(dim);

        let (model_ego, model_context) = model.matrices();
        let frozen = FrozenRows {
            dim,
            node: cap,
            head_ego: model_ego,
            head_context: model_context,
            tail_ego,
            tail_context,
        };
        let deg = scratch.nbrs.len();
        let (spe, probe) = match budget {
            OnlineBudget::Fixed(spe) => (spe, None),
            OnlineBudget::Adaptive {
                max_spe,
                min_spe,
                margin_ratio,
            } => {
                // `margin_ratio <= 0` can never be decisive — skip the
                // probe machinery entirely (identical result either way;
                // the probe consumes no RNG).
                let probe = (margin_ratio > 0.0).then_some(Probe {
                    chunk: min_spe * deg,
                    decisive,
                });
                (max_spe, probe)
            }
        };
        let samples = run_online_sgd(
            cfg,
            spe,
            probe,
            &frozen,
            node_ego,
            node_context,
            &scratch.nbrs,
            &scratch.cum,
            neg,
            &mut scratch.negatives,
            &mut scratch.grad,
            rng,
        );

        scratch.query.clear();
        scratch.query.extend(node_ego.iter().map(|&x| f64::from(x)));
        Ok((
            &scratch.query,
            RefineOutcome {
                samples,
                budget: spe * deg,
            },
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::EmbeddingConfig;
    use grafics_graph::WeightFunction;
    use grafics_types::{MacAddr, Reading, Rssi};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn rec(macs: &[u64]) -> SignalRecord {
        SignalRecord::new(
            macs.iter()
                .map(|&m| Reading::new(MacAddr::from_u64(m), Rssi::new(-62.0).unwrap()))
                .collect(),
        )
        .unwrap()
    }

    fn trained(seed: u64) -> (BipartiteGraph, EmbeddingModel, ElineTrainer) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let mut g = BipartiteGraph::new(WeightFunction::default());
        for k in 0..16u64 {
            g.add_record(&rec(&[k % 8, (k + 1) % 8, (k + 3) % 8]));
        }
        let trainer = ElineTrainer::new(EmbeddingConfig {
            epochs: 15,
            online_samples_per_edge: 40,
            ..Default::default()
        });
        let model = trainer.train(&g, &mut rng).unwrap();
        (g, model, trainer)
    }

    /// The read-only query path and the graph-extending path produce
    /// bit-identical embeddings at the same seed and sampler state — also
    /// when the record carries a MAC the graph has never seen (virtual
    /// fresh rows).
    #[test]
    fn query_path_matches_insertion_path_bitwise() {
        for (case, query) in [
            rec(&[0, 2, 4]),          // all MACs known
            rec(&[1, 3, 999]),        // one never-seen MAC
            rec(&[5, 700, 800, 900]), // mostly never-seen MACs
        ]
        .into_iter()
        .enumerate()
        {
            let (g, model, trainer) = trained(7);
            let neg = NegativeSampler::from_graph(&g, trainer.config().negative_exponent);

            // Read-only path against the frozen graph/model.
            let mut scratch = OnlineScratch::new();
            let mut rng_q = ChaCha8Rng::seed_from_u64(55);
            let frozen_query = trainer
                .embed_query(&g, &model, &query, &neg, &mut scratch, &mut rng_q)
                .unwrap()
                .to_vec();

            // Graph-extending path with the pre-insertion sampler state.
            let mut g2 = g.clone();
            let mut model2 = model.clone();
            let rid = g2.add_record(&query);
            let node = g2.record_node(rid).unwrap();
            let mut rng_m = ChaCha8Rng::seed_from_u64(55);
            trainer
                .embed_new_node_with(&g2, &mut model2, node, &neg, &mut scratch, &mut rng_m)
                .unwrap();

            assert_eq!(
                frozen_query,
                model2.ego_vec(node),
                "case {case}: paths diverged"
            );
            // The two RNGs must also end in the same state.
            assert_eq!(rng_q.gen::<u64>(), rng_m.gen::<u64>(), "case {case}");
        }
    }

    /// The lane-blocked `d > 16` kernels keep the two online paths
    /// bit-identical too (the dims outside the 4/8/16 monomorphisations
    /// now run 4-accumulator FMA instead of the old non-FMA unroll).
    #[test]
    fn query_path_matches_insertion_path_bitwise_at_dim_32() {
        let mut rng = ChaCha8Rng::seed_from_u64(11);
        let mut g = BipartiteGraph::new(WeightFunction::default());
        for k in 0..16u64 {
            g.add_record(&rec(&[k % 8, (k + 1) % 8, (k + 3) % 8]));
        }
        let trainer = ElineTrainer::new(EmbeddingConfig {
            dim: 32,
            epochs: 10,
            online_samples_per_edge: 30,
            ..Default::default()
        });
        let model = trainer.train(&g, &mut rng).unwrap();
        let neg = NegativeSampler::from_graph(&g, trainer.config().negative_exponent);
        let query = rec(&[0, 3, 999]);

        let mut scratch = OnlineScratch::new();
        let mut rng_q = ChaCha8Rng::seed_from_u64(21);
        let frozen_query = trainer
            .embed_query(&g, &model, &query, &neg, &mut scratch, &mut rng_q)
            .unwrap()
            .to_vec();

        let mut g2 = g.clone();
        let mut model2 = model.clone();
        let rid = g2.add_record(&query);
        let node = g2.record_node(rid).unwrap();
        let mut rng_m = ChaCha8Rng::seed_from_u64(21);
        trainer
            .embed_new_node_with(&g2, &mut model2, node, &neg, &mut scratch, &mut rng_m)
            .unwrap();
        assert_eq!(frozen_query, model2.ego_vec(node));
    }

    /// An adaptive budget whose probe never fires (here: `margin_ratio`
    /// of 0, the never-decisive guard) is bit-identical to
    /// `Fixed(max_spe)` — same embedding, same final RNG state, full
    /// budget spent.
    #[test]
    fn never_decisive_adaptive_matches_fixed_bitwise() {
        let (g, model, trainer) = trained(13);
        let neg = NegativeSampler::from_graph(&g, trainer.config().negative_exponent);
        let query = rec(&[0, 2, 999]);

        let mut scratch = OnlineScratch::new();
        let mut rng_f = ChaCha8Rng::seed_from_u64(9);
        let (q_fixed, out_fixed) = trainer
            .embed_query_budgeted(
                &g,
                &model,
                &query,
                &neg,
                OnlineBudget::Fixed(40),
                &mut |_| false,
                &mut scratch,
                &mut rng_f,
            )
            .map(|(q, o)| (q.to_vec(), o))
            .unwrap();

        let mut rng_a = ChaCha8Rng::seed_from_u64(9);
        let mut probed = 0usize;
        let (q_adaptive, out_adaptive) = trainer
            .embed_query_budgeted(
                &g,
                &model,
                &query,
                &neg,
                OnlineBudget::Adaptive {
                    max_spe: 40,
                    min_spe: 5,
                    margin_ratio: 0.0,
                },
                &mut |_| {
                    probed += 1;
                    true // would stop if the guard ever let it run
                },
                &mut scratch,
                &mut rng_a,
            )
            .map(|(q, o)| (q.to_vec(), o))
            .unwrap();

        assert_eq!(q_fixed, q_adaptive);
        assert_eq!(out_fixed, out_adaptive);
        assert_eq!(probed, 0, "margin_ratio = 0 must never probe");
        assert!(!out_adaptive.early_stop());
        assert_eq!(out_adaptive.samples, out_adaptive.budget);
        assert_eq!(rng_f.gen::<u64>(), rng_a.gen::<u64>());
    }

    /// An always-decisive probe stops at the first chunk boundary:
    /// exactly `min_spe × deg` samples, flagged as an early stop, and
    /// the result equals the prefix a plain `Fixed(min_spe)` run of the
    /// same schedule would *not* produce (the LR schedule still spans
    /// `max_spe`), pinned instead against a manual prefix run.
    #[test]
    fn always_decisive_probe_stops_at_first_chunk() {
        let (g, model, trainer) = trained(29);
        let neg = NegativeSampler::from_graph(&g, trainer.config().negative_exponent);
        let query = rec(&[1, 3, 5]);
        let deg = query.readings().len();

        let mut scratch = OnlineScratch::new();
        let mut rng = ChaCha8Rng::seed_from_u64(77);
        let (_, out) = trainer
            .embed_query_budgeted(
                &g,
                &model,
                &query,
                &neg,
                OnlineBudget::Adaptive {
                    max_spe: 40,
                    min_spe: 5,
                    margin_ratio: 1.0,
                },
                &mut |_| true,
                &mut scratch,
                &mut rng,
            )
            .unwrap();
        assert_eq!(out.samples, 5 * deg);
        assert_eq!(out.budget, 40 * deg);
        assert!(out.early_stop());
    }

    #[test]
    fn query_with_no_known_mac_is_rejected() {
        let (g, model, trainer) = trained(3);
        let neg = NegativeSampler::from_graph(&g, 0.75);
        let mut scratch = OnlineScratch::new();
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let err = trainer.embed_query(
            &g,
            &model,
            &rec(&[4000, 4001]),
            &neg,
            &mut scratch,
            &mut rng,
        );
        assert_eq!(err.unwrap_err(), EmbedError::IsolatedNode);
    }

    /// All four objectives run through both online paths and stay finite.
    #[test]
    fn every_objective_supported_online() {
        for objective in [
            Objective::LineFirst,
            Objective::LineSecond,
            Objective::LineBoth,
            Objective::ELine,
        ] {
            let mut rng = ChaCha8Rng::seed_from_u64(4);
            let mut g = BipartiteGraph::new(WeightFunction::default());
            for k in 0..10u64 {
                g.add_record(&rec(&[k % 5, (k + 1) % 5]));
            }
            let trainer = ElineTrainer::new(EmbeddingConfig {
                epochs: 10,
                online_samples_per_edge: 20,
                objective,
                ..Default::default()
            });
            let mut model = trainer.train(&g, &mut rng).unwrap();
            let neg = NegativeSampler::from_graph(&g, 0.75);
            let mut scratch = OnlineScratch::new();
            let q = trainer
                .embed_query(&g, &model, &rec(&[0, 2]), &neg, &mut scratch, &mut rng)
                .unwrap();
            assert!(q.iter().all(|x| x.is_finite()), "{objective}");

            let rid = g.add_record(&rec(&[1, 3]));
            let node = g.record_node(rid).unwrap();
            trainer
                .embed_new_node_with(&g, &mut model, node, &neg, &mut scratch, &mut rng)
                .unwrap();
            assert!(model.all_finite(), "{objective}");
        }
    }
}
