//! The learned embedding matrices.

use grafics_graph::NodeIdx;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Ego and context embeddings for every node of a bipartite graph.
///
/// Rows are indexed by [`NodeIdx`]; the matrix has one row per node *slot*
/// of the graph it was trained on (including tombstones, whose rows are
/// simply never read). Vectors are `f32`: embedding quality is insensitive
/// to the extra precision of `f64`, and halving memory traffic matters when
/// sampling millions of edges.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct EmbeddingModel {
    dim: usize,
    ego: Vec<f32>,
    context: Vec<f32>,
}

impl EmbeddingModel {
    /// Allocates `rows` embeddings of dimension `dim`, initialised uniformly
    /// in `[-0.5/dim, 0.5/dim]` (the word2vec/LINE convention).
    #[must_use]
    pub fn init<R: Rng + ?Sized>(rows: usize, dim: usize, rng: &mut R) -> Self {
        assert!(dim > 0, "embedding dimension must be positive");
        let bound = 0.5 / dim as f32;
        let mut sample = |_: usize| rng.gen_range(-bound..=bound);
        EmbeddingModel {
            dim,
            ego: (0..rows * dim).map(&mut sample).collect(),
            context: (0..rows * dim).map(&mut sample).collect(),
        }
    }

    /// Embedding dimensionality.
    #[must_use]
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Number of rows (node slots).
    #[must_use]
    pub fn rows(&self) -> usize {
        self.ego.len() / self.dim
    }

    /// The ego embedding `u_i` — the representation used for clustering
    /// and floor prediction.
    #[must_use]
    pub fn ego(&self, node: NodeIdx) -> &[f32] {
        let i = node.index() * self.dim;
        &self.ego[i..i + self.dim]
    }

    /// The context embedding `u'_i`.
    #[must_use]
    pub fn context(&self, node: NodeIdx) -> &[f32] {
        let i = node.index() * self.dim;
        &self.context[i..i + self.dim]
    }

    /// Mutable ego row.
    pub fn ego_mut(&mut self, node: NodeIdx) -> &mut [f32] {
        let i = node.index() * self.dim;
        &mut self.ego[i..i + self.dim]
    }

    /// Mutable context row.
    pub fn context_mut(&mut self, node: NodeIdx) -> &mut [f32] {
        let i = node.index() * self.dim;
        &mut self.context[i..i + self.dim]
    }

    /// Mutable ego and context rows of the *same* node, borrowed together.
    pub fn rows_mut(&mut self, node: NodeIdx) -> (&mut [f32], &mut [f32]) {
        let i = node.index() * self.dim;
        (
            &mut self.ego[i..i + self.dim],
            &mut self.context[i..i + self.dim],
        )
    }

    /// Grows the matrices to `rows` rows (no-op if already large enough),
    /// initialising new rows like [`EmbeddingModel::init`]. Used when new
    /// records/MACs are appended to the graph online (§V-A).
    pub fn grow<R: Rng + ?Sized>(&mut self, rows: usize, rng: &mut R) {
        let target = rows * self.dim;
        if self.ego.len() >= target {
            return;
        }
        let add = target - self.ego.len();
        let (ego, context) = Self::draw_rows(self.dim, add, rng);
        self.ego.reserve(add);
        self.context.reserve(add);
        self.ego.extend(ego);
        self.context.extend(context);
    }

    /// Draws initial values for `elements` fresh coordinates of each
    /// matrix, in the historical interleaved `(ego, context)` element
    /// order — one sized allocation per matrix instead of per-element
    /// `push`es. [`EmbeddingModel::grow`] and the read-only serving path
    /// both initialise new rows through this function, so a query embedded
    /// against a frozen model consumes the caller's RNG exactly like the
    /// graph-extending path at the same seed.
    pub(crate) fn draw_rows<R: Rng + ?Sized>(
        dim: usize,
        elements: usize,
        rng: &mut R,
    ) -> (Vec<f32>, Vec<f32>) {
        let bound = 0.5 / dim as f32;
        let mut draws: Vec<f32> = Vec::new();
        draws.resize_with(2 * elements, || rng.gen_range(-bound..=bound));
        let ego = draws.iter().copied().step_by(2).collect();
        let context = draws.iter().copied().skip(1).step_by(2).collect();
        (ego, context)
    }

    /// Splits both matrices three ways around `node`: the frozen prefix
    /// (rows `< node`), the node's own mutable rows, and the read-only
    /// tail (rows `> node` — the fresh rows of MACs first seen together
    /// with the node). The online SGD writes only the middle part.
    pub(crate) fn split_at_node(&mut self, node: NodeIdx) -> SplitRows<'_> {
        let dim = self.dim;
        let start = node.index() * dim;
        let (frozen_ego, rest) = self.ego.split_at_mut(start);
        let (node_ego, tail_ego) = rest.split_at_mut(dim);
        let (frozen_context, rest) = self.context.split_at_mut(start);
        let (node_context, tail_context) = rest.split_at_mut(dim);
        SplitRows {
            frozen_ego,
            frozen_context,
            node_ego,
            node_context,
            tail_ego,
            tail_context,
        }
    }

    /// Both full matrices, read-only — the serving path's frozen view.
    pub(crate) fn matrices(&self) -> (&[f32], &[f32]) {
        (&self.ego, &self.context)
    }

    /// Squared Euclidean distance between two ego embeddings.
    #[must_use]
    pub fn ego_distance_sq(&self, a: NodeIdx, b: NodeIdx) -> f64 {
        self.ego(a)
            .iter()
            .zip(self.ego(b))
            .map(|(&x, &y)| {
                let d = (x - y) as f64;
                d * d
            })
            .sum()
    }

    /// Euclidean (ℓ2) distance between two ego embeddings (Eq. (11)).
    #[must_use]
    pub fn ego_distance(&self, a: NodeIdx, b: NodeIdx) -> f64 {
        self.ego_distance_sq(a, b).sqrt()
    }

    /// Copies the ego embedding of `node` into an owned `f64` vector.
    #[must_use]
    pub fn ego_vec(&self, node: NodeIdx) -> Vec<f64> {
        self.ego(node).iter().map(|&x| x as f64).collect()
    }

    /// `true` if every coordinate of every row is finite.
    #[must_use]
    pub fn all_finite(&self) -> bool {
        self.ego
            .iter()
            .chain(self.context.iter())
            .all(|x| x.is_finite())
    }

    pub(crate) fn row(&self, space: Space, node: NodeIdx) -> &[f32] {
        match space {
            Space::Ego => self.ego(node),
            Space::Context => self.context(node),
        }
    }

    pub(crate) fn row_mut(&mut self, space: Space, node: NodeIdx) -> &mut [f32] {
        match space {
            Space::Ego => self.ego_mut(node),
            Space::Context => self.context_mut(node),
        }
    }

    /// Both full matrices, mutably — the Hogwild trainer's entry point for
    /// building its shared atomic view over the storage.
    pub(crate) fn matrices_mut(&mut self) -> (&mut [f32], &mut [f32]) {
        (&mut self.ego, &mut self.context)
    }
}

/// Which of the two embedding matrices a row selector refers to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Space {
    Ego,
    Context,
}

/// The three-way split of both matrices produced by
/// [`EmbeddingModel::split_at_node`].
pub(crate) struct SplitRows<'a> {
    pub frozen_ego: &'a [f32],
    pub frozen_context: &'a [f32],
    pub node_ego: &'a mut [f32],
    pub node_context: &'a mut [f32],
    pub tail_ego: &'a [f32],
    pub tail_context: &'a [f32],
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn init_shape_and_range() {
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let m = EmbeddingModel::init(10, 8, &mut rng);
        assert_eq!(m.rows(), 10);
        assert_eq!(m.dim(), 8);
        let bound = 0.5 / 8.0;
        for i in 0..10 {
            for &x in m.ego(NodeIdx(i)) {
                assert!(x.abs() <= bound);
            }
        }
    }

    #[test]
    fn grow_preserves_existing_rows() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let mut m = EmbeddingModel::init(3, 4, &mut rng);
        let row0: Vec<f32> = m.ego(NodeIdx(0)).to_vec();
        m.grow(10, &mut rng);
        assert_eq!(m.rows(), 10);
        assert_eq!(m.ego(NodeIdx(0)), row0.as_slice());
        m.grow(5, &mut rng); // shrink request is a no-op
        assert_eq!(m.rows(), 10);
    }

    #[test]
    fn distance_zero_to_self_and_symmetric() {
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let m = EmbeddingModel::init(4, 6, &mut rng);
        assert_eq!(m.ego_distance(NodeIdx(2), NodeIdx(2)), 0.0);
        let ab = m.ego_distance(NodeIdx(0), NodeIdx(1));
        let ba = m.ego_distance(NodeIdx(1), NodeIdx(0));
        assert!((ab - ba).abs() < 1e-12);
        assert!(ab >= 0.0);
    }

    #[test]
    fn rows_mut_same_node() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let mut m = EmbeddingModel::init(2, 3, &mut rng);
        {
            let (ego, ctx) = m.rows_mut(NodeIdx(1));
            ego[0] = 1.0;
            ctx[0] = -1.0;
        }
        assert_eq!(m.ego(NodeIdx(1))[0], 1.0);
        assert_eq!(m.context(NodeIdx(1))[0], -1.0);
    }

    #[test]
    fn all_finite_detects_nan() {
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        let mut m = EmbeddingModel::init(2, 2, &mut rng);
        assert!(m.all_finite());
        m.ego_mut(NodeIdx(0))[0] = f32::NAN;
        assert!(!m.all_finite());
    }
}
