//! Low-level SGD primitives shared by offline training and online
//! embedding: one skip-gram-with-negative-sampling step over a directed
//! (source → target) pair, plus the sigmoid lookup table reused by both
//! the serial and the Hogwild trainers.
//!
//! The dot / axpy kernels themselves live in the workspace-wide
//! [`grafics_types::kernels`] layer (one copy shared with the cluster
//! and `nn` crates); this module re-exports them under the historical
//! names so the trainers keep reading naturally:
//!
//! - [`dot`] / [`axpy`] — sequential-exact, pinned by the serial
//!   trainer's bit-stability guarantee;
//! - [`dot_fixed`] — fixed-lane FMA for the monomorphised 4/8/16 paths;
//! - [`dot_lanes`] / [`axpy_lanes`] — the lane-blocked FMA path for
//!   every other dimension (bit-identical to the fixed kernels at equal
//!   lengths), which is what `d > 16` models now train and serve on.

use crate::model::{EmbeddingModel, Space};
use grafics_graph::NodeIdx;
use rand::Rng;
use std::sync::OnceLock;

pub(crate) use grafics_types::kernels::{
    axpy_f32 as axpy, axpy_lanes_f32 as axpy_lanes, dot_f32 as dot, dot_fixed_f32 as dot_fixed,
    dot_lanes_f32 as dot_lanes,
};

/// Numerically safe logistic function.
#[inline]
pub(crate) fn sigmoid(x: f32) -> f32 {
    // Clamp to the range where the gradient is meaningfully non-zero; this
    // mirrors LINE's sigmoid lookup-table bounds and prevents exp overflow.
    let x = x.clamp(-8.0, 8.0);
    1.0 / (1.0 + (-x).exp())
}

/// Entries in the precomputed sigmoid table over `[-SIGMOID_BOUND, +SIGMOID_BOUND)`.
pub(crate) const SIGMOID_TABLE_SIZE: usize = 1024;
/// Clamp bound shared by [`sigmoid`] and the table.
pub(crate) const SIGMOID_BOUND: f32 = 8.0;

static SIGMOID_TABLE: OnceLock<[f32; SIGMOID_TABLE_SIZE]> = OnceLock::new();

/// The shared 1024-entry sigmoid lookup table (built once per process).
/// Each entry holds `σ(midpoint)` of its cell, so the absolute error is
/// bounded by `σ'max · cellwidth / 2 = 0.25 · (16/1024) / 2 ≈ 2e-3` —
/// LINE trains with the same table and converges identically, because SGD
/// noise dwarfs the quantisation.
pub(crate) fn sigmoid_table() -> &'static [f32; SIGMOID_TABLE_SIZE] {
    SIGMOID_TABLE.get_or_init(|| {
        let mut table = [0.0f32; SIGMOID_TABLE_SIZE];
        let cell = 2.0 * SIGMOID_BOUND / SIGMOID_TABLE_SIZE as f32;
        for (i, slot) in table.iter_mut().enumerate() {
            let x = -SIGMOID_BOUND + (i as f32 + 0.5) * cell;
            *slot = sigmoid(x);
        }
        table
    })
}

/// Table-based sigmoid used on the Hogwild hot path.
#[inline(always)]
pub(crate) fn fast_sigmoid(table: &[f32; SIGMOID_TABLE_SIZE], x: f32) -> f32 {
    let scaled = (x + SIGMOID_BOUND) * (SIGMOID_TABLE_SIZE as f32 / (2.0 * SIGMOID_BOUND));
    // Saturated values behave like the clamp in `sigmoid`.
    let idx = (scaled as i32).clamp(0, SIGMOID_TABLE_SIZE as i32 - 1) as usize;
    table[idx]
}

/// Fills `out` with up to `k` values accepted by `draw` (`None` =
/// rejected/unavailable), giving up after `20 · max(k, 1)` attempts —
/// the single rejection policy shared by the serial, Hogwild, and online
/// negative samplers, so the guard bound and semantics can never drift
/// apart between them.
#[inline(always)]
pub(crate) fn fill_rejecting<T>(k: usize, out: &mut Vec<T>, mut draw: impl FnMut() -> Option<T>) {
    out.clear();
    let mut guard = 0;
    while out.len() < k && guard < 20 * k.max(1) {
        if let Some(v) = draw() {
            out.push(v);
        }
        guard += 1;
    }
}

/// A row selector: which matrix, which node.
pub(crate) type RowSel = (Space, NodeIdx);

/// Reusable scratch buffers for pair updates (avoids per-step allocation).
pub(crate) struct Sgd {
    dim: usize,
    src_copy: Vec<f32>,
    src_grad: Vec<f32>,
}

impl Sgd {
    pub(crate) fn new(dim: usize) -> Self {
        Sgd {
            dim,
            src_copy: vec![0.0; dim],
            src_grad: vec![0.0; dim],
        }
    }

    /// One directed step: positive pair `src → tgt` plus `negatives` in
    /// `neg_space`, with learning rate `lr`.
    ///
    /// `update_source` / `update_targets` control which side's vectors are
    /// written — online inference freezes everything except the new node
    /// (§V-A). `dropout` zeroes each *source-gradient* coordinate with the
    /// given probability (the paper trains E-LINE with dropout 0.1).
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn step<R: Rng + ?Sized>(
        &mut self,
        model: &mut EmbeddingModel,
        src: RowSel,
        tgt: RowSel,
        neg_space: Space,
        negatives: &[NodeIdx],
        lr: f32,
        update_source: bool,
        update_targets: bool,
        dropout: f32,
        rng: &mut R,
    ) {
        debug_assert_eq!(model.dim(), self.dim);
        self.src_copy.copy_from_slice(model.row(src.0, src.1));
        self.src_grad.fill(0.0);

        self.one_target(model, tgt, 1.0, lr, update_targets);
        for &z in negatives {
            self.one_target(model, (neg_space, z), 0.0, lr, update_targets);
        }

        if update_source {
            let srow = model.row_mut(src.0, src.1);
            if dropout > 0.0 {
                for (slot, &g) in srow.iter_mut().zip(&self.src_grad) {
                    if rng.gen::<f32>() >= dropout {
                        *slot += g;
                    }
                }
            } else {
                for (slot, &g) in srow.iter_mut().zip(&self.src_grad) {
                    *slot += g;
                }
            }
        }
    }

    #[inline]
    fn one_target(
        &mut self,
        model: &mut EmbeddingModel,
        tgt: RowSel,
        label: f32,
        lr: f32,
        update_target: bool,
    ) {
        let trow = model.row_mut(tgt.0, tgt.1);
        let g = lr * (label - sigmoid(dot(&self.src_copy, trow)));
        // Gradient read precedes the in-place target update per coordinate
        // in the historical loop; two sequential axpy passes preserve that
        // order exactly (each coordinate's read happens before its write).
        axpy(&mut self.src_grad, g, trow);
        if update_target {
            axpy(trow, g, &self.src_copy);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn fast_sigmoid_tracks_exact_sigmoid() {
        let table = sigmoid_table();
        let mut x = -12.0f32;
        while x < 12.0 {
            let exact = sigmoid(x);
            let approx = fast_sigmoid(table, x);
            assert!(
                (exact - approx).abs() < 3e-3,
                "x={x}: exact {exact} vs table {approx}"
            );
            x += 0.013;
        }
        assert!((fast_sigmoid(table, 0.0) - 0.5).abs() < 3e-3);
        assert!(fast_sigmoid(table, 1e30) > 0.999);
        assert!(fast_sigmoid(table, -1e30) < 0.001);
    }

    #[test]
    fn dot_kernels_agree() {
        let a: Vec<f32> = (0..13).map(|i| (i as f32).sin()).collect();
        let b: Vec<f32> = (0..13).map(|i| (i as f32 * 0.7).cos()).collect();
        let seq = dot(&a, &b);
        let lanes = dot_lanes(&a, &b);
        assert!((seq - lanes).abs() < 1e-5, "{seq} vs {lanes}");
        assert_eq!(dot(&[], &[]), 0.0);
        assert_eq!(dot_lanes(&[], &[]), 0.0);
    }

    #[test]
    fn axpy_accumulates_in_place() {
        let mut acc = vec![1.0f32, 2.0, 3.0];
        axpy(&mut acc, 2.0, &[10.0, 20.0, 30.0]);
        assert_eq!(acc, vec![21.0, 42.0, 63.0]);
    }

    #[test]
    fn sigmoid_bounds_and_midpoint() {
        assert!((sigmoid(0.0) - 0.5).abs() < 1e-6);
        assert!(sigmoid(100.0) <= 1.0 && sigmoid(100.0) > 0.999);
        assert!(sigmoid(-100.0) >= 0.0 && sigmoid(-100.0) < 0.001);
        assert!(sigmoid(f32::MAX).is_finite());
    }

    #[test]
    fn positive_pair_increases_dot() {
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let mut model = EmbeddingModel::init(3, 4, &mut rng);
        let (i, j) = (NodeIdx(0), NodeIdx(1));
        let dot_before: f32 = model
            .ego(i)
            .iter()
            .zip(model.context(j))
            .map(|(&a, &b)| a * b)
            .sum();
        let mut sgd = Sgd::new(4);
        for _ in 0..200 {
            sgd.step(
                &mut model,
                (Space::Ego, i),
                (Space::Context, j),
                Space::Context,
                &[],
                0.1,
                true,
                true,
                0.0,
                &mut rng,
            );
        }
        let dot_after: f32 = model
            .ego(i)
            .iter()
            .zip(model.context(j))
            .map(|(&a, &b)| a * b)
            .sum();
        assert!(
            dot_after > dot_before,
            "{dot_after} should exceed {dot_before}"
        );
        assert!(model.all_finite());
    }

    #[test]
    fn negative_pair_decreases_dot() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let mut model = EmbeddingModel::init(3, 4, &mut rng);
        let (i, z) = (NodeIdx(0), NodeIdx(2));
        let mut sgd = Sgd::new(4);
        for _ in 0..200 {
            sgd.step(
                &mut model,
                (Space::Ego, i),
                (Space::Context, NodeIdx(1)),
                Space::Context,
                &[z],
                0.1,
                true,
                true,
                0.0,
                &mut rng,
            );
        }
        let dot_neg: f32 = model
            .ego(i)
            .iter()
            .zip(model.context(z))
            .map(|(&a, &b)| a * b)
            .sum();
        assert!(
            dot_neg < 0.0,
            "negative dot should be pushed below zero, got {dot_neg}"
        );
    }

    #[test]
    fn frozen_target_is_not_written() {
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let mut model = EmbeddingModel::init(2, 4, &mut rng);
        let before: Vec<f32> = model.context(NodeIdx(1)).to_vec();
        let mut sgd = Sgd::new(4);
        sgd.step(
            &mut model,
            (Space::Ego, NodeIdx(0)),
            (Space::Context, NodeIdx(1)),
            Space::Context,
            &[],
            0.5,
            true,
            false, // targets frozen
            0.0,
            &mut rng,
        );
        assert_eq!(model.context(NodeIdx(1)), before.as_slice());
    }

    #[test]
    fn frozen_source_is_not_written() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let mut model = EmbeddingModel::init(2, 4, &mut rng);
        let before: Vec<f32> = model.ego(NodeIdx(0)).to_vec();
        let mut sgd = Sgd::new(4);
        sgd.step(
            &mut model,
            (Space::Ego, NodeIdx(0)),
            (Space::Context, NodeIdx(1)),
            Space::Context,
            &[],
            0.5,
            false, // source frozen
            true,
            0.0,
            &mut rng,
        );
        assert_eq!(model.ego(NodeIdx(0)), before.as_slice());
    }

    #[test]
    fn full_dropout_blocks_source_update() {
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        let mut model = EmbeddingModel::init(2, 4, &mut rng);
        let before: Vec<f32> = model.ego(NodeIdx(0)).to_vec();
        let mut sgd = Sgd::new(4);
        sgd.step(
            &mut model,
            (Space::Ego, NodeIdx(0)),
            (Space::Context, NodeIdx(1)),
            Space::Context,
            &[],
            0.5,
            true,
            true,
            0.999_999, // effectively drop every coordinate
            &mut rng,
        );
        assert_eq!(model.ego(NodeIdx(0)), before.as_slice());
    }
}
