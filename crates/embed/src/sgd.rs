//! Low-level SGD primitives shared by offline training and online
//! embedding: one skip-gram-with-negative-sampling step over a directed
//! (source → target) pair.

use crate::model::{EmbeddingModel, Space};
use grafics_graph::NodeIdx;
use rand::Rng;

/// Numerically safe logistic function.
#[inline]
pub(crate) fn sigmoid(x: f32) -> f32 {
    // Clamp to the range where the gradient is meaningfully non-zero; this
    // mirrors LINE's sigmoid lookup-table bounds and prevents exp overflow.
    let x = x.clamp(-8.0, 8.0);
    1.0 / (1.0 + (-x).exp())
}

/// A row selector: which matrix, which node.
pub(crate) type RowSel = (Space, NodeIdx);

/// Reusable scratch buffers for pair updates (avoids per-step allocation).
pub(crate) struct Sgd {
    dim: usize,
    src_copy: Vec<f32>,
    src_grad: Vec<f32>,
}

impl Sgd {
    pub(crate) fn new(dim: usize) -> Self {
        Sgd { dim, src_copy: vec![0.0; dim], src_grad: vec![0.0; dim] }
    }

    /// One directed step: positive pair `src → tgt` plus `negatives` in
    /// `neg_space`, with learning rate `lr`.
    ///
    /// `update_source` / `update_targets` control which side's vectors are
    /// written — online inference freezes everything except the new node
    /// (§V-A). `dropout` zeroes each *source-gradient* coordinate with the
    /// given probability (the paper trains E-LINE with dropout 0.1).
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn step<R: Rng + ?Sized>(
        &mut self,
        model: &mut EmbeddingModel,
        src: RowSel,
        tgt: RowSel,
        neg_space: Space,
        negatives: &[NodeIdx],
        lr: f32,
        update_source: bool,
        update_targets: bool,
        dropout: f32,
        rng: &mut R,
    ) {
        debug_assert_eq!(model.dim(), self.dim);
        self.src_copy.copy_from_slice(model.row(src.0, src.1));
        self.src_grad.fill(0.0);

        self.one_target(model, tgt, 1.0, lr, update_targets);
        for &z in negatives {
            self.one_target(model, (neg_space, z), 0.0, lr, update_targets);
        }

        if update_source {
            let srow = model.row_mut(src.0, src.1);
            if dropout > 0.0 {
                for d in 0..self.dim {
                    if rng.gen::<f32>() >= dropout {
                        srow[d] += self.src_grad[d];
                    }
                }
            } else {
                for d in 0..self.dim {
                    srow[d] += self.src_grad[d];
                }
            }
        }
    }

    #[inline]
    fn one_target(
        &mut self,
        model: &mut EmbeddingModel,
        tgt: RowSel,
        label: f32,
        lr: f32,
        update_target: bool,
    ) {
        let trow = model.row_mut(tgt.0, tgt.1);
        let mut dot = 0.0f32;
        for d in 0..self.dim {
            dot += self.src_copy[d] * trow[d];
        }
        let g = lr * (label - sigmoid(dot));
        if update_target {
            for d in 0..self.dim {
                self.src_grad[d] += g * trow[d];
                trow[d] += g * self.src_copy[d];
            }
        } else {
            for d in 0..self.dim {
                self.src_grad[d] += g * trow[d];
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn sigmoid_bounds_and_midpoint() {
        assert!((sigmoid(0.0) - 0.5).abs() < 1e-6);
        assert!(sigmoid(100.0) <= 1.0 && sigmoid(100.0) > 0.999);
        assert!(sigmoid(-100.0) >= 0.0 && sigmoid(-100.0) < 0.001);
        assert!(sigmoid(f32::MAX).is_finite());
    }

    #[test]
    fn positive_pair_increases_dot() {
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let mut model = EmbeddingModel::init(3, 4, &mut rng);
        let (i, j) = (NodeIdx(0), NodeIdx(1));
        let dot_before: f32 = model
            .ego(i)
            .iter()
            .zip(model.context(j))
            .map(|(&a, &b)| a * b)
            .sum();
        let mut sgd = Sgd::new(4);
        for _ in 0..200 {
            sgd.step(
                &mut model,
                (Space::Ego, i),
                (Space::Context, j),
                Space::Context,
                &[],
                0.1,
                true,
                true,
                0.0,
                &mut rng,
            );
        }
        let dot_after: f32 = model
            .ego(i)
            .iter()
            .zip(model.context(j))
            .map(|(&a, &b)| a * b)
            .sum();
        assert!(dot_after > dot_before, "{dot_after} should exceed {dot_before}");
        assert!(model.all_finite());
    }

    #[test]
    fn negative_pair_decreases_dot() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let mut model = EmbeddingModel::init(3, 4, &mut rng);
        let (i, z) = (NodeIdx(0), NodeIdx(2));
        let mut sgd = Sgd::new(4);
        for _ in 0..200 {
            sgd.step(
                &mut model,
                (Space::Ego, i),
                (Space::Context, NodeIdx(1)),
                Space::Context,
                &[z],
                0.1,
                true,
                true,
                0.0,
                &mut rng,
            );
        }
        let dot_neg: f32 =
            model.ego(i).iter().zip(model.context(z)).map(|(&a, &b)| a * b).sum();
        assert!(dot_neg < 0.0, "negative dot should be pushed below zero, got {dot_neg}");
    }

    #[test]
    fn frozen_target_is_not_written() {
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let mut model = EmbeddingModel::init(2, 4, &mut rng);
        let before: Vec<f32> = model.context(NodeIdx(1)).to_vec();
        let mut sgd = Sgd::new(4);
        sgd.step(
            &mut model,
            (Space::Ego, NodeIdx(0)),
            (Space::Context, NodeIdx(1)),
            Space::Context,
            &[],
            0.5,
            true,
            false, // targets frozen
            0.0,
            &mut rng,
        );
        assert_eq!(model.context(NodeIdx(1)), before.as_slice());
    }

    #[test]
    fn frozen_source_is_not_written() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let mut model = EmbeddingModel::init(2, 4, &mut rng);
        let before: Vec<f32> = model.ego(NodeIdx(0)).to_vec();
        let mut sgd = Sgd::new(4);
        sgd.step(
            &mut model,
            (Space::Ego, NodeIdx(0)),
            (Space::Context, NodeIdx(1)),
            Space::Context,
            &[],
            0.5,
            false, // source frozen
            true,
            0.0,
            &mut rng,
        );
        assert_eq!(model.ego(NodeIdx(0)), before.as_slice());
    }

    #[test]
    fn full_dropout_blocks_source_update() {
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        let mut model = EmbeddingModel::init(2, 4, &mut rng);
        let before: Vec<f32> = model.ego(NodeIdx(0)).to_vec();
        let mut sgd = Sgd::new(4);
        sgd.step(
            &mut model,
            (Space::Ego, NodeIdx(0)),
            (Space::Context, NodeIdx(1)),
            Space::Context,
            &[],
            0.5,
            true,
            true,
            0.999_999, // effectively drop every coordinate
            &mut rng,
        );
        assert_eq!(model.ego(NodeIdx(0)), before.as_slice());
    }
}
