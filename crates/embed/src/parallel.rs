//! Lock-free Hogwild training of the LINE / E-LINE objectives.
//!
//! The offline objective (Eq. (10)) is a sum over millions of sampled
//! edges whose per-sample updates touch only `2 + K` embedding rows out of
//! tens of thousands. Following Hogwild (Niu et al., 2011) and every
//! production LINE/word2vec implementation, workers therefore update one
//! shared embedding matrix *without locks*: conflicting updates are rare
//! (row collisions scale with `K/rows`) and the occasional lost or stale
//! coordinate acts as extra SGD noise that does not harm convergence.
//!
//! Unlike the classic C implementations, the shared access here is not
//! undefined behaviour: the two matrices are exposed as `&[AtomicU32]`
//! views and every read/write on the hot path is a `Relaxed` atomic
//! load/store of the `f32` bit pattern, which x86 and AArch64 compile to
//! the same plain `mov`s the unsafe version would emit. See
//! [`SharedModel`] for the single `unsafe` boundary and its argument.
//!
//! Besides the thread fan-out, this path uses the fast kernels from
//! [`crate::sgd`]: the 1024-entry sigmoid table, unrolled dot products,
//! and single-`u64` alias draws ([`grafics_graph::AliasTable::sample_with`])
//! fed from a per-worker batch buffer that amortises RNG calls. For the
//! common embedding dimensions (4/8/16, covering the paper's default 8)
//! the whole inner step is monomorphised over a compile-time dimension so
//! every row loop fully unrolls with no bounds checks.

#![allow(unsafe_code)]

use crate::config::{EmbedError, EmbeddingConfig, Objective};
use crate::model::{EmbeddingModel, Space};
use crate::sgd::{
    axpy_lanes, dot_fixed, dot_lanes, fast_sigmoid, sigmoid_table, SIGMOID_TABLE_SIZE,
};
use grafics_graph::{AliasTable, BipartiteGraph, NodeIdx};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use std::sync::atomic::{AtomicU32, AtomicUsize, Ordering};

/// Workers re-read the global progress counter (for the learning-rate
/// decay) once per this many samples, like word2vec's `word_count_actual`.
const LR_CHUNK: usize = 1024;

/// Size of the per-worker buffer of raw 64-bit random words.
const RAND_BATCH: usize = 512;

/// Alias so the scratch trait's signature stays readable.
type SigmoidTable = [f32; SIGMOID_TABLE_SIZE];

/// A `Sync` view of one [`EmbeddingModel`] that lets every worker read and
/// write rows concurrently.
///
/// Both matrices are re-typed from `&mut [f32]` to `&[AtomicU32]` and all
/// access goes through `Relaxed` atomic load/store of the bit pattern.
///
/// # Safety argument (the only unsafe boundary of the trainer)
///
/// - Layout: `AtomicU32` is documented to have "the same in-memory
///   representation as the underlying integer type, u32" — identical size
///   and alignment to `f32`, so the pointer cast and length are valid.
/// - Aliasing: the view is constructed from `&mut EmbeddingModel`, so for
///   its whole lifetime no other safe reference to the storage exists, and
///   while it exists the storage is accessed *only* through the atomics.
///   This satisfies the conditions documented for `AtomicU32::from_ptr`.
/// - Data races: none, by definition — every access is atomic. Races at
///   the algorithmic level (a worker reading a half-updated *row*) are the
///   Hogwild trade-off and affect convergence noise, not soundness.
pub(crate) struct SharedModel<'a> {
    ego: &'a [AtomicU32],
    context: &'a [AtomicU32],
    dim: usize,
}

impl<'a> SharedModel<'a> {
    fn new(model: &'a mut EmbeddingModel) -> Self {
        let dim = model.dim();
        let (ego, context) = model.matrices_mut();
        // SAFETY: see the type-level safety argument above.
        let ego =
            unsafe { std::slice::from_raw_parts(ego.as_mut_ptr().cast::<AtomicU32>(), ego.len()) };
        // SAFETY: same argument, second matrix.
        let context = unsafe {
            std::slice::from_raw_parts(context.as_mut_ptr().cast::<AtomicU32>(), context.len())
        };
        SharedModel { ego, context, dim }
    }

    #[inline(always)]
    fn row(&self, space: Space, node: NodeIdx) -> &[AtomicU32] {
        let start = node.index() * self.dim;
        match space {
            Space::Ego => &self.ego[start..start + self.dim],
            Space::Context => &self.context[start..start + self.dim],
        }
    }
}

#[inline(always)]
fn store(cell: &AtomicU32, value: f32) {
    cell.store(value.to_bits(), Ordering::Relaxed);
}

#[inline(always)]
fn load(cell: &AtomicU32) -> f32 {
    f32::from_bits(cell.load(Ordering::Relaxed))
}

/// A per-worker pool of raw random words, refilled in blocks so the hot
/// loop consumes pre-generated entropy instead of calling into the
/// generator per draw (batch alias sampling).
struct RandPool {
    rng: ChaCha8Rng,
    buf: [u64; RAND_BATCH],
    pos: usize,
}

impl RandPool {
    fn new(seed: u64) -> Self {
        RandPool {
            rng: ChaCha8Rng::seed_from_u64(seed),
            buf: [0; RAND_BATCH],
            pos: RAND_BATCH,
        }
    }

    #[inline(always)]
    fn next(&mut self) -> u64 {
        if self.pos == RAND_BATCH {
            self.rng.fill_u64(&mut self.buf);
            self.pos = 0;
        }
        let word = self.buf[self.pos];
        self.pos += 1;
        word
    }
}

/// Draws `k` negatives via single-word alias draws, rejecting the
/// endpoints of the positive pair — the shared rejection policy of
/// `sgd::fill_rejecting`, fed from the per-worker entropy pool.
#[inline]
fn sample_negatives_fast(
    alias: &AliasTable,
    i: NodeIdx,
    j: NodeIdx,
    k: usize,
    out: &mut Vec<NodeIdx>,
    pool: &mut RandPool,
) {
    crate::sgd::fill_rejecting(k, out, || {
        let z = NodeIdx(alias.sample_with(pool.next()) as u32);
        (z != i && z != j).then_some(z)
    });
}

/// Per-worker state plus the one directed SGD step; implemented once over
/// heap buffers (any dimension) and once monomorphised per compile-time
/// dimension (no bounds checks, fully unrolled row loops).
trait HogwildScratch {
    fn negatives_mut(&mut self) -> &mut Vec<NodeIdx>;

    /// One lock-free directed step `src → tgt` with the currently drawn
    /// negatives, mirroring `Sgd::step` with both sides updated.
    #[allow(clippy::too_many_arguments)]
    fn step(
        &mut self,
        shared: &SharedModel<'_>,
        table: &SigmoidTable,
        src: (Space, NodeIdx),
        tgt: (Space, NodeIdx),
        neg_space: Space,
        lr: f32,
        dropout_threshold: u8,
        pool: &mut RandPool,
    );
}

/// Applies the accumulated source gradient with per-coordinate dropout:
/// one byte-sized coin per coordinate, eight coins per drawn word —
/// P(drop) = threshold/256, plenty of resolution for the paper's 0.1.
#[inline(always)]
fn apply_source_grad(srow: &[AtomicU32], grad: &[f32], dropout_threshold: u8, pool: &mut RandPool) {
    if dropout_threshold > 0 {
        let mut word = 0u64;
        for (d, (cell, &g)) in srow.iter().zip(grad).enumerate() {
            if d % 8 == 0 {
                word = pool.next();
            }
            let coin = (word >> ((d % 8) * 8)) as u8;
            if coin >= dropout_threshold {
                store(cell, load(cell) + g);
            }
        }
    } else {
        for (cell, &g) in srow.iter().zip(grad) {
            store(cell, load(cell) + g);
        }
    }
}

/// Heap-buffer scratch: handles any embedding dimension.
struct DynScratch {
    src_copy: Vec<f32>,
    tgt_copy: Vec<f32>,
    src_grad: Vec<f32>,
    negatives: Vec<NodeIdx>,
}

impl HogwildScratch for DynScratch {
    fn negatives_mut(&mut self) -> &mut Vec<NodeIdx> {
        &mut self.negatives
    }

    #[inline]
    #[allow(clippy::too_many_arguments)]
    fn step(
        &mut self,
        shared: &SharedModel<'_>,
        table: &SigmoidTable,
        src: (Space, NodeIdx),
        tgt: (Space, NodeIdx),
        neg_space: Space,
        lr: f32,
        dropout_threshold: u8,
        pool: &mut RandPool,
    ) {
        let srow = shared.row(src.0, src.1);
        for (slot, cell) in self.src_copy.iter_mut().zip(srow) {
            *slot = load(cell);
        }
        self.src_grad.fill(0.0);

        // The negatives list is only read here while the other scratch
        // buffers are written; moving it out splits the borrows.
        let negatives = std::mem::take(&mut self.negatives);
        for k in 0..=negatives.len() {
            let ((space, node), label) = if k == 0 {
                (tgt, 1.0f32)
            } else {
                ((neg_space, negatives[k - 1]), 0.0f32)
            };
            let row = shared.row(space, node);
            for (slot, cell) in self.tgt_copy.iter_mut().zip(row) {
                *slot = load(cell);
            }
            let g = lr * (label - fast_sigmoid(table, dot_lanes(&self.src_copy, &self.tgt_copy)));
            // Elementwise passes over the local copies vectorize (the
            // lane-blocked kernels match the fixed-dimension scratch's FMA
            // scheme); only the per-coordinate atomic stores stay scalar.
            axpy_lanes(&mut self.src_grad, g, &self.tgt_copy);
            axpy_lanes(&mut self.tgt_copy, g, &self.src_copy);
            for (cell, &v) in row.iter().zip(&self.tgt_copy) {
                store(cell, v);
            }
        }
        self.negatives = negatives;

        apply_source_grad(srow, &self.src_grad, dropout_threshold, pool);
    }
}

/// Stack-array scratch monomorphised over the embedding dimension.
struct FixedScratch<const DIM: usize> {
    negatives: Vec<NodeIdx>,
}

impl<const DIM: usize> HogwildScratch for FixedScratch<DIM> {
    fn negatives_mut(&mut self) -> &mut Vec<NodeIdx> {
        &mut self.negatives
    }

    #[inline]
    #[allow(clippy::too_many_arguments)]
    fn step(
        &mut self,
        shared: &SharedModel<'_>,
        table: &SigmoidTable,
        src: (Space, NodeIdx),
        tgt: (Space, NodeIdx),
        neg_space: Space,
        lr: f32,
        dropout_threshold: u8,
        pool: &mut RandPool,
    ) {
        let srow: &[AtomicU32; DIM] = shared
            .row(src.0, src.1)
            .try_into()
            .expect("row length equals DIM");
        let mut src_copy = [0.0f32; DIM];
        for d in 0..DIM {
            src_copy[d] = load(&srow[d]);
        }
        let mut src_grad = [0.0f32; DIM];

        for k in 0..=self.negatives.len() {
            let ((space, node), label) = if k == 0 {
                (tgt, 1.0f32)
            } else {
                ((neg_space, self.negatives[k - 1]), 0.0f32)
            };
            let row: &[AtomicU32; DIM] = shared
                .row(space, node)
                .try_into()
                .expect("row length equals DIM");
            let mut t = [0.0f32; DIM];
            for d in 0..DIM {
                t[d] = load(&row[d]);
            }
            let g = lr * (label - fast_sigmoid(table, dot_fixed(&src_copy, &t)));
            for d in 0..DIM {
                src_grad[d] = t[d].mul_add(g, src_grad[d]);
            }
            for d in 0..DIM {
                store(&row[d], src_copy[d].mul_add(g, t[d]));
            }
        }

        apply_source_grad(srow, &src_grad, dropout_threshold, pool);
    }
}

/// Trains the full model with `config.threads` Hogwild workers.
///
/// The caller (`ElineTrainer::train`) has already validated the config.
/// Initialisation consumes the caller's RNG exactly like the serial path
/// (same init draw order), then one seed per worker is derived from it, so
/// a fixed caller seed fixes the whole sampling plan; only the interleaving
/// of floating-point updates varies between runs.
pub(crate) fn train_hogwild<R: Rng + ?Sized>(
    config: &EmbeddingConfig,
    graph: &BipartiteGraph,
    rng: &mut R,
) -> Result<EmbeddingModel, EmbedError> {
    let (edges, weights) = graph.edge_list();
    let edge_alias = AliasTable::new(&weights).ok_or(EmbedError::EmptyGraph)?;
    let neg_alias = AliasTable::new(&graph.negative_sampling_weights(config.negative_exponent))
        .ok_or(EmbedError::EmptyGraph)?;

    let mut model = EmbeddingModel::init(graph.node_capacity(), config.dim, rng);
    let total = config.epochs.saturating_mul(edges.len()).max(1);
    let workers = config.threads.min(total);
    let worker_seed_base = rng.next_u64();

    // The sampling loop only needs the endpoints; a flat 8-byte pair per
    // edge halves the cache footprint of the random-access fetch compared
    // to `EdgeRef` (which drags the unused f64 weight along).
    let endpoints: Vec<(NodeIdx, NodeIdx)> = edges.iter().map(|e| (e.record, e.mac)).collect();

    let progress = AtomicUsize::new(0);
    let shared = SharedModel::new(&mut model);
    let shared_ref = &shared;
    let edges_ref: &[(NodeIdx, NodeIdx)] = &endpoints;
    let edge_alias_ref = &edge_alias;
    let neg_alias_ref = &neg_alias;
    let progress_ref = &progress;

    rayon::scope(|scope| {
        for w in 0..workers {
            let samples = total / workers + usize::from(w < total % workers);
            let seed = worker_seed_base ^ (w as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15);
            scope.spawn(move |_| {
                let negatives = Vec::with_capacity(config.negatives);
                let run = WorkerRun {
                    config,
                    shared: shared_ref,
                    edges: edges_ref,
                    edge_alias: edge_alias_ref,
                    neg_alias: neg_alias_ref,
                    progress: progress_ref,
                    total,
                    samples,
                    seed,
                };
                // Monomorphised fast paths for the common dimensions
                // (the paper's default is 8); anything else takes the
                // heap-buffer path.
                match config.dim {
                    4 => run.go(FixedScratch::<4> { negatives }),
                    8 => run.go(FixedScratch::<8> { negatives }),
                    16 => run.go(FixedScratch::<16> { negatives }),
                    dim => run.go(DynScratch {
                        src_copy: vec![0.0; dim],
                        tgt_copy: vec![0.0; dim],
                        src_grad: vec![0.0; dim],
                        negatives,
                    }),
                }
            });
        }
    });

    debug_assert!(model.all_finite());
    Ok(model)
}

/// Everything one worker needs, bundled so the scratch dispatch stays tidy.
struct WorkerRun<'a> {
    config: &'a EmbeddingConfig,
    shared: &'a SharedModel<'a>,
    edges: &'a [(NodeIdx, NodeIdx)],
    edge_alias: &'a AliasTable,
    neg_alias: &'a AliasTable,
    progress: &'a AtomicUsize,
    total: usize,
    samples: usize,
    seed: u64,
}

impl WorkerRun<'_> {
    fn go<S: HogwildScratch>(self, mut scratch: S) {
        let config = self.config;
        let table = sigmoid_table();
        let mut pool = RandPool::new(self.seed);
        let lr0 = config.initial_lr as f32;
        // P(drop) = threshold / 256; dropout in (0, 1/256) rounds up to one
        // count rather than silently disabling regularisation.
        let dropout_threshold = if config.dropout > 0.0 {
            ((config.dropout * 256.0) as u8).max(1)
        } else {
            0
        };

        let mut done = 0usize;
        while done < self.samples {
            let chunk = LR_CHUNK.min(self.samples - done);
            let global = self.progress.fetch_add(chunk, Ordering::Relaxed);
            let lr = if config.lr_decay {
                let frac = 1.0 - global as f32 / self.total as f32;
                lr0 * frac.max(1e-4)
            } else {
                lr0
            };

            for _ in 0..chunk {
                let (rec, mac) = self.edges[self.edge_alias.sample_with(pool.next())];
                for (i, j) in [(rec, mac), (mac, rec)] {
                    sample_negatives_fast(
                        self.neg_alias,
                        i,
                        j,
                        config.negatives,
                        scratch.negatives_mut(),
                        &mut pool,
                    );
                    let mut step = |src: (Space, NodeIdx), tgt: (Space, NodeIdx), neg: Space| {
                        scratch.step(
                            self.shared,
                            table,
                            src,
                            tgt,
                            neg,
                            lr,
                            dropout_threshold,
                            &mut pool,
                        );
                    };
                    match config.objective {
                        Objective::LineFirst => {
                            step((Space::Ego, i), (Space::Ego, j), Space::Ego);
                        }
                        Objective::LineSecond => {
                            step((Space::Ego, i), (Space::Context, j), Space::Context);
                        }
                        Objective::LineBoth => {
                            step((Space::Ego, i), (Space::Ego, j), Space::Ego);
                            step((Space::Ego, i), (Space::Context, j), Space::Context);
                        }
                        Objective::ELine => {
                            // Eq. (5) second-order term and its Eq. (8) mirror.
                            step((Space::Ego, i), (Space::Context, j), Space::Context);
                            step((Space::Context, i), (Space::Ego, j), Space::Ego);
                        }
                    }
                }
            }
            done += chunk;
        }
    }
}
