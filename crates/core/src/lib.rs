//! The GRAFICS pipeline: offline training (§IV) and online inference (§V).
//!
//! [`Grafics::train`] wires the three stages together —
//!
//! 1. build the weighted bipartite record/MAC graph from the crowdsourced
//!    corpus ([`grafics_graph`]),
//! 2. learn E-LINE node embeddings ([`grafics_embed`]),
//! 3. fit the constrained proximity hierarchical clustering over the
//!    record ego-embeddings, seeded by the few labelled samples
//!    ([`grafics_cluster`]) —
//!
//! and [`Grafics::infer`] performs the online path: insert the new record
//! into the graph, embed it with all other embeddings frozen, and return
//! the floor of the nearest cluster centroid.
//!
//! # Examples
//!
//! ```
//! use grafics_core::{Grafics, GraficsConfig};
//! use grafics_data::BuildingModel;
//! use rand::SeedableRng;
//!
//! let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(3);
//! let ds = BuildingModel::office("demo", 2).with_records_per_floor(40).simulate(&mut rng);
//! let split = ds.split(0.7, &mut rng).unwrap();
//! let train = split.train.with_label_budget(4, &mut rng);
//!
//! let mut model = Grafics::train(&train, &GraficsConfig::fast(), &mut rng).unwrap();
//! let mut hits = 0;
//! for s in split.test.samples() {
//!     if model.infer(&s.record, &mut rng).unwrap().floor == s.ground_truth {
//!         hits += 1;
//!     }
//! }
//! assert!(hits * 10 >= split.test.len() * 7);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use grafics_cluster::{ClusterModel, ClusteringConfig, Linkage};
use grafics_embed::{
    ElineTrainer, EmbedError, EmbeddingConfig, EmbeddingModel, Objective, OnlineScratch,
};
pub use grafics_graph::WeightFunction;
use grafics_graph::{BipartiteGraph, NegativeSampler, NodeIdx};
use grafics_types::{Dataset, FloorId, RecordId, SignalRecord};
use rand::Rng;
use serde::{Deserialize, Serialize};
use std::fmt;

mod fleet;
mod server;
pub mod wal;

pub use fleet::{
    read_manifest, read_router_manifest, write_router_manifest, BackendSpec, FleetError,
    FleetManifest, FleetPrediction, FleetStats, GraficsFleet, MaintenancePolicy, OverlapRouter,
    RecoveryReport, RetentionPolicy, Router, RouterKind, RouterManifest, Shard, ShardRecovery,
    ShardStats, WeightedOverlapRouter, DEFAULT_MARGIN_WINDOW, FLEET_MANIFEST_VERSION,
    ROUTER_MANIFEST_VERSION,
};
pub use grafics_cluster::{ClusterError, Prediction};
pub use grafics_types::{DurabilityPolicy, RefreshTrigger};
pub use server::{record_rng, GraficsServer, ServeCounters};
// The serving knobs live with their stages; re-export so serving tiers
// need only this crate.
pub use grafics_cluster::MatchPrecision;
pub use grafics_embed::{OnlineBudget, RefineOutcome};
pub use wal::{CrashPoint, FailpointFs, StdWalFs, WalFs, WalStats};

/// Flat hyper-parameter set for the whole pipeline. Defaults follow §VI-A
/// of the paper: dimension 8, four labels per floor (a dataset-side
/// concern), dropout 0.1, offset weight function with α = 120.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GraficsConfig {
    /// Embedding dimensionality (paper default 8; Fig. 15 shows
    /// insensitivity across 4–256).
    pub dim: usize,
    /// Embedding training passes over the edge set.
    pub epochs: usize,
    /// Negative samples per positive edge.
    pub negatives: usize,
    /// Initial SGD learning rate (decays linearly).
    pub initial_lr: f64,
    /// Gradient dropout rate.
    pub dropout: f64,
    /// Embedding objective; [`Objective::ELine`] is the paper's system,
    /// [`Objective::LineSecond`] reproduces the Fig. 13 ablation.
    pub objective: Objective,
    /// Edge-weight function (Fig. 16 ablation).
    pub weight_function: WeightFunction,
    /// Clustering linkage (the paper uses average linkage, Eq. (11)).
    pub linkage: Linkage,
    /// Enforce the one-labelled-sample-per-cluster merge constraint.
    pub constrained_clustering: bool,
    /// SGD samples per incident edge when embedding a new record online.
    pub online_samples_per_edge: usize,
    /// Optional adaptive override of the read-only serving refinement
    /// budget (see [`OnlineBudget`]). `None` — the default, and what
    /// every pre-existing saved config deserialises to — keeps the
    /// historical `Fixed(online_samples_per_edge)` behaviour. Honoured
    /// by [`GraficsServer`] sessions only; the mutable absorb path
    /// always runs the fixed budget so WAL replay streams never
    /// re-roll.
    pub online_budget: Option<OnlineBudget>,
    /// Optional precision of the serving centroid sweep (see
    /// [`MatchPrecision`]). `None` defaults to the historical `F64`.
    pub match_precision: Option<MatchPrecision>,
    /// Worker threads for the offline stages: `>= 2` enables the Hogwild
    /// embedding trainer and the parallel dissimilarity matrix. `1` (the
    /// default) keeps offline training fully deterministic. Online
    /// inference is unaffected — it is already microseconds per record.
    pub threads: usize,
}

impl Default for GraficsConfig {
    fn default() -> Self {
        GraficsConfig {
            dim: 8,
            epochs: 60,
            negatives: 5,
            initial_lr: 0.025,
            dropout: 0.1,
            objective: Objective::ELine,
            weight_function: WeightFunction::default(),
            linkage: Linkage::Average,
            constrained_clustering: true,
            online_samples_per_edge: 200,
            online_budget: None,
            match_precision: None,
            threads: 1,
        }
    }
}

impl GraficsConfig {
    /// A budget configuration for tests/examples: fewer epochs, smaller
    /// online refinement. Accuracy on small simulated buildings is within
    /// a point or two of the default.
    #[must_use]
    pub fn fast() -> Self {
        GraficsConfig {
            epochs: 30,
            online_samples_per_edge: 120,
            ..Default::default()
        }
    }

    /// A throughput-tuned configuration for online serving: full offline
    /// training, but a lighter per-query refinement budget. One new node's
    /// 2×dim coordinates converge long before the default budget is spent:
    /// sweeping `online_samples_per_edge` over {200, 120, 60, 40, 30, 20}
    /// (see `grafics-bench`'s `spe_sweep`) leaves floor accuracy flat down
    /// to 40 on both easy (office, 4 labels) and hard (5-floor mall,
    /// 2 labels) corpora, with degradation only below ~30. At 40 a served
    /// query costs roughly a third of [`GraficsConfig::fast`]'s.
    #[must_use]
    pub fn serving() -> Self {
        GraficsConfig {
            online_samples_per_edge: 40,
            ..Default::default()
        }
    }

    /// The embedding-stage view of this configuration.
    #[must_use]
    pub fn embedding(&self) -> EmbeddingConfig {
        EmbeddingConfig {
            dim: self.dim,
            objective: self.objective,
            epochs: self.epochs,
            negatives: self.negatives,
            initial_lr: self.initial_lr,
            lr_decay: true,
            dropout: self.dropout,
            negative_exponent: 0.75,
            online_samples_per_edge: self.online_samples_per_edge,
            online_budget: self.online_budget,
            threads: self.threads,
        }
    }

    /// The clustering-stage view of this configuration.
    #[must_use]
    pub fn clustering(&self) -> ClusteringConfig {
        ClusteringConfig {
            linkage: self.linkage,
            constrained: self.constrained_clustering,
            record_history: false,
            threads: self.threads,
        }
    }
}

/// Per-deployment overrides for the read-only serving path.
///
/// A serving tier (the fleet, the HTTP server) can carry one of these and
/// apply it to every session it opens, without mutating the model's own
/// [`GraficsConfig`] — the config stays exactly what training saved, so
/// model files round-trip bit-identically. `None` fields defer to the
/// model config's `online_budget` / `match_precision`, which in turn
/// default to the historical `Fixed(online_samples_per_edge)` + `F64`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct ServingPolicy {
    /// Refinement-budget override; `None` defers to the model config.
    pub budget: Option<OnlineBudget>,
    /// Matching-precision override; `None` defers to the model config.
    pub precision: Option<MatchPrecision>,
}

impl ServingPolicy {
    /// Resolve the effective serving knobs against a model's config.
    #[must_use]
    pub fn resolve(&self, config: &GraficsConfig) -> (OnlineBudget, MatchPrecision) {
        let budget = self
            .budget
            .or(config.online_budget)
            .unwrap_or(OnlineBudget::Fixed(config.online_samples_per_edge));
        let precision = self
            .precision
            .or(config.match_precision)
            .unwrap_or_default();
        (budget, precision)
    }
}

/// Errors from the pipeline.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum GraficsError {
    /// The training dataset is empty.
    EmptyTrainingSet,
    /// Embedding-stage failure.
    Embed(EmbedError),
    /// Clustering-stage failure (e.g. no labelled samples in training).
    Cluster(ClusterError),
    /// The record to infer shares no MAC with the training graph; per §V
    /// footnote 1 it was likely collected outside the building.
    OutsideBuilding,
}

impl fmt::Display for GraficsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraficsError::EmptyTrainingSet => write!(f, "training dataset is empty"),
            GraficsError::Embed(e) => write!(f, "embedding stage: {e}"),
            GraficsError::Cluster(e) => write!(f, "clustering stage: {e}"),
            GraficsError::OutsideBuilding => {
                write!(f, "record shares no MAC with the building graph; discarded")
            }
        }
    }
}

impl std::error::Error for GraficsError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            GraficsError::Embed(e) => Some(e),
            GraficsError::Cluster(e) => Some(e),
            _ => None,
        }
    }
}

impl From<EmbedError> for GraficsError {
    fn from(e: EmbedError) -> Self {
        GraficsError::Embed(e)
    }
}

impl From<ClusterError> for GraficsError {
    fn from(e: ClusterError) -> Self {
        GraficsError::Cluster(e)
    }
}

/// A trained GRAFICS model: graph + embeddings + labelled clusters.
///
/// [`Grafics::infer`] is `&mut self` because the paper's online path
/// *extends the graph* with each new record (and any new MACs it carries)
/// before embedding it — the model keeps learning the building's signal
/// map. The two halves are also available separately:
/// [`Grafics::absorb_record`] mutates without predicting, and the
/// read-only [`GraficsServer`] view ([`Grafics::server`],
/// [`Grafics::serve_batch`]) predicts without mutating. A
/// [`GraficsFleet`] shard runs both concurrently: a frozen snapshot
/// serves while a write-side clone absorbs, swapped by
/// [`Shard::publish`].
///
/// The model is `serde`-serialisable; see [`Grafics::save_json`] /
/// [`Grafics::load_json`] for file persistence.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Grafics {
    config: GraficsConfig,
    trainer: ElineTrainer,
    graph: BipartiteGraph,
    embeddings: EmbeddingModel,
    clusters: ClusterModel,
    train_records: usize,
    /// The Eq. (10) negative distribution, maintained incrementally in
    /// O(deg · log n) per graph mutation so no query pays the O(n)
    /// rebuild. Serialised with the model: its exact floating-point state
    /// determines the online RNG stream, so a save/load roundtrip keeps
    /// predictions bit-identical.
    neg_sampler: NegativeSampler,
}

impl Grafics {
    /// Offline training over a crowdsourced corpus in which only a few
    /// samples carry floor labels (`sample.floor`).
    ///
    /// # Errors
    ///
    /// - [`GraficsError::EmptyTrainingSet`];
    /// - [`GraficsError::Embed`] on invalid embedding config or edgeless
    ///   graph;
    /// - [`GraficsError::Cluster`] when no sample carries a label.
    pub fn train<R: Rng + ?Sized>(
        train: &Dataset,
        config: &GraficsConfig,
        rng: &mut R,
    ) -> Result<Self, GraficsError> {
        if train.is_empty() {
            return Err(GraficsError::EmptyTrainingSet);
        }
        let graph = BipartiteGraph::from_dataset(train, config.weight_function);
        let trainer = ElineTrainer::new(config.embedding());
        let embeddings = trainer.train(&graph, rng)?;

        // Ego embeddings land directly in the flat point matrix the
        // clustering stage consumes — no per-record Vec<f64> detour.
        let mut points = grafics_types::RowMatrix::with_capacity(train.len(), config.dim);
        let mut labels = Vec::with_capacity(train.len());
        for (i, sample) in train.samples().iter().enumerate() {
            let node = graph
                .record_node(RecordId(i as u32))
                .expect("training records are live");
            points.push_row_widen(embeddings.ego(node));
            labels.push(sample.floor);
        }
        let clusters = ClusterModel::fit(&points, &labels, &config.clustering())?;
        let neg_sampler = NegativeSampler::from_graph(&graph, trainer.config().negative_exponent);
        Ok(Grafics {
            config: *config,
            trainer,
            graph,
            embeddings,
            clusters,
            train_records: train.len(),
            neg_sampler,
        })
    }

    /// Online inference for one new RF record (§V): extends the graph,
    /// embeds the new node with everything else frozen, and returns the
    /// floor of the nearest cluster centroid.
    ///
    /// # Errors
    ///
    /// - [`GraficsError::OutsideBuilding`] if the record shares no MAC with
    ///   the graph (the record is *not* added);
    /// - [`GraficsError::Embed`] on embedding failure.
    pub fn infer<R: Rng + ?Sized>(
        &mut self,
        record: &SignalRecord,
        rng: &mut R,
    ) -> Result<Prediction, GraficsError> {
        let node = self.insert_record(record, rng)?;
        let query = self.embeddings.ego_vec(node);
        Ok(self.clusters.predict(&query)?)
    }

    /// Batch inference: predicts every record in order, mapping
    /// per-record failures (outside-building, isolated) to `None` rather
    /// than aborting the batch. One scratch is reused across the whole
    /// batch, so the per-record hot loop is allocation-free like the
    /// [`GraficsServer`] sessions.
    pub fn infer_batch<R: Rng + ?Sized>(
        &mut self,
        records: &[SignalRecord],
        rng: &mut R,
    ) -> Vec<Option<Prediction>> {
        let mut scratch = OnlineScratch::new();
        records
            .iter()
            .map(|r| {
                let node = self.insert_record_with(r, &mut scratch, rng).ok()?;
                let query = self.embeddings.ego_vec(node);
                self.clusters.predict(&query).ok()
            })
            .collect()
    }

    /// Like [`Grafics::infer`], but returns the `k` nearest clusters as
    /// `(floor, distance)` pairs (ascending by centroid distance). The gap
    /// between the best prediction and the nearest *different-floor*
    /// candidate is a natural confidence signal — small near stairwells,
    /// large mid-floor — and what fleet routing surfaces per query.
    ///
    /// # Errors
    ///
    /// Same failure modes as [`Grafics::infer`].
    pub fn infer_topk<R: Rng + ?Sized>(
        &mut self,
        record: &SignalRecord,
        k: usize,
        rng: &mut R,
    ) -> Result<Vec<(FloorId, f64)>, GraficsError> {
        let node = self.insert_record(record, rng)?;
        let query = self.embeddings.ego_vec(node);
        Ok(self.clusters.predict_topk(&query, k)?)
    }

    /// The absorb half of the online path (§V-A), split out of
    /// [`Grafics::infer`]: extends the graph with `record` (and any new
    /// MACs), embeds the new node against the frozen background, and syncs
    /// the negative sampler — but computes **no floor prediction**. This is
    /// what a fleet shard's write side runs while a frozen snapshot serves
    /// reads; the returned id feeds [`Grafics::forget_record`]-based
    /// retention.
    ///
    /// At equal seeds, `absorb_record` + a later prediction over the
    /// absorbed node is exactly what [`Grafics::infer_tracked`] returns in
    /// one call.
    ///
    /// # Errors
    ///
    /// Same failure modes as [`Grafics::infer`] (the record is *not* added
    /// on [`GraficsError::OutsideBuilding`]).
    pub fn absorb_record<R: Rng + ?Sized>(
        &mut self,
        record: &SignalRecord,
        rng: &mut R,
    ) -> Result<RecordId, GraficsError> {
        self.absorb_record_with(record, &mut OnlineScratch::new(), rng)
    }

    /// [`Grafics::absorb_record`] with a caller-owned scratch, so a stream
    /// of absorbs is allocation-free after warm-up.
    ///
    /// # Errors
    ///
    /// Same failure modes as [`Grafics::absorb_record`].
    pub fn absorb_record_with<R: Rng + ?Sized>(
        &mut self,
        record: &SignalRecord,
        scratch: &mut OnlineScratch,
        rng: &mut R,
    ) -> Result<RecordId, GraficsError> {
        let node = self.insert_record_with(record, scratch, rng)?;
        match self.graph.kind(node) {
            grafics_graph::NodeKind::Record(rid) => Ok(rid),
            grafics_graph::NodeKind::Mac(_) => unreachable!("inserted node is a record"),
        }
    }

    /// The floor of a previously absorbed record, from its stored
    /// embedding — no graph mutation, no RNG. `None` if `rid` is not live.
    /// Used by retention policies that bucket absorbed records per floor.
    #[must_use]
    pub fn floor_of_record(&self, rid: RecordId) -> Option<Prediction> {
        let node = self.graph.record_node(rid)?;
        let query = self.embeddings.ego_vec(node);
        self.clusters.predict(&query).ok()
    }

    /// Like [`Grafics::infer`], but also returns the new record's id and
    /// graph node so callers can track it (e.g. for later removal).
    pub fn infer_tracked<R: Rng + ?Sized>(
        &mut self,
        record: &SignalRecord,
        rng: &mut R,
    ) -> Result<(RecordId, Prediction), GraficsError> {
        let node = self.insert_record(record, rng)?;
        let query = self.embeddings.ego_vec(node);
        let rid = match self.graph.kind(node) {
            grafics_graph::NodeKind::Record(rid) => rid,
            grafics_graph::NodeKind::Mac(_) => unreachable!("inserted node is a record"),
        };
        Ok((rid, self.clusters.predict(&query)?))
    }

    fn insert_record<R: Rng + ?Sized>(
        &mut self,
        record: &SignalRecord,
        rng: &mut R,
    ) -> Result<NodeIdx, GraficsError> {
        self.insert_record_with(record, &mut OnlineScratch::new(), rng)
    }

    fn insert_record_with<R: Rng + ?Sized>(
        &mut self,
        record: &SignalRecord,
        scratch: &mut OnlineScratch,
        rng: &mut R,
    ) -> Result<NodeIdx, GraficsError> {
        if !self.graph.overlaps(record) {
            return Err(GraficsError::OutsideBuilding);
        }
        let rid = self.graph.add_record(record);
        let node = self.graph.record_node(rid).expect("just inserted");
        // Embed against the sampler state from *before* the insertion (the
        // frozen background graph) — the same distribution the read-only
        // [`GraficsServer`] sees, keeping both paths bit-identical per
        // seed. Only then absorb the new node and its degree changes into
        // the sampler, in O(deg · log n), for subsequent queries.
        let embedded = self.trainer.embed_new_node_with(
            &self.graph,
            &mut self.embeddings,
            node,
            &self.neg_sampler,
            scratch,
            rng,
        );
        // The graph mutation above is already committed (a failed embed
        // leaves the record in place, as it always has), so the sampler
        // must absorb it even on the error path — otherwise the
        // sampler ≡ fresh-sweep invariant would break for good.
        self.neg_sampler.sync_inserted(&self.graph, node);
        embedded?;
        Ok(node)
    }

    /// The pipeline configuration.
    #[must_use]
    pub fn config(&self) -> &GraficsConfig {
        &self.config
    }

    /// The (growing) bipartite graph.
    #[must_use]
    pub fn graph(&self) -> &BipartiteGraph {
        &self.graph
    }

    /// The learned embeddings.
    #[must_use]
    pub fn embeddings(&self) -> &EmbeddingModel {
        &self.embeddings
    }

    /// The fitted clusters.
    #[must_use]
    pub fn clusters(&self) -> &ClusterModel {
        &self.clusters
    }

    /// Number of records in the offline training corpus.
    #[must_use]
    pub fn train_record_count(&self) -> usize {
        self.train_records
    }

    /// The *virtual labels* the clustering assigned to every training
    /// record (§IV-C: unlabeled samples inherit the label of the labelled
    /// sample in their cluster). Used as pseudo-labels by the supervised
    /// baselines and for the Fig. 8 progression.
    #[must_use]
    pub fn virtual_labels(&self) -> Vec<FloorId> {
        self.clusters.virtual_labels()
    }

    /// Removes a previously inserted record from the graph (e.g. expiring
    /// inference-time records to bound memory). The negative sampler is
    /// resynced only for the touched nodes (O(deg · log n)).
    ///
    /// # Errors
    ///
    /// Propagates the graph's unknown-record error.
    pub fn forget_record(&mut self, rid: RecordId) -> Result<(), grafics_graph::GraphError> {
        let node = self
            .graph
            .record_node(rid)
            .ok_or(grafics_graph::GraphError::UnknownRecord(rid))?;
        let former: Vec<NodeIdx> = self.graph.neighbors(node).iter().map(|&(n, _)| n).collect();
        self.graph.remove_record(rid)?;
        self.neg_sampler.sync_removed(&self.graph, node, &former);
        Ok(())
    }

    /// Decommissions an access point: its MAC node and edges leave the
    /// graph (§III-A "installation and removal of APs"). Existing clusters
    /// are unaffected — record embeddings stay put — but future online
    /// inferences no longer connect through the removed AP. The negative
    /// sampler is resynced only for the touched nodes (O(deg · log n)).
    ///
    /// # Errors
    ///
    /// Propagates the graph's unknown-MAC error.
    pub fn remove_ap(
        &mut self,
        mac: grafics_types::MacAddr,
    ) -> Result<(), grafics_graph::GraphError> {
        let node = self
            .graph
            .mac_node(mac)
            .ok_or(grafics_graph::GraphError::UnknownMac(mac))?;
        let former: Vec<NodeIdx> = self.graph.neighbors(node).iter().map(|&(n, _)| n).collect();
        self.graph.remove_mac(mac)?;
        self.neg_sampler.sync_removed(&self.graph, node, &former);
        Ok(())
    }

    /// Serialises the whole model (graph, embeddings, clusters, config)
    /// to a JSON file, so a deployment can train once and serve many
    /// processes.
    ///
    /// # Errors
    ///
    /// Returns the underlying IO/serde error as `std::io::Error`.
    pub fn save_json<P: AsRef<std::path::Path>>(&self, path: P) -> std::io::Result<()> {
        let json = serde_json::to_string(self).map_err(std::io::Error::other)?;
        std::fs::write(path, json)
    }

    /// Loads a model previously written by [`Grafics::save_json`].
    ///
    /// Model files written before the serving engine carry no
    /// `neg_sampler` field; they are migrated transparently — the sampler
    /// is fully derivable from the graph, so the rebuild is lossless
    /// (only the RNG draw stream of subsequent online inference differs
    /// from a natively saved sampler state).
    ///
    /// # Errors
    ///
    /// Returns the underlying IO/serde error as `std::io::Error`.
    pub fn load_json<P: AsRef<std::path::Path>>(path: P) -> std::io::Result<Self> {
        let json = std::fs::read_to_string(path)?;
        match serde_json::from_str(&json) {
            Ok(model) => Ok(model),
            Err(current_err) => {
                // Pre-serving-engine format: everything but the sampler.
                #[derive(Deserialize)]
                struct GraficsV1 {
                    config: GraficsConfig,
                    trainer: ElineTrainer,
                    graph: BipartiteGraph,
                    embeddings: EmbeddingModel,
                    clusters: ClusterModel,
                    train_records: usize,
                }
                let v1: GraficsV1 =
                    serde_json::from_str(&json).map_err(|_| std::io::Error::other(current_err))?;
                let neg_sampler =
                    NegativeSampler::from_graph(&v1.graph, v1.trainer.config().negative_exponent);
                Ok(Grafics {
                    config: v1.config,
                    trainer: v1.trainer,
                    graph: v1.graph,
                    embeddings: v1.embeddings,
                    clusters: v1.clusters,
                    train_records: v1.train_records,
                    neg_sampler,
                })
            }
        }
    }

    /// Batch refresh (§V-A discusses keeping online inference cheap by
    /// freezing old embeddings; over time, drift accumulates): re-trains
    /// the embeddings over the *current* graph — which includes every
    /// record absorbed during online inference — and refits the clusters
    /// using the original labelled samples' virtual positions.
    ///
    /// Labels are taken from the first `train_record_count()` records
    /// (the offline corpus); records added online stay unlabelled.
    ///
    /// With [`GraficsConfig::threads`] `>= 2` (see also
    /// [`Grafics::set_threads`]) both offline stages run their parallel
    /// paths: the lock-free Hogwild embedding trainer and the parallel
    /// dissimilarity matrix. `threads == 1` re-trains bit-identically to
    /// the serial pipeline. The negative sampler is rebuilt from scratch
    /// afterwards, clearing any accumulated floating-point drift — a
    /// refresh is the natural epoch boundary for the serving state.
    ///
    /// # Errors
    ///
    /// Same failure modes as [`Grafics::train`].
    pub fn refresh<R: Rng + ?Sized>(
        &mut self,
        labels: &[Option<FloorId>],
        rng: &mut R,
    ) -> Result<(), GraficsError> {
        self.embeddings = self.trainer.train(&self.graph, rng)?;
        let mut points = grafics_types::RowMatrix::with_cols(self.config.dim);
        let mut point_labels = Vec::new();
        for (rid, node) in self.graph.record_ids() {
            points.push_row_widen(self.embeddings.ego(node));
            point_labels.push(labels.get(rid.index()).copied().flatten());
        }
        self.clusters = ClusterModel::fit(&points, &point_labels, &self.config.clustering())?;
        self.neg_sampler =
            NegativeSampler::from_graph(&self.graph, self.trainer.config().negative_exponent);
        Ok(())
    }

    /// Changes the worker-thread budget of every offline stage — the
    /// Hogwild embedding trainer and the parallel dissimilarity matrix
    /// used by [`Grafics::refresh`] — e.g. to re-thread a model that was
    /// trained on different hardware than it is served on. Clamped to at
    /// least 1; `1` restores the exact serial pipeline. Online inference
    /// is unaffected (it is already O(deg) per query and parallelised
    /// across queries by [`Grafics::serve_batch`]).
    pub fn set_threads(&mut self, threads: usize) {
        self.config.threads = threads.max(1);
        self.trainer.set_threads(self.config.threads);
    }

    /// The incrementally maintained negative-sampling distribution — for
    /// diagnostics and tests; `Grafics` keeps it in lockstep with the
    /// graph through every mutation.
    #[must_use]
    pub fn negative_sampler(&self) -> &NegativeSampler {
        &self.neg_sampler
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use grafics_data::BuildingModel;
    use grafics_types::{MacAddr, Reading, Rssi};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn trained(seed: u64) -> (Grafics, grafics_types::Dataset) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let ds = BuildingModel::office("core-test", 3)
            .with_records_per_floor(60)
            .simulate(&mut rng);
        let split = ds.split(0.7, &mut rng).unwrap();
        let train = split.train.with_label_budget(4, &mut rng);
        let model = Grafics::train(&train, &GraficsConfig::fast(), &mut rng).unwrap();
        (model, split.test)
    }

    #[test]
    fn end_to_end_accuracy_three_floors() {
        let (mut model, test) = trained(1);
        let mut rng = ChaCha8Rng::seed_from_u64(99);
        let mut hits = 0;
        let mut total = 0;
        for s in test.samples() {
            if let Ok(pred) = model.infer(&s.record, &mut rng) {
                total += 1;
                if pred.floor == s.ground_truth {
                    hits += 1;
                }
            }
        }
        assert!(total > 0);
        assert!(
            hits * 10 >= total * 8,
            "expected >= 80% floor accuracy with 4 labels/floor, got {hits}/{total}"
        );
    }

    #[test]
    fn parallel_training_stays_accurate() {
        let mut rng = ChaCha8Rng::seed_from_u64(13);
        let ds = BuildingModel::office("par", 3)
            .with_records_per_floor(60)
            .simulate(&mut rng);
        let split = ds.split(0.7, &mut rng).unwrap();
        let train = split.train.with_label_budget(4, &mut rng);
        let cfg = GraficsConfig {
            threads: 4,
            ..GraficsConfig::fast()
        };
        let mut model = Grafics::train(&train, &cfg, &mut rng).unwrap();
        let mut hits = 0;
        let mut total = 0;
        for s in split.test.samples() {
            if let Ok(pred) = model.infer(&s.record, &mut rng) {
                total += 1;
                if pred.floor == s.ground_truth {
                    hits += 1;
                }
            }
        }
        assert!(total > 0);
        assert!(
            hits * 10 >= total * 7,
            "Hogwild-trained pipeline should stay accurate, got {hits}/{total}"
        );
    }

    #[test]
    fn outside_building_rejected_and_not_added() {
        let (mut model, _) = trained(2);
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let foreign = SignalRecord::new(vec![Reading::new(
            MacAddr::from_u64(0xdead_beef),
            Rssi::new(-50.0).unwrap(),
        )])
        .unwrap();
        let records_before = model.graph().record_count();
        assert_eq!(
            model.infer(&foreign, &mut rng),
            Err(GraficsError::OutsideBuilding)
        );
        assert_eq!(model.graph().record_count(), records_before);
    }

    #[test]
    fn inference_extends_graph() {
        let (mut model, test) = trained(3);
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let before = model.graph().record_count();
        model.infer(&test.samples()[0].record, &mut rng).unwrap();
        assert_eq!(model.graph().record_count(), before + 1);
    }

    #[test]
    fn infer_tracked_allows_forgetting() {
        let (mut model, test) = trained(4);
        let mut rng = ChaCha8Rng::seed_from_u64(6);
        let before = model.graph().record_count();
        let (rid, _) = model
            .infer_tracked(&test.samples()[0].record, &mut rng)
            .unwrap();
        model.forget_record(rid).unwrap();
        assert_eq!(model.graph().record_count(), before);
        assert!(model.forget_record(rid).is_err());
    }

    #[test]
    fn empty_training_set_rejected() {
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let err = Grafics::train(&Dataset::default(), &GraficsConfig::fast(), &mut rng);
        assert_eq!(err.unwrap_err(), GraficsError::EmptyTrainingSet);
    }

    #[test]
    fn unlabeled_training_set_rejected() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let ds = BuildingModel::office("x", 2)
            .with_records_per_floor(10)
            .simulate(&mut rng)
            .unlabeled();
        let err = Grafics::train(&ds, &GraficsConfig::fast(), &mut rng);
        assert!(matches!(
            err,
            Err(GraficsError::Cluster(ClusterError::NoLabeledSamples))
        ));
    }

    #[test]
    fn virtual_labels_cover_training_set() {
        let (model, _) = trained(5);
        let virt = model.virtual_labels();
        assert_eq!(virt.len(), model.train_record_count());
    }

    #[test]
    fn cluster_count_equals_label_count() {
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let ds = BuildingModel::office("c", 3)
            .with_records_per_floor(40)
            .simulate(&mut rng);
        let train = ds.with_label_budget(4, &mut rng);
        let model = Grafics::train(&train, &GraficsConfig::fast(), &mut rng).unwrap();
        assert_eq!(model.clusters().clusters().len(), 12); // 4 labels × 3 floors
    }

    #[test]
    fn save_load_roundtrip_preserves_predictions() {
        let (mut model, test) = trained(20);
        let dir = std::env::temp_dir().join("grafics-core-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("model.json");
        model.save_json(&path).unwrap();
        let mut loaded = Grafics::load_json(&path).unwrap();
        std::fs::remove_file(&path).ok();

        let mut rng_a = ChaCha8Rng::seed_from_u64(55);
        let mut rng_b = ChaCha8Rng::seed_from_u64(55);
        for s in test.samples().iter().take(10) {
            let a = model.infer(&s.record, &mut rng_a).unwrap();
            let b = loaded.infer(&s.record, &mut rng_b).unwrap();
            assert_eq!(a.floor, b.floor);
        }
    }

    #[test]
    fn refresh_after_online_growth() {
        let (mut model, test) = trained(21);
        let mut rng = ChaCha8Rng::seed_from_u64(77);
        // Absorb a batch of online records.
        for s in test.samples().iter().take(20) {
            let _ = model.infer(&s.record, &mut rng);
        }
        // Labels of the original offline corpus (online ones unlabelled).
        let labels: Vec<Option<FloorId>> = (0..model.train_record_count()).map(|_| None).collect();
        // Without any labels the refit must fail loudly …
        assert!(matches!(
            model.refresh(&labels, &mut rng),
            Err(GraficsError::Cluster(ClusterError::NoLabeledSamples))
        ));
        // … and with a few labels it succeeds and stays accurate.
        let mut rng2 = ChaCha8Rng::seed_from_u64(21);
        let ds = BuildingModel::office("core-test", 3)
            .with_records_per_floor(60)
            .simulate(&mut rng2);
        let split = ds.split(0.7, &mut rng2).unwrap();
        let train = split.train.with_label_budget(4, &mut rng2);
        let labels: Vec<Option<FloorId>> = train.samples().iter().map(|s| s.floor).collect();
        model.refresh(&labels, &mut rng).unwrap();
        let mut hits = 0;
        let mut total = 0;
        for s in test.samples().iter().skip(20) {
            if let Ok(p) = model.infer(&s.record, &mut rng) {
                total += 1;
                if p.floor == s.ground_truth {
                    hits += 1;
                }
            }
        }
        assert!(
            total > 0 && hits * 10 >= total * 7,
            "after refresh: {hits}/{total}"
        );
    }

    #[test]
    fn single_floor_building_works() {
        let mut rng = ChaCha8Rng::seed_from_u64(8);
        let ds = BuildingModel::office("one", 1)
            .with_records_per_floor(30)
            .simulate(&mut rng);
        let split = ds.split(0.7, &mut rng).unwrap();
        let train = split.train.with_label_budget(2, &mut rng);
        let mut model = Grafics::train(&train, &GraficsConfig::fast(), &mut rng).unwrap();
        for s in split.test.samples() {
            assert_eq!(model.infer(&s.record, &mut rng).unwrap().floor, FloorId(0));
        }
    }
}
