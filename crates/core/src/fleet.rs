//! Fleet-scale serving: one shard per building, concurrent absorb+serve.
//!
//! The paper's deployment story is city-scale floor identification —
//! hundreds of buildings, each with its own crowdsourced signal map. A
//! [`GraficsFleet`] holds one [`Shard`] per building (keyed by
//! [`BuildingId`]) and routes each query to the shard whose AP inventory
//! it overlaps, via a pluggable [`Router`].
//!
//! # Double-buffered shards
//!
//! Online traffic both *reads* (predict a floor) and *writes* (the graph
//! absorbs every accepted record, §V-A). A monolithic [`Grafics`] forces
//! the two through one `&mut` choke point. Each shard instead keeps two
//! copies of the model:
//!
//! - a **published snapshot** (`Arc<Grafics>`) that serves reads with
//!   `&self` — any number of threads, no locks held while embedding;
//! - a **write side** (`Grafics` behind a mutex) that absorbs records and
//!   applies the shard's [`RetentionPolicy`].
//!
//! [`Shard::publish`] swaps the snapshot pointer in O(1): readers that
//! already hold the old `Arc` finish on the epoch they started, new
//! sessions see the absorbed records. Preparing the next snapshot (one
//! model clone) happens on the publisher's thread, never on the serve
//! path. Absorb and serve therefore no longer contend — the fleet smoke
//! benchmark pins served queries/sec during a concurrent absorb stream to
//! the idle-shard rate.
//!
//! # Bounded memory
//!
//! A long-running shard cannot grow without bound: the write side's
//! [`RetentionPolicy`] evicts absorbed records (never the offline
//! training corpus) through [`Grafics::forget_record`], which keeps the
//! incremental `NegativeSampler` in exact lockstep — a property test pins
//! the sampler's weights against a from-scratch rebuild after arbitrary
//! interleaved absorb/evict sequences.
//!
//! # Determinism
//!
//! Routing reads only published snapshots, absorption happens in call
//! order under one lock, and publishes are explicit — so shard
//! assignment, absorbed-graph state, and publish epochs are pure
//! functions of (models, record stream, seed), independent of thread
//! count. [`GraficsFleet::serve_batch`] gives record `i` the same
//! [`record_rng`](crate::record_rng) stream as the single-building
//! [`Grafics::serve_batch`], so fleet serving is bit-identical to serving
//! each record on its shard serially.
//!
//! # Persistence
//!
//! A fleet directory is self-describing: [`GraficsFleet::save_dir`]
//! writes a `fleet.json` [`FleetManifest`] (router choice, retention
//! policy, maintenance cadence) next to the `shard-<id>.json` models,
//! and [`GraficsFleet::load_dir`] restores all three without runtime
//! flags. Pre-manifest directories load with [`FleetManifest::default`],
//! which reproduces the old hard-wired behaviour losslessly.
//!
//! # Cross-shard fallback
//!
//! A record the router declines (e.g. collected on a podium floor whose
//! APs straddle buildings) can still be served:
//! [`GraficsFleet::serve_with_fallback`] /
//! [`GraficsFleet::serve_batch_with_fallback`] broadcast it to every
//! shard and keep the best-distance answer, flagged
//! [`FleetPrediction::fallback`].

use crate::server::serve_with_margin_scratch;
use crate::wal::{
    self, checkpoint_file_name, encode_header, wal_file_name, FloorBucket, StdWalFs, WalEntry,
    WalFs, WalStats, WalWriter,
};
use crate::{
    record_rng, Grafics, GraficsError, GraficsServer, Prediction, ServeCounters, ServingPolicy,
};
use grafics_cluster::MatchScratch;
use grafics_embed::OnlineScratch;
use grafics_types::{
    BreakerPolicy, BuildingId, DurabilityPolicy, FloorId, HealthPolicy, RateLimitPolicy, RecordId,
    RefreshTrigger, SignalRecord,
};
use parking_lot::{Mutex, RwLock};
use rand::Rng;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::fmt;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// How a shard bounds the memory of records absorbed online. The offline
/// training corpus is never evicted; policies act only on records the
/// shard absorbed after construction.
///
/// Eviction runs [`Grafics::forget_record`], so the graph, the embedding
/// rows (tombstoned), and the incremental negative sampler stay in exact
/// lockstep. MAC nodes are not evicted — they are the building's AP
/// inventory, bounded by the physical installation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum RetentionPolicy {
    /// Absorb forever (the pre-fleet behaviour). Memory grows with
    /// traffic; use only behind periodic [`Grafics::refresh`] + rebuild.
    KeepAll,
    /// Keep at most this many absorbed records, evicting the oldest
    /// first. `FifoBudget(0)` absorbs-and-forgets: every record is
    /// embedded and predicted against, then immediately evicted.
    FifoBudget(usize),
    /// Keep at most this many absorbed records *per predicted floor*,
    /// evicting the oldest of the crowded floor — balanced coverage when
    /// traffic skews to entrance floors.
    PerFloorCap(usize),
}

impl RetentionPolicy {
    /// `true` if this policy can ever evict.
    #[must_use]
    pub fn bounds_memory(&self) -> bool {
        !matches!(self, RetentionPolicy::KeepAll)
    }
}

/// Which built-in [`Router`] a fleet uses — the *persistable* router
/// choice, stored in the fleet directory manifest so a reloaded fleet
/// routes exactly like the one that saved it. Custom `Box<dyn Router>`
/// implementations (via [`GraficsFleet::with_router`]) are runtime-only
/// and round-trip as [`RouterKind::Overlap`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum RouterKind {
    /// [`OverlapRouter`]: most known MACs wins.
    Overlap,
    /// [`WeightedOverlapRouter`]: largest summed edge weight over known
    /// MACs wins — favours strong in-building readings over stray
    /// hotspots heard through a wall.
    WeightedOverlap,
}

impl RouterKind {
    /// Instantiates the router this kind names.
    #[must_use]
    pub fn build(self) -> Box<dyn Router> {
        match self {
            RouterKind::Overlap => Box::new(OverlapRouter),
            RouterKind::WeightedOverlap => Box::new(WeightedOverlapRouter),
        }
    }
}

/// Background maintenance cadence for a served fleet, persisted in the
/// fleet directory manifest and enforced by `grafics-serve`'s
/// `MaintenanceDaemon`. All knobs are optional; the default policy does
/// nothing (publish stays fully manual, the pre-daemon behaviour).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub struct MaintenancePolicy {
    /// Auto-publish a shard once this many absorbs are pending.
    /// `Some(0)` is treated as disabled (enforcing "publish with
    /// nothing pending, forever" is never intended).
    pub publish_after_absorbs: Option<usize>,
    /// Auto-publish a shard with pending absorbs after this many seconds
    /// since its last publish.
    pub publish_after_secs: Option<f64>,
    /// Re-train a shard's write side ([`Shard::refresh_write_side`])
    /// after every this-many publishes, then publish the refreshed
    /// model. `Some(0)` is treated as disabled.
    pub refresh_every_publishes: Option<u32>,
    /// Drift-triggered refresh: re-train a shard when its served
    /// floor-margin distribution degrades ([`RefreshTrigger`],
    /// evaluated by [`Shard::margin_refresh_due`]) instead of — or in
    /// addition to — the blind publish-count cadence. Pre-version-4
    /// manifests load as `None` (cadence only).
    pub refresh_trigger: Option<RefreshTrigger>,
}

impl MaintenancePolicy {
    /// `true` if no knob is set — a daemon over this policy would never
    /// act.
    #[must_use]
    pub fn is_noop(&self) -> bool {
        self.publish_after_absorbs.is_none()
            && self.publish_after_secs.is_none()
            && self.refresh_every_publishes.is_none()
            && self.effective_trigger().is_none()
    }

    /// The effective drift trigger, with degenerate knobs filtered out.
    #[must_use]
    pub fn effective_trigger(&self) -> Option<RefreshTrigger> {
        self.refresh_trigger.filter(|t| !t.is_noop())
    }
}

/// The fleet directory manifest (`fleet.json`): everything about a fleet
/// that is not a shard model — router choice, retention policy, and
/// maintenance cadence. Written by [`GraficsFleet::save_dir`], read back
/// by [`GraficsFleet::load_dir`]. Directories written before the manifest
/// existed (PR-3 era) load losslessly with [`FleetManifest::default`],
/// which reproduces the old hard-wired behaviour exactly.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FleetManifest {
    /// Manifest format version (currently 3).
    pub version: u32,
    /// Which built-in router the fleet uses.
    pub router: RouterKind,
    /// The retention policy applied to every shard.
    pub retention: RetentionPolicy,
    /// Background publish/refresh cadence.
    pub maintenance: MaintenancePolicy,
    /// Absorb write-ahead-log durability (see the [`wal`] module).
    pub durability: DurabilityPolicy,
    /// Deployment-level serving overrides (refinement budget, matching
    /// precision) applied to every serving session the fleet opens.
    /// `None` — what every pre-version-3 manifest loads as — keeps the
    /// historical per-model defaults.
    pub serving: Option<ServingPolicy>,
}

impl Default for FleetManifest {
    /// The PR-3-era semantics: overlap routing, absorb forever, no
    /// background maintenance, no WAL.
    fn default() -> Self {
        FleetManifest {
            version: FLEET_MANIFEST_VERSION,
            router: RouterKind::Overlap,
            retention: RetentionPolicy::KeepAll,
            maintenance: MaintenancePolicy::default(),
            durability: DurabilityPolicy::Off,
            serving: None,
        }
    }
}

/// Current [`FleetManifest::version`]. Version 2 added the `durability`
/// field; version-1 manifests load with [`DurabilityPolicy::Off`].
/// Version 3 added the optional `serving` policy; earlier manifests load
/// with `None` (per-model defaults). Version 4 added the optional
/// `maintenance.refresh_trigger`; earlier manifests load with `None`
/// (cadence-only maintenance) — the vendored serde reads a missing field
/// as `null`, so no fallback shape is needed.
pub const FLEET_MANIFEST_VERSION: u32 = 4;

/// File name of the manifest inside a fleet directory.
const FLEET_MANIFEST_FILE: &str = "fleet.json";

/// Errors from the fleet layer.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum FleetError {
    /// No shard's AP inventory overlaps the record — per §V footnote 1 it
    /// was likely collected outside every known building.
    NoRoute,
    /// The named building has no shard.
    UnknownBuilding(BuildingId),
    /// A shard with this id already exists.
    DuplicateBuilding(BuildingId),
    /// The routed shard's model failed on the record.
    Model(GraficsError),
    /// The shard's write-ahead log is poisoned (an fs append, fsync, or
    /// checkpoint failed). Durable absorbs fail fast rather than
    /// silently diverging from disk; run `grafics fleet recover` after
    /// fixing the underlying fault.
    Durability(String),
}

impl fmt::Display for FleetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FleetError::NoRoute => {
                write!(f, "record overlaps no building in the fleet; discarded")
            }
            FleetError::UnknownBuilding(b) => write!(f, "no shard for building {b}"),
            FleetError::DuplicateBuilding(b) => write!(f, "shard {b} already exists"),
            FleetError::Model(e) => write!(f, "shard model: {e}"),
            FleetError::Durability(e) => write!(f, "write-ahead log: {e}"),
        }
    }
}

impl std::error::Error for FleetError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            FleetError::Model(e) => Some(e),
            _ => None,
        }
    }
}

impl From<GraficsError> for FleetError {
    fn from(e: GraficsError) -> Self {
        FleetError::Model(e)
    }
}

/// Assigns records to shards. Implementations must be deterministic —
/// routing is part of the fleet's reproducibility contract (same records
/// + same snapshots ⇒ same assignment at any thread count).
pub trait Router: Send + Sync {
    /// Picks the shard for `record` from the published snapshots (sorted
    /// ascending by [`BuildingId`]), or `None` to discard the record as
    /// outside every building.
    fn route(
        &self,
        snapshots: &[(BuildingId, Arc<Grafics>)],
        record: &SignalRecord,
    ) -> Option<BuildingId>;
}

/// The default router: the shard whose graph knows the most of the
/// record's MACs wins (ties broken towards the lower [`BuildingId`]);
/// zero overlap everywhere routes nowhere. Buildings have disjoint AP
/// inventories up to stray hotspots, so the margin is usually the whole
/// record.
#[derive(Debug, Clone, Copy, Default)]
pub struct OverlapRouter;

impl Router for OverlapRouter {
    fn route(
        &self,
        snapshots: &[(BuildingId, Arc<Grafics>)],
        record: &SignalRecord,
    ) -> Option<BuildingId> {
        let mut best: Option<(usize, BuildingId)> = None;
        for (id, model) in snapshots {
            let overlap = record
                .macs()
                .filter(|&m| model.graph().mac_node(m).is_some())
                .count();
            // Strict > keeps the first (lowest-id) shard on ties.
            if overlap > 0 && best.is_none_or(|(b, _)| overlap > b) {
                best = Some((overlap, *id));
            }
        }
        best.map(|(_, id)| id)
    }
}

/// Routes to the shard with the largest **summed edge weight** over the
/// record's known MACs (each shard's own [`WeightFunction`] applied to
/// the reading's RSS), rather than the raw overlap count. A strong
/// in-building reading then outvotes several faint readings of a
/// neighbour's APs bleeding through a shared wall or podium. Ties break
/// towards the lower [`BuildingId`]; zero overlap routes nowhere.
///
/// [`WeightFunction`]: grafics_graph::WeightFunction
#[derive(Debug, Clone, Copy, Default)]
pub struct WeightedOverlapRouter;

impl Router for WeightedOverlapRouter {
    fn route(
        &self,
        snapshots: &[(BuildingId, Arc<Grafics>)],
        record: &SignalRecord,
    ) -> Option<BuildingId> {
        let mut best: Option<(f64, BuildingId)> = None;
        for (id, model) in snapshots {
            let graph = model.graph();
            let weight: f64 = record
                .readings()
                .iter()
                .filter(|r| graph.mac_node(r.mac).is_some())
                .map(|r| graph.weight_function().weight(r.rssi))
                .sum();
            // Strict > keeps the first (lowest-id) shard on ties.
            if weight > 0.0 && best.is_none_or(|(b, _)| weight > b) {
                best = Some((weight, *id));
            }
        }
        best.map(|(_, id)| id)
    }
}

/// One fleet prediction: where the record was routed and what that
/// shard's published snapshot predicted.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FleetPrediction {
    /// The shard the router picked.
    pub building: BuildingId,
    /// Predicted floor `l_{i*}`.
    pub floor: FloorId,
    /// ℓ2 distance to the winning centroid.
    pub distance: f64,
    /// Distance gap to the nearest *different-floor* cluster — the
    /// per-query confidence ([`f64::INFINITY`] on single-floor models).
    pub margin: f64,
    /// `true` if the router declined the record and the answer came from
    /// the cross-shard broadcast fallback (see
    /// [`GraficsFleet::serve_with_fallback`]) — the best-distance shard
    /// answered, not a routed one.
    pub fallback: bool,
}

/// The write half of a shard: the absorbing model plus the retention
/// bookkeeping, all guarded by one mutex so absorption is serialised in
/// call order.
struct WriteSide {
    model: Grafics,
    retention: RetentionPolicy,
    /// Live absorbed records, oldest first (FIFO budget policy).
    absorbed: VecDeque<RecordId>,
    /// Live absorbed records bucketed by predicted floor (per-floor cap).
    by_floor: BTreeMap<FloorId, VecDeque<RecordId>>,
    /// Absorbs since the last publish (the pending queue depth).
    pending: usize,
    scratch: OnlineScratch,
    /// The durability attachment, if this shard journals its absorbs
    /// (see [`GraficsFleet::recover`]). Living inside the write mutex
    /// means WAL append order always equals model mutation order.
    wal: Option<ShardWal>,
}

/// A shard's WAL attachment: the group-commit writer plus the cursors
/// the checkpoint needs.
struct ShardWal {
    writer: WalWriter,
    fs: Arc<dyn WalFs>,
    dir: PathBuf,
    /// The next shard-local append index (== entries ever logged).
    next_seq: u64,
    /// One past the highest process-wide absorb index seen — persisted in
    /// checkpoints so a resumed server never reuses an RNG stream.
    next_rng: u64,
}

impl WriteSide {
    fn absorbed_resident(&self) -> usize {
        self.model.graph().record_count() - self.model.train_record_count()
    }

    /// Applies the retention policy after `rid` was absorbed. Every
    /// absorbed record is tracked even under [`RetentionPolicy::KeepAll`],
    /// so a later [`Shard::set_retention`] switch can evict the full
    /// backlog, not just records absorbed after the switch.
    fn retain(&mut self, rid: RecordId) {
        match self.retention {
            RetentionPolicy::KeepAll => self.absorbed.push_back(rid),
            RetentionPolicy::FifoBudget(budget) => {
                self.absorbed.push_back(rid);
                while self.absorbed.len() > budget {
                    let old = self.absorbed.pop_front().expect("len > budget >= 0");
                    let _ = self.model.forget_record(old);
                }
            }
            RetentionPolicy::PerFloorCap(cap) => {
                // A just-absorbed record always predicts (its embedding is
                // live); fall back to the global FIFO if it somehow cannot.
                let Some(p) = self.model.floor_of_record(rid) else {
                    self.absorbed.push_back(rid);
                    return;
                };
                let queue = self.by_floor.entry(p.floor).or_default();
                queue.push_back(rid);
                while queue.len() > cap {
                    let old = queue.pop_front().expect("len > cap >= 0");
                    let _ = self.model.forget_record(old);
                }
            }
        }
    }
}

/// Writes one checkpoint for `w`: flush+fsync the WAL, atomically
/// replace `checkpoint-<id>.json` (model + watermark + retention queues
/// in **one** file, so they can never disagree after a crash), then
/// truncate the WAL and rewrite its header. Ordering matters: the
/// checkpoint is durable before the truncation, and a crash between the
/// two merely leaves sub-watermark entries that replay skips.
///
/// `model` is the model to persist (the publish path hands the snapshot
/// clone it just made; recovery hands `w.model` itself).
fn checkpoint_write_side(id: BuildingId, w: &WriteSide, model: &Grafics) -> Result<(), String> {
    let Some(shard_wal) = &w.wal else {
        return Ok(());
    };
    shard_wal.writer.flush_sync()?;
    let absorbed: Vec<RecordId> = w.absorbed.iter().copied().collect();
    let by_floor: Vec<FloorBucket> = w
        .by_floor
        .iter()
        .map(|(floor, queue)| FloorBucket {
            floor: *floor,
            records: queue.iter().copied().collect(),
        })
        .collect();
    let doc = wal::encode_checkpoint(
        id.0,
        shard_wal.next_seq,
        shard_wal.next_rng,
        w.pending,
        &absorbed,
        &by_floor,
        model,
    )?;
    let as_io = |e: std::io::Error| e.to_string();
    shard_wal
        .fs
        .write_atomic(
            &shard_wal.dir.join(checkpoint_file_name(id.0)),
            doc.as_bytes(),
        )
        .map_err(as_io)?;
    let wal_path = shard_wal.dir.join(wal_file_name(id.0));
    shard_wal.fs.truncate(&wal_path).map_err(as_io)?;
    let header = encode_header(id.0);
    shard_wal
        .fs
        .append(&wal_path, header.as_bytes())
        .map_err(as_io)?;
    shard_wal.writer.reset_tail(header.len() as u64);
    Ok(())
}

/// Default sliding-window length for the margin gauges: what `/metrics`
/// aggregates over when no [`RefreshTrigger`] names a window.
pub const DEFAULT_MARGIN_WINDOW: usize = 256;

/// Hard capacity of a shard's margin ring. A [`RefreshTrigger`] window
/// larger than this is silently clamped — the gauge can only see what
/// the ring retains.
const MARGIN_WINDOW_CAP: usize = 4096;

/// Sliding window of recently served floor margins plus the
/// post-refresh baseline — the evidence behind
/// [`RefreshTrigger::MarginDrop`]. Quantiles are order-insensitive over
/// the retained multiset, so any serve interleaving that records the
/// same margins reads the same gauges.
#[derive(Debug, Default)]
struct MarginWindow {
    /// Finite margins, oldest first, capped at [`MARGIN_WINDOW_CAP`].
    buf: VecDeque<f64>,
    /// p10 captured when the window first filled after the last refresh;
    /// the drop trigger compares against this.
    baseline_p10: Option<f64>,
}

impl MarginWindow {
    /// Records one served margin. Non-finite margins (single-floor
    /// models report `+∞`) carry no drift signal and are skipped.
    fn record(&mut self, margin: f64) {
        if !margin.is_finite() {
            return;
        }
        if self.buf.len() == MARGIN_WINDOW_CAP {
            self.buf.pop_front();
        }
        self.buf.push_back(margin);
    }

    /// Nearest-rank quantile over the most recent `window` margins;
    /// `None` while the window is empty.
    fn quantile(&self, window: usize, q: f64) -> Option<f64> {
        let n = self.buf.len().min(window.max(1));
        if n == 0 {
            return None;
        }
        let mut recent: Vec<f64> = self.buf.iter().rev().take(n).copied().collect();
        recent.sort_by(f64::total_cmp);
        Some(recent[quantile_rank(n, q)])
    }
}

/// Zero-based nearest-rank index of quantile `q` in a sorted slice of
/// length `n > 0`.
fn quantile_rank(n: usize, q: f64) -> usize {
    ((q * n as f64).ceil() as usize).clamp(1, n) - 1
}

/// One building's double-buffered model: a frozen published snapshot
/// serving reads with `&self`, and a mutex-guarded write side absorbing
/// records under a [`RetentionPolicy`]. See the [module docs](self).
pub struct Shard {
    id: BuildingId,
    /// The published snapshot. The read lock is held only long enough to
    /// clone the `Arc`; queries embed against the clone, lock-free.
    snapshot: RwLock<Arc<Grafics>>,
    /// Publish count since construction.
    epoch: AtomicU64,
    write: Mutex<WriteSide>,
    /// Served floor margins, feeding the drift gauges and
    /// [`RefreshTrigger::MarginDrop`]. Its own lock so the serve path
    /// never touches the absorb mutex.
    margins: Mutex<MarginWindow>,
}

impl fmt::Debug for Shard {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Shard")
            .field("id", &self.id)
            .field("epoch", &self.epoch())
            .finish_non_exhaustive()
    }
}

/// A point-in-time summary of one shard, for `grafics fleet stat` and
/// the smoke benchmarks.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ShardStats {
    /// Which building.
    pub building: BuildingId,
    /// Publishes since construction.
    pub epoch: u64,
    /// Absorbs not yet visible to readers (pending publish).
    pub pending: usize,
    /// Live records in the published snapshot.
    pub published_records: usize,
    /// Live records in the write side (offline corpus + absorbed).
    pub resident_records: usize,
    /// Absorbed records currently retained (excludes the offline corpus).
    pub absorbed_resident: usize,
    /// Live MAC nodes in the write side.
    pub macs: usize,
    /// Live edges in the write side.
    pub edges: usize,
}

/// A point-in-time summary of a whole fleet — the one serializable shape
/// shared by `grafics fleet stat`, the HTTP `/v1/stat` endpoint, and the
/// smoke benchmarks. [`fmt::Display`] renders the CSV table the CLI
/// prints; `serde` renders the JSON the network front end returns.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FleetStats {
    /// Per-shard statistics, sorted ascending by building id.
    pub shards: Vec<ShardStats>,
}

impl FleetStats {
    /// Absorbs pending publish, summed over all shards.
    #[must_use]
    pub fn total_pending(&self) -> usize {
        self.shards.iter().map(|s| s.pending).sum()
    }

    /// Live records resident across all write sides.
    #[must_use]
    pub fn total_resident_records(&self) -> usize {
        self.shards.iter().map(|s| s.resident_records).sum()
    }

    /// Publishes since construction, summed over all shards.
    #[must_use]
    pub fn total_epochs(&self) -> u64 {
        self.shards.iter().map(|s| s.epoch).sum()
    }

    /// The stats row for `building`, if that shard exists.
    #[must_use]
    pub fn shard(&self, building: BuildingId) -> Option<&ShardStats> {
        self.shards.iter().find(|s| s.building == building)
    }
}

impl fmt::Display for FleetStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "building,records,macs,edges,epoch,pending,absorbed")?;
        for st in &self.shards {
            writeln!(
                f,
                "{},{},{},{},{},{},{}",
                st.building,
                st.resident_records,
                st.macs,
                st.edges,
                st.epoch,
                st.pending,
                st.absorbed_resident
            )?;
        }
        writeln!(f, "shards: {}", self.shards.len())
    }
}

impl Shard {
    /// Creates a shard from a trained model. The snapshot starts as a
    /// copy of `model`; the write side absorbs under `retention`.
    #[must_use]
    pub fn new(id: BuildingId, model: Grafics, retention: RetentionPolicy) -> Self {
        Shard {
            id,
            snapshot: RwLock::new(Arc::new(model.clone())),
            epoch: AtomicU64::new(0),
            write: Mutex::new(WriteSide {
                model,
                retention,
                absorbed: VecDeque::new(),
                by_floor: BTreeMap::new(),
                pending: 0,
                scratch: OnlineScratch::new(),
                wal: None,
            }),
            margins: Mutex::new(MarginWindow::default()),
        }
    }

    /// Rebuilds a shard from recovered state: the snapshot starts as a
    /// copy of `model` (the recovered write side), and the retention
    /// queues are restored exactly so post-recovery evictions happen in
    /// the same order as on the never-crashed shard.
    pub(crate) fn restore(
        id: BuildingId,
        model: Grafics,
        retention: RetentionPolicy,
        absorbed: VecDeque<RecordId>,
        by_floor: BTreeMap<FloorId, VecDeque<RecordId>>,
        pending: usize,
    ) -> Self {
        Shard {
            id,
            snapshot: RwLock::new(Arc::new(model.clone())),
            epoch: AtomicU64::new(0),
            write: Mutex::new(WriteSide {
                model,
                retention,
                absorbed,
                by_floor,
                pending,
                scratch: OnlineScratch::new(),
                wal: None,
            }),
            margins: Mutex::new(MarginWindow::default()),
        }
    }

    /// The building this shard serves.
    #[must_use]
    pub fn id(&self) -> BuildingId {
        self.id
    }

    /// The current published snapshot. In-flight sessions created from an
    /// earlier snapshot keep serving that epoch.
    #[must_use]
    pub fn snapshot(&self) -> Arc<Grafics> {
        self.snapshot.read().clone()
    }

    /// Publishes since construction.
    #[must_use]
    pub fn epoch(&self) -> u64 {
        self.epoch.load(Ordering::Acquire)
    }

    /// Opens a read-only serving session over the current snapshot. The
    /// session co-owns the snapshot: a concurrent [`Shard::publish`]
    /// never invalidates it.
    #[must_use]
    pub fn server(&self) -> GraficsServer<Arc<Grafics>> {
        GraficsServer::over(self.snapshot())
    }

    /// Serves one record against the published snapshot (one-shot
    /// session; for streams, hold a [`Shard::server`] session instead).
    ///
    /// # Errors
    ///
    /// Same failure modes as [`GraficsServer::infer`].
    pub fn serve<R: Rng + ?Sized>(
        &self,
        record: &SignalRecord,
        rng: &mut R,
    ) -> Result<Prediction, GraficsError> {
        self.server().infer(record, rng)
    }

    /// Absorbs one record into the write side (graph extend + frozen-
    /// background embed + sampler sync, no prediction) and applies the
    /// retention policy. Readers see nothing until [`Shard::publish`].
    ///
    /// # Errors
    ///
    /// Same failure modes as [`Grafics::absorb_record`].
    pub fn absorb<R: Rng + ?Sized>(
        &self,
        record: &SignalRecord,
        rng: &mut R,
    ) -> Result<RecordId, GraficsError> {
        let mut guard = self.write.lock();
        let w = &mut *guard;
        let rid = w.model.absorb_record_with(record, &mut w.scratch, rng)?;
        w.pending += 1;
        w.retain(rid);
        Ok(rid)
    }

    /// Absorbs one record on the deterministic stream
    /// [`record_rng`](crate::record_rng)`(seed, rng_index)` and, if a WAL
    /// is attached, journals `(seq, rng_index, seed, record)` through the
    /// group-commit buffer — the call never blocks on disk. Without an
    /// attached WAL this is exactly [`Shard::absorb`] on that stream.
    ///
    /// If the journal append fails *after* the model mutated, the write
    /// side is ahead of disk; the writer is poisoned so every later
    /// durable absorb fails fast, and recovery restores the durable
    /// prefix.
    ///
    /// # Errors
    ///
    /// - [`FleetError::Model`] on absorption failure (nothing is logged —
    ///   a rejected absorb burns its RNG index but changes no state);
    /// - [`FleetError::Durability`] if the WAL is poisoned.
    pub fn absorb_durable(
        &self,
        record: &SignalRecord,
        seed: u64,
        rng_index: u64,
    ) -> Result<RecordId, FleetError> {
        let mut guard = self.write.lock();
        let w = &mut *guard;
        if let Some(shard_wal) = &w.wal {
            if let Some(e) = shard_wal.writer.sticky_error() {
                return Err(FleetError::Durability(e));
            }
        }
        let mut rng = record_rng(seed, usize::try_from(rng_index).unwrap_or(usize::MAX));
        let rid = w
            .model
            .absorb_record_with(record, &mut w.scratch, &mut rng)
            .map_err(FleetError::Model)?;
        w.pending += 1;
        w.retain(rid);
        if let Some(shard_wal) = &mut w.wal {
            let entry = WalEntry {
                seq: shard_wal.next_seq,
                rng: rng_index,
                seed,
                record: record.clone(),
            };
            shard_wal.next_seq += 1;
            shard_wal.next_rng = shard_wal.next_rng.max(rng_index + 1);
            shard_wal
                .writer
                .append(&entry)
                .map_err(FleetError::Durability)?;
        }
        Ok(rid)
    }

    /// Attaches a WAL writer to this shard (crate-internal: reached via
    /// [`GraficsFleet::recover`], which knows the right cursors).
    pub(crate) fn attach_wal(
        &self,
        fs: Arc<dyn WalFs>,
        dir: &Path,
        policy: DurabilityPolicy,
        next_seq: u64,
        next_rng: u64,
    ) -> std::io::Result<()> {
        let writer = WalWriter::open(Arc::clone(&fs), dir, self.id.0, policy)?;
        self.write.lock().wal = Some(ShardWal {
            writer,
            fs,
            dir: dir.to_path_buf(),
            next_seq,
            next_rng,
        });
        Ok(())
    }

    /// `true` if a WAL is attached.
    #[must_use]
    pub fn wal_attached(&self) -> bool {
        self.write.lock().wal.is_some()
    }

    /// WAL counters, if a WAL is attached.
    #[must_use]
    pub fn wal_stats(&self) -> Option<WalStats> {
        self.write
            .lock()
            .wal
            .as_ref()
            .map(|w| w.writer.metrics().stats())
    }

    /// The sticky WAL error, if the shard's durability pipeline died.
    #[must_use]
    pub fn wal_error(&self) -> Option<String> {
        self.write
            .lock()
            .wal
            .as_ref()
            .and_then(|w| w.writer.sticky_error())
    }

    /// Blocks until every journalled absorb is appended **and fsynced**
    /// — the graceful-shutdown barrier. A no-op without a WAL.
    ///
    /// # Errors
    ///
    /// [`FleetError::Durability`] if the writer is poisoned.
    pub fn drain_wal(&self) -> Result<(), FleetError> {
        let guard = self.write.lock();
        if let Some(shard_wal) = &guard.wal {
            shard_wal
                .writer
                .flush_sync()
                .map_err(FleetError::Durability)?;
        }
        Ok(())
    }

    /// Checkpoints the current write side immediately (without
    /// publishing): used by recovery to compact a replayed log.
    pub(crate) fn checkpoint_now(&self) -> Result<(), String> {
        let guard = self.write.lock();
        checkpoint_write_side(self.id, &guard, &guard.model)
    }

    /// Publishes the write side: clones it into a fresh snapshot (on this
    /// thread — the serve path never pays for it) and swaps the snapshot
    /// pointer in O(1). Returns the new epoch. In-flight readers finish
    /// on the snapshot they hold.
    ///
    /// With a WAL attached, publish is also the **checkpoint**: the
    /// frozen model plus the WAL watermark are written atomically to
    /// `checkpoint-<id>.json` and the replayed WAL prefix is truncated.
    /// A checkpoint failure poisons the writer (later durable absorbs
    /// fail fast) but never blocks the in-memory publish.
    pub fn publish(&self) -> u64 {
        let mut guard = self.write.lock();
        let next = Arc::new(guard.model.clone());
        guard.pending = 0;
        if guard.wal.is_some() {
            if let Err(e) = checkpoint_write_side(self.id, &guard, &next) {
                if let Some(shard_wal) = &guard.wal {
                    shard_wal.writer.poison(&e);
                }
            }
        }
        // Swap and bump the epoch while still holding the write mutex so
        // epoch, pending, and snapshot move together (concurrent
        // publishers get strictly ordered epochs); readers only ever take
        // the read lock for the pointer clone, so the critical section is
        // O(1) for them.
        *self.snapshot.write() = next;
        let epoch = self.epoch.fetch_add(1, Ordering::AcqRel) + 1;
        drop(guard);
        epoch
    }

    /// Replaces the retention policy and immediately enforces the new
    /// bound on the already-absorbed backlog.
    pub fn set_retention(&self, retention: RetentionPolicy) {
        let mut guard = self.write.lock();
        guard.retention = retention;
        match retention {
            RetentionPolicy::KeepAll => {}
            RetentionPolicy::FifoBudget(budget) => {
                // Fold any per-floor buckets back into one FIFO (arrival
                // order is lost across buckets; floor order is the
                // deterministic stand-in).
                let w = &mut *guard;
                for (_, mut q) in std::mem::take(&mut w.by_floor) {
                    while let Some(rid) = q.pop_front() {
                        w.absorbed.push_back(rid);
                    }
                }
                while w.absorbed.len() > budget {
                    let old = w.absorbed.pop_front().expect("len > budget");
                    let _ = w.model.forget_record(old);
                }
            }
            RetentionPolicy::PerFloorCap(cap) => {
                let w = &mut *guard;
                let backlog: Vec<RecordId> = std::mem::take(&mut w.absorbed).into();
                for rid in backlog {
                    let Some(p) = w.model.floor_of_record(rid) else {
                        continue;
                    };
                    w.by_floor.entry(p.floor).or_default().push_back(rid);
                }
                for (_, q) in w.by_floor.iter_mut() {
                    while q.len() > cap {
                        let old = q.pop_front().expect("len > cap");
                        let _ = w.model.forget_record(old);
                    }
                }
            }
        }
    }

    /// Runs `f` over the write-side model (e.g. a periodic
    /// [`Grafics::refresh`]), holding the absorb lock for the duration.
    pub fn with_write_model<T>(&self, f: impl FnOnce(&mut Grafics) -> T) -> T {
        f(&mut self.write.lock().model)
    }

    /// Re-trains the write side over everything absorbed so far
    /// ([`Grafics::refresh`]), seeding the cluster refit with **one
    /// label per existing cluster** — each cluster's lowest-id
    /// offline-corpus member stands in for its original labelled sample
    /// (the model does not store which sample that was). This preserves
    /// the paper's few-labelled-seeds regime: the refit produces the
    /// same cluster count as the live model, instead of one cluster per
    /// training record. Records absorbed online stay unlabelled.
    ///
    /// The label vector is indexed by record id; offline-corpus ids
    /// (`0..train_record_count`) are never evicted and the graph
    /// iterates records in ascending id order, so cluster member
    /// positions below `train_record_count` are those same ids at every
    /// refresh — eviction gaps in the absorbed id range can never shift
    /// a label onto the wrong record.
    ///
    /// Holds the absorb lock for the duration — concurrent absorbs block,
    /// but readers keep serving the published snapshot untouched. Publish
    /// afterwards to expose the refreshed model; the serve daemon's
    /// `refresh_every_publishes` cadence does exactly that.
    ///
    /// # Errors
    ///
    /// Same failure modes as [`Grafics::refresh`].
    pub fn refresh_write_side<R: Rng + ?Sized>(&self, rng: &mut R) -> Result<(), GraficsError> {
        let mut guard = self.write.lock();
        let train = guard.model.train_record_count();
        let mut labels: Vec<Option<FloorId>> = vec![None; train];
        for cluster in guard.model.clusters().clusters() {
            if let Some(&member) = cluster.members.iter().filter(|&&m| m < train).min() {
                labels[member] = Some(cluster.floor);
            }
        }
        guard.model.refresh(&labels, rng)?;
        // A refresh re-draws the cluster geometry, so old margins no
        // longer describe the serving model: restart the window and let
        // the next full window set a fresh baseline. Taken while still
        // holding the write lock so a trigger can't re-fire off stale
        // evidence between refresh and reset.
        *self.margins.lock() = MarginWindow::default();
        Ok(())
    }

    /// Records one served floor margin into the shard's sliding window.
    /// Called by every fleet serve path; cheap (a short mutex and a ring
    /// push), and order-insensitive for the quantile gauges.
    pub fn record_margin(&self, margin: f64) {
        self.margins.lock().record(margin);
    }

    /// `(p10, p50)` of the most recent `window` served margins, or
    /// `None` before anything was served. Nearest-rank quantiles.
    #[must_use]
    pub fn margin_quantiles(&self, window: usize) -> Option<(f64, f64)> {
        let guard = self.margins.lock();
        Some((guard.quantile(window, 0.10)?, guard.quantile(window, 0.50)?))
    }

    /// The most recent `window` served margins, newest last — the raw
    /// evidence behind [`Shard::margin_quantiles`], exposed so the fleet
    /// can pool shards into one distribution.
    #[must_use]
    pub fn recent_margins(&self, window: usize) -> Vec<f64> {
        let guard = self.margins.lock();
        let n = guard.buf.len().min(window);
        let mut out: Vec<f64> = guard.buf.iter().rev().take(n).copied().collect();
        out.reverse();
        out
    }

    /// Evaluates `trigger` against the margin window: `true` when the
    /// current window-p10 has dropped below `ratio` of the post-refresh
    /// baseline. Needs a full window of evidence; the first full window
    /// after a refresh *establishes* the baseline and never fires. The
    /// serve daemon refreshes + publishes when this returns `true`.
    #[must_use]
    pub fn margin_refresh_due(&self, trigger: RefreshTrigger) -> bool {
        if trigger.is_noop() {
            return false;
        }
        match trigger {
            RefreshTrigger::MarginDrop { window, ratio } => {
                let mut guard = self.margins.lock();
                if guard.buf.len() < window.min(MARGIN_WINDOW_CAP) {
                    return false;
                }
                let Some(p10) = guard.quantile(window, 0.10) else {
                    return false;
                };
                match guard.baseline_p10 {
                    None => {
                        guard.baseline_p10 = Some(p10);
                        false
                    }
                    Some(baseline) => p10 < ratio * baseline,
                }
            }
            // `RefreshTrigger` is non_exhaustive upstream; unknown future
            // variants are conservatively never-due.
            #[allow(unreachable_patterns)]
            _ => false,
        }
    }

    /// Point-in-time statistics.
    #[must_use]
    pub fn stats(&self) -> ShardStats {
        let published_records = self.snapshot().graph().record_count();
        let guard = self.write.lock();
        ShardStats {
            building: self.id,
            epoch: self.epoch(),
            pending: guard.pending,
            published_records,
            resident_records: guard.model.graph().record_count(),
            absorbed_resident: guard.absorbed_resident(),
            macs: guard.model.graph().mac_count(),
            edges: guard.model.graph().edge_count(),
        }
    }
}

/// A sharded serving fleet: one [`Shard`] per building plus a [`Router`].
/// See the [module docs](self) for the architecture.
///
/// # Examples
///
/// ```
/// use grafics_core::{Grafics, GraficsConfig, GraficsFleet, RetentionPolicy};
/// use grafics_data::BuildingModel;
/// use grafics_types::BuildingId;
/// use rand::SeedableRng;
///
/// let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(5);
/// let mut fleet = GraficsFleet::new();
/// fleet.set_retention(RetentionPolicy::FifoBudget(256));
/// for (i, name) in ["north", "south"].iter().enumerate() {
///     let ds = BuildingModel::office(name, 2).with_records_per_floor(30).simulate(&mut rng);
///     let train = ds.with_label_budget(4, &mut rng);
///     let model = Grafics::train(&train, &GraficsConfig::fast(), &mut rng).unwrap();
///     fleet.add_shard(BuildingId(i as u32), model).unwrap();
/// }
/// // Records route to their building by AP overlap; absorb and serve
/// // take &self and may run concurrently.
/// let probe = BuildingModel::office("south", 2).with_records_per_floor(1)
///     .simulate(&mut rng).samples()[0].record.clone();
/// let pred = fleet.serve(&probe, &mut rng).unwrap();
/// assert_eq!(pred.building, BuildingId(1));
/// ```
pub struct GraficsFleet {
    /// Sorted ascending by id; ids unique.
    shards: Vec<Arc<Shard>>,
    router: Box<dyn Router>,
    /// `None` for custom boxed routers (runtime-only; persisted as the
    /// default [`RouterKind::Overlap`]).
    router_kind: Option<RouterKind>,
    /// Applied to every shard ([`GraficsFleet::add_shard`] and
    /// [`GraficsFleet::set_retention`]); persisted in the manifest.
    retention: RetentionPolicy,
    /// Background cadence for a serving daemon; persisted in the
    /// manifest. The fleet itself never acts on it.
    maintenance: MaintenancePolicy,
    /// WAL durability; persisted in the manifest and enacted by
    /// [`GraficsFleet::recover`], which attaches the writers.
    durability: DurabilityPolicy,
    /// Deployment-level serving overrides, applied to every session the
    /// fleet opens; persisted in the manifest.
    serving: ServingPolicy,
    /// Process-wide serving counters, drained from every session the
    /// fleet opens (`&self` serve paths bump them atomically).
    metrics: FleetServeMetrics,
}

/// Atomic accumulator behind [`GraficsFleet::serve_counters`]: serve
/// paths take `&self` and may run on many threads, so sessions drain
/// their local [`ServeCounters`] here with relaxed adds.
#[derive(Debug, Default)]
struct FleetServeMetrics {
    refine_samples: AtomicU64,
    early_stops: AtomicU64,
    f32_fallbacks: AtomicU64,
}

impl FleetServeMetrics {
    fn flush(&self, c: ServeCounters) {
        if c.refine_samples != 0 {
            self.refine_samples
                .fetch_add(c.refine_samples, Ordering::Relaxed);
        }
        if c.early_stops != 0 {
            self.early_stops.fetch_add(c.early_stops, Ordering::Relaxed);
        }
        if c.f32_fallbacks != 0 {
            self.f32_fallbacks
                .fetch_add(c.f32_fallbacks, Ordering::Relaxed);
        }
    }

    fn snapshot(&self) -> ServeCounters {
        ServeCounters {
            refine_samples: self.refine_samples.load(Ordering::Relaxed),
            early_stops: self.early_stops.load(Ordering::Relaxed),
            f32_fallbacks: self.f32_fallbacks.load(Ordering::Relaxed),
        }
    }
}

impl fmt::Debug for GraficsFleet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("GraficsFleet")
            .field("shards", &self.shards)
            .finish_non_exhaustive()
    }
}

impl Default for GraficsFleet {
    fn default() -> Self {
        GraficsFleet::new()
    }
}

impl GraficsFleet {
    /// An empty fleet with the [`FleetManifest::default`] configuration:
    /// [`OverlapRouter`], [`RetentionPolicy::KeepAll`], no maintenance.
    #[must_use]
    pub fn new() -> Self {
        GraficsFleet::with_manifest(FleetManifest::default())
    }

    /// An empty fleet configured by `manifest` (router built from its
    /// [`RouterKind`]).
    #[must_use]
    pub fn with_manifest(manifest: FleetManifest) -> Self {
        GraficsFleet {
            shards: Vec::new(),
            router: manifest.router.build(),
            router_kind: Some(manifest.router),
            retention: manifest.retention,
            maintenance: manifest.maintenance,
            durability: manifest.durability,
            serving: manifest.serving.unwrap_or_default(),
            metrics: FleetServeMetrics::default(),
        }
    }

    /// An empty fleet with a custom router. Custom routers are not
    /// persistable: [`GraficsFleet::save_dir`] records the default
    /// [`RouterKind::Overlap`] in the manifest.
    #[must_use]
    pub fn with_router(router: Box<dyn Router>) -> Self {
        GraficsFleet {
            shards: Vec::new(),
            router,
            router_kind: None,
            retention: RetentionPolicy::KeepAll,
            maintenance: MaintenancePolicy::default(),
            durability: DurabilityPolicy::Off,
            serving: ServingPolicy::default(),
            metrics: FleetServeMetrics::default(),
        }
    }

    /// The manifest describing this fleet's configuration — what
    /// [`GraficsFleet::save_dir`] writes to `fleet.json`.
    #[must_use]
    pub fn manifest(&self) -> FleetManifest {
        FleetManifest {
            version: FLEET_MANIFEST_VERSION,
            router: self.router_kind.unwrap_or(RouterKind::Overlap),
            retention: self.retention,
            maintenance: self.maintenance,
            durability: self.durability,
            serving: (self.serving != ServingPolicy::default()).then_some(self.serving),
        }
    }

    /// The retention policy applied to the fleet's shards.
    #[must_use]
    pub fn retention(&self) -> RetentionPolicy {
        self.retention
    }

    /// Replaces the fleet-wide retention policy: future shards are
    /// created with it, and every existing shard enforces the new bound
    /// on its backlog immediately ([`Shard::set_retention`]).
    pub fn set_retention(&mut self, retention: RetentionPolicy) {
        self.retention = retention;
        for shard in &self.shards {
            shard.set_retention(retention);
        }
    }

    /// The background maintenance cadence (consumed by a serving daemon;
    /// the fleet itself never acts on it).
    #[must_use]
    pub fn maintenance(&self) -> MaintenancePolicy {
        self.maintenance
    }

    /// Replaces the maintenance cadence recorded (and persisted) with
    /// this fleet.
    pub fn set_maintenance(&mut self, maintenance: MaintenancePolicy) {
        self.maintenance = maintenance;
    }

    /// The deployment-level serving policy (refinement budget, matching
    /// precision) applied to every session this fleet opens.
    #[must_use]
    pub fn serving(&self) -> ServingPolicy {
        self.serving
    }

    /// Replaces the serving policy. Takes effect on the next serve call;
    /// absorb paths are unaffected (they always run the fixed budget so
    /// WAL replay streams never re-roll).
    pub fn set_serving(&mut self, serving: ServingPolicy) {
        self.serving = serving;
    }

    /// A snapshot of the process-wide serving counters, aggregated from
    /// every session this fleet has opened (single serves, batch
    /// workers, and broadcast fallbacks alike).
    #[must_use]
    pub fn serve_counters(&self) -> ServeCounters {
        self.metrics.snapshot()
    }

    /// `(p10, p50)` of the most recent `window` served floor margins
    /// **per shard**, pooled across the fleet into one distribution, or
    /// `None` before anything was served. This is the fleet-wide drift
    /// gauge exported as `grafics_margin_p10` / `grafics_margin_p50` on
    /// the serve tier's `/metrics`.
    #[must_use]
    pub fn margin_quantiles(&self, window: usize) -> Option<(f64, f64)> {
        let mut pooled: Vec<f64> = Vec::new();
        for shard in &self.shards {
            pooled.extend(shard.recent_margins(window));
        }
        if pooled.is_empty() {
            return None;
        }
        pooled.sort_by(f64::total_cmp);
        let n = pooled.len();
        Some((
            pooled[quantile_rank(n, 0.10)],
            pooled[quantile_rank(n, 0.50)],
        ))
    }

    /// The WAL durability policy recorded (and persisted) with this
    /// fleet.
    #[must_use]
    pub fn durability(&self) -> DurabilityPolicy {
        self.durability
    }

    /// Replaces the durability policy recorded in the manifest. Takes
    /// effect on the next [`GraficsFleet::recover`] (which attaches the
    /// writers) — an already-attached WAL keeps its policy.
    pub fn set_durability(&mut self, durability: DurabilityPolicy) {
        self.durability = durability;
    }

    /// `true` if every shard has a WAL attached (a recovered fleet with
    /// a non-[`DurabilityPolicy::Off`] manifest).
    #[must_use]
    pub fn wal_attached(&self) -> bool {
        !self.shards.is_empty() && self.shards.iter().all(|s| s.wal_attached())
    }

    /// WAL counters summed over all shards (zeros when no WAL is
    /// attached).
    #[must_use]
    pub fn wal_stats(&self) -> WalStats {
        let mut total = WalStats::default();
        for shard in &self.shards {
            if let Some(s) = shard.wal_stats() {
                total.appends += s.appends;
                total.fsyncs += s.fsyncs;
                total.tail_bytes += s.tail_bytes;
            }
        }
        total
    }

    /// The first sticky WAL error across shards, if any durability
    /// pipeline died.
    #[must_use]
    pub fn wal_error(&self) -> Option<String> {
        self.shards.iter().find_map(|s| s.wal_error())
    }

    /// Flushes and fsyncs every shard's WAL tail — the graceful-shutdown
    /// barrier ([`Shard::drain_wal`] per shard).
    ///
    /// # Errors
    ///
    /// The first [`FleetError::Durability`] encountered.
    pub fn drain_wal(&self) -> Result<(), FleetError> {
        for shard in &self.shards {
            shard.drain_wal()?;
        }
        Ok(())
    }

    /// Replaces the router with a built-in kind (persisted in the
    /// manifest).
    pub fn set_router(&mut self, kind: RouterKind) {
        self.router = kind.build();
        self.router_kind = Some(kind);
    }

    /// Migrates a pre-fleet single-building model into a one-shard fleet
    /// (building `b0`, [`RetentionPolicy::KeepAll`] — the monolith's
    /// semantics, losslessly). Pair with [`Grafics::load_json`] to adopt
    /// a model file written before the fleet engine existed.
    #[must_use]
    pub fn from_model(model: Grafics) -> Self {
        let mut fleet = GraficsFleet::new();
        fleet
            .add_shard(BuildingId(0), model)
            .expect("empty fleet has no duplicate");
        fleet
    }

    /// Adds a shard for `id` under the fleet-wide retention policy
    /// ([`GraficsFleet::retention`]).
    ///
    /// # Errors
    ///
    /// [`FleetError::DuplicateBuilding`] if a shard with this id exists.
    pub fn add_shard(&mut self, id: BuildingId, model: Grafics) -> Result<&Arc<Shard>, FleetError> {
        let at = match self.shards.binary_search_by_key(&id, |s| s.id()) {
            Ok(_) => return Err(FleetError::DuplicateBuilding(id)),
            Err(at) => at,
        };
        self.shards
            .insert(at, Arc::new(Shard::new(id, model, self.retention)));
        Ok(&self.shards[at])
    }

    /// The shards, sorted ascending by building id.
    #[must_use]
    pub fn shards(&self) -> &[Arc<Shard>] {
        &self.shards
    }

    /// The shard for `id`, if present.
    #[must_use]
    pub fn shard(&self, id: BuildingId) -> Option<&Arc<Shard>> {
        self.shards
            .binary_search_by_key(&id, |s| s.id())
            .ok()
            .map(|i| &self.shards[i])
    }

    /// Number of shards.
    #[must_use]
    pub fn len(&self) -> usize {
        self.shards.len()
    }

    /// `true` if the fleet has no shards.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.shards.is_empty()
    }

    /// The current published snapshots, sorted ascending by building id —
    /// a consistent view to route and serve a whole batch against.
    #[must_use]
    pub fn snapshots(&self) -> Vec<(BuildingId, Arc<Grafics>)> {
        self.shards.iter().map(|s| (s.id(), s.snapshot())).collect()
    }

    /// Routes one record (no serving): which building would take it?
    #[must_use]
    pub fn route(&self, record: &SignalRecord) -> Option<BuildingId> {
        self.router.route(&self.snapshots(), record)
    }

    /// Routes and serves one record against the published snapshots.
    ///
    /// # Errors
    ///
    /// - [`FleetError::NoRoute`] if no shard overlaps the record;
    /// - [`FleetError::Model`] on embedding failure in the routed shard.
    pub fn serve<R: Rng + ?Sized>(
        &self,
        record: &SignalRecord,
        rng: &mut R,
    ) -> Result<FleetPrediction, FleetError> {
        let snapshots = self.snapshots();
        let id = self
            .router
            .route(&snapshots, record)
            .ok_or(FleetError::NoRoute)?;
        let snap = snapshots
            .into_iter()
            .find(|(sid, _)| *sid == id)
            .ok_or(FleetError::UnknownBuilding(id))?
            .1;
        let mut server = GraficsServer::with_policy(snap, self.serving);
        let result = server.infer_with_margin(record, rng);
        self.metrics.flush(server.take_counters());
        let (pred, margin) = result?;
        if let Some(shard) = self.shard(id) {
            shard.record_margin(margin);
        }
        Ok(FleetPrediction {
            building: id,
            floor: pred.floor,
            distance: pred.distance,
            margin,
            fallback: false,
        })
    }

    /// Like [`GraficsFleet::serve`], but a record the router declines is
    /// **broadcast** to every shard instead of being discarded: each
    /// shard serves it with an identical clone of `rng` (so the answer
    /// per shard equals what direct routing there would have produced),
    /// and the best-distance answer wins, ties towards the lower
    /// building id, flagged [`FleetPrediction::fallback`]. This closes
    /// the "records straddling buildings" gap — e.g. malls sharing
    /// podium APs, where a strict router refuses to guess.
    ///
    /// # Errors
    ///
    /// - [`FleetError::NoRoute`] if no shard at all can serve the record
    ///   (it overlaps no building's published AP inventory);
    /// - [`FleetError::Model`] on embedding failure in the routed shard.
    pub fn serve_with_fallback<R: Rng + Clone>(
        &self,
        record: &SignalRecord,
        rng: &mut R,
    ) -> Result<FleetPrediction, FleetError> {
        let snapshots = self.snapshots();
        match self.router.route(&snapshots, record) {
            Some(id) => {
                let snap = snapshots
                    .into_iter()
                    .find(|(sid, _)| *sid == id)
                    .ok_or(FleetError::UnknownBuilding(id))?
                    .1;
                let mut server = GraficsServer::with_policy(snap, self.serving);
                let result = server.infer_with_margin(record, rng);
                self.metrics.flush(server.take_counters());
                let (pred, margin) = result?;
                if let Some(shard) = self.shard(id) {
                    shard.record_margin(margin);
                }
                Ok(FleetPrediction {
                    building: id,
                    floor: pred.floor,
                    distance: pred.distance,
                    margin,
                    fallback: false,
                })
            }
            None => {
                let mut counters = ServeCounters::default();
                let best = broadcast_best(&snapshots, record, self.serving, &mut counters, |_| {
                    rng.clone()
                });
                self.metrics.flush(counters);
                let best = best.ok_or(FleetError::NoRoute)?;
                if let Some(shard) = self.shard(best.building) {
                    shard.record_margin(best.margin);
                }
                Ok(best)
            }
        }
    }

    /// Routes and serves a whole batch on `threads` workers. Routing runs
    /// once, serially, against one consistent snapshot view; record `i`
    /// then embeds with the [`record_rng`](crate::record_rng) stream of
    /// `(seed, i)` on its routed shard. The output is a pure function of
    /// `(snapshots, records, seed)` — independent of `threads`, and
    /// bit-identical to serving each record on its shard serially.
    /// Unroutable or failing records map to `None`.
    #[must_use]
    pub fn serve_batch(
        &self,
        records: &[SignalRecord],
        seed: u64,
        threads: usize,
    ) -> Vec<Option<FleetPrediction>> {
        self.serve_batch_impl(records, seed, threads, false, None)
    }

    /// [`GraficsFleet::serve_batch`] with the cross-shard broadcast
    /// fallback of [`GraficsFleet::serve_with_fallback`]: records the
    /// router declines are answered by the best-distance shard (each
    /// shard sees the record's own [`record_rng`](crate::record_rng)
    /// stream, so a fallback answer from shard `S` is bit-identical to
    /// what routing the record to `S` directly would have produced) and
    /// flagged [`FleetPrediction::fallback`]. Routed records are served
    /// exactly as by `serve_batch`. Still thread-count invariant.
    #[must_use]
    pub fn serve_batch_with_fallback(
        &self,
        records: &[SignalRecord],
        seed: u64,
        threads: usize,
    ) -> Vec<Option<FleetPrediction>> {
        self.serve_batch_impl(records, seed, threads, true, None)
    }

    /// [`GraficsFleet::serve_batch`] with *explicit* per-record stream
    /// indices: record `k` embeds with `record_rng(seed, indices[k])`
    /// instead of `record_rng(seed, k)`. This lets a router tier split
    /// one logical batch across backend processes and still reproduce
    /// the single-process answer bit-for-bit — each backend serves its
    /// sub-batch with the records' *original* positions.
    /// `serve_batch(records, s, t)` equals
    /// `serve_batch_indexed(records, &[0, 1, ..], s, t)`.
    ///
    /// # Panics
    ///
    /// Panics if `indices.len() != records.len()`.
    #[must_use]
    pub fn serve_batch_indexed(
        &self,
        records: &[SignalRecord],
        indices: &[u64],
        seed: u64,
        threads: usize,
    ) -> Vec<Option<FleetPrediction>> {
        assert_eq!(
            indices.len(),
            records.len(),
            "one stream index per record required"
        );
        self.serve_batch_impl(records, seed, threads, false, Some(indices))
    }

    /// [`GraficsFleet::serve_batch_indexed`] with the cross-shard
    /// broadcast fallback of [`GraficsFleet::serve_batch_with_fallback`]
    /// (the fallback broadcast also uses the record's explicit stream
    /// index).
    ///
    /// # Panics
    ///
    /// Panics if `indices.len() != records.len()`.
    #[must_use]
    pub fn serve_batch_indexed_with_fallback(
        &self,
        records: &[SignalRecord],
        indices: &[u64],
        seed: u64,
        threads: usize,
    ) -> Vec<Option<FleetPrediction>> {
        assert_eq!(
            indices.len(),
            records.len(),
            "one stream index per record required"
        );
        self.serve_batch_impl(records, seed, threads, true, Some(indices))
    }

    fn serve_batch_impl(
        &self,
        records: &[SignalRecord],
        seed: u64,
        threads: usize,
        fallback: bool,
        indices: Option<&[u64]>,
    ) -> Vec<Option<FleetPrediction>> {
        let mut out: Vec<Option<FleetPrediction>> = vec![None; records.len()];
        if records.is_empty() || self.shards.is_empty() {
            return out;
        }
        let snapshots = self.snapshots();
        // Per-record RNG stream indices: positional by default, caller
        // supplied for router-tier sub-batches.
        let streams: Vec<usize> = match indices {
            Some(idx) => idx
                .iter()
                .map(|i| usize::try_from(*i).unwrap_or(usize::MAX))
                .collect(),
            None => (0..records.len()).collect(),
        };
        // Deterministic serial routing pass: shard index per record.
        let routes: Vec<Option<usize>> = records
            .iter()
            .map(|r| {
                let id = self.router.route(&snapshots, r)?;
                snapshots.binary_search_by_key(&id, |(sid, _)| *sid).ok()
            })
            .collect();

        let serve_chunk = |record_chunk: &[SignalRecord],
                           stream_chunk: &[usize],
                           route_chunk: &[Option<usize>],
                           out_chunk: &mut [Option<FleetPrediction>]| {
            // One lazily-opened session per shard, reused across the
            // chunk so scratch buffers stay warm. Sessions *borrow* the
            // batch's snapshot vector (it outlives the worker scope) —
            // no per-worker `Arc` clone, and every worker serves the
            // same frozen epoch by construction.
            let mut sessions: Vec<Option<GraficsServer<&Grafics>>> =
                (0..snapshots.len()).map(|_| None).collect();
            // Broadcast fallbacks share one scratch pair across the
            // chunk too, instead of a fresh session per shard.
            let mut counters = ServeCounters::default();
            for (k, (record, (route, slot))) in record_chunk
                .iter()
                .zip(route_chunk.iter().zip(out_chunk))
                .enumerate()
            {
                let stream = stream_chunk[k];
                let Some(sidx) = *route else {
                    if fallback {
                        // Unroutable: broadcast, every shard on the same
                        // per-record stream.
                        *slot =
                            broadcast_best(&snapshots, record, self.serving, &mut counters, |_| {
                                record_rng(seed, stream)
                            });
                        if let Some(p) = slot {
                            if let Some(shard) = self.shard(p.building) {
                                shard.record_margin(p.margin);
                            }
                        }
                    }
                    continue;
                };
                let server = sessions[sidx].get_or_insert_with(|| {
                    GraficsServer::with_policy(&*snapshots[sidx].1, self.serving)
                });
                let mut rng = record_rng(seed, stream);
                *slot = server
                    .infer_with_margin(record, &mut rng)
                    .ok()
                    .map(|(pred, margin)| {
                        // `shards` and `snapshots` share the ascending-id
                        // sort, so the route index addresses both.
                        self.shards[sidx].record_margin(margin);
                        FleetPrediction {
                            building: snapshots[sidx].0,
                            floor: pred.floor,
                            distance: pred.distance,
                            margin,
                            fallback: false,
                        }
                    });
            }
            for server in sessions.iter_mut().flatten() {
                counters.merge(server.take_counters());
            }
            self.metrics.flush(counters);
        };

        let workers = threads.clamp(1, records.len());
        if workers == 1 {
            serve_chunk(records, &streams, &routes, &mut out);
            return out;
        }
        let chunk = records.len().div_ceil(workers);
        rayon::scope(|scope| {
            for (((record_chunk, stream_chunk), route_chunk), out_chunk) in records
                .chunks(chunk)
                .zip(streams.chunks(chunk))
                .zip(routes.chunks(chunk))
                .zip(out.chunks_mut(chunk))
            {
                let serve_chunk = &serve_chunk;
                scope.spawn(move |_| {
                    serve_chunk(record_chunk, stream_chunk, route_chunk, out_chunk);
                });
            }
        });
        out
    }

    /// Routes one record and absorbs it into that shard's write side.
    ///
    /// # Errors
    ///
    /// - [`FleetError::NoRoute`] if no shard overlaps the record;
    /// - [`FleetError::Model`] on absorption failure in the routed shard.
    pub fn absorb<R: Rng + ?Sized>(
        &self,
        record: &SignalRecord,
        rng: &mut R,
    ) -> Result<(BuildingId, RecordId), FleetError> {
        let id = self.route(record).ok_or(FleetError::NoRoute)?;
        let rid = self.absorb_to(id, record, rng)?;
        Ok((id, rid))
    }

    /// Absorbs into a named shard, bypassing the router (the building is
    /// known, e.g. from the client's coarse location).
    ///
    /// # Errors
    ///
    /// - [`FleetError::UnknownBuilding`];
    /// - [`FleetError::Model`] on absorption failure.
    pub fn absorb_to<R: Rng + ?Sized>(
        &self,
        id: BuildingId,
        record: &SignalRecord,
        rng: &mut R,
    ) -> Result<RecordId, FleetError> {
        let shard = self.shard(id).ok_or(FleetError::UnknownBuilding(id))?;
        Ok(shard.absorb(record, rng)?)
    }

    /// Routes one record and absorbs it durably on the deterministic
    /// stream `record_rng(seed, rng_index)` (see
    /// [`Shard::absorb_durable`]). Without an attached WAL this is
    /// exactly [`GraficsFleet::absorb`] on that stream.
    ///
    /// # Errors
    ///
    /// - [`FleetError::NoRoute`] if no shard overlaps the record;
    /// - [`FleetError::Model`] on absorption failure;
    /// - [`FleetError::Durability`] if the shard's WAL is poisoned.
    pub fn absorb_durable(
        &self,
        record: &SignalRecord,
        seed: u64,
        rng_index: u64,
    ) -> Result<(BuildingId, RecordId), FleetError> {
        let id = self.route(record).ok_or(FleetError::NoRoute)?;
        let rid = self.absorb_to_durable(id, record, seed, rng_index)?;
        Ok((id, rid))
    }

    /// Durable [`GraficsFleet::absorb_to`]: absorbs into a named shard on
    /// the deterministic stream `record_rng(seed, rng_index)`, journaling
    /// the absorb if a WAL is attached.
    ///
    /// # Errors
    ///
    /// - [`FleetError::UnknownBuilding`];
    /// - [`FleetError::Model`] on absorption failure;
    /// - [`FleetError::Durability`] if the shard's WAL is poisoned.
    pub fn absorb_to_durable(
        &self,
        id: BuildingId,
        record: &SignalRecord,
        seed: u64,
        rng_index: u64,
    ) -> Result<RecordId, FleetError> {
        let shard = self.shard(id).ok_or(FleetError::UnknownBuilding(id))?;
        shard.absorb_durable(record, seed, rng_index)
    }

    /// Publishes every shard (see [`Shard::publish`]).
    pub fn publish_all(&self) {
        for shard in &self.shards {
            shard.publish();
        }
    }

    /// Fleet-wide statistics (per shard, sorted ascending by building
    /// id) — the shared serializable shape behind `grafics fleet stat`
    /// and the HTTP `/v1/stat` endpoint.
    #[must_use]
    pub fn stats(&self) -> FleetStats {
        FleetStats {
            shards: self.shards.iter().map(|s| s.stats()).collect(),
        }
    }

    /// Saves the fleet under `dir`: a `fleet.json` manifest (router
    /// choice, retention policy, maintenance cadence — see
    /// [`FleetManifest`]) plus every shard's **write-side** model (the
    /// most complete state, including unpublished absorbs) as
    /// `shard-<id>.json`. Call [`GraficsFleet::publish_all`] first if the
    /// published and saved states must coincide.
    ///
    /// # Errors
    ///
    /// Returns the underlying IO/serde error.
    pub fn save_dir<P: AsRef<Path>>(&self, dir: P) -> std::io::Result<()> {
        let dir = dir.as_ref();
        std::fs::create_dir_all(dir)?;
        let manifest =
            serde_json::to_string_pretty(&self.manifest()).map_err(std::io::Error::other)?;
        std::fs::write(dir.join(FLEET_MANIFEST_FILE), manifest)?;
        for shard in &self.shards {
            let path = dir.join(format!("shard-{}.json", shard.id().0));
            shard.with_write_model(|m| m.save_json(&path))?;
        }
        Ok(())
    }

    /// Loads a fleet from a directory written by
    /// [`GraficsFleet::save_dir`] (or assembled by `grafics fleet
    /// train`): router, retention, and maintenance cadence come from the
    /// `fleet.json` manifest, with no runtime flags needed. A PR-3-era
    /// directory carrying only `shard-<id>.json` files migrates
    /// losslessly: it loads with [`FleetManifest::default`], exactly the
    /// configuration the old loader hard-wired.
    ///
    /// # Errors
    ///
    /// IO/serde errors (including a malformed manifest), or
    /// `InvalidData` if `dir` holds no shard files.
    pub fn load_dir<P: AsRef<Path>>(dir: P) -> std::io::Result<Self> {
        let dir = dir.as_ref();
        let manifest = read_manifest(dir)?;
        let mut fleet = GraficsFleet::with_manifest(manifest);
        let mut ids: Vec<(u32, std::path::PathBuf)> = Vec::new();
        for entry in std::fs::read_dir(dir)? {
            let entry = entry?;
            let name = entry.file_name();
            let Some(id) = name
                .to_str()
                .and_then(|n| n.strip_prefix("shard-"))
                .and_then(|n| n.strip_suffix(".json"))
                .and_then(|n| n.parse::<u32>().ok())
            else {
                continue;
            };
            ids.push((id, entry.path()));
        }
        ids.sort_unstable_by_key(|&(id, _)| id);
        for (id, path) in ids {
            let model = Grafics::load_json(&path)?;
            fleet
                .add_shard(BuildingId(id), model)
                .map_err(|e| std::io::Error::other(e.to_string()))?;
        }
        if fleet.is_empty() {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                format!("no shard-<id>.json files under {}", dir.display()),
            ));
        }
        Ok(fleet)
    }

    /// Crash recovery: loads each shard's last checkpoint (falling back
    /// to its `shard-<id>.json` model for pre-WAL directories), replays
    /// the WAL tail on the deterministic per-entry RNG streams
    /// (tolerating a torn final line and skipping entries below the
    /// checkpoint watermark), and returns the fleet together with a
    /// [`RecoveryReport`].
    ///
    /// Because absorption is a pure function of `(model, record, rng
    /// stream)`, the recovered write side is **bit-identical** to a
    /// never-crashed fleet that absorbed the same durable prefix — the
    /// property the `wal` integration tests pin with the sampler-parity
    /// machinery.
    ///
    /// When the manifest's [`DurabilityPolicy`] is not `Off`, every
    /// shard comes back with a WAL attached and freshly compacted
    /// (checkpointed + truncated), so serving can resume immediately;
    /// resume the absorb sequence at
    /// [`RecoveryReport::next_rng_index`] so RNG streams are never
    /// reused.
    ///
    /// # Errors
    ///
    /// IO errors; `InvalidData` for a corrupt checkpoint, a WAL with a
    /// sequence gap, or a replay failure that cannot have happened
    /// pre-crash.
    pub fn recover<P: AsRef<Path>>(dir: P) -> std::io::Result<(Self, RecoveryReport)> {
        GraficsFleet::recover_with(Arc::new(StdWalFs), dir)
    }

    /// [`GraficsFleet::recover`] with an injectable [`WalFs`] for the
    /// re-attached writers (fault-injection tests crash recovery's own
    /// compaction through this).
    pub fn recover_with<P: AsRef<Path>>(
        fs: Arc<dyn WalFs>,
        dir: P,
    ) -> std::io::Result<(Self, RecoveryReport)> {
        let dir = dir.as_ref();
        let manifest = read_manifest(dir)?;
        let mut fleet = GraficsFleet::with_manifest(manifest);
        let mut report = RecoveryReport::default();

        let mut ids: BTreeSet<u32> = BTreeSet::new();
        for entry in std::fs::read_dir(dir)? {
            let name = entry?.file_name();
            let Some(name) = name.to_str() else { continue };
            let id = name
                .strip_prefix("shard-")
                .and_then(|n| n.strip_suffix(".json"))
                .or_else(|| {
                    name.strip_prefix("checkpoint-")
                        .and_then(|n| n.strip_suffix(".json"))
                })
                .and_then(|n| n.parse::<u32>().ok());
            if let Some(id) = id {
                ids.insert(id);
            }
        }
        if ids.is_empty() {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                format!("no shard or checkpoint files under {}", dir.display()),
            ));
        }

        for id in ids {
            let building = BuildingId(id);
            let (shard, watermark, mut next_rng, from_checkpoint) =
                match wal::read_checkpoint(dir, id)? {
                    Some(doc) => {
                        let by_floor: BTreeMap<FloorId, VecDeque<RecordId>> = doc
                            .by_floor
                            .into_iter()
                            .map(|b| (b.floor, VecDeque::from(b.records)))
                            .collect();
                        let shard = Shard::restore(
                            building,
                            doc.model,
                            manifest.retention,
                            VecDeque::from(doc.absorbed),
                            by_floor,
                            doc.pending,
                        );
                        (shard, doc.watermark, doc.next_rng, true)
                    }
                    None => {
                        let model = Grafics::load_json(dir.join(format!("shard-{id}.json")))?;
                        let shard = Shard::restore(
                            building,
                            model,
                            manifest.retention,
                            VecDeque::new(),
                            BTreeMap::new(),
                            0,
                        );
                        (shard, 0, 0, false)
                    }
                };

            let parsed = wal::read_wal(dir, id);
            let mut expected = watermark;
            let mut replayed = 0u64;
            let mut skipped = 0u64;
            for entry in &parsed.entries {
                if entry.seq < expected {
                    // The post-checkpoint truncation never ran; these
                    // entries are already inside the checkpoint model.
                    skipped += 1;
                    continue;
                }
                if entry.seq > expected {
                    return Err(std::io::Error::new(
                        std::io::ErrorKind::InvalidData,
                        format!(
                            "wal-{id}.jsonl: sequence gap (entry {}, expected {expected})",
                            entry.seq
                        ),
                    ));
                }
                let mut rng =
                    record_rng(entry.seed, usize::try_from(entry.rng).unwrap_or(usize::MAX));
                shard.absorb(&entry.record, &mut rng).map_err(|e| {
                    std::io::Error::new(
                        std::io::ErrorKind::InvalidData,
                        format!("wal-{id}.jsonl: replaying entry {}: {e}", entry.seq),
                    )
                })?;
                expected += 1;
                replayed += 1;
                next_rng = next_rng.max(entry.rng + 1);
            }

            if !manifest.durability.is_off() {
                shard.attach_wal(
                    Arc::clone(&fs),
                    dir,
                    manifest.durability,
                    expected,
                    next_rng,
                )?;
                // Compact immediately: the checkpoint absorbs the replay
                // and the truncation clears torn bytes and stale
                // entries, leaving a clean appendable log.
                shard
                    .checkpoint_now()
                    .map_err(|e| std::io::Error::other(format!("shard {id}: compaction: {e}")))?;
            }

            report.next_rng_index = report.next_rng_index.max(next_rng);
            report.shards.push(ShardRecovery {
                building,
                from_checkpoint,
                watermark,
                replayed,
                skipped,
                torn: parsed.torn,
            });
            fleet.push_shard(Arc::new(shard))?;
        }
        Ok((fleet, report))
    }

    /// Inserts an already-built shard, keeping the id ordering invariant.
    fn push_shard(&mut self, shard: Arc<Shard>) -> std::io::Result<()> {
        let at = match self.shards.binary_search_by_key(&shard.id(), |s| s.id()) {
            Ok(_) => {
                return Err(std::io::Error::other(
                    FleetError::DuplicateBuilding(shard.id()).to_string(),
                ))
            }
            Err(at) => at,
        };
        self.shards.insert(at, shard);
        Ok(())
    }
}

/// Reads `fleet.json`, falling back to the version-1 shape (no
/// `durability` field — loads as [`DurabilityPolicy::Off`]) and to
/// [`FleetManifest::default`] when the file is absent. The vendored
/// serde derive has no `#[serde(default)]`, so backward compatibility is
/// explicit, mirroring `Grafics::load_json`'s legacy fallback.
///
/// Public so front ends can decide between [`GraficsFleet::load_dir`]
/// and [`GraficsFleet::recover`] without loading every shard first.
///
/// # Errors
///
/// Propagates the read error; a malformed manifest is `InvalidData`.
pub fn read_manifest<P: AsRef<Path>>(dir: P) -> std::io::Result<FleetManifest> {
    read_manifest_at(dir.as_ref())
}

fn read_manifest_at(dir: &Path) -> std::io::Result<FleetManifest> {
    let path = dir.join(FLEET_MANIFEST_FILE);
    let json = match std::fs::read_to_string(&path) {
        Ok(json) => json,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(FleetManifest::default()),
        Err(e) => return Err(e),
    };
    match serde_json::from_str::<FleetManifest>(&json) {
        Ok(manifest) => Ok(manifest),
        Err(e) => {
            #[derive(Deserialize)]
            struct FleetManifestV1 {
                version: u32,
                router: RouterKind,
                retention: RetentionPolicy,
                maintenance: MaintenancePolicy,
            }
            let v1 = serde_json::from_str::<FleetManifestV1>(&json).map_err(|_| {
                std::io::Error::new(
                    std::io::ErrorKind::InvalidData,
                    format!("{}: {e}", path.display()),
                )
            })?;
            Ok(FleetManifest {
                version: v1.version,
                router: v1.router,
                retention: v1.retention,
                maintenance: v1.maintenance,
                durability: DurabilityPolicy::Off,
                serving: None,
            })
        }
    }
}

/// One backend process in a routed fleet: a human-readable name plus the
/// `host:port` its `grafics fleet serve --http` listener answers on.
/// Which buildings it owns is *not* declared here — the router discovers
/// (and re-discovers) that from the backend's own `/v1/route_table`, so
/// the manifest cannot drift from reality.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct BackendSpec {
    /// Stable backend name, used in `/metrics` labels and `/v1/stat`.
    pub name: String,
    /// `host:port` of the backend's HTTP listener.
    pub addr: String,
}

/// The router-tier manifest (`router.json`): the backend registry plus
/// the health/breaker/admission policies. Lives next to `fleet.json` in
/// a fleet directory, or anywhere the operator points
/// `grafics fleet route --manifest` at.
///
/// `auth_token` is optional; absent means the write endpoints are open
/// (the vendored serde treats a missing field as `null`, and `Option`
/// deserializes `null` as `None`, so older manifests load unchanged).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RouterManifest {
    /// Manifest format version (currently 1).
    pub version: u32,
    /// The backend registry.
    pub backends: Vec<BackendSpec>,
    /// Active health-probe policy.
    pub health: HealthPolicy,
    /// Per-backend circuit-breaker policy.
    pub breaker: BreakerPolicy,
    /// Per-client admission control.
    pub rate_limit: RateLimitPolicy,
    /// Bearer token required on `/v1/absorb` and `/v1/publish`
    /// (router *and* backends); `None` leaves writes open.
    pub auth_token: Option<String>,
}

impl Default for RouterManifest {
    fn default() -> Self {
        RouterManifest {
            version: ROUTER_MANIFEST_VERSION,
            backends: Vec::new(),
            health: HealthPolicy::default(),
            breaker: BreakerPolicy::default(),
            rate_limit: RateLimitPolicy::Off,
            auth_token: None,
        }
    }
}

/// Current [`RouterManifest::version`].
pub const ROUTER_MANIFEST_VERSION: u32 = 1;

/// File name of the router manifest inside a fleet directory.
const ROUTER_MANIFEST_FILE: &str = "router.json";

/// Reads `router.json` from `dir`.
///
/// # Errors
///
/// Propagates the read error (including `NotFound` — unlike
/// [`read_manifest`] there is no useful default: a router with zero
/// backends serves nothing); a malformed manifest is `InvalidData`.
pub fn read_router_manifest<P: AsRef<Path>>(dir: P) -> std::io::Result<RouterManifest> {
    let path = dir.as_ref().join(ROUTER_MANIFEST_FILE);
    let json = std::fs::read_to_string(&path)?;
    serde_json::from_str::<RouterManifest>(&json).map_err(|e| {
        std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            format!("{}: {e}", path.display()),
        )
    })
}

/// Writes `router.json` into `dir` (pretty-printed, atomic via
/// write-then-rename so a crashed write never leaves a torn manifest).
///
/// # Errors
///
/// Propagates the write/rename error.
pub fn write_router_manifest<P: AsRef<Path>>(
    dir: P,
    manifest: &RouterManifest,
) -> std::io::Result<()> {
    let dir = dir.as_ref();
    let json = serde_json::to_string_pretty(manifest).map_err(std::io::Error::other)?;
    let tmp = dir.join(format!("{ROUTER_MANIFEST_FILE}.tmp"));
    std::fs::write(&tmp, json)?;
    std::fs::rename(&tmp, dir.join(ROUTER_MANIFEST_FILE))
}

/// What [`GraficsFleet::recover`] did for one shard.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardRecovery {
    /// Which building.
    pub building: BuildingId,
    /// `true` if a checkpoint was found (`false`: legacy `shard-<id>.json`
    /// model, empty retention queues).
    pub from_checkpoint: bool,
    /// The checkpoint's WAL watermark (entries already in the model).
    pub watermark: u64,
    /// WAL entries replayed on top of the checkpoint.
    pub replayed: u64,
    /// Stale sub-watermark entries skipped (a crash between checkpoint
    /// and truncation leaves these behind).
    pub skipped: u64,
    /// `true` if the WAL ended in a torn line (dropped).
    pub torn: bool,
}

/// The outcome of [`GraficsFleet::recover`].
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct RecoveryReport {
    /// Per-shard details, ascending by building id.
    pub shards: Vec<ShardRecovery>,
    /// One past the highest process-wide absorb index ever journalled —
    /// resume the serve tier's absorb sequence here so no RNG stream is
    /// reused.
    pub next_rng_index: u64,
}

impl RecoveryReport {
    /// Total WAL entries replayed across shards.
    #[must_use]
    pub fn total_replayed(&self) -> u64 {
        self.shards.iter().map(|s| s.replayed).sum()
    }

    /// `true` if any shard's WAL ended in a torn line.
    #[must_use]
    pub fn any_torn(&self) -> bool {
        self.shards.iter().any(|s| s.torn)
    }
}

/// Serves `record` on **every** snapshot — shard `i` drawing from the
/// fresh stream `rng_for_shard(i)` — and returns the best-distance
/// answer, ties towards the lower building id, flagged as a fallback.
/// `None` if no shard can serve the record at all.
///
/// The whole scatter reuses **one** embedding/matching scratch pair
/// (instead of a fresh per-shard session), and resolves `policy` against
/// each shard's own model config. Session counters accumulate into
/// `counters` for the caller to flush.
fn broadcast_best<R: Rng>(
    snapshots: &[(BuildingId, Arc<Grafics>)],
    record: &SignalRecord,
    policy: ServingPolicy,
    counters: &mut ServeCounters,
    mut rng_for_shard: impl FnMut(usize) -> R,
) -> Option<FleetPrediction> {
    let mut scratch = OnlineScratch::new();
    let mut matching = MatchScratch::new();
    let mut best: Option<FleetPrediction> = None;
    for (i, (id, snap)) in snapshots.iter().enumerate() {
        let (budget, precision) = policy.resolve(snap.config());
        let mut rng = rng_for_shard(i);
        let Ok((pred, margin)) = serve_with_margin_scratch(
            snap,
            &mut scratch,
            &mut matching,
            budget,
            precision,
            counters,
            record,
            &mut rng,
        ) else {
            continue;
        };
        // Strict < keeps the first (lowest-id) shard on ties.
        if best.as_ref().is_none_or(|b| pred.distance < b.distance) {
            best = Some(FleetPrediction {
                building: *id,
                floor: pred.floor,
                distance: pred.distance,
                margin,
                fallback: true,
            });
        }
    }
    best
}
