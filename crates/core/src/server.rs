//! Read-mostly serving: `&self` inference over a shared frozen model.
//!
//! The paper's online path (§V) freezes everything except the new
//! record's embedding — so serving does not *need* to mutate the model at
//! all. [`GraficsServer`] exploits that: it holds any read-only handle to
//! a [`Grafics`] (a borrow for single-process serving, an `Arc` for a
//! fleet shard's published snapshot), keeps the query node's rows (and
//! fresh rows for never-seen MACs) in its own per-session scratch, and
//! therefore lets one trained model answer queries from many threads
//! concurrently. [`Grafics::serve_batch`] fans a batch out across the
//! worker pool, one server session per worker, with deterministic
//! per-record RNG streams — the same predictions at any thread count.

use crate::{Grafics, GraficsError, MatchPrecision, OnlineBudget, Prediction, ServingPolicy};
use grafics_types::{FloorId, SignalRecord};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use std::ops::Deref;
use std::sync::Arc;

/// Monotonic per-session serving counters, cheap enough to bump on every
/// query. Serving tiers drain them (see [`GraficsServer::take_counters`])
/// into process-wide metrics after each batch.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServeCounters {
    /// Online SGD samples actually run across all served queries.
    pub refine_samples: u64,
    /// Queries whose adaptive refinement stopped before the full budget.
    pub early_stops: u64,
    /// `F32Refined` sweeps that fell back to the full f64 sweep because
    /// the f32 candidate set was too wide to re-score.
    pub f32_fallbacks: u64,
}

impl ServeCounters {
    /// Folds another session's counters into this one.
    pub fn merge(&mut self, other: ServeCounters) {
        self.refine_samples += other.refine_samples;
        self.early_stops += other.early_stops;
        self.f32_fallbacks += other.f32_fallbacks;
    }
}

/// A read-only serving session over a shared [`Grafics`] model.
///
/// Generic over how the model is held: `GraficsServer<&Grafics>` (from
/// [`Grafics::server`]) borrows for the session's lifetime, while
/// `GraficsServer<Arc<Grafics>>` (from [`GraficsServer::over`], used by
/// fleet shards) co-owns a published snapshot so the session survives a
/// concurrent [`crate::Shard::publish`] swap — in-flight queries keep
/// serving the epoch they started on.
///
/// Cheap enough to create per thread (the scratch buffers warm up after
/// the first query). `&mut self` on [`GraficsServer::infer`] only guards
/// the session-local scratch — the underlying model is never written, so
/// any number of sessions can serve the same model simultaneously.
///
/// At the same RNG seed and the same model state, a server prediction is
/// bit-identical to what the graph-extending [`Grafics::infer`] would
/// return for the same record.
///
/// # Examples
///
/// ```
/// use grafics_core::{Grafics, GraficsConfig};
/// use grafics_data::BuildingModel;
/// use rand::SeedableRng;
///
/// let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(3);
/// let ds = BuildingModel::office("serve", 2).with_records_per_floor(40).simulate(&mut rng);
/// let split = ds.split(0.7, &mut rng).unwrap();
/// let train = split.train.with_label_budget(4, &mut rng);
/// let model = Grafics::train(&train, &GraficsConfig::fast(), &mut rng).unwrap();
///
/// // `model` stays immutable: the session owns all mutable state.
/// let mut server = model.server();
/// let mut hits = 0;
/// for s in split.test.samples() {
///     if let Ok(pred) = server.infer(&s.record, &mut rng) {
///         if pred.floor == s.ground_truth {
///             hits += 1;
///         }
///     }
/// }
/// assert!(hits * 10 >= split.test.len() * 7);
/// assert_eq!(model.graph().record_count(), train.len()); // nothing absorbed
/// ```
#[derive(Debug)]
pub struct GraficsServer<M: Deref<Target = Grafics> = Arc<Grafics>> {
    model: M,
    scratch: grafics_embed::OnlineScratch,
    /// Cluster-matching scratch shared across every query of the
    /// session — one per batch worker, so a whole `serve_batch` chunk
    /// reuses a single candidate buffer.
    matching: grafics_cluster::MatchScratch,
    /// Effective refinement budget, resolved at session open from the
    /// model config and the caller's [`ServingPolicy`].
    budget: OnlineBudget,
    /// Effective centroid-sweep precision, resolved like `budget`.
    precision: MatchPrecision,
    counters: ServeCounters,
}

impl Grafics {
    /// Opens a read-only serving session borrowing this model.
    #[must_use]
    pub fn server(&self) -> GraficsServer<&Grafics> {
        GraficsServer::over(self)
    }

    /// Predicts a whole batch against the frozen model on `threads`
    /// workers (PR-1's worker pool), without mutating shared state.
    ///
    /// Record `i` is embedded with its own `ChaCha8Rng` derived from
    /// `seed` and `i` (see [`record_rng`]), so the output is a pure
    /// function of `(model, records, seed)` — **independent of
    /// `threads`** — and per-record failures (outside building) map to
    /// `None` instead of aborting the batch. Workers take contiguous
    /// chunks; each runs its own [`GraficsServer`] session over `&self`.
    #[must_use]
    pub fn serve_batch(
        &self,
        records: &[SignalRecord],
        seed: u64,
        threads: usize,
    ) -> Vec<Option<Prediction>> {
        let mut out: Vec<Option<Prediction>> = vec![None; records.len()];
        if records.is_empty() {
            return out;
        }
        let workers = threads.clamp(1, records.len());
        if workers == 1 {
            let mut server = self.server();
            for (i, (record, slot)) in records.iter().zip(&mut out).enumerate() {
                let mut rng = record_rng(seed, i);
                *slot = server.infer(record, &mut rng).ok();
            }
            return out;
        }
        let chunk = records.len().div_ceil(workers);
        rayon::scope(|scope| {
            for (c, (record_chunk, out_chunk)) in
                records.chunks(chunk).zip(out.chunks_mut(chunk)).enumerate()
            {
                scope.spawn(move |_| {
                    let mut server = self.server();
                    for (k, (record, slot)) in record_chunk.iter().zip(out_chunk).enumerate() {
                        let mut rng = record_rng(seed, c * chunk + k);
                        *slot = server.infer(record, &mut rng).ok();
                    }
                });
            }
        });
        out
    }
}

/// The per-record RNG stream of [`Grafics::serve_batch`] and the fleet's
/// [`crate::GraficsFleet::serve_batch`]: a fixed mix of the batch seed
/// and the record's index in the batch, so any partitioning across
/// workers — or across fleet shards — reproduces the same streams.
#[must_use]
pub fn record_rng(seed: u64, index: usize) -> ChaCha8Rng {
    ChaCha8Rng::seed_from_u64(seed ^ (index as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15))
}

impl<M: Deref<Target = Grafics>> GraficsServer<M> {
    /// Opens a session over any read-only handle to a model — a borrow, an
    /// `Arc` snapshot, anything that derefs to [`Grafics`]. Serving knobs
    /// come from the model's own config (historically `Fixed` + `F64`).
    #[must_use]
    pub fn over(model: M) -> Self {
        Self::with_policy(model, ServingPolicy::default())
    }

    /// Opens a session with deployment-level overrides of the serving
    /// knobs; `None` fields of `policy` defer to the model's config.
    #[must_use]
    pub fn with_policy(model: M, policy: ServingPolicy) -> Self {
        let (budget, precision) = policy.resolve(model.config());
        GraficsServer {
            model,
            scratch: grafics_embed::OnlineScratch::new(),
            matching: grafics_cluster::MatchScratch::new(),
            budget,
            precision,
            counters: ServeCounters::default(),
        }
    }

    /// Predicts the floor of one record against the frozen model: the
    /// record is embedded in session-local scratch (graph, embeddings,
    /// clusters, and sampler are only read) and matched to the nearest
    /// cluster centroid. Amortised O(deg · log n) per query.
    ///
    /// # Errors
    ///
    /// - [`GraficsError::OutsideBuilding`] if the record shares no MAC
    ///   with the building graph;
    /// - [`GraficsError::Embed`] on embedding failure.
    pub fn infer<R: Rng + ?Sized>(
        &mut self,
        record: &SignalRecord,
        rng: &mut R,
    ) -> Result<Prediction, GraficsError> {
        self.infer_with_margin(record, rng).map(|(pred, _)| pred)
    }

    /// Like [`GraficsServer::infer`], but returns the `k` nearest clusters
    /// as `(floor, distance)` pairs ascending by centroid distance (see
    /// [`Grafics::infer_topk`]).
    ///
    /// # Errors
    ///
    /// Same failure modes as [`GraficsServer::infer`].
    pub fn infer_topk<R: Rng + ?Sized>(
        &mut self,
        record: &SignalRecord,
        k: usize,
        rng: &mut R,
    ) -> Result<Vec<(FloorId, f64)>, GraficsError> {
        let model = &*self.model;
        let query = embed_with_budget(
            model,
            &mut self.scratch,
            &mut self.matching,
            self.budget,
            &mut self.counters,
            record,
            rng,
        )?;
        // Top-k ranks *every* candidate, so the f32 pre-sweep has no
        // work to skip — the full list always runs in f64.
        Ok(model
            .clusters
            .predict_topk_with(query, k, &mut self.matching)?)
    }

    /// Like [`GraficsServer::infer`], but also returns the distance gap to
    /// the nearest *different-floor* cluster — the per-query confidence
    /// signal (`f64::INFINITY` on single-floor models). Prediction and
    /// margin come from one centroid sweep
    /// ([`grafics_cluster::ClusterModel::predict_with_margin`]), so the
    /// fleet serve path pays no more cluster matching than plain `infer`.
    ///
    /// # Errors
    ///
    /// Same failure modes as [`GraficsServer::infer`].
    pub fn infer_with_margin<R: Rng + ?Sized>(
        &mut self,
        record: &SignalRecord,
        rng: &mut R,
    ) -> Result<(Prediction, f64), GraficsError> {
        serve_with_margin_scratch(
            &self.model,
            &mut self.scratch,
            &mut self.matching,
            self.budget,
            self.precision,
            &mut self.counters,
            record,
            rng,
        )
    }

    /// The shared model this session serves.
    #[must_use]
    pub fn model(&self) -> &Grafics {
        &self.model
    }

    /// The session's serving counters so far.
    #[must_use]
    pub fn counters(&self) -> ServeCounters {
        self.counters
    }

    /// Drains the session's counters, resetting them to zero — how batch
    /// workers flush into process-wide metrics without double counting.
    pub fn take_counters(&mut self) -> ServeCounters {
        std::mem::take(&mut self.counters)
    }
}

/// One serving query over caller-owned scratch: embed under `budget`,
/// match under `precision`. Backs both [`GraficsServer::infer_with_margin`]
/// and the fleet's broadcast fallback, which sweeps many shards with a
/// single scratch pair instead of a fresh session per shard.
#[allow(clippy::too_many_arguments)]
pub(crate) fn serve_with_margin_scratch<R: Rng + ?Sized>(
    model: &Grafics,
    scratch: &mut grafics_embed::OnlineScratch,
    matching: &mut grafics_cluster::MatchScratch,
    budget: OnlineBudget,
    precision: MatchPrecision,
    counters: &mut ServeCounters,
    record: &SignalRecord,
    rng: &mut R,
) -> Result<(Prediction, f64), GraficsError> {
    let query = embed_with_budget(model, scratch, matching, budget, counters, record, rng)?;
    match precision {
        MatchPrecision::F64 => Ok(model.clusters.predict_with_margin(query)?),
        MatchPrecision::F32Refined => {
            let (pred, margin, fell_back) =
                model.clusters.predict_with_margin_f32(query, matching)?;
            if fell_back {
                counters.f32_fallbacks += 1;
            }
            Ok((pred, margin))
        }
    }
}

/// Embeds one record into `scratch` against the frozen `model`, under the
/// session's refinement budget. Under `OnlineBudget::Adaptive`, the
/// decisive-margin probe sweeps the *current* ego estimate against the
/// cluster centroids (reusing the session's `matching` scratch) every
/// `min_spe` chunk; the probe consumes no RNG, so a never-stopped adaptive
/// run is bit-identical to `Fixed(max_spe)`.
fn embed_with_budget<'s, R: Rng + ?Sized>(
    model: &Grafics,
    scratch: &'s mut grafics_embed::OnlineScratch,
    matching: &mut grafics_cluster::MatchScratch,
    budget: OnlineBudget,
    counters: &mut ServeCounters,
    record: &SignalRecord,
    rng: &mut R,
) -> Result<&'s [f64], GraficsError> {
    if !model.graph.overlaps(record) {
        return Err(GraficsError::OutsideBuilding);
    }
    let margin_ratio = match budget {
        OnlineBudget::Fixed(_) => 0.0,
        OnlineBudget::Adaptive { margin_ratio, .. } => margin_ratio,
    };
    let clusters = &model.clusters;
    let mut decisive = |ego: &[f32]| clusters.margin_decisive(ego, margin_ratio, matching);
    let (query, outcome) = model.trainer.embed_query_budgeted(
        &model.graph,
        &model.embeddings,
        record,
        &model.neg_sampler,
        budget,
        &mut decisive,
        scratch,
        rng,
    )?;
    counters.refine_samples += outcome.samples as u64;
    if outcome.early_stop() {
        counters.early_stops += 1;
    }
    Ok(query)
}
