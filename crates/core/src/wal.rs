//! Per-shard absorb write-ahead log: the durability layer behind
//! [`GraficsFleet::recover`](crate::GraficsFleet::recover).
//!
//! # Why a WAL fits this model
//!
//! The serving tier is deliberately deterministic: absorb `i` draws
//! [`record_rng`](crate::record_rng)`(seed, i)`, so *replaying the absorb
//! log reproduces the exact write-side state* — bit-identical floats,
//! same negative-sampler weights, same retention evictions. Durability
//! therefore reduces to logging `(seq, rng index, seed, record)` per
//! accepted absorb and replaying the tail on top of the last checkpoint.
//! Nothing about the model's internal state needs to be journalled.
//!
//! # On-disk format
//!
//! One JSONL file per shard, `wal-<id>.jsonl`, in the fleet directory:
//!
//! ```text
//! {"wal":1,"building":3}                       <- header
//! {"seq":0,"rng":17,"seed":42,"record":{...}}  <- one line per absorb
//! {"seq":1,"rng":19,"seed":42,"record":{...}}
//! ```
//!
//! `seq` is the shard-local monotone append index; `rng` is the
//! process-wide absorb attempt index (rejected absorbs burn indices but
//! are never logged — they change no state); `seed` rides along per entry
//! so replay never depends on out-of-band configuration. A torn final
//! line (power loss mid-append) is tolerated: parsing stops at the first
//! malformed line and recovery replays the longest valid prefix.
//!
//! Checkpoints (`checkpoint-<id>.json`, written atomically on publish)
//! carry the model *and* the WAL watermark in one file, so the two can
//! never disagree; entries below the watermark are skipped on replay,
//! which makes the post-checkpoint WAL truncation non-critical — a crash
//! between checkpoint and truncate merely leaves dead entries behind.
//!
//! # Group commit
//!
//! [`WalWriter`] buffers encoded entries under a mutex and hands them to
//! a dedicated flusher thread; the absorb path never touches the disk.
//! The [`DurabilityPolicy`] decides when the flusher calls `fsync` — the
//! loss window after a power cut is bounded by that policy, never by the
//! flusher's scheduling.
//!
//! # Fault injection
//!
//! All writes go through the [`WalFs`] trait. [`StdWalFs`] is the real
//! filesystem; [`FailpointFs`] wraps it with an armable [`CrashPoint`]
//! and a page-cache model (durable vs merely-written bytes), so tests
//! can kill the pipeline at every interesting instant and then
//! [`FailpointFs::apply_power_loss`] to see exactly what a reboot would.

use grafics_types::{DurabilityPolicy, FloorId, RecordId, SignalRecord};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Current WAL format version (the `wal` field of the header line).
pub const WAL_FORMAT_VERSION: u32 = 1;

/// Builds the WAL file name for a building id.
#[must_use]
pub fn wal_file_name(building: u32) -> String {
    format!("wal-{building}.jsonl")
}

/// Builds the checkpoint file name for a building id.
#[must_use]
pub fn checkpoint_file_name(building: u32) -> String {
    format!("checkpoint-{building}.json")
}

// ---------------------------------------------------------------------------
// Filesystem abstraction
// ---------------------------------------------------------------------------

/// The few filesystem operations the durability layer performs, behind a
/// trait so tests can inject crashes ([`FailpointFs`]). Reads are plain
/// `std::fs` — recovery only ever reads files that exist on the real
/// filesystem.
pub trait WalFs: Send + Sync {
    /// Appends `bytes` to `path`, creating the file if needed. The bytes
    /// reach the OS (page cache) but are not necessarily durable.
    ///
    /// # Errors
    ///
    /// The underlying IO error (or an injected crash).
    fn append(&self, path: &Path, bytes: &[u8]) -> io::Result<()>;

    /// Forces everything previously appended to `path` to stable storage.
    ///
    /// # Errors
    ///
    /// The underlying IO error (or an injected crash).
    fn fsync(&self, path: &Path) -> io::Result<()>;

    /// Atomically replaces `path` with `bytes`: write to a temporary
    /// sibling, fsync it, rename over `path`, fsync the directory. After
    /// a crash the file holds either the old or the new content, never a
    /// mix.
    ///
    /// # Errors
    ///
    /// The underlying IO error (or an injected crash).
    fn write_atomic(&self, path: &Path, bytes: &[u8]) -> io::Result<()>;

    /// Truncates `path` to zero length (durably).
    ///
    /// # Errors
    ///
    /// The underlying IO error (or an injected crash).
    fn truncate(&self, path: &Path) -> io::Result<()>;
}

/// The real filesystem.
#[derive(Debug, Default, Clone, Copy)]
pub struct StdWalFs;

impl WalFs for StdWalFs {
    fn append(&self, path: &Path, bytes: &[u8]) -> io::Result<()> {
        use std::io::Write;
        let mut file = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)?;
        file.write_all(bytes)
    }

    fn fsync(&self, path: &Path) -> io::Result<()> {
        std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)?
            .sync_all()
    }

    fn write_atomic(&self, path: &Path, bytes: &[u8]) -> io::Result<()> {
        let tmp = tmp_sibling(path);
        std::fs::write(&tmp, bytes)?;
        std::fs::OpenOptions::new()
            .append(true)
            .open(&tmp)?
            .sync_all()?;
        std::fs::rename(&tmp, path)?;
        // Make the rename itself durable. Not every platform supports
        // fsync on a directory handle; best effort is the usual contract.
        if let Some(parent) = path.parent() {
            if let Ok(dir) = std::fs::File::open(parent) {
                let _ = dir.sync_all();
            }
        }
        Ok(())
    }

    fn truncate(&self, path: &Path) -> io::Result<()> {
        std::fs::File::create(path)?.sync_all()
    }
}

fn tmp_sibling(path: &Path) -> PathBuf {
    let mut name = path.file_name().unwrap_or_default().to_os_string();
    name.push(".tmp");
    path.with_file_name(name)
}

// ---------------------------------------------------------------------------
// Fault injection
// ---------------------------------------------------------------------------

/// Where [`FailpointFs`] kills the pipeline. Each point models a power
/// cut (which subsumes `kill -9`: the process dies *and* non-durable
/// page-cache bytes may vanish).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CrashPoint {
    /// The append syscall writes only a prefix of the batch, then dies —
    /// the torn-line case.
    MidAppend,
    /// The append completed (bytes in page cache) but the fsync never
    /// ran — acknowledged-but-volatile entries.
    PreFsync,
    /// The checkpoint's temporary file is half-written and the rename
    /// never happens — the old checkpoint must survive untouched.
    MidCheckpoint,
    /// The post-checkpoint WAL truncation never ran — stale entries
    /// below the watermark are left behind and must be skipped.
    MidTruncate,
}

/// Every crash point, for matrix tests.
pub const ALL_CRASH_POINTS: [CrashPoint; 4] = [
    CrashPoint::MidAppend,
    CrashPoint::PreFsync,
    CrashPoint::MidCheckpoint,
    CrashPoint::MidTruncate,
];

struct FailState {
    armed: Option<(CrashPoint, u32)>,
    /// Bytes known durable per appended-to file. Files replaced via
    /// `write_atomic` are atomic by construction and not tracked.
    durable: HashMap<PathBuf, u64>,
}

/// A [`WalFs`] over the real filesystem that (a) can be armed to die at
/// a [`CrashPoint`] and (b) tracks which bytes an armed crash would
/// actually preserve. After the crash fires, every operation fails until
/// [`FailpointFs::apply_power_loss`] rewrites the on-disk files to the
/// surviving prefix and re-enables the fs — exactly the state a process
/// restarted after `kill -9` + power cut would observe.
pub struct FailpointFs {
    real: StdWalFs,
    state: Mutex<FailState>,
    crashed: AtomicBool,
}

impl Default for FailpointFs {
    fn default() -> Self {
        FailpointFs::new()
    }
}

impl FailpointFs {
    /// A fresh injectable fs with nothing armed.
    #[must_use]
    pub fn new() -> Self {
        FailpointFs {
            real: StdWalFs,
            state: Mutex::new(FailState {
                armed: None,
                durable: HashMap::new(),
            }),
            crashed: AtomicBool::new(false),
        }
    }

    /// Arms a crash: the operation matching `point` dies after `skip`
    /// earlier matching operations have been allowed through.
    pub fn arm(&self, point: CrashPoint, skip: u32) {
        self.state.lock().expect("failpoint mutex").armed = Some((point, skip));
    }

    /// `true` once the armed crash has fired.
    #[must_use]
    pub fn crashed(&self) -> bool {
        self.crashed.load(Ordering::SeqCst)
    }

    /// Cuts the power *right now*, between operations: every later fs
    /// call fails until [`FailpointFs::apply_power_loss`]. Unlike
    /// [`FailpointFs::arm`] this needs no specific operation to trip on,
    /// which is what an interleaving test wants — the graceful
    /// drain-on-drop must fail too, or dropping the fleet would quietly
    /// turn the crash into a clean shutdown.
    pub fn crash_now(&self) {
        self.crashed.store(true, Ordering::SeqCst);
    }

    /// Simulates the reboot after the crash: every appended-to file is
    /// truncated to its durable prefix (unless `keep_unsynced`, modelling
    /// the kinder outcome where the page cache made it out), and the fs
    /// is reset so recovery can run through it again.
    pub fn apply_power_loss(&self, keep_unsynced: bool) {
        let mut st = self.state.lock().expect("failpoint mutex");
        if !keep_unsynced {
            for (path, durable) in &st.durable {
                if let Ok(file) = std::fs::OpenOptions::new().write(true).open(path) {
                    let _ = file.set_len(*durable);
                }
            }
        }
        st.durable.clear();
        st.armed = None;
        self.crashed.store(false, Ordering::SeqCst);
    }

    fn crash_error() -> io::Error {
        io::Error::other("injected crash (simulated power loss)")
    }

    /// Returns `true` if the armed crash should fire on this matching op
    /// (and consumes one skip otherwise).
    fn should_fire(&self, st: &mut FailState, point: CrashPoint) -> bool {
        match &mut st.armed {
            Some((armed, skip)) if *armed == point => {
                if *skip == 0 {
                    st.armed = None;
                    self.crashed.store(true, Ordering::SeqCst);
                    true
                } else {
                    *skip -= 1;
                    false
                }
            }
            _ => false,
        }
    }

    fn file_len(path: &Path) -> u64 {
        std::fs::metadata(path).map(|m| m.len()).unwrap_or(0)
    }
}

impl WalFs for FailpointFs {
    fn append(&self, path: &Path, bytes: &[u8]) -> io::Result<()> {
        if self.crashed() {
            return Err(Self::crash_error());
        }
        let mut st = self.state.lock().expect("failpoint mutex");
        // First touch: whatever the file held before this "process" is
        // considered durable (it survived to be seen at all).
        if !st.durable.contains_key(path) {
            st.durable.insert(path.to_path_buf(), Self::file_len(path));
        }
        if self.should_fire(&mut st, CrashPoint::MidAppend) {
            let torn = &bytes[..bytes.len() / 2];
            let _ = self.real.append(path, torn);
            return Err(Self::crash_error());
        }
        self.real.append(path, bytes)
    }

    fn fsync(&self, path: &Path) -> io::Result<()> {
        if self.crashed() {
            return Err(Self::crash_error());
        }
        let mut st = self.state.lock().expect("failpoint mutex");
        if self.should_fire(&mut st, CrashPoint::PreFsync) {
            return Err(Self::crash_error());
        }
        self.real.fsync(path)?;
        st.durable.insert(path.to_path_buf(), Self::file_len(path));
        Ok(())
    }

    fn write_atomic(&self, path: &Path, bytes: &[u8]) -> io::Result<()> {
        if self.crashed() {
            return Err(Self::crash_error());
        }
        let mut st = self.state.lock().expect("failpoint mutex");
        if self.should_fire(&mut st, CrashPoint::MidCheckpoint) {
            // The tmp file is half-written and never renamed: the target
            // keeps its old content, recovery must ignore the stray tmp.
            let _ = std::fs::write(tmp_sibling(path), &bytes[..bytes.len() / 2]);
            return Err(Self::crash_error());
        }
        self.real.write_atomic(path, bytes)?;
        // An atomic replace is durable as a unit.
        st.durable.remove(path);
        Ok(())
    }

    fn truncate(&self, path: &Path) -> io::Result<()> {
        if self.crashed() {
            return Err(Self::crash_error());
        }
        let mut st = self.state.lock().expect("failpoint mutex");
        if self.should_fire(&mut st, CrashPoint::MidTruncate) {
            // Die before the truncation takes effect: the stale WAL tail
            // survives and replay must skip it by watermark.
            return Err(Self::crash_error());
        }
        self.real.truncate(path)?;
        st.durable.insert(path.to_path_buf(), 0);
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// Codec
// ---------------------------------------------------------------------------

/// The WAL header line.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct WalHeader {
    /// Format version ([`WAL_FORMAT_VERSION`]).
    pub wal: u32,
    /// The building this WAL belongs to.
    pub building: u32,
}

/// One logged absorb.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WalEntry {
    /// Shard-local monotone append index.
    pub seq: u64,
    /// Process-wide absorb attempt index: replay draws
    /// [`record_rng`](crate::record_rng)`(seed, rng)`.
    pub rng: u64,
    /// The base seed the RNG stream was derived from.
    pub seed: u64,
    /// The absorbed record.
    pub record: SignalRecord,
}

/// Encodes the header line (with trailing newline).
///
/// # Panics
///
/// Never — the header always serializes.
#[must_use]
pub fn encode_header(building: u32) -> String {
    let header = WalHeader {
        wal: WAL_FORMAT_VERSION,
        building,
    };
    let mut line = serde_json::to_string(&header).expect("header serializes");
    line.push('\n');
    line
}

/// Encodes one entry line (with trailing newline).
///
/// # Errors
///
/// Serialization errors (practically impossible for these types).
pub fn encode_entry(entry: &WalEntry) -> Result<String, String> {
    let mut line = serde_json::to_string(entry).map_err(|e| e.to_string())?;
    line.push('\n');
    Ok(line)
}

/// The result of parsing a WAL file.
#[derive(Debug, Clone, PartialEq)]
pub struct ParsedWal {
    /// The header, if the first line parsed (a torn header means an
    /// empty, freshly truncated log — zero entries, not an error).
    pub header: Option<WalHeader>,
    /// The longest valid prefix of entries.
    pub entries: Vec<WalEntry>,
    /// `true` if parsing stopped at a malformed (torn) line.
    pub torn: bool,
}

/// Parses WAL bytes, tolerating a torn tail: the first malformed line
/// ends the valid prefix. A final line that parses completely but lacks
/// its trailing newline is accepted — its content is whole.
#[must_use]
pub fn parse_wal(bytes: &[u8]) -> ParsedWal {
    let text = String::from_utf8_lossy(bytes);
    let mut lines = text.split('\n');
    let mut out = ParsedWal {
        header: None,
        entries: Vec::new(),
        torn: false,
    };
    match lines.next() {
        Some(first) if !first.is_empty() => match serde_json::from_str::<WalHeader>(first) {
            Ok(h) => out.header = Some(h),
            Err(_) => {
                out.torn = true;
                return out;
            }
        },
        _ => return out,
    }
    for line in lines {
        if line.is_empty() {
            continue; // the empty fragment after a trailing newline
        }
        match serde_json::from_str::<WalEntry>(line) {
            Ok(entry) => out.entries.push(entry),
            Err(_) => {
                out.torn = true;
                break;
            }
        }
    }
    out
}

/// Reads and parses a shard's WAL file; a missing file is an empty log.
#[must_use]
pub fn read_wal(dir: &Path, building: u32) -> ParsedWal {
    match std::fs::read(dir.join(wal_file_name(building))) {
        Ok(bytes) => parse_wal(&bytes),
        Err(_) => ParsedWal {
            header: None,
            entries: Vec::new(),
            torn: false,
        },
    }
}

// ---------------------------------------------------------------------------
// Checkpoint document
// ---------------------------------------------------------------------------

/// One floor's retained-record queue inside a checkpoint (the
/// `PerFloorCap` bookkeeping, arrival order preserved).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FloorBucket {
    /// The predicted floor this bucket caps.
    pub floor: FloorId,
    /// Retained record ids, oldest first.
    pub records: Vec<RecordId>,
}

/// The checkpoint file: the write-side model *and* the WAL watermark in
/// one atomically-replaced JSON document, so the two can never disagree
/// after a crash. The retention queues ride along — without them a
/// recovered `FifoBudget`/`PerFloorCap` shard would evict in a different
/// order than the never-crashed one and diverge.
#[derive(Debug, Clone, Deserialize)]
pub struct CheckpointDoc {
    /// Checkpoint format version (currently 1).
    pub version: u32,
    /// The building this checkpoint belongs to.
    pub building: u32,
    /// WAL entries with `seq < watermark` are already inside `model` and
    /// are skipped on replay.
    pub watermark: u64,
    /// The next process-wide absorb attempt index a resumed server must
    /// hand out (so RNG streams are never reused).
    pub next_rng: u64,
    /// Absorbs pending publish at checkpoint time (always 0 for
    /// publish-driven checkpoints).
    pub pending: usize,
    /// The global FIFO retention queue, oldest first.
    pub absorbed: Vec<RecordId>,
    /// The per-floor retention queues.
    pub by_floor: Vec<FloorBucket>,
    /// The write-side model as of `watermark`.
    pub model: crate::Grafics,
}

/// Composes the checkpoint JSON without cloning the model (the model is
/// serialized in place from a borrow). The field order matches
/// [`CheckpointDoc`].
///
/// # Errors
///
/// Serialization errors as strings.
pub fn encode_checkpoint(
    building: u32,
    watermark: u64,
    next_rng: u64,
    pending: usize,
    absorbed: &[RecordId],
    by_floor: &[FloorBucket],
    model: &crate::Grafics,
) -> Result<String, String> {
    let err = |e: serde_json::Error| e.to_string();
    let absorbed = serde_json::to_string(&absorbed.to_vec()).map_err(err)?;
    let by_floor = serde_json::to_string(&by_floor.to_vec()).map_err(err)?;
    let model = serde_json::to_string(model).map_err(err)?;
    Ok(format!(
        "{{\"version\":1,\"building\":{building},\"watermark\":{watermark},\
         \"next_rng\":{next_rng},\"pending\":{pending},\"absorbed\":{absorbed},\
         \"by_floor\":{by_floor},\"model\":{model}}}"
    ))
}

/// Loads a shard's checkpoint, if one exists.
///
/// # Errors
///
/// `InvalidData` if the file exists but does not parse — a checkpoint is
/// replaced atomically, so a malformed one is real corruption, not a
/// torn write, and silently falling back would lose durable absorbs.
pub fn read_checkpoint(dir: &Path, building: u32) -> io::Result<Option<CheckpointDoc>> {
    let path = dir.join(checkpoint_file_name(building));
    let json = match std::fs::read_to_string(&path) {
        Ok(json) => json,
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(None),
        Err(e) => return Err(e),
    };
    serde_json::from_str::<CheckpointDoc>(&json)
        .map(Some)
        .map_err(|e| {
            io::Error::new(
                io::ErrorKind::InvalidData,
                format!("{}: {e}", path.display()),
            )
        })
}

// ---------------------------------------------------------------------------
// Group-commit writer
// ---------------------------------------------------------------------------

/// Counters a WAL writer exposes to `/metrics`. Monotone except
/// `tail_bytes`, which resets when the log is truncated at a checkpoint.
#[derive(Debug, Default)]
pub struct WalMetrics {
    /// Records appended to the file (after group-commit batching).
    pub appends: AtomicU64,
    /// `fsync` calls issued.
    pub fsyncs: AtomicU64,
    /// Current size of the WAL file in bytes (header included).
    pub tail_bytes: AtomicU64,
}

/// A point-in-time snapshot of [`WalMetrics`], summable across shards.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WalStats {
    /// Records appended.
    pub appends: u64,
    /// Fsyncs issued.
    pub fsyncs: u64,
    /// Current WAL tail bytes.
    pub tail_bytes: u64,
}

impl WalMetrics {
    /// Snapshot the counters.
    #[must_use]
    pub fn stats(&self) -> WalStats {
        WalStats {
            appends: self.appends.load(Ordering::Relaxed),
            fsyncs: self.fsyncs.load(Ordering::Relaxed),
            tail_bytes: self.tail_bytes.load(Ordering::Relaxed),
        }
    }
}

struct WalBuf {
    /// Encoded lines waiting for the flusher.
    buf: String,
    buf_records: u64,
    /// Records handed to the writer / written to the fs / fsynced, as
    /// monotone totals (`synced <= appended <= queued`).
    queued: u64,
    appended: u64,
    synced: u64,
    /// When the oldest currently-unsynced record was queued.
    dirty_at: Option<Instant>,
    /// A sync of everything queued so far was requested.
    force: bool,
    stop: bool,
    /// Sticky: once an fs operation fails, the writer is poisoned and
    /// every durable absorb fails until the operator recovers.
    error: Option<String>,
}

struct WalShared {
    fs: Arc<dyn WalFs>,
    path: PathBuf,
    policy: DurabilityPolicy,
    state: Mutex<WalBuf>,
    cv: Condvar,
    metrics: Arc<WalMetrics>,
}

/// The group-commit WAL appender for one shard: `append` enqueues an
/// encoded entry and returns immediately; a dedicated flusher thread
/// batches the queue into `append` syscalls and fsyncs per the
/// [`DurabilityPolicy`]. Dropping the writer drains and fsyncs the tail
/// (the graceful-shutdown path).
pub struct WalWriter {
    shared: Arc<WalShared>,
    thread: Option<JoinHandle<()>>,
}

impl WalWriter {
    /// Opens (creating + writing the header if absent or empty) the WAL
    /// for `building` under `dir` and starts the flusher.
    ///
    /// # Errors
    ///
    /// IO errors creating the file or writing the header.
    pub fn open(
        fs: Arc<dyn WalFs>,
        dir: &Path,
        building: u32,
        policy: DurabilityPolicy,
    ) -> io::Result<Self> {
        let path = dir.join(wal_file_name(building));
        let existing = std::fs::metadata(&path).map(|m| m.len()).unwrap_or(0);
        let tail = if existing == 0 {
            let header = encode_header(building);
            fs.append(&path, header.as_bytes())?;
            header.len() as u64
        } else {
            existing
        };
        let metrics = Arc::new(WalMetrics::default());
        metrics.tail_bytes.store(tail, Ordering::Relaxed);
        let shared = Arc::new(WalShared {
            fs,
            path,
            policy,
            state: Mutex::new(WalBuf {
                buf: String::new(),
                buf_records: 0,
                queued: 0,
                appended: 0,
                synced: 0,
                dirty_at: None,
                force: false,
                stop: false,
                error: None,
            }),
            cv: Condvar::new(),
            metrics,
        });
        let thread = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name(format!("wal-flush-{building}"))
                .spawn(move || flusher(&shared))
                .map_err(io::Error::other)?
        };
        Ok(WalWriter {
            shared,
            thread: Some(thread),
        })
    }

    /// Enqueues one entry for the flusher. Returns as soon as the entry
    /// is in the in-memory buffer — durability lags by at most the
    /// policy's fsync window.
    ///
    /// # Errors
    ///
    /// The sticky flusher error, if the writer is poisoned.
    pub fn append(&self, entry: &WalEntry) -> Result<(), String> {
        let line = encode_entry(entry)?;
        let mut st = self.shared.state.lock().expect("wal mutex");
        if let Some(e) = &st.error {
            return Err(e.clone());
        }
        st.buf.push_str(&line);
        st.buf_records += 1;
        st.queued += 1;
        if st.dirty_at.is_none() {
            st.dirty_at = Some(Instant::now());
        }
        self.shared.cv.notify_all();
        Ok(())
    }

    /// Blocks until everything queued so far is appended **and fsynced**
    /// (or the writer is poisoned). The checkpoint and graceful-shutdown
    /// barrier.
    ///
    /// # Errors
    ///
    /// The sticky flusher error.
    pub fn flush_sync(&self) -> Result<(), String> {
        let mut st = self.shared.state.lock().expect("wal mutex");
        let target = st.queued;
        if st.synced >= target {
            return st.error.clone().map_or(Ok(()), Err);
        }
        st.force = true;
        self.shared.cv.notify_all();
        while st.synced < target && st.error.is_none() {
            st = self.shared.cv.wait(st).expect("wal mutex");
        }
        st.error.clone().map_or(Ok(()), Err)
    }

    /// Poisons the writer with `msg` (checkpoint failures route through
    /// here so later durable absorbs fail fast instead of silently
    /// diverging from disk).
    pub fn poison(&self, msg: &str) {
        let mut st = self.shared.state.lock().expect("wal mutex");
        if st.error.is_none() {
            st.error = Some(msg.to_owned());
        }
        self.shared.cv.notify_all();
    }

    /// The sticky error, if the writer is poisoned.
    #[must_use]
    pub fn sticky_error(&self) -> Option<String> {
        self.shared.state.lock().expect("wal mutex").error.clone()
    }

    /// Resets the tail-bytes gauge after the caller truncated the log
    /// and rewrote the header.
    pub fn reset_tail(&self, header_bytes: u64) {
        self.shared
            .metrics
            .tail_bytes
            .store(header_bytes, Ordering::Relaxed);
    }

    /// The writer's metric counters.
    #[must_use]
    pub fn metrics(&self) -> Arc<WalMetrics> {
        Arc::clone(&self.shared.metrics)
    }
}

impl Drop for WalWriter {
    fn drop(&mut self) {
        {
            let mut st = self.shared.state.lock().expect("wal mutex");
            st.stop = true;
            self.shared.cv.notify_all();
        }
        if let Some(thread) = self.thread.take() {
            let _ = thread.join();
        }
    }
}

/// The flusher thread: drain the buffer into `append`, fsync per policy,
/// park until there is work. Exits when stopped (after a final drain +
/// fsync) or poisoned.
fn flusher(shared: &WalShared) {
    // Poll granularity for the time-based policy; the count-based policy
    // is woken by appends directly.
    let tick = match shared.policy.fsync_every_ms() {
        Some(ms) => Duration::from_millis(ms.clamp(1, 100)),
        None => Duration::from_millis(100),
    };
    loop {
        let (batch, batch_records, stopping) = {
            let mut st = lock(shared);
            while st.buf.is_empty() && !st.force && !st.stop && st.error.is_none() {
                let unsynced = st.appended - st.synced;
                if unsynced > 0 {
                    // Dirty data waiting on a time-based fsync: wake on
                    // the tick to check its age.
                    st = shared.cv.wait_timeout(st, tick).expect("wal mutex").0;
                    break;
                }
                st = shared.cv.wait(st).expect("wal mutex");
            }
            if st.error.is_some() {
                return;
            }
            let batch = std::mem::take(&mut st.buf);
            let records = std::mem::replace(&mut st.buf_records, 0);
            (batch, records, st.stop)
        };
        if !batch.is_empty() {
            if let Err(e) = shared.fs.append(&shared.path, batch.as_bytes()) {
                fail(shared, &e.to_string());
                return;
            }
            shared
                .metrics
                .appends
                .fetch_add(batch_records, Ordering::Relaxed);
            shared
                .metrics
                .tail_bytes
                .fetch_add(batch.len() as u64, Ordering::Relaxed);
            let mut st = lock(shared);
            st.appended += batch_records;
        }
        let want_sync = {
            let st = lock(shared);
            let unsynced = st.appended - st.synced;
            unsynced > 0
                && (st.force
                    || st.stop
                    || match shared.policy {
                        DurabilityPolicy::Off => false,
                        DurabilityPolicy::FsyncEveryN(_) => {
                            let n = shared.policy.fsync_every_n().unwrap_or(1);
                            unsynced >= u64::from(n)
                        }
                        DurabilityPolicy::FsyncEveryMs(ms) => st
                            .dirty_at
                            .is_some_and(|t| t.elapsed() >= Duration::from_millis(ms)),
                    })
        };
        if want_sync {
            if let Err(e) = shared.fs.fsync(&shared.path) {
                fail(shared, &e.to_string());
                return;
            }
            shared.metrics.fsyncs.fetch_add(1, Ordering::Relaxed);
            let mut st = lock(shared);
            st.synced = st.appended;
            if st.synced == st.queued {
                st.dirty_at = None;
                st.force = false;
            }
            shared.cv.notify_all();
        }
        let st = lock(shared);
        if stopping && st.buf.is_empty() && st.appended == st.queued {
            return;
        }
    }
}

fn lock(shared: &WalShared) -> MutexGuard<'_, WalBuf> {
    shared.state.lock().expect("wal mutex")
}

fn fail(shared: &WalShared, msg: &str) {
    let mut st = lock(shared);
    if st.error.is_none() {
        st.error = Some(msg.to_owned());
    }
    shared.cv.notify_all();
}

#[cfg(test)]
mod tests {
    use super::*;
    use grafics_types::{MacAddr, Reading, Rssi};

    fn tmp_dir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir()
            .join("grafics-wal-unit")
            .join(format!("{name}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn record(i: u64) -> SignalRecord {
        let dbm = -40.0 - ((i % 30) as f64);
        SignalRecord::new(vec![
            Reading::new(MacAddr::from_u64(0xA0 + i), Rssi::new(dbm).unwrap()),
            Reading::new(MacAddr::from_u64(0xB0 + i), Rssi::new(-60.0).unwrap()),
        ])
        .unwrap()
    }

    fn entry(seq: u64) -> WalEntry {
        WalEntry {
            seq,
            rng: seq * 2 + 1,
            seed: 42,
            record: record(seq),
        }
    }

    #[test]
    fn codec_round_trip() {
        let lines: String = (0..5).map(|i| encode_entry(&entry(i)).unwrap()).collect();
        let bytes = format!("{}{lines}", encode_header(7));
        let parsed = parse_wal(bytes.as_bytes());
        assert_eq!(
            parsed.header,
            Some(WalHeader {
                wal: WAL_FORMAT_VERSION,
                building: 7
            })
        );
        assert!(!parsed.torn);
        assert_eq!(parsed.entries.len(), 5);
        assert_eq!(parsed.entries[3], entry(3));
    }

    #[test]
    fn torn_tail_yields_longest_valid_prefix() {
        let full: String = format!(
            "{}{}{}",
            encode_header(1),
            encode_entry(&entry(0)).unwrap(),
            encode_entry(&entry(1)).unwrap()
        );
        let keep_first = encode_header(1).len() + encode_entry(&entry(0)).unwrap().len();
        for cut in 0..full.len() {
            let parsed = parse_wal(&full.as_bytes()[..cut]);
            // Parsing a truncation never yields an entry that was not
            // fully written, and every recovered entry is bit-exact.
            for (i, e) in parsed.entries.iter().enumerate() {
                assert_eq!(*e, entry(i as u64), "cut at byte {cut}");
            }
            // An entry becomes recoverable the moment its JSON is
            // complete, trailing newline or not.
            let expected = if cut < keep_first - 1 {
                0
            } else if cut < full.len() - 1 {
                1
            } else {
                2
            };
            assert_eq!(parsed.entries.len(), expected, "cut at byte {cut}");
        }
        // The untruncated log parses cleanly.
        let parsed = parse_wal(full.as_bytes());
        assert!(!parsed.torn);
        assert_eq!(parsed.entries.len(), 2);
    }

    #[test]
    fn writer_drains_on_drop_and_flush_sync_barriers() {
        let dir = tmp_dir("writer-drain");
        let fs: Arc<dyn WalFs> = Arc::new(StdWalFs);
        let writer =
            WalWriter::open(Arc::clone(&fs), &dir, 3, DurabilityPolicy::FsyncEveryN(64)).unwrap();
        for i in 0..10 {
            writer.append(&entry(i)).unwrap();
        }
        writer.flush_sync().unwrap();
        let stats = writer.metrics().stats();
        assert_eq!(stats.appends, 10);
        assert!(stats.fsyncs >= 1);
        drop(writer);
        let parsed = read_wal(&dir, 3);
        assert!(!parsed.torn);
        assert_eq!(parsed.entries.len(), 10);
        assert_eq!(parsed.header.unwrap().building, 3);
    }

    #[test]
    fn failpoint_mid_append_leaves_torn_line_then_power_loss_truncates() {
        let dir = tmp_dir("failpoint-append");
        let fs = Arc::new(FailpointFs::new());
        let dyn_fs: Arc<dyn WalFs> = fs.clone() as Arc<dyn WalFs>;
        let writer = WalWriter::open(
            Arc::clone(&dyn_fs),
            &dir,
            0,
            DurabilityPolicy::FsyncEveryN(1),
        )
        .unwrap();
        writer.append(&entry(0)).unwrap();
        writer.flush_sync().unwrap();
        fs.arm(CrashPoint::MidAppend, 0);
        writer.append(&entry(1)).unwrap();
        // The flusher hits the armed crash; the writer poisons itself.
        let poisoned = (0..200).any(|_| {
            std::thread::sleep(Duration::from_millis(5));
            writer.sticky_error().is_some()
        });
        assert!(poisoned, "flusher should observe the injected crash");
        assert!(fs.crashed());
        drop(writer);
        // Kind outcome: the torn bytes survive; parse drops the torn line.
        fs.apply_power_loss(true);
        let parsed = read_wal(&dir, 0);
        assert_eq!(parsed.entries.len(), 1);
        assert!(parsed.torn);
        // Harsh outcome replayed on the same file: durable prefix only.
        // (entry 0 was fsynced; the torn bytes are gone entirely.)
    }

    #[test]
    fn failpoint_mid_checkpoint_preserves_old_file() {
        let dir = tmp_dir("failpoint-ckpt");
        let fs = FailpointFs::new();
        let target = dir.join("checkpoint-0.json");
        fs.write_atomic(&target, b"{\"old\":true}").unwrap();
        fs.arm(CrashPoint::MidCheckpoint, 0);
        assert!(fs.write_atomic(&target, b"{\"new\":true}").is_err());
        fs.apply_power_loss(false);
        assert_eq!(std::fs::read(&target).unwrap(), b"{\"old\":true}");
    }

    #[test]
    fn failpoint_pre_fsync_drops_unsynced_bytes() {
        let dir = tmp_dir("failpoint-presync");
        let fs = FailpointFs::new();
        let path = dir.join("wal-0.jsonl");
        fs.append(&path, b"line-a\n").unwrap();
        fs.fsync(&path).unwrap();
        fs.arm(CrashPoint::PreFsync, 0);
        fs.append(&path, b"line-b\n").unwrap();
        assert!(fs.fsync(&path).is_err());
        fs.apply_power_loss(false);
        assert_eq!(std::fs::read(&path).unwrap(), b"line-a\n");
    }
}
