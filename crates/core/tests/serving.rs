//! The serving engine's contracts: read-only inference is bit-identical
//! to the graph-extending path, batches are thread-count-invariant, the
//! incremental negative sampler never drifts from a from-scratch rebuild,
//! and `refresh` honours the thread budget.

use grafics_core::{
    Grafics, GraficsConfig, GraficsError, GraficsServer, MatchPrecision, OnlineBudget,
    ServingPolicy,
};
use grafics_data::BuildingModel;
use grafics_graph::NegativeSampler;
use grafics_types::{FloorId, MacAddr, Reading, Rssi, SignalRecord};
use proptest::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::sync::OnceLock;

fn trained(seed: u64) -> (Grafics, grafics_types::Dataset) {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let ds = BuildingModel::office("serving-test", 3)
        .with_records_per_floor(50)
        .simulate(&mut rng);
    let split = ds.split(0.7, &mut rng).unwrap();
    let train = split.train.with_label_budget(4, &mut rng);
    let model = Grafics::train(&train, &GraficsConfig::fast(), &mut rng).unwrap();
    (model, split.test)
}

/// Satellite (b): at the same RNG seed and the same model state, the
/// read-only server returns exactly the prediction the mutable `infer`
/// would — floor, winning cluster, and distance, bit for bit.
#[test]
fn server_is_bit_identical_to_mutable_infer() {
    let (model, test) = trained(31);
    let mut server = model.server();
    for (i, s) in test.samples().iter().take(8).enumerate() {
        let seed = 1000 + i as u64;
        let mut rng_server = ChaCha8Rng::seed_from_u64(seed);
        let from_server = server.infer(&s.record, &mut rng_server).unwrap();

        // Fresh mutable clone in the same starting state.
        let mut mutable = model.clone();
        let mut rng_mut = ChaCha8Rng::seed_from_u64(seed);
        let from_mutable = mutable.infer(&s.record, &mut rng_mut).unwrap();

        assert_eq!(from_server, from_mutable, "record {i}");
        assert_eq!(
            from_server.distance.to_bits(),
            from_mutable.distance.to_bits(),
            "record {i}: distances must match bitwise"
        );
    }
}

#[test]
fn server_never_mutates_the_model() {
    let (model, test) = trained(32);
    let records_before = model.graph().record_count();
    let capacity_before = model.graph().node_capacity();
    let rows_before = model.embeddings().rows();
    let mut server = model.server();
    let mut rng = ChaCha8Rng::seed_from_u64(5);
    let mut served = 0;
    for s in test.samples() {
        if server.infer(&s.record, &mut rng).is_ok() {
            served += 1;
        }
        if server.infer_topk(&s.record, 3, &mut rng).is_ok() {
            served += 1;
        }
    }
    assert!(served > 0);
    assert_eq!(model.graph().record_count(), records_before);
    assert_eq!(model.graph().node_capacity(), capacity_before);
    assert_eq!(model.embeddings().rows(), rows_before);
}

/// Acceptance: a parallel `serve_batch` returns the same predictions as
/// the sequential path, and per-record failures map to `None`.
#[test]
fn serve_batch_is_thread_count_invariant() {
    let (model, test) = trained(33);
    let mut records: Vec<SignalRecord> = test.samples().iter().map(|s| s.record.clone()).collect();
    // Splice in an outside-building record: it must become `None` without
    // disturbing its neighbors.
    let foreign = SignalRecord::new(vec![Reading::new(
        MacAddr::from_u64(0xdead_beef),
        Rssi::new(-50.0).unwrap(),
    )])
    .unwrap();
    let foreign_at = records.len() / 2;
    records.insert(foreign_at, foreign);

    let serial = model.serve_batch(&records, 99, 1);
    let parallel = model.serve_batch(&records, 99, 4);
    assert_eq!(serial.len(), records.len());
    assert_eq!(serial, parallel);
    assert_eq!(serial[foreign_at], None);
    assert!(serial.iter().filter(|p| p.is_some()).count() > records.len() / 2);

    // And an uneven thread count / tiny batch still lines up.
    let tiny = &records[..3];
    assert_eq!(model.serve_batch(tiny, 7, 8), model.serve_batch(tiny, 7, 1));
}

#[test]
fn server_rejects_outside_building() {
    let (model, _) = trained(34);
    let mut server = model.server();
    let mut rng = ChaCha8Rng::seed_from_u64(0);
    let foreign = SignalRecord::new(vec![Reading::new(
        MacAddr::from_u64(0xfeed_f00d),
        Rssi::new(-40.0).unwrap(),
    )])
    .unwrap();
    assert_eq!(
        server.infer(&foreign, &mut rng),
        Err(GraficsError::OutsideBuilding)
    );
}

/// The incrementally synced sampler equals a from-scratch rebuild after
/// any mix of online insertions, record expiry, and AP removal driven
/// through the public `Grafics` API.
#[test]
fn incremental_sampler_matches_rebuild_after_mixed_mutations() {
    let (mut model, test) = trained(35);
    let mut rng = ChaCha8Rng::seed_from_u64(77);
    let mut tracked = Vec::new();
    for (i, s) in test.samples().iter().take(30).enumerate() {
        if i % 3 == 0 {
            if let Ok((rid, _)) = model.infer_tracked(&s.record, &mut rng) {
                tracked.push(rid);
            }
        } else {
            let _ = model.infer(&s.record, &mut rng);
        }
    }
    for rid in tracked.into_iter().step_by(2) {
        model.forget_record(rid).unwrap();
    }
    // Decommission one live AP.
    let mac = (0..model.graph().node_capacity())
        .find_map(|i| {
            let idx = grafics_graph::NodeIdx(i as u32);
            match model.graph().kind(idx) {
                grafics_graph::NodeKind::Mac(m) if !model.graph().is_removed(idx) => Some(m),
                _ => None,
            }
        })
        .unwrap();
    model.remove_ap(mac).unwrap();

    let exponent = model.negative_sampler().exponent();
    let rebuilt = NegativeSampler::from_graph(model.graph(), exponent);
    assert_eq!(model.negative_sampler().weights(), rebuilt.weights());
}

/// Satellite (c): `refresh` at `threads == 1` is bit-identical to the
/// serial refresh, and the Hogwild refresh (threads >= 2) still serves
/// accurate predictions.
#[test]
fn refresh_thread_budget() {
    let (model, test) = trained(36);
    let mut rng = ChaCha8Rng::seed_from_u64(21);
    let mut absorbing = model.clone();
    for s in test.samples().iter().take(15) {
        let _ = absorbing.infer(&s.record, &mut rng);
    }
    // The true label assignment of the offline corpus: replay the
    // dataset construction of `trained(36)`.
    let mut rng_ds = ChaCha8Rng::seed_from_u64(36);
    let ds = BuildingModel::office("serving-test", 3)
        .with_records_per_floor(50)
        .simulate(&mut rng_ds);
    let split = ds.split(0.7, &mut rng_ds).unwrap();
    let train = split.train.with_label_budget(4, &mut rng_ds);
    let labels: Vec<Option<FloorId>> = train.samples().iter().map(|s| s.floor).collect();

    // threads == 1 through set_threads re-trains bit-identically to the
    // untouched serial configuration.
    let mut serial = absorbing.clone();
    let mut explicit = absorbing.clone();
    explicit.set_threads(1);
    assert_eq!(explicit.config().threads, 1);
    let mut rng_a = ChaCha8Rng::seed_from_u64(3);
    let mut rng_b = ChaCha8Rng::seed_from_u64(3);
    serial.refresh(&labels, &mut rng_a).unwrap();
    explicit.refresh(&labels, &mut rng_b).unwrap();
    for i in 0..serial.graph().node_capacity() {
        let idx = grafics_graph::NodeIdx(i as u32);
        assert_eq!(
            serial.embeddings().ego(idx),
            explicit.embeddings().ego(idx),
            "row {i}"
        );
    }

    // Hogwild refresh: different floating-point interleavings, but the
    // refreshed model keeps predicting sanely.
    let mut hogwild = absorbing.clone();
    hogwild.set_threads(4);
    assert_eq!(hogwild.config().threads, 4);
    let mut rng_c = ChaCha8Rng::seed_from_u64(3);
    hogwild.refresh(&labels, &mut rng_c).unwrap();
    let mut rng_eval = ChaCha8Rng::seed_from_u64(9);
    let mut server = hogwild.server();
    let mut hits = 0;
    let mut total = 0;
    for s in test.samples().iter().skip(15) {
        if let Ok(p) = server.infer(&s.record, &mut rng_eval) {
            total += 1;
            if p.floor == s.ground_truth {
                hits += 1;
            }
        }
    }
    assert!(
        total > 0 && hits * 10 >= total * 6,
        "hogwild-refreshed model should stay usable: {hits}/{total}"
    );
}

/// The throughput-tuned serving preset keeps floor accuracy on the easy
/// office corpus — the lighter per-query refinement budget is enough for
/// one frozen node's 2×dim coordinates.
#[test]
fn serving_preset_stays_accurate() {
    let mut rng = ChaCha8Rng::seed_from_u64(41);
    let ds = BuildingModel::office("serving-preset", 3)
        .with_records_per_floor(50)
        .simulate(&mut rng);
    let split = ds.split(0.7, &mut rng).unwrap();
    let train = split.train.with_label_budget(4, &mut rng);
    let cfg = GraficsConfig {
        epochs: 30,
        ..GraficsConfig::serving()
    };
    let model = Grafics::train(&train, &cfg, &mut rng).unwrap();
    let mut server = model.server();
    let mut rng2 = ChaCha8Rng::seed_from_u64(7);
    let (mut hits, mut total) = (0usize, 0usize);
    for s in split.test.samples() {
        if let Ok(p) = server.infer(&s.record, &mut rng2) {
            total += 1;
            hits += usize::from(p.floor == s.ground_truth);
        }
    }
    assert!(
        total > 0 && hits * 10 >= total * 8,
        "serving preset accuracy: {hits}/{total}"
    );
}

/// One trained model shared by the precision/budget property tests —
/// training once is the expensive part.
fn policy_fixture() -> &'static (Grafics, grafics_types::Dataset) {
    static FIXTURE: OnceLock<(Grafics, grafics_types::Dataset)> = OnceLock::new();
    FIXTURE.get_or_init(|| trained(71))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Pin: `F32Refined` matching is bit-identical to the historical
    /// `F64` sweep on real-shaped corpora — floor, winning cluster,
    /// distance, and margin, at any query/seed/budget combination. The
    /// f32 pre-sweep only prunes candidates; every returned number is
    /// computed in f64.
    #[test]
    fn f32_refined_serving_matches_f64_bitwise(
        pick in 0usize..1000,
        seed in 0u64..1 << 40,
        adaptive in 0u8..2,
    ) {
        let (model, test) = policy_fixture();
        let record = &test.samples()[pick % test.len()].record;
        let budget = if adaptive == 1 {
            Some(OnlineBudget::Adaptive { max_spe: 120, min_spe: 10, margin_ratio: 0.3 })
        } else {
            None
        };
        let mut f64_session = GraficsServer::with_policy(
            model,
            ServingPolicy { budget, precision: Some(MatchPrecision::F64) },
        );
        let mut f32_session = GraficsServer::with_policy(
            model,
            ServingPolicy { budget, precision: Some(MatchPrecision::F32Refined) },
        );
        let mut rng_a = ChaCha8Rng::seed_from_u64(seed);
        let mut rng_b = ChaCha8Rng::seed_from_u64(seed);
        let a = f64_session.infer_with_margin(record, &mut rng_a);
        let b = f32_session.infer_with_margin(record, &mut rng_b);
        match (a, b) {
            (Ok((pa, ma)), Ok((pb, mb))) => {
                prop_assert_eq!(&pa, &pb);
                prop_assert_eq!(pa.distance.to_bits(), pb.distance.to_bits());
                prop_assert_eq!(ma.to_bits(), mb.to_bits());
            }
            (Err(ea), Err(eb)) => prop_assert_eq!(ea, eb),
            (a, b) => prop_assert!(false, "outcomes diverged: {:?} vs {:?}", a, b),
        }
    }
}

/// Model JSON written before the serving engine (no `neg_sampler` field)
/// still loads: the sampler is rebuilt losslessly from the graph.
#[test]
fn loads_pre_serving_engine_model_json() {
    let (model, test) = trained(38);
    let dir = std::env::temp_dir().join("grafics-serving-migration");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("old-model.json");
    model.save_json(&path).unwrap();

    // Rewrite the file in the pre-PR format: drop the trailing
    // `neg_sampler` field (it is the last field of the struct).
    let json = std::fs::read_to_string(&path).unwrap();
    let cut = json.rfind(",\"neg_sampler\":").expect("field present");
    let old_format = format!("{}}}", &json[..cut]);
    assert!(!old_format.contains("neg_sampler"));
    std::fs::write(&path, old_format).unwrap();

    let migrated = Grafics::load_json(&path).unwrap();
    std::fs::remove_file(&path).ok();
    assert_eq!(
        migrated.negative_sampler().weights(),
        NegativeSampler::from_graph(migrated.graph(), migrated.negative_sampler().exponent())
            .weights()
    );
    let mut server = migrated.server();
    let mut rng = ChaCha8Rng::seed_from_u64(3);
    let mut served = 0;
    for s in test.samples().iter().take(10) {
        served += usize::from(server.infer(&s.record, &mut rng).is_ok());
    }
    assert!(served > 0, "migrated model must serve");
}

/// A save/load roundtrip preserves the sampler's exact state, so served
/// predictions stay bit-identical across processes.
#[test]
fn save_load_preserves_serving_stream() {
    let (model, test) = trained(37);
    let dir = std::env::temp_dir().join("grafics-serving-test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("model.json");
    model.save_json(&path).unwrap();
    let loaded = Grafics::load_json(&path).unwrap();
    std::fs::remove_file(&path).ok();

    assert_eq!(
        model.negative_sampler().weights(),
        loaded.negative_sampler().weights()
    );
    let mut a = model.server();
    let mut b = loaded.server();
    for (i, s) in test.samples().iter().take(5).enumerate() {
        let mut rng_a = ChaCha8Rng::seed_from_u64(i as u64);
        let mut rng_b = ChaCha8Rng::seed_from_u64(i as u64);
        assert_eq!(
            a.infer(&s.record, &mut rng_a).unwrap(),
            b.infer(&s.record, &mut rng_b).unwrap()
        );
    }
}
