//! Fault-injected proof of the durability contract: recovery after a
//! crash at *any* injected crash point restores write-side state
//! bit-identical to a never-crashed fleet that absorbed the same durable
//! prefix — never a corrupted or divergent model.
//!
//! "Bit-identical" is checked two ways, mirroring the fleet suite's
//! sampler-parity machinery: the full write-side model compared as a
//! `serde_json::Value` (key-order-insensitive, so the graph's MAC lookup
//! map cannot produce false negatives), and the incrementally-synced
//! `NegativeSampler` weights against a from-scratch rebuild.

use grafics_core::wal::ALL_CRASH_POINTS;
use grafics_core::{
    record_rng, CrashPoint, DurabilityPolicy, FailpointFs, Grafics, GraficsConfig, GraficsFleet,
    WalFs,
};
use grafics_data::BuildingModel;
use grafics_types::{BuildingId, SignalRecord};
use proptest::prelude::*;
use proptest::Strategy;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde_json::JsonValue;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, OnceLock};

const B0: BuildingId = BuildingId(0);
/// The serve tier's absorb seed, fixed across crashes like `--seed`.
const SEED: u64 = 4242;

/// One trained building plus its held-out records (the absorb stream).
fn fixture() -> &'static (Grafics, Vec<SignalRecord>) {
    static FIX: OnceLock<(Grafics, Vec<SignalRecord>)> = OnceLock::new();
    FIX.get_or_init(|| {
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let ds = BuildingModel::office("wal-hq", 2)
            .with_records_per_floor(40)
            .simulate(&mut rng);
        let split = ds.split(0.7, &mut rng).unwrap();
        let train = split.train.with_label_budget(4, &mut rng);
        let model = Grafics::train(&train, &GraficsConfig::fast(), &mut rng).unwrap();
        let records = split
            .test
            .samples()
            .iter()
            .map(|s| s.record.clone())
            .collect();
        (model, records)
    })
}

/// A fresh on-disk fleet directory with the given durability policy in
/// its manifest, ready for `GraficsFleet::recover` to attach a WAL.
fn durable_dir(name: &str, policy: DurabilityPolicy) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("grafics-wal-it-{}-{}", name, std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let (model, _) = fixture();
    let mut fleet = GraficsFleet::new();
    fleet.add_shard(B0, model.clone()).unwrap();
    fleet.set_durability(policy);
    fleet.save_dir(&dir).unwrap();
    dir
}

/// The shard's write-side model as a canonical JSON value. The graph's
/// MAC lookup is a `HashMap`, so raw serialization order is unstable;
/// sorting every object's keys recursively makes equality exact without
/// being order-sensitive.
fn write_value(fleet: &GraficsFleet) -> JsonValue {
    fleet.shard(B0).unwrap().with_write_model(|m| {
        let mut v = serde_json::value_of(m);
        canonicalize(&mut v);
        v
    })
}

fn canonicalize(v: &mut JsonValue) {
    match v {
        JsonValue::Seq(items) => items.iter_mut().for_each(canonicalize),
        JsonValue::Map(entries) => {
            entries.iter_mut().for_each(|(_, v)| canonicalize(v));
            entries.sort_by(|a, b| a.0.cmp(&b.0));
        }
        _ => {}
    }
}

/// The never-crashed reference: a fresh fleet absorbing each `(record
/// index, rng index)` pair on the same deterministic streams.
fn oracle_value(absorbed: &[(usize, u64)]) -> JsonValue {
    let (model, records) = fixture();
    let mut fleet = GraficsFleet::new();
    fleet.add_shard(B0, model.clone()).unwrap();
    for &(idx, rng_i) in absorbed {
        let mut rng = record_rng(SEED, usize::try_from(rng_i).unwrap());
        fleet.absorb_to(B0, &records[idx], &mut rng).unwrap();
    }
    write_value(&fleet)
}

/// The first `k` absorbs of the sequential stream (record `i` on rng
/// index `i`), as the matrix and sweep tests issue them.
fn sequential_prefix(k: u64) -> Vec<(usize, u64)> {
    (0..k).map(|i| (usize::try_from(i).unwrap(), i)).collect()
}

/// The write-side sampler must equal a from-scratch rebuild — absorb
/// replay kept the incremental weight sync exact.
fn assert_sampler_parity(fleet: &GraficsFleet) {
    let (live, rebuilt) = fleet.shard(B0).unwrap().with_write_model(|m| {
        let rebuilt =
            grafics_graph::NegativeSampler::from_graph(m.graph(), m.negative_sampler().exponent());
        (
            m.negative_sampler().weights().to_vec(),
            rebuilt.weights().to_vec(),
        )
    });
    assert_eq!(live, rebuilt, "recovered sampler diverged from rebuild");
}

/// Graceful restart: recover → absorb → drop (drain-on-drop) → recover
/// replays to the exact never-crashed state, and a third recovery off
/// the compacted checkpoint is idempotent.
#[test]
fn graceful_restart_replays_to_bit_identical_state() {
    let dir = durable_dir("graceful", DurabilityPolicy::FsyncEveryN(1));
    let (_, records) = fixture();

    let (fleet, report) = GraficsFleet::recover(&dir).unwrap();
    assert!(fleet.wal_attached());
    assert_eq!(report.total_replayed(), 0);
    for i in 0..6u64 {
        fleet
            .absorb_to_durable(B0, &records[usize::try_from(i).unwrap()], SEED, i)
            .unwrap();
    }
    assert!(fleet.wal_error().is_none());
    drop(fleet); // graceful shutdown: drains + fsyncs the WAL tail

    let (back, report) = GraficsFleet::recover(&dir).unwrap();
    let s = report.shards[0];
    assert_eq!(s.watermark + s.replayed, 6);
    assert!(!report.any_torn());
    assert_eq!(report.next_rng_index, 6);

    let expect = oracle_value(&sequential_prefix(6));
    assert_eq!(write_value(&back), expect);
    assert_sampler_parity(&back);
    drop(back);

    // Recovery compacted: the checkpoint now owns all six absorbs and a
    // third recovery replays nothing yet lands on the same state.
    let (again, report) = GraficsFleet::recover(&dir).unwrap();
    assert_eq!(report.shards[0].watermark, 6);
    assert_eq!(report.shards[0].replayed, 0);
    assert_eq!(write_value(&again), expect);
}

/// The tentpole's crash matrix: kill at every injected crash point, under
/// both reboot outcomes (page cache lost / page cache survived), and
/// prove recovery restores exactly the durable prefix.
#[test]
fn crash_matrix_recovery_restores_exact_durable_prefix() {
    let (_, records) = fixture();
    for point in ALL_CRASH_POINTS {
        for keep_unsynced in [false, true] {
            let dir = durable_dir(
                &format!("matrix-{point:?}-{keep_unsynced}"),
                DurabilityPolicy::FsyncEveryN(1),
            );
            let fs = Arc::new(FailpointFs::new());
            let (fleet, _) =
                GraficsFleet::recover_with(Arc::clone(&fs) as Arc<dyn WalFs>, &dir).unwrap();

            // Baseline: four absorbs, drained — durable whatever happens.
            for i in 0..4u64 {
                fleet
                    .absorb_to_durable(B0, &records[usize::try_from(i).unwrap()], SEED, i)
                    .unwrap();
            }
            fleet.drain_wal().unwrap();

            // Provoke the armed crash. The append/fsync points fire on
            // the flusher's next batch; the checkpoint points fire inside
            // publish's snapshot-on-publish checkpoint.
            match point {
                CrashPoint::MidAppend | CrashPoint::PreFsync => {
                    fs.arm(point, 0);
                    for i in 4..7u64 {
                        let r = fleet.absorb_to_durable(
                            B0,
                            &records[usize::try_from(i).unwrap()],
                            SEED,
                            i,
                        );
                        if r.is_err() {
                            break; // WAL already poisoned — a real server would 503 here
                        }
                    }
                    assert!(fleet.drain_wal().is_err(), "{point:?}: drain must surface");
                }
                CrashPoint::MidCheckpoint | CrashPoint::MidTruncate => {
                    for i in 4..6u64 {
                        fleet
                            .absorb_to_durable(B0, &records[usize::try_from(i).unwrap()], SEED, i)
                            .unwrap();
                    }
                    fleet.drain_wal().unwrap();
                    fs.arm(point, 0);
                    fleet.shard(B0).unwrap().publish();
                    assert!(
                        fleet.wal_error().is_some(),
                        "{point:?}: publish must poison"
                    );
                }
            }
            assert!(fs.crashed(), "{point:?}: the armed crash never fired");

            // The process dies mid-flight (every fs op now fails, so the
            // drop cannot quietly drain), the machine reboots, and plain
            // recovery runs over whatever survived.
            drop(fleet);
            fs.apply_power_loss(keep_unsynced);
            let (back, report) = GraficsFleet::recover(&dir).unwrap();
            let s = report.shards[0];
            let k = s.watermark + s.replayed;

            // What each cell may legitimately have kept. The flusher
            // batches, so the acknowledged-but-volatile points have a
            // small honest range; the checkpoint points are exact.
            let (lo, hi) = match point {
                // Half a torn batch can contain one complete line.
                CrashPoint::MidAppend => (4, if keep_unsynced { 5 } else { 4 }),
                CrashPoint::PreFsync => {
                    if keep_unsynced {
                        (5, 7) // appended to page cache, never fsynced
                    } else {
                        (4, 4)
                    }
                }
                CrashPoint::MidCheckpoint | CrashPoint::MidTruncate => (6, 6),
            };
            assert!(
                (lo..=hi).contains(&k),
                "{point:?} keep={keep_unsynced}: recovered {k} absorbs, expected {lo}..={hi}"
            );
            match point {
                // The half-written tmp never renamed: the old checkpoint
                // survives and the whole tail replays.
                CrashPoint::MidCheckpoint => {
                    assert_eq!((s.watermark, s.replayed), (0, 6));
                }
                // The new checkpoint landed but truncation didn't: all
                // six entries are stale, skipped below the watermark.
                CrashPoint::MidTruncate => {
                    assert_eq!((s.watermark, s.skipped), (6, 6));
                }
                _ => {}
            }

            assert_eq!(
                write_value(&back),
                oracle_value(&sequential_prefix(k)),
                "{point:?} keep={keep_unsynced}: recovered state diverged from reference"
            );
            assert_sampler_parity(&back);
        }
    }
}

/// Satellite (d): cutting the WAL at **every byte offset** of its final
/// record recovers exactly the longest valid prefix — 2 entries while
/// the last line is incomplete, all 3 once its JSON is whole.
#[test]
fn torn_tail_truncation_sweep_recovers_longest_valid_prefix() {
    let dir = durable_dir("sweep", DurabilityPolicy::FsyncEveryN(1));
    let (_, records) = fixture();
    {
        let (fleet, _) = GraficsFleet::recover(&dir).unwrap();
        for i in 0..3u64 {
            fleet
                .absorb_to_durable(B0, &records[usize::try_from(i).unwrap()], SEED, i)
                .unwrap();
        }
    } // drain-on-drop: header + 3 entry lines on disk

    let wal = std::fs::read(dir.join("wal-0.jsonl")).unwrap();
    let newlines: Vec<usize> = wal
        .iter()
        .enumerate()
        .filter_map(|(i, b)| (*b == b'\n').then_some(i))
        .collect();
    assert_eq!(newlines.len(), 4, "header + 3 entries");
    let last_start = newlines[2] + 1;

    let expect2 = oracle_value(&sequential_prefix(2));
    let expect3 = oracle_value(&sequential_prefix(3));
    let sweep_root = std::env::temp_dir().join(format!("grafics-wal-sweep-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&sweep_root);
    std::fs::create_dir_all(&sweep_root).unwrap();

    for cut in last_start..=wal.len() {
        let case = sweep_root.join(format!("cut-{cut}"));
        copy_with_truncated_wal(&dir, &case, &wal[..cut]);
        let (back, report) = GraficsFleet::recover(&case).unwrap();
        let s = report.shards[0];
        // A complete final JSON line counts even without its newline.
        let whole = cut >= wal.len() - 1;
        assert_eq!(
            s.watermark + s.replayed,
            if whole { 3 } else { 2 },
            "cut at byte {cut}"
        );
        assert_eq!(s.torn, !whole && cut > last_start, "cut at byte {cut}");
        // The full model comparison is the expensive part: spot-check a
        // stride plus every boundary byte.
        if cut % 13 == 0 || cut <= last_start + 1 || cut >= wal.len() - 2 {
            let expect = if whole { &expect3 } else { &expect2 };
            assert_eq!(&write_value(&back), expect, "cut at byte {cut}");
        }
        drop(back);
        let _ = std::fs::remove_dir_all(&case);
    }
}

/// Copies a fleet directory with the WAL replaced by a truncated prefix
/// and durability forced off, so each swept recovery replays without
/// paying for re-attach + compaction (replay is policy-independent).
fn copy_with_truncated_wal(from: &Path, to: &Path, wal: &[u8]) {
    std::fs::create_dir_all(to).unwrap();
    for name in ["checkpoint-0.json", "shard-0.json"] {
        if from.join(name).exists() {
            std::fs::copy(from.join(name), to.join(name)).unwrap();
        }
    }
    let mut manifest: JsonValue =
        serde_json::from_str(&std::fs::read_to_string(from.join("fleet.json")).unwrap()).unwrap();
    if let JsonValue::Map(entries) = &mut manifest {
        for (key, value) in entries.iter_mut() {
            if key == "durability" {
                *value = serde_json::value_of(&DurabilityPolicy::Off);
            }
        }
    }
    std::fs::write(
        to.join("fleet.json"),
        serde_json::to_string(&manifest).unwrap(),
    )
    .unwrap();
    std::fs::write(to.join("wal-0.jsonl"), wal).unwrap();
}

/// One step of the interleaving proptest.
#[derive(Debug, Clone, Copy)]
enum Op {
    Absorb,
    Publish,
    Drain,
    /// Instant power cut (`keep_unsynced`: did the page cache survive?),
    /// then reboot + recover, continuing on the recovered fleet.
    Crash {
        keep_unsynced: bool,
    },
}

fn op_strategy() -> impl Strategy<Value = Op> {
    (0u8..9).prop_map(|n| match n {
        0..=4 => Op::Absorb,
        5 => Op::Publish,
        6 => Op::Drain,
        7 => Op::Crash {
            keep_unsynced: false,
        },
        _ => Op::Crash {
            keep_unsynced: true,
        },
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Any interleaving of absorb / publish / drain / crash+recover
    /// stays bit-identical to the in-memory oracle replay of whatever
    /// prefix proved durable, and never loses an absorb the API promised
    /// durable (drained or checkpointed).
    #[test]
    fn interleaved_crashes_never_lose_promised_absorbs(
        ops in proptest::collection::vec(op_strategy(), 1..14),
    ) {
        static CASE: AtomicUsize = AtomicUsize::new(0);
        let case = CASE.fetch_add(1, Ordering::Relaxed);
        let dir = durable_dir(&format!("prop-{case}"), DurabilityPolicy::FsyncEveryN(1));
        let (_, records) = fixture();

        let fs = Arc::new(FailpointFs::new());
        let (mut fleet, _) =
            GraficsFleet::recover_with(Arc::clone(&fs) as Arc<dyn WalFs>, &dir).unwrap();
        // (record index, rng index) per acknowledged absorb, in order.
        let mut accepted: Vec<(usize, u64)> = Vec::new();
        let mut durable_floor = 0usize; // absorbs the API promised durable
        let mut next_rng = 0u64;

        for op in &ops {
            match op {
                Op::Absorb => {
                    let idx = accepted.len() % records.len();
                    fleet.absorb_to_durable(B0, &records[idx], SEED, next_rng).unwrap();
                    accepted.push((idx, next_rng));
                    next_rng += 1;
                }
                Op::Publish => {
                    // Snapshot-on-publish checkpoints the write side.
                    fleet.shard(B0).unwrap().publish();
                    prop_assert!(fleet.wal_error().is_none());
                    durable_floor = accepted.len();
                }
                Op::Drain => {
                    fleet.drain_wal().unwrap();
                    durable_floor = accepted.len();
                }
                Op::Crash { keep_unsynced } => {
                    fs.crash_now();
                    drop(fleet); // the poisoned fs blocks the drain-on-drop
                    fs.apply_power_loss(*keep_unsynced);
                    let (back, report) =
                        GraficsFleet::recover_with(Arc::clone(&fs) as Arc<dyn WalFs>, &dir)
                            .unwrap();
                    let s = report.shards[0];
                    let k = usize::try_from(s.watermark + s.replayed).unwrap();
                    prop_assert!(
                        k >= durable_floor,
                        "lost a promised-durable absorb: recovered {k} < floor {durable_floor}"
                    );
                    prop_assert!(k <= accepted.len());
                    accepted.truncate(k);
                    durable_floor = k; // recovery compacts into a checkpoint
                    next_rng = next_rng.max(report.next_rng_index);
                    prop_assert_eq!(write_value(&back), oracle_value(&accepted));
                    fleet = back;
                }
            }
        }

        // Final graceful shutdown: everything acknowledged is durable.
        drop(fleet);
        let (back, report) = GraficsFleet::recover(&dir).unwrap();
        let s = report.shards[0];
        prop_assert_eq!(usize::try_from(s.watermark + s.replayed).unwrap(), accepted.len());
        prop_assert_eq!(write_value(&back), oracle_value(&accepted));
        assert_sampler_parity(&back);
        drop(back);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
