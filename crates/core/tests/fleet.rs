//! The fleet engine's contracts: deterministic routing, serve/absorb
//! isolation across the snapshot swap, bounded retention that keeps the
//! negative sampler exact, and lossless migration of pre-fleet models.

use grafics_core::{
    record_rng, FleetManifest, Grafics, GraficsConfig, GraficsFleet, GraficsServer,
    MaintenancePolicy, RetentionPolicy, Router, RouterKind, Shard,
};
use grafics_data::BuildingModel;
use grafics_types::{BuildingId, SignalRecord};
use proptest::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::sync::OnceLock;

/// Trains one small model per building name (deterministic per name/seed)
/// and returns each building's held-out test records.
fn trained_building(name: &str, seed: u64) -> (Grafics, Vec<SignalRecord>) {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let ds = BuildingModel::office(name, 2)
        .with_records_per_floor(40)
        .simulate(&mut rng);
    let split = ds.split(0.7, &mut rng).unwrap();
    let train = split.train.with_label_budget(4, &mut rng);
    let model = Grafics::train(&train, &GraficsConfig::fast(), &mut rng).unwrap();
    let records = split
        .test
        .samples()
        .iter()
        .map(|s| s.record.clone())
        .collect();
    (model, records)
}

/// Per-building trained shards and the tagged query stream.
type Fixture = (Vec<(BuildingId, Grafics)>, Vec<(BuildingId, SignalRecord)>);

/// A 3-building fleet plus an interleaved query stream tagged with the
/// building each record truly came from. Built once (training is the
/// expensive part) and cloned per test.
fn fleet_fixture() -> &'static Fixture {
    static FIXTURE: OnceLock<Fixture> = OnceLock::new();
    FIXTURE.get_or_init(|| {
        let mut models = Vec::new();
        let mut stream = Vec::new();
        for (i, name) in ["fleet-a", "fleet-b", "fleet-c"].iter().enumerate() {
            let id = BuildingId(i as u32);
            let (model, records) = trained_building(name, 100 + i as u64);
            models.push((id, model));
            for r in records {
                stream.push((id, r));
            }
        }
        // Interleave the three buildings' traffic deterministically.
        stream.sort_by_key(|(id, r)| (r.len(), id.0, r.strongest().mac));
        (models, stream)
    })
}

fn build_fleet(retention: RetentionPolicy) -> GraficsFleet {
    let (models, _) = fleet_fixture();
    let mut fleet = GraficsFleet::new();
    fleet.set_retention(retention);
    for (id, model) in models {
        fleet.add_shard(*id, model.clone()).unwrap();
    }
    fleet
}

/// Satellite (c): same records + same snapshots ⇒ identical shard
/// assignment and bit-identical predictions regardless of `threads`.
#[test]
fn fleet_serving_is_thread_count_invariant() {
    let fleet = build_fleet(RetentionPolicy::KeepAll);
    let (_, stream) = fleet_fixture();
    let records: Vec<SignalRecord> = stream.iter().map(|(_, r)| r.clone()).collect();

    let serial = fleet.serve_batch(&records, 2024, 1);
    for threads in [2, 4, 7] {
        let parallel = fleet.serve_batch(&records, 2024, threads);
        assert_eq!(serial.len(), parallel.len());
        for (i, (a, b)) in serial.iter().zip(&parallel).enumerate() {
            match (a, b) {
                (Some(a), Some(b)) => {
                    assert_eq!(a.building, b.building, "record {i} routed differently");
                    assert_eq!(a.floor, b.floor, "record {i}");
                    assert_eq!(
                        a.distance.to_bits(),
                        b.distance.to_bits(),
                        "record {i}: distances must match bitwise"
                    );
                }
                (None, None) => {}
                _ => panic!("record {i}: presence differs across thread counts"),
            }
        }
    }
}

/// The sub-50 µs serving path — adaptive refinement budget + f32-refined
/// matching, served through the shared-snapshot batch workers — keeps
/// the thread-count-invariance contract bit for bit, and the fleet's
/// process-wide counters record the refinement work.
#[test]
fn adaptive_f32_serving_is_thread_count_invariant() {
    use grafics_core::{MatchPrecision, OnlineBudget, ServingPolicy};
    let mut fleet = build_fleet(RetentionPolicy::KeepAll);
    fleet.set_serving(ServingPolicy {
        budget: Some(OnlineBudget::Adaptive {
            max_spe: 120,
            min_spe: 10,
            margin_ratio: 0.25,
        }),
        precision: Some(MatchPrecision::F32Refined),
    });
    let (_, stream) = fleet_fixture();
    let records: Vec<SignalRecord> = stream.iter().map(|(_, r)| r.clone()).collect();

    let serial = fleet.serve_batch(&records, 4096, 1);
    assert!(serial.iter().flatten().count() * 10 >= records.len() * 9);
    for threads in [2, 4, 7] {
        let parallel = fleet.serve_batch(&records, 4096, threads);
        for (i, (a, b)) in serial.iter().zip(&parallel).enumerate() {
            match (a, b) {
                (Some(a), Some(b)) => {
                    assert_eq!(a.building, b.building, "record {i}");
                    assert_eq!(a.floor, b.floor, "record {i}");
                    assert_eq!(
                        a.distance.to_bits(),
                        b.distance.to_bits(),
                        "record {i}: adaptive serving must stay thread-count invariant"
                    );
                    assert_eq!(a.margin.to_bits(), b.margin.to_bits(), "record {i}");
                }
                (None, None) => {}
                _ => panic!("record {i}: presence differs across thread counts"),
            }
        }
    }
    let counters = fleet.serve_counters();
    assert!(counters.refine_samples > 0);
    assert!(
        counters.early_stops > 0,
        "well-separated offices must early-stop some queries: {counters:?}"
    );
}

/// A never-stopping adaptive budget (`margin_ratio: 0`) with the model's
/// own ceiling is bit-identical to the historical fixed path — the probe
/// consumes no RNG and the LR schedule spans the full budget.
#[test]
fn adaptive_zero_ratio_is_bit_identical_to_fixed_default() {
    use grafics_core::{OnlineBudget, ServingPolicy};
    let baseline = build_fleet(RetentionPolicy::KeepAll);
    let mut adaptive = build_fleet(RetentionPolicy::KeepAll);
    adaptive.set_serving(ServingPolicy {
        // `fast()` models embed queries at 120 samples per edge.
        budget: Some(OnlineBudget::Adaptive {
            max_spe: 120,
            min_spe: 10,
            margin_ratio: 0.0,
        }),
        precision: None,
    });
    let (_, stream) = fleet_fixture();
    let records: Vec<SignalRecord> = stream.iter().map(|(_, r)| r.clone()).collect();
    let expect = baseline.serve_batch(&records, 31, 2);
    let got = adaptive.serve_batch(&records, 31, 2);
    for (i, (a, b)) in expect.iter().zip(&got).enumerate() {
        match (a, b) {
            (Some(a), Some(b)) => {
                assert_eq!(a.floor, b.floor, "record {i}");
                assert_eq!(a.distance.to_bits(), b.distance.to_bits(), "record {i}");
                assert_eq!(a.margin.to_bits(), b.margin.to_bits(), "record {i}");
            }
            (None, None) => {}
            _ => panic!("record {i}: presence differs"),
        }
    }
    assert_eq!(adaptive.serve_counters().early_stops, 0);
}

/// Satellite (c): the router sends essentially every record home (MAC
/// namespaces are disjoint up to simulated noise hotspots), and fleet
/// `serve_batch` is bit-identical to serving each record on its routed
/// shard serially with the same per-record RNG stream.
#[test]
fn fleet_serve_batch_matches_per_shard_serial() {
    let fleet = build_fleet(RetentionPolicy::KeepAll);
    let (_, stream) = fleet_fixture();
    let records: Vec<SignalRecord> = stream.iter().map(|(_, r)| r.clone()).collect();
    let seed = 77u64;
    let batch = fleet.serve_batch(&records, seed, 3);

    let mut routed_home = 0usize;
    for (i, ((truth, record), out)) in stream.iter().zip(&batch).enumerate() {
        let Some(pred) = out else {
            continue; // noise-only record overlapping nothing
        };
        routed_home += usize::from(pred.building == *truth);
        // Per-shard serial reference: a fresh session on the routed
        // shard with the same (seed, index) stream.
        let shard = fleet.shard(pred.building).unwrap();
        let mut rng = record_rng(seed, i);
        let reference = shard.server().infer(record, &mut rng).unwrap();
        assert_eq!(pred.floor, reference.floor, "record {i}");
        assert_eq!(
            pred.distance.to_bits(),
            reference.distance.to_bits(),
            "record {i}"
        );
        assert!(pred.margin >= 0.0, "record {i}");
    }
    let served = batch.iter().flatten().count();
    assert!(served * 10 >= records.len() * 9, "served {served}");
    assert!(
        routed_home * 20 >= served * 19,
        "router must send records home: {routed_home}/{served}"
    );
}

/// Absorbed records stay invisible to readers until `publish`, the epoch
/// counts publishes, and in-flight sessions keep their snapshot.
#[test]
fn absorb_is_invisible_until_publish() {
    let (models, stream) = fleet_fixture();
    let shard = Shard::new(BuildingId(9), models[0].1.clone(), RetentionPolicy::KeepAll);
    let own: Vec<&SignalRecord> = stream
        .iter()
        .filter(|(id, _)| *id == BuildingId(0))
        .map(|(_, r)| r)
        .collect();
    let baseline = shard.snapshot().graph().record_count();
    assert_eq!(shard.epoch(), 0);

    // A session opened before any absorb/publish.
    let pinned = shard.server();

    let mut rng = ChaCha8Rng::seed_from_u64(1);
    let mut absorbed = 0;
    for r in own.iter().take(12) {
        absorbed += usize::from(shard.absorb(r, &mut rng).is_ok());
    }
    assert!(absorbed > 0);
    assert_eq!(
        shard.snapshot().graph().record_count(),
        baseline,
        "readers must not see unpublished absorbs"
    );
    assert_eq!(shard.stats().pending, absorbed);

    let epoch = shard.publish();
    assert_eq!(epoch, 1);
    assert_eq!(shard.epoch(), 1);
    assert_eq!(
        shard.snapshot().graph().record_count(),
        baseline + absorbed,
        "publish exposes the absorbed records"
    );
    assert_eq!(shard.stats().pending, 0);
    // The pre-publish session still serves its original epoch.
    assert_eq!(pinned.model().graph().record_count(), baseline);
}

/// Acceptance: a retention-bounded shard holds at most `budget` absorbed
/// records after absorbing 2× budget.
#[test]
fn fifo_budget_bounds_resident_records() {
    let (models, stream) = fleet_fixture();
    let budget = 10usize;
    let shard = Shard::new(
        BuildingId(0),
        models[0].1.clone(),
        RetentionPolicy::FifoBudget(budget),
    );
    let own: Vec<&SignalRecord> = stream
        .iter()
        .filter(|(id, _)| *id == BuildingId(0))
        .map(|(_, r)| r)
        .collect();
    let mut rng = ChaCha8Rng::seed_from_u64(3);
    let mut absorbed = 0;
    let mut i = 0;
    while absorbed < 2 * budget {
        let r = own[i % own.len()];
        i += 1;
        absorbed += usize::from(shard.absorb(r, &mut rng).is_ok());
    }
    let stats = shard.stats();
    assert!(
        stats.absorbed_resident <= budget,
        "resident {} > budget {budget}",
        stats.absorbed_resident
    );
    assert_eq!(stats.absorbed_resident, budget); // exactly full, not off by one
}

/// Switching retention from `KeepAll` to a budget evicts the whole
/// backlog — including records absorbed while `KeepAll` was in force —
/// and keeps enforcing it afterwards.
#[test]
fn set_retention_enforces_bound_on_keepall_backlog() {
    let (models, stream) = fleet_fixture();
    let shard = Shard::new(BuildingId(0), models[0].1.clone(), RetentionPolicy::KeepAll);
    let own: Vec<&SignalRecord> = stream
        .iter()
        .filter(|(id, _)| *id == BuildingId(0))
        .map(|(_, r)| r)
        .collect();
    let mut rng = ChaCha8Rng::seed_from_u64(8);
    let mut absorbed = 0;
    for r in own.iter().take(14) {
        absorbed += usize::from(shard.absorb(r, &mut rng).is_ok());
    }
    assert!(absorbed > 6);
    assert_eq!(shard.stats().absorbed_resident, absorbed);

    shard.set_retention(RetentionPolicy::FifoBudget(5));
    assert_eq!(
        shard.stats().absorbed_resident,
        5,
        "the KeepAll-era backlog must shrink to the new budget"
    );
    for r in own.iter().skip(14).take(4) {
        let _ = shard.absorb(r, &mut rng);
    }
    assert!(shard.stats().absorbed_resident <= 5);
    // The evictions kept the sampler exact.
    let (live, rebuilt) = shard.with_write_model(|m| {
        let rebuilt =
            grafics_graph::NegativeSampler::from_graph(m.graph(), m.negative_sampler().exponent());
        (
            m.negative_sampler().weights().to_vec(),
            rebuilt.weights().to_vec(),
        )
    });
    assert_eq!(live, rebuilt);
}

/// Per-floor caps bound every floor's bucket independently.
#[test]
fn per_floor_cap_bounds_each_floor() {
    let (models, stream) = fleet_fixture();
    let cap = 4usize;
    let shard = Shard::new(
        BuildingId(0),
        models[0].1.clone(),
        RetentionPolicy::PerFloorCap(cap),
    );
    let own: Vec<&SignalRecord> = stream
        .iter()
        .filter(|(id, _)| *id == BuildingId(0))
        .map(|(_, r)| r)
        .collect();
    let mut rng = ChaCha8Rng::seed_from_u64(5);
    for r in own.iter().take(30) {
        let _ = shard.absorb(r, &mut rng);
    }
    // The building has 2 floors: at most 2 × cap absorbed residents.
    assert!(shard.stats().absorbed_resident <= 2 * cap);
}

/// Satellite (b): a pre-fleet single-building model (`Grafics::load_json`)
/// migrates losslessly into a one-shard fleet — identical predictions —
/// and survives a fleet save/load round trip.
#[test]
fn single_model_migrates_into_one_shard_fleet() {
    let (models, stream) = fleet_fixture();
    let model = &models[0].1;
    let records: Vec<SignalRecord> = stream
        .iter()
        .filter(|(id, _)| *id == BuildingId(0))
        .map(|(_, r)| r.clone())
        .take(10)
        .collect();

    let dir = std::env::temp_dir().join("grafics-fleet-migration");
    std::fs::create_dir_all(&dir).unwrap();
    let single = dir.join("pre-fleet-model.json");
    model.save_json(&single).unwrap();

    // Migrate: pre-fleet file → one-shard fleet.
    let fleet = GraficsFleet::from_model(Grafics::load_json(&single).unwrap());
    assert_eq!(fleet.len(), 1);
    assert_eq!(fleet.shards()[0].id(), BuildingId(0));

    // Round trip the fleet itself.
    let fleet_dir = dir.join("fleet");
    fleet.save_dir(&fleet_dir).unwrap();
    let reloaded = GraficsFleet::load_dir(&fleet_dir).unwrap();
    assert_eq!(reloaded.len(), 1);

    // All three serve bit-identically to the original monolith.
    let seed = 11u64;
    let direct = model.serve_batch(&records, seed, 1);
    for f in [&fleet, &reloaded] {
        let via_fleet = f.serve_batch(&records, seed, 1);
        for (i, (a, b)) in direct.iter().zip(&via_fleet).enumerate() {
            match (a, b) {
                (Some(a), Some(b)) => {
                    assert_eq!(a.floor, b.floor, "record {i}");
                    assert_eq!(a.distance.to_bits(), b.distance.to_bits(), "record {i}");
                    assert_eq!(b.building, BuildingId(0));
                }
                (None, None) => {}
                _ => panic!("record {i}: migration changed the served set"),
            }
        }
    }
    std::fs::remove_file(&single).ok();
    std::fs::remove_dir_all(&fleet_dir).ok();
}

/// Satellite (manifest): save_dir writes `fleet.json`; load_dir restores
/// router, retention, and maintenance cadence without runtime flags; and
/// a PR-3-era directory (shards only, no manifest) migrates losslessly
/// to the default manifest — the behaviour the old loader hard-wired.
#[test]
fn manifest_round_trips_and_pre_manifest_dirs_migrate() {
    let dir = std::env::temp_dir().join("grafics-fleet-manifest");
    std::fs::remove_dir_all(&dir).ok();

    let mut fleet = build_fleet(RetentionPolicy::KeepAll);
    fleet.set_retention(RetentionPolicy::PerFloorCap(7));
    fleet.set_router(RouterKind::WeightedOverlap);
    fleet.set_maintenance(MaintenancePolicy {
        publish_after_absorbs: Some(32),
        publish_after_secs: Some(1.5),
        refresh_every_publishes: Some(4),
        refresh_trigger: None,
    });
    let saved = fleet.manifest();
    fleet.save_dir(&dir).unwrap();

    let reloaded = GraficsFleet::load_dir(&dir).unwrap();
    assert_eq!(reloaded.manifest(), saved);
    assert_eq!(reloaded.retention(), RetentionPolicy::PerFloorCap(7));
    assert_eq!(reloaded.len(), 3);

    // PR-3-era directory: the same shards without the manifest file.
    std::fs::remove_file(dir.join("fleet.json")).unwrap();
    let migrated = GraficsFleet::load_dir(&dir).unwrap();
    assert_eq!(migrated.manifest(), FleetManifest::default());
    assert_eq!(migrated.len(), 3);
    // And the default manifest reproduces the old behaviour: KeepAll +
    // overlap routing.
    let (_, stream) = fleet_fixture();
    let records: Vec<SignalRecord> = stream.iter().map(|(_, r)| r.clone()).take(20).collect();
    let old_style = build_fleet(RetentionPolicy::KeepAll).serve_batch(&records, 3, 1);
    let migrated_out = migrated.serve_batch(&records, 3, 1);
    for (a, b) in old_style.iter().zip(&migrated_out) {
        match (a, b) {
            (Some(a), Some(b)) => {
                assert_eq!(a.floor, b.floor);
                assert_eq!(a.distance.to_bits(), b.distance.to_bits());
            }
            (None, None) => {}
            _ => panic!("migration changed the served set"),
        }
    }
    std::fs::remove_dir_all(&dir).ok();
}

/// The weighted router agrees with the overlap router on essentially the
/// whole home-building stream (disjoint AP namespaces), while remaining
/// deterministic and persistable.
#[test]
fn weighted_router_sends_records_home() {
    let mut fleet = build_fleet(RetentionPolicy::KeepAll);
    fleet.set_router(RouterKind::WeightedOverlap);
    let (_, stream) = fleet_fixture();
    let mut routed_home = 0usize;
    let mut routed = 0usize;
    for (truth, record) in stream {
        if let Some(id) = fleet.route(record) {
            routed += 1;
            routed_home += usize::from(id == *truth);
        }
    }
    assert!(routed * 10 >= stream.len() * 9, "routed {routed}");
    assert!(
        routed_home * 20 >= routed * 19,
        "weighted router must send records home: {routed_home}/{routed}"
    );
}

/// A router that always declines, forcing the broadcast fallback.
struct NeverRoute;

impl Router for NeverRoute {
    fn route(
        &self,
        _snapshots: &[(BuildingId, std::sync::Arc<Grafics>)],
        _record: &SignalRecord,
    ) -> Option<BuildingId> {
        None
    }
}

/// Satellite (fallback): a record the router declines is served by
/// broadcasting to all shards — the winner is the best-distance shard,
/// its answer bit-identical to routing there directly with the same
/// stream — and flagged; `serve_batch` (no fallback) still yields `None`.
#[test]
fn noroute_broadcast_takes_best_distance_and_flags_it() {
    let (models, stream) = fleet_fixture();
    let mut fleet = GraficsFleet::with_router(Box::new(NeverRoute));
    for (id, model) in models {
        fleet.add_shard(*id, model.clone()).unwrap();
    }
    let records: Vec<SignalRecord> = stream.iter().map(|(_, r)| r.clone()).take(15).collect();
    let seed = 2025u64;

    assert!(
        fleet
            .serve_batch(&records, seed, 1)
            .iter()
            .all(Option::is_none),
        "without fallback, a declining router serves nothing"
    );

    let served = fleet.serve_batch_with_fallback(&records, seed, 2);
    let mut answered = 0usize;
    for (i, out) in served.iter().enumerate() {
        let Some(pred) = out else { continue };
        answered += 1;
        assert!(pred.fallback, "record {i} must be flagged as fallback");
        // Reference: every shard serves the record on the same stream;
        // the best distance (ties → lowest id) must be the answer.
        let mut best: Option<(f64, BuildingId, i16)> = None;
        for shard in fleet.shards() {
            let mut rng = record_rng(seed, i);
            let Ok(r) = GraficsServer::over(shard.snapshot()).infer(&records[i], &mut rng) else {
                continue;
            };
            if best.is_none_or(|(d, _, _)| r.distance < d) {
                best = Some((r.distance, shard.id(), r.floor.0));
            }
        }
        let (distance, building, floor) = best.expect("served record has a serving shard");
        assert_eq!(pred.building, building, "record {i}");
        assert_eq!(pred.floor.0, floor, "record {i}");
        assert_eq!(pred.distance.to_bits(), distance.to_bits(), "record {i}");
    }
    assert!(answered * 10 >= records.len() * 9, "answered {answered}");

    // The single-record path agrees with the batch path.
    let mut rng = record_rng(seed, 0);
    let single = fleet.serve_with_fallback(&records[0], &mut rng).unwrap();
    let batch0 = served[0].unwrap();
    assert_eq!(single.building, batch0.building);
    assert_eq!(single.distance.to_bits(), batch0.distance.to_bits());
    assert!(single.fallback);
}

/// `Shard::refresh_write_side` keeps the few-labelled-seeds regime (one
/// seed per existing cluster, so the cluster count is stable) and is
/// indexed by record id — retention eviction gaps plus repeated
/// refreshes never shift a seed label onto the wrong record, and the
/// refreshed shard still serves.
#[test]
fn refresh_write_side_survives_eviction_gaps() {
    let (models, stream) = fleet_fixture();
    let shard = Shard::new(
        BuildingId(0),
        models[0].1.clone(),
        RetentionPolicy::FifoBudget(5),
    );
    let clusters_before = shard.with_write_model(|m| m.clusters().clusters().len());
    let own: Vec<&SignalRecord> = stream
        .iter()
        .filter(|(id, _)| *id == BuildingId(0))
        .map(|(_, r)| r)
        .collect();
    let mut rng = ChaCha8Rng::seed_from_u64(42);
    // 12 absorbs against a budget of 5: evictions punch id gaps into the
    // absorbed range.
    for r in own.iter().take(12) {
        let _ = shard.absorb(r, &mut rng);
    }
    shard.refresh_write_side(&mut rng).unwrap();
    // More absorbs and a second refresh — the historical failure mode
    // was the refit *after* positions and record ids diverged.
    for r in own.iter().skip(12).take(8) {
        let _ = shard.absorb(r, &mut rng);
    }
    shard.refresh_write_side(&mut rng).unwrap();
    let clusters_after = shard.with_write_model(|m| m.clusters().clusters().len());
    assert_eq!(
        clusters_after, clusters_before,
        "refresh must reseed one label per cluster, not per record"
    );
    shard.publish();
    let mut session = shard.server();
    let mut served = 0usize;
    for (i, r) in own.iter().take(10).enumerate() {
        let mut qrng = record_rng(7, i);
        if let Ok(pred) = session.infer(r, &mut qrng) {
            assert!(pred.distance.is_finite());
            served += 1;
        }
    }
    assert!(served >= 8, "refreshed shard must keep serving: {served}");
}

/// `infer_topk` (now `(floor, distance)` pairs) heads with `infer`'s
/// prediction through the fleet's shard servers.
#[test]
fn topk_pairs_head_with_infer() {
    let fleet = build_fleet(RetentionPolicy::KeepAll);
    let (_, stream) = fleet_fixture();
    let (_, record) = &stream[0];
    let shard = fleet.shard(fleet.route(record).unwrap()).unwrap();
    let mut rng_a = ChaCha8Rng::seed_from_u64(4);
    let mut rng_b = ChaCha8Rng::seed_from_u64(4);
    let top = shard.server().infer_topk(record, 3, &mut rng_a).unwrap();
    let best = shard.server().infer(record, &mut rng_b).unwrap();
    assert_eq!(top[0], (best.floor, best.distance));
    assert!(top.windows(2).all(|w| w[0].1 <= w[1].1));
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Satellite (a): after any interleaved absorb/evict sequence under
    /// `FifoBudget` (including budget 0 and an empty shard that never
    /// absorbs), the incrementally synced `NegativeSampler` weights equal
    /// a from-scratch rebuild over the write-side graph, and the resident
    /// count respects the budget exactly — no off-by-one at the boundary.
    #[test]
    fn retention_keeps_sampler_exact_under_interleaving(
        budget in 0usize..6,
        picks in prop::collection::vec(0usize..24, 0..32),
        publish_every in 1usize..8,
    ) {
        let (models, stream) = fleet_fixture();
        let own: Vec<&SignalRecord> = stream
            .iter()
            .filter(|(id, _)| *id == BuildingId(0))
            .map(|(_, r)| r)
            .collect();
        let shard = Shard::new(
            BuildingId(0),
            models[0].1.clone(),
            RetentionPolicy::FifoBudget(budget),
        );
        let mut rng = ChaCha8Rng::seed_from_u64(9);
        let mut absorbed = 0usize;
        for (step, &p) in picks.iter().enumerate() {
            if shard.absorb(own[p % own.len()], &mut rng).is_ok() {
                absorbed += 1;
            }
            if step % publish_every == publish_every - 1 {
                shard.publish();
            }
            let stats = shard.stats();
            prop_assert!(
                stats.absorbed_resident <= budget,
                "step {step}: resident {} > budget {budget}",
                stats.absorbed_resident
            );
            prop_assert_eq!(stats.absorbed_resident, absorbed.min(budget));
        }
        // The write-side sampler must equal a from-scratch table after
        // the whole interleaving.
        let (live, rebuilt) = shard.with_write_model(|m| {
            let rebuilt = grafics_graph::NegativeSampler::from_graph(
                m.graph(),
                m.negative_sampler().exponent(),
            );
            (
                m.negative_sampler().weights().to_vec(),
                rebuilt.weights().to_vec(),
            )
        });
        prop_assert_eq!(live, rebuilt);
        // An empty-shard sequence holds nothing.
        if picks.is_empty() {
            prop_assert_eq!(shard.stats().absorbed_resident, 0);
        }
    }
}
