//! The `grafics` command-line tool.
//!
//! ```text
//! grafics simulate --preset mall --floors 4 --records-per-floor 100 --out corpus.jsonl
//! grafics train    --input corpus.jsonl --labels 4 --out model.json
//! grafics infer    --model model.json --input scans.jsonl [--threads N] [--save-model updated.json]
//! grafics evaluate --model model.json --input test.jsonl [--threads N]
//! grafics fleet simulate --preset microsoft --buildings 8 --out data-dir
//! grafics fleet train    --data data-dir --labels 4 --out model-dir
//! grafics fleet serve    --models model-dir --input scans.jsonl [--threads N]
//! grafics fleet stat     --models model-dir
//! ```
//!
//! All commands are deterministic given `--seed`. Corpora are JSONL (one
//! [`grafics_types::Sample`] per line); models are the JSON produced by
//! [`grafics_core::Grafics::save_json`].
//!
//! `infer` and `evaluate` run through the read-only serving engine
//! ([`grafics_core::GraficsServer`]) with one deterministic RNG stream
//! per record, so `--threads` changes wall-clock but never the output.
//! Passing `--save-model` to `infer` switches to the graph-absorbing path
//! (§V-A): each scan extends the model, which is then written back out.
//!
//! The `fleet` family works over *directories*: one dataset per building
//! in (`fleet simulate` reuses [`grafics_data::FleetPreset`]), one
//! `shard-<id>.json` model per building out plus a `fleet.json` manifest
//! (router choice, retention policy, maintenance cadence — set at
//! `fleet train` time, reloaded without runtime flags), and serving
//! through a [`grafics_core::GraficsFleet`] that routes each scan to the
//! shard whose AP inventory it overlaps. `fleet serve` output carries
//! the routed building plus the different-floor distance margin, so
//! routing confidence is observable per query. With `--http ADDR`,
//! `fleet serve` starts the [`grafics_serve`] network front end instead:
//! a threaded HTTP/1.1 server plus the background maintenance daemon,
//! draining gracefully on Ctrl-C.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use grafics_core::{
    BackendSpec, DurabilityPolicy, Grafics, GraficsConfig, GraficsFleet, MaintenancePolicy,
    MatchPrecision, OnlineBudget, RecoveryReport, RefreshTrigger, RetentionPolicy, RouterKind,
    RouterManifest, ServingPolicy,
};
use grafics_data::{io as dio, BuildingModel, FleetPreset};
use grafics_metrics::ConfusionMatrix;
use grafics_scenario::{replay, RefreshMode, ReplayConfig, Scenario};
use grafics_serve::{HttpServer, RouterConfig, RouterServer, ServeConfig};
use grafics_types::{BreakerPolicy, BuildingId, Dataset, HealthPolicy, RateLimitPolicy};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::fmt::Write as _;

/// Runs one CLI invocation; returns the text to print on success.
///
/// # Errors
///
/// Returns a human-readable message on any usage or IO error.
pub fn run(args: &[String]) -> Result<String, String> {
    match args.first().map(String::as_str) {
        Some("simulate") => simulate(&args[1..]),
        Some("train") => train(&args[1..]),
        Some("infer") => infer(&args[1..]),
        Some("evaluate") => evaluate(&args[1..]),
        Some("fleet") => fleet(&args[1..]),
        Some("scenario") => scenario(&args[1..]),
        Some("help") | None => Ok(USAGE.to_owned()),
        Some(other) => Err(format!("unknown command {other:?}\n{USAGE}")),
    }
}

const USAGE: &str = "\
grafics — graph embedding-based floor identification (ICDCS 2022)

commands:
  simulate --preset office|mall|hospital --floors N [--name S] [--records-per-floor N]
           [--seed N] [--labels N] --out corpus.jsonl
  train    --input corpus.jsonl [--labels N] [--dim N] [--epochs N] [--seed N]
           [--min-support N] [--threads N] --out model.json
  infer    --model model.json --input scans.jsonl [--seed N] [--threads N]
           [--save-model out.json]
  evaluate --model model.json --input test.jsonl [--seed N] [--threads N]
  fleet simulate --preset microsoft|hongkong [--buildings N] [--records-per-floor N]
           [--labels N] [--seed N] --out data-dir
  fleet train    --data data-dir [--labels N] [--dim N] [--epochs N] [--seed N]
           [--min-support N] [--threads N] [--retention keepall|fifo:N|perfloor:N]
           [--router overlap|weighted] [--publish-after-absorbs N]
           [--publish-after-secs T] [--refresh-every K]
           [--durability off|fsync:N|fsync_ms:T] --out model-dir
  fleet serve    --models model-dir --input scans.jsonl [--seed N] [--threads N]
           [--budget fixed:N|adaptive:MAX:MIN:RATIO] [--precision f64|f32]
  fleet serve    --models model-dir --http ADDR [--workers N] [--seed N]
           [--access-log PATH] [--auth-token TOKEN]
           [--budget fixed:N|adaptive:MAX:MIN:RATIO] [--precision f64|f32]
  fleet route    --http ADDR --backends [name=]host:port[,...] | --manifest DIR
           [--health I_MS/T_MS/FAIL/RECOVER] [--breaker TRIP/COOLDOWN_MS]
           [--rate-limit RATE/BURST|off] [--auth-token TOKEN]
           [--deadline-ms N] [--retries N]
  fleet recover  --models model-dir
  fleet stat     --models model-dir
  scenario list
  scenario run   --preset NAME | --file scenario.json [--seed N] [--labels N]
           [--threads N] [--retention keepall|fifo:N|perfloor:N]
           [--refresh none|cadence:K|margin:W:R] [--epochs N] [--buildings N]
           [--records-per-floor N] [--absorbs N] [--probes N]
           [--save-scenario FILE] [--out report.json]
  help

infer/evaluate serve read-only on --threads workers (0 = all cores) with
per-record RNG streams; --save-model switches infer to the model-absorbing
path (scans extend the graph) and writes the grown model back out.

fleet commands work over directories: simulate writes one corpus per
building, train writes one shard-<id>.json per corpus (ids follow sorted
file names) plus a fleet.json manifest persisting the router, retention,
and maintenance-cadence flags, serve routes each scan to the shard whose
APs it overlaps and prints record,building,floor,distance,margin — margin
is the distance gap to the nearest different-floor cluster, the per-query
confidence. fleet serve --http ADDR starts the HTTP front end over the
fleet instead (POST /v1/infer, /v1/infer_batch, /v1/absorb, /v1/publish;
GET /v1/stat, /healthz, and plaintext Prometheus-style counters on
GET /metrics), with the manifest's maintenance cadence enforced by a
background daemon; Ctrl-C drains in-flight requests and exits.

--budget and --precision override the serving path per deployment
without touching the trained models: adaptive:MAX:MIN:RATIO refines a
query with up to MAX samples per edge but probes the top-2 centroid
margin every MIN and stops early once decisive (RATIO, e.g. 0.25, is
the required relative gap); f32 sweeps centroids in single precision
and re-scores the shortlist in f64, falling back to the full f64 sweep
when ranks are too close to trust f32. Both leave absorbs untouched.

With --durability set at fleet train time, every absorb is journalled to
a per-shard write-ahead log before it is acknowledged (fsync:N groups N
appends per fsync; fsync_ms:T fsyncs dirty appends older than T ms), and
fleet serve --http replays the WAL on startup so acknowledged absorbs
survive a crash. fleet recover replays and compacts a durable directory
by hand, printing what each shard recovered. --access-log PATH appends
one JSON line per HTTP request (endpoint, status, latency, shard).

fleet route starts the model-free router tier over per-building backend
processes (each a fleet serve --http): it mirrors their /v1/route_table
inventories to route bit-identically to a single process, probes
/healthz every I_MS ms (Down after FAIL failures, Up after RECOVER
successes), trips a per-backend circuit breaker after TRIP consecutive
request failures (half-open after COOLDOWN_MS), answers fallback
requests by scatter-gather over live backends with a degraded marker,
throttles per client IP at RATE req/s (burst BURST) with 429 +
Retry-After, and — with --auth-token, here or on the backends — requires
a bearer token on /v1/absorb and /v1/publish. --manifest DIR reads
router.json from DIR instead of flags; explicit flags override it.

scenario replays a drift-and-churn timeline (AP churn, transmit-power
drift, device mixes, cross-building bleed) against a freshly trained
fleet and prints the accuracy-over-time curve per epoch, plus margin
quantiles, fallback rate, and refresh/publish counts. scenario list
names the built-in presets; scenario run takes a preset or a scenario
JSON file (--save-scenario writes the resolved timeline back out as a
shareable artifact). --refresh picks the maintenance discipline the
replay enacts: none, a blind fixed cadence (refresh every K-th epoch),
or the drift-triggered margin:W:R (refresh a shard when the p10 of its
last W served margins drops below R x its post-refresh baseline). The
size overrides (--epochs, --buildings, --records-per-floor, --absorbs,
--probes) shrink a preset for quick runs. Reports are deterministic
given --seed; --out writes the full report as JSON.
";

fn fleet(args: &[String]) -> Result<String, String> {
    match args.first().map(String::as_str) {
        Some("simulate") => fleet_simulate(&args[1..]),
        Some("train") => fleet_train(&args[1..]),
        Some("serve") => fleet_serve(&args[1..]),
        Some("route") => fleet_route(&args[1..]),
        Some("recover") => fleet_recover(&args[1..]),
        Some("stat") => fleet_stat(&args[1..]),
        other => Err(format!(
            "fleet needs a subcommand (simulate|train|serve|route|recover|stat), got {other:?}\n{USAGE}"
        )),
    }
}

fn scenario(args: &[String]) -> Result<String, String> {
    match args.first().map(String::as_str) {
        Some("run") => scenario_run(&args[1..]),
        Some("list") => Ok(scenario_list()),
        other => Err(format!(
            "scenario needs a subcommand (run|list), got {other:?}\n{USAGE}"
        )),
    }
}

fn scenario_list() -> String {
    let mut out = String::new();
    let _ = writeln!(out, "{:>16}  timeline", "preset");
    for name in Scenario::preset_names() {
        let s = Scenario::preset(name).expect("listed preset");
        let events: usize = s.epochs.iter().map(|e| e.events.len()).sum();
        let _ = writeln!(
            out,
            "{:>16}  {} buildings, {} epochs, {} events",
            name,
            s.buildings,
            s.epochs.len(),
            events
        );
    }
    out
}

/// `none`, `cadence:K`, or `margin:W:R`.
fn parse_refresh(v: &str) -> Result<RefreshMode, String> {
    if v == "none" {
        return Ok(RefreshMode::None);
    }
    if let Some(k) = v.strip_prefix("cadence:") {
        let k: u32 = k
            .parse()
            .map_err(|_| format!("--refresh: cannot parse cadence {k:?}"))?;
        if k == 0 {
            return Err("--refresh cadence:K needs K >= 1".to_owned());
        }
        return Ok(RefreshMode::Cadence(k));
    }
    RefreshTrigger::parse(v)
        .map(RefreshMode::MarginTrigger)
        .map_err(|e| format!("--refresh: {e}"))
}

fn scenario_run(args: &[String]) -> Result<String, String> {
    let flags = Flags::parse(args)?;
    let mut scenario = match (flags.get("preset"), flags.get("file")) {
        (Some(name), None) => Scenario::preset(name).ok_or_else(|| {
            format!(
                "unknown scenario preset {name:?} (try: {})",
                Scenario::preset_names().join(", ")
            )
        })?,
        (None, Some(path)) => {
            Scenario::load(std::path::Path::new(path)).map_err(|e| format!("--file {path}: {e}"))?
        }
        _ => {
            return Err(
                "scenario run needs exactly one of --preset NAME or --file scenario.json"
                    .to_owned(),
            )
        }
    };

    // Size overrides, for shrinking a preset to a quick run.
    if let Some(epochs) = flags.parse_opt::<usize>("epochs")? {
        scenario.epochs.truncate(epochs.max(1));
    }
    if let Some(buildings) = flags.parse_opt::<usize>("buildings")? {
        scenario.buildings = buildings.max(1);
    }
    if let Some(rpf) = flags.parse_opt::<usize>("records-per-floor")? {
        scenario.records_per_floor = rpf.max(1);
    }
    for epoch in &mut scenario.epochs {
        if let Some(absorbs) = flags.parse_opt::<usize>("absorbs")? {
            epoch.absorb_per_building = absorbs;
        }
        if let Some(probes) = flags.parse_opt::<usize>("probes")? {
            epoch.probe_per_building = probes;
        }
    }
    if let Some(path) = flags.get("save-scenario") {
        scenario
            .save(std::path::Path::new(path))
            .map_err(|e| format!("--save-scenario {path}: {e}"))?;
    }

    let cfg = ReplayConfig {
        seed: flags.parse_or("seed", 2022)?,
        labels_per_floor: flags.parse_or("labels", 4)?,
        threads: resolve_threads(flags.parse_or("threads", 1)?),
        retention: flags
            .get("retention")
            .map(parse_retention)
            .transpose()?
            .unwrap_or(RetentionPolicy::KeepAll),
        refresh: flags
            .get("refresh")
            .map(parse_refresh)
            .transpose()?
            .unwrap_or(RefreshMode::None),
        grafics: None,
    };
    let report = replay(&scenario, &cfg)?;

    let mut out = String::new();
    let _ = writeln!(
        out,
        "scenario {} (seed {}, refresh {})",
        report.scenario, report.seed, report.refresh
    );
    let _ = writeln!(
        out,
        "{:>20} {:>8} {:>9} {:>8} {:>8} {:>9} {:>9} {:>9}",
        "epoch", "acc", "fallback", "p10", "p50", "refreshes", "pruned", "resident"
    );
    for e in &report.epochs {
        let _ = writeln!(
            out,
            "{:>20} {:>8.3} {:>9.3} {:>8.2} {:>8.2} {:>9} {:>9} {:>9}",
            e.label,
            e.accuracy,
            e.fallback_rate,
            e.margin_p10,
            e.margin_p50,
            e.refreshes,
            e.pruned_macs,
            e.resident_records
        );
    }
    let _ = writeln!(
        out,
        "mean accuracy {:.3}, min {:.3}, {} refreshes over {} epochs",
        report.mean_accuracy(),
        report.min_accuracy(),
        report.total_refreshes(),
        report.epochs.len()
    );
    if let Some(path) = flags.get("out") {
        std::fs::write(path, report.to_json()).map_err(|e| format!("--out {path}: {e}"))?;
        let _ = writeln!(out, "wrote {path}");
    }
    Ok(out)
}

/// `--threads 0` means "use every hardware thread".
fn resolve_threads(threads: usize) -> usize {
    if threads == 0 {
        std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
    } else {
        threads
    }
}

/// Minimal flag parser: `--key value` pairs.
struct Flags<'a> {
    pairs: Vec<(&'a str, &'a str)>,
}

impl<'a> Flags<'a> {
    fn parse(args: &'a [String]) -> Result<Self, String> {
        let mut pairs = Vec::new();
        let mut i = 0;
        while i < args.len() {
            let key = args[i]
                .strip_prefix("--")
                .ok_or_else(|| format!("expected --flag, got {:?}", args[i]))?;
            let value = args
                .get(i + 1)
                .ok_or_else(|| format!("--{key} needs a value"))?
                .as_str();
            pairs.push((key, value));
            i += 2;
        }
        Ok(Flags { pairs })
    }

    fn get(&self, key: &str) -> Option<&str> {
        self.pairs.iter().find(|&&(k, _)| k == key).map(|&(_, v)| v)
    }

    fn required(&self, key: &str) -> Result<&str, String> {
        self.get(key)
            .ok_or_else(|| format!("missing required --{key}"))
    }

    fn parse_or<T: std::str::FromStr>(&self, key: &str, default: T) -> Result<T, String> {
        match self.get(key) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| format!("--{key}: cannot parse {v:?}")),
        }
    }

    fn parse_opt<T: std::str::FromStr>(&self, key: &str) -> Result<Option<T>, String> {
        self.get(key)
            .map(|v| {
                v.parse()
                    .map_err(|_| format!("--{key}: cannot parse {v:?}"))
            })
            .transpose()
    }
}

/// `keepall`, `fifo:N`, or `perfloor:N`.
fn parse_retention(v: &str) -> Result<RetentionPolicy, String> {
    let bad = || format!("--retention: expected keepall|fifo:N|perfloor:N, got {v:?}");
    if v == "keepall" {
        return Ok(RetentionPolicy::KeepAll);
    }
    let (kind, n) = v.split_once(':').ok_or_else(bad)?;
    let n: usize = n.parse().map_err(|_| bad())?;
    match kind {
        "fifo" => Ok(RetentionPolicy::FifoBudget(n)),
        "perfloor" => Ok(RetentionPolicy::PerFloorCap(n)),
        _ => Err(bad()),
    }
}

fn parse_router(v: &str) -> Result<RouterKind, String> {
    match v {
        "overlap" => Ok(RouterKind::Overlap),
        "weighted" => Ok(RouterKind::WeightedOverlap),
        other => Err(format!(
            "--router: expected overlap|weighted, got {other:?}"
        )),
    }
}

fn simulate(args: &[String]) -> Result<String, String> {
    let flags = Flags::parse(args)?;
    let preset = flags.required("preset")?;
    let floors: i16 = flags.parse_or("floors", 3)?;
    let name = flags.get("name").unwrap_or("building").to_owned();
    let records: usize = flags.parse_or("records-per-floor", 100)?;
    let seed: u64 = flags.parse_or("seed", 0)?;
    let labels: usize = flags.parse_or("labels", usize::MAX)?;
    let out = flags.required("out")?;

    let building = match preset {
        "office" => BuildingModel::office(&name, floors),
        "mall" => BuildingModel::mall(&name, floors),
        "hospital" => BuildingModel::hospital(&name, floors),
        other => return Err(format!("unknown preset {other:?} (office|mall|hospital)")),
    }
    .with_records_per_floor(records);

    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut ds = building.simulate(&mut rng);
    if labels != usize::MAX {
        ds = ds.with_label_budget(labels, &mut rng);
    }
    dio::save_jsonl(&ds, out).map_err(|e| e.to_string())?;
    let st = ds.stats();
    Ok(format!(
        "wrote {out}: {} records, {} MACs, {} floors, {} labelled\n",
        st.records, st.macs, st.floors, st.labeled
    ))
}

fn train(args: &[String]) -> Result<String, String> {
    let flags = Flags::parse(args)?;
    let input = flags.required("input")?;
    let out = flags.required("out")?;
    let labels: usize = flags.parse_or("labels", usize::MAX)?;
    let seed: u64 = flags.parse_or("seed", 0)?;
    let min_support: usize = flags.parse_or("min-support", 2)?;
    // `--threads 0` means "use every hardware thread"; with >= 2 the
    // offline stages run the Hogwild trainer + parallel dissimilarity
    // matrix, trading bit-reproducibility of training for wall-clock.
    let threads = resolve_threads(flags.parse_or("threads", 1)?);
    let config = GraficsConfig {
        dim: flags.parse_or("dim", GraficsConfig::default().dim)?,
        epochs: flags.parse_or("epochs", GraficsConfig::default().epochs)?,
        threads,
        ..GraficsConfig::default()
    };

    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut ds: Dataset = dio::load_jsonl(input).map_err(|e| e.to_string())?;
    ds = ds.filter_rare_macs(min_support);
    if labels != usize::MAX {
        ds = ds.with_label_budget(labels, &mut rng);
    }
    let model = Grafics::train(&ds, &config, &mut rng).map_err(|e| e.to_string())?;
    model.save_json(out).map_err(|e| e.to_string())?;
    Ok(format!(
        "trained on {} records ({} labelled, {} clusters); model written to {out}\n",
        ds.len(),
        ds.stats().labeled,
        model.clusters().clusters().len()
    ))
}

fn infer(args: &[String]) -> Result<String, String> {
    let flags = Flags::parse(args)?;
    let model_path = flags.required("model")?;
    let input = flags.required("input")?;
    let seed: u64 = flags.parse_or("seed", 0)?;
    let threads = resolve_threads(flags.parse_or("threads", 1)?);

    let mut model = Grafics::load_json(model_path).map_err(|e| e.to_string())?;
    let ds: Dataset = dio::load_jsonl(input).map_err(|e| e.to_string())?;
    let mut out = String::from("record,floor,distance\n");
    if let Some(save) = flags.get("save-model") {
        // Absorbing path: every scan extends the graph; the grown model is
        // written back out for the next serving generation.
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        for (i, s) in ds.samples().iter().enumerate() {
            match model.infer(&s.record, &mut rng) {
                Ok(pred) => {
                    let _ = writeln!(out, "{i},{},{:.6}", pred.floor, pred.distance);
                }
                Err(e) => {
                    let _ = writeln!(out, "{i},discarded,{e}");
                }
            }
        }
        model.save_json(save).map_err(|e| e.to_string())?;
    } else {
        // Read-only serving path: thread-parallel, model untouched.
        let records: Vec<_> = ds.samples().iter().map(|s| s.record.clone()).collect();
        for (i, pred) in model
            .serve_batch(&records, seed, threads)
            .iter()
            .enumerate()
        {
            match pred {
                Some(pred) => {
                    let _ = writeln!(out, "{i},{},{:.6}", pred.floor, pred.distance);
                }
                None => {
                    // Recover the concrete reason for the operator (cheap:
                    // discards are rare and the check is O(readings)).
                    let reason = if model.graph().overlaps(&records[i]) {
                        "could not be embedded"
                    } else {
                        "record shares no MAC with the building graph; discarded"
                    };
                    let _ = writeln!(out, "{i},discarded,{reason}");
                }
            }
        }
    }
    Ok(out)
}

fn evaluate(args: &[String]) -> Result<String, String> {
    let flags = Flags::parse(args)?;
    let model_path = flags.required("model")?;
    let input = flags.required("input")?;
    let seed: u64 = flags.parse_or("seed", 0)?;
    let threads = resolve_threads(flags.parse_or("threads", 1)?);

    let model = Grafics::load_json(model_path).map_err(|e| e.to_string())?;
    let ds: Dataset = dio::load_jsonl(input).map_err(|e| e.to_string())?;
    let records: Vec<_> = ds.samples().iter().map(|s| s.record.clone()).collect();
    let predictions = model.serve_batch(&records, seed, threads);
    let mut cm = ConfusionMatrix::new();
    let mut discarded = 0;
    for (s, pred) in ds.samples().iter().zip(&predictions) {
        match pred {
            Some(pred) => cm.observe(s.ground_truth, pred.floor),
            None => discarded += 1,
        }
    }
    let report = cm.report();
    Ok(format!(
        "{cm}\n{}\ndiscarded: {discarded}\n",
        report.summary_line()
    ))
}

/// Writes one simulated corpus per building of the chosen
/// [`FleetPreset`] population into `--out`.
fn fleet_simulate(args: &[String]) -> Result<String, String> {
    let flags = Flags::parse(args)?;
    let preset = match flags.required("preset")? {
        "microsoft" => FleetPreset::Microsoft,
        "hongkong" => FleetPreset::HongKong,
        other => {
            return Err(format!(
                "unknown fleet preset {other:?} (microsoft|hongkong)"
            ))
        }
    };
    let buildings: usize = flags.parse_or("buildings", 5)?;
    let records: usize = flags.parse_or("records-per-floor", 100)?;
    let labels: usize = flags.parse_or("labels", usize::MAX)?;
    let seed: u64 = flags.parse_or("seed", 0)?;
    let out = flags.required("out")?;
    std::fs::create_dir_all(out).map_err(|e| e.to_string())?;

    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let fleet = preset.generate(buildings, records, &mut rng);
    let mut summary = String::new();
    for building in &fleet {
        let mut ds = building.simulate(&mut rng);
        if labels != usize::MAX {
            ds = ds.with_label_budget(labels, &mut rng);
        }
        let path = std::path::Path::new(out).join(format!("{}.jsonl", building.name));
        dio::save_jsonl(&ds, &path).map_err(|e| e.to_string())?;
        let st = ds.stats();
        let _ = writeln!(
            summary,
            "wrote {}: {} records, {} floors, {} labelled",
            path.display(),
            st.records,
            st.floors,
            st.labeled
        );
    }
    let _ = writeln!(summary, "{} building corpora under {out}", fleet.len());
    Ok(summary)
}

/// Trains one shard per `*.jsonl` under `--data` (building ids follow the
/// sorted file names) and writes `shard-<id>.json` files to `--out`.
fn fleet_train(args: &[String]) -> Result<String, String> {
    let flags = Flags::parse(args)?;
    let data = flags.required("data")?;
    let out = flags.required("out")?;
    let labels: usize = flags.parse_or("labels", usize::MAX)?;
    let seed: u64 = flags.parse_or("seed", 0)?;
    let min_support: usize = flags.parse_or("min-support", 2)?;
    let threads = resolve_threads(flags.parse_or("threads", 1)?);
    let config = GraficsConfig {
        dim: flags.parse_or("dim", GraficsConfig::default().dim)?,
        epochs: flags.parse_or("epochs", GraficsConfig::default().epochs)?,
        threads,
        ..GraficsConfig::default()
    };

    let mut corpora: Vec<std::path::PathBuf> = std::fs::read_dir(data)
        .map_err(|e| format!("{data}: {e}"))?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.extension().is_some_and(|x| x == "jsonl"))
        .collect();
    corpora.sort();
    if corpora.is_empty() {
        return Err(format!("no *.jsonl building corpora under {data}"));
    }

    let mut fleet = GraficsFleet::new();
    let mut summary = String::new();
    for (i, path) in corpora.iter().enumerate() {
        // Per-building stream: buildings train independently of how many
        // siblings share the directory.
        let mut rng =
            ChaCha8Rng::seed_from_u64(seed ^ (i as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15));
        let mut ds: Dataset = dio::load_jsonl(path).map_err(|e| e.to_string())?;
        ds = ds.filter_rare_macs(min_support);
        if labels != usize::MAX {
            ds = ds.with_label_budget(labels, &mut rng);
        }
        let model = Grafics::train(&ds, &config, &mut rng)
            .map_err(|e| format!("{}: {e}", path.display()))?;
        let _ = writeln!(
            summary,
            "b{i} <- {}: {} records, {} clusters",
            path.display(),
            ds.len(),
            model.clusters().clusters().len()
        );
        fleet
            .add_shard(BuildingId(i as u32), model)
            .map_err(|e| e.to_string())?;
    }
    // Persist the serving configuration alongside the shards: the
    // manifest makes the directory self-describing, so `fleet serve`
    // needs no runtime flags to reproduce this deployment.
    if let Some(r) = flags.get("retention") {
        fleet.set_retention(parse_retention(r)?);
    }
    if let Some(r) = flags.get("router") {
        fleet.set_router(parse_router(r)?);
    }
    let maintenance = MaintenancePolicy {
        publish_after_absorbs: flags.parse_opt("publish-after-absorbs")?,
        publish_after_secs: flags.parse_opt("publish-after-secs")?,
        refresh_every_publishes: flags.parse_opt("refresh-every")?,
        refresh_trigger: flags
            .get("refresh-trigger")
            .map(|s| RefreshTrigger::parse(s).map_err(|e| format!("--refresh-trigger: {e}")))
            .transpose()?,
    };
    if maintenance.publish_after_absorbs == Some(0)
        || maintenance.refresh_every_publishes == Some(0)
    {
        return Err(
            "--publish-after-absorbs/--refresh-every must be >= 1 (omit to disable)".into(),
        );
    }
    if maintenance.refresh_trigger.is_some_and(|t| t.is_noop()) {
        return Err("--refresh-trigger margin:W:R needs W >= 1 and R > 0".into());
    }
    if maintenance.publish_after_secs.is_some_and(|t| t <= 0.0) {
        return Err("--publish-after-secs must be > 0 (omit to disable)".into());
    }
    if !maintenance.is_noop() {
        fleet.set_maintenance(maintenance);
    }
    if let Some(d) = flags.get("durability") {
        fleet.set_durability(DurabilityPolicy::parse(d).map_err(|e| format!("--durability: {e}"))?);
    }
    fleet.save_dir(out).map_err(|e| e.to_string())?;
    let _ = writeln!(summary, "{} shard models written to {out}", fleet.len());
    Ok(summary)
}

/// `--budget fixed:N | adaptive:MAX:MIN:RATIO` and `--precision f64|f32`
/// → the deployment-level [`ServingPolicy`] (`None` when neither flag is
/// given, deferring to the models' own configs).
fn parse_serving_policy(flags: &Flags) -> Result<Option<ServingPolicy>, String> {
    let budget = match flags.get("budget") {
        None => None,
        Some(spec) => Some(match spec.split_once(':') {
            Some(("fixed", n)) => OnlineBudget::Fixed(
                n.parse()
                    .map_err(|_| format!("--budget fixed:N: bad N in {spec:?}"))?,
            ),
            Some(("adaptive", rest)) => {
                let parts: Vec<&str> = rest.split(':').collect();
                let [max, min, ratio] = parts[..] else {
                    return Err(format!("--budget adaptive:MAX:MIN:RATIO, got {spec:?}"));
                };
                OnlineBudget::Adaptive {
                    max_spe: max
                        .parse()
                        .map_err(|_| format!("--budget: bad MAX in {spec:?}"))?,
                    min_spe: min
                        .parse()
                        .map_err(|_| format!("--budget: bad MIN in {spec:?}"))?,
                    margin_ratio: ratio
                        .parse()
                        .map_err(|_| format!("--budget: bad RATIO in {spec:?}"))?,
                }
            }
            _ => {
                return Err(format!(
                    "--budget fixed:N|adaptive:MAX:MIN:RATIO, got {spec:?}"
                ))
            }
        }),
    };
    if let Some(b) = budget {
        b.validate()
            .map_err(|e| format!("--budget {:?}: {e}", flags.get("budget").unwrap_or("")))?;
    }
    let precision = match flags.get("precision") {
        None => None,
        Some("f64") => Some(MatchPrecision::F64),
        Some("f32") => Some(MatchPrecision::F32Refined),
        Some(other) => return Err(format!("--precision f64|f32, got {other:?}")),
    };
    if budget.is_none() && precision.is_none() {
        return Ok(None);
    }
    Ok(Some(ServingPolicy { budget, precision }))
}

/// Serves a scan stream through the routed fleet (read-only), or — with
/// `--http ADDR` — starts the network front end over it.
fn fleet_serve(args: &[String]) -> Result<String, String> {
    let flags = Flags::parse(args)?;
    let models = flags.required("models")?;
    if let Some(addr) = flags.get("http") {
        return fleet_serve_http(&flags, models, addr);
    }
    let input = flags.required("input")?;
    let seed: u64 = flags.parse_or("seed", 0)?;
    let threads = resolve_threads(flags.parse_or("threads", 1)?);

    let mut fleet = GraficsFleet::load_dir(models).map_err(|e| e.to_string())?;
    if let Some(policy) = parse_serving_policy(&flags)? {
        fleet.set_serving(policy);
    }
    let ds: Dataset = dio::load_jsonl(input).map_err(|e| e.to_string())?;
    let records: Vec<_> = ds.samples().iter().map(|s| s.record.clone()).collect();
    let mut out = String::from("record,building,floor,distance,margin\n");
    for (i, pred) in fleet
        .serve_batch(&records, seed, threads)
        .iter()
        .enumerate()
    {
        match pred {
            Some(p) => {
                let _ = writeln!(
                    out,
                    "{i},{},{},{:.6},{:.6}",
                    p.building, p.floor, p.distance, p.margin
                );
            }
            None => {
                let _ = writeln!(out, "{i},discarded,,,");
            }
        }
    }
    Ok(out)
}

/// Blocks serving the fleet over HTTP until SIGINT/SIGTERM drains it.
///
/// A durable directory (manifest `durability` != off) goes through
/// [`GraficsFleet::recover`] instead of a bare load: the WAL tail is
/// replayed, the absorb sequence resumes past every journalled index,
/// and `/healthz` reports `degraded` until the recovered state is
/// re-checkpointed and the tail fsynced.
fn fleet_serve_http(flags: &Flags, models: &str, addr: &str) -> Result<String, String> {
    let workers = resolve_threads(flags.parse_or("workers", 2)?);
    let seed: u64 = flags.parse_or("seed", 0)?;
    let manifest = grafics_core::read_manifest(models).map_err(|e| e.to_string())?;
    let (mut fleet, recovery) = if manifest.durability.is_off() {
        (
            GraficsFleet::load_dir(models).map_err(|e| e.to_string())?,
            RecoveryReport::default(),
        )
    } else {
        GraficsFleet::recover(models).map_err(|e| e.to_string())?
    };
    if let Some(policy) = parse_serving_policy(flags)? {
        fleet.set_serving(policy);
    }
    let shards = fleet.len();
    let maintenance = fleet.maintenance();
    let config = ServeConfig {
        workers,
        seed,
        handle_signals: true,
        access_log: flags.get("access-log").map(std::path::PathBuf::from),
        auth_token: flags.get("auth-token").map(str::to_owned),
        ..ServeConfig::default()
    };
    let server = HttpServer::bind(fleet, addr, config).map_err(|e| format!("{addr}: {e}"))?;
    let local = server.local_addr().map_err(|e| e.to_string())?;
    let state = std::sync::Arc::clone(server.state());
    // Never reuse a journalled RNG index: replayed absorbs already burned
    // theirs, and reuse would fork the deterministic write-side history.
    state.resume_absorb_seq(recovery.next_rng_index);
    if recovery.total_replayed() > 0 || recovery.any_torn() {
        state.count_recovery();
        eprintln!(
            "recovered {} journalled absorb(s) across {} shard(s){}",
            recovery.total_replayed(),
            recovery.shards.len(),
            if recovery.any_torn() {
                " (torn WAL tail dropped)"
            } else {
                ""
            },
        );
        // Degraded until the replayed state is checkpointed and the tail
        // is durable again; requests racing this window see 503 on
        // /healthz rather than a fleet that could still lose re-absorbs.
        state.set_recovering(true);
        state
            .fleet()
            .drain_wal()
            .map_err(|e| format!("post-recovery WAL drain: {e}"))?;
        state.set_recovering(false);
    }
    eprintln!(
        "serving {shards} shard(s) on http://{local} ({workers} workers; \
         publish after {:?} absorbs / {:?} s, refresh every {:?} publishes); \
         Ctrl-C drains and exits",
        maintenance.publish_after_absorbs,
        maintenance.publish_after_secs,
        maintenance.refresh_every_publishes,
    );
    let report = server.run().map_err(|e| e.to_string())?;
    Ok(format!(
        "served {} requests: {} absorbs, {} auto-publishes, {} background refreshes\n",
        report.requests, report.absorbs, report.maintenance_publishes, report.maintenance_refreshes
    ))
}

/// `--backends [name=]host:port[,...]` → backend specs; bare addresses
/// get positional names `backend-0`, `backend-1`, ….
fn parse_backends(spec: &str) -> Result<Vec<BackendSpec>, String> {
    let mut backends = Vec::new();
    for (i, part) in spec.split(',').enumerate() {
        let part = part.trim();
        if part.is_empty() {
            return Err(format!("--backends: empty entry in {spec:?}"));
        }
        let (name, addr) = match part.split_once('=') {
            Some((name, addr)) if !name.is_empty() && !addr.is_empty() => {
                (name.to_owned(), addr.to_owned())
            }
            Some(_) => return Err(format!("--backends: bad entry {part:?}")),
            None => (format!("backend-{i}"), part.to_owned()),
        };
        backends.push(BackendSpec { name, addr });
    }
    Ok(backends)
}

/// Starts the model-free router tier: health-probed, breaker-guarded
/// proxying of `/v1/*` to per-building `fleet serve --http` backends.
/// Blocks until killed.
fn fleet_route(args: &[String]) -> Result<String, String> {
    let flags = Flags::parse(args)?;
    let addr = flags.required("http")?;
    let mut manifest = match flags.get("manifest") {
        Some(dir) => grafics_core::read_router_manifest(dir).map_err(|e| format!("{dir}: {e}"))?,
        None => RouterManifest::default(),
    };
    if let Some(spec) = flags.get("backends") {
        manifest.backends = parse_backends(spec)?;
    }
    if manifest.backends.is_empty() {
        return Err(
            "router needs --backends [name=]host:port[,...] or a --manifest DIR whose \
             router.json lists backends"
                .to_owned(),
        );
    }
    if let Some(spec) = flags.get("health") {
        manifest.health = HealthPolicy::parse(spec).map_err(|e| format!("--health: {e}"))?;
    }
    if let Some(spec) = flags.get("breaker") {
        manifest.breaker = BreakerPolicy::parse(spec).map_err(|e| format!("--breaker: {e}"))?;
    }
    if let Some(spec) = flags.get("rate-limit") {
        manifest.rate_limit =
            RateLimitPolicy::parse(spec).map_err(|e| format!("--rate-limit: {e}"))?;
    }
    if let Some(token) = flags.get("auth-token") {
        manifest.auth_token = Some(token.to_owned());
    }
    let backends = manifest.backends.len();
    let config = RouterConfig {
        manifest,
        backend_timeout: std::time::Duration::from_millis(flags.parse_or("deadline-ms", 2000)?),
        retries: flags.parse_or("retries", 2)?,
        ..RouterConfig::default()
    };
    let server = RouterServer::bind(config, addr).map_err(|e| format!("{addr}: {e}"))?;
    let local = server.local_addr();
    eprintln!("routing {backends} backend(s) on http://{local}");
    let report = server.run().map_err(|e| e.to_string())?;
    Ok(format!("routed {} request(s)\n", report.requests))
}

/// Replays and compacts a durable fleet directory by hand, printing what
/// each shard recovered. Useful after a crash before bringing the HTTP
/// front end back, or to verify a copied-off directory.
fn fleet_recover(args: &[String]) -> Result<String, String> {
    let flags = Flags::parse(args)?;
    let models = flags.required("models")?;
    let (fleet, report) = GraficsFleet::recover(models).map_err(|e| e.to_string())?;
    // Make the post-replay checkpoint and truncated tail durable before
    // reporting success.
    fleet.drain_wal().map_err(|e| e.to_string())?;
    let mut out = String::new();
    for s in &report.shards {
        let _ = writeln!(
            out,
            "b{}: {} watermark {}, replayed {}, skipped {}{}",
            s.building.0,
            if s.from_checkpoint {
                "checkpoint"
            } else {
                "legacy model"
            },
            s.watermark,
            s.replayed,
            s.skipped,
            if s.torn { ", torn tail dropped" } else { "" },
        );
    }
    let _ = writeln!(
        out,
        "recovered {} shard(s): {} absorb(s) replayed; next absorb index {}",
        report.shards.len(),
        report.total_replayed(),
        report.next_rng_index
    );
    Ok(out)
}

/// Per-shard structural statistics of a saved fleet.
fn fleet_stat(args: &[String]) -> Result<String, String> {
    let flags = Flags::parse(args)?;
    let models = flags.required("models")?;
    let fleet = GraficsFleet::load_dir(models).map_err(|e| e.to_string())?;
    let manifest = fleet.manifest();
    let mut out = fleet.stats().to_string();
    let _ = writeln!(
        out,
        "manifest: router={:?} retention={:?} maintenance={:?} durability={:?}",
        manifest.router, manifest.retention, manifest.maintenance, manifest.durability
    );
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(parts: &[&str]) -> Vec<String> {
        parts.iter().map(|p| (*p).to_owned()).collect()
    }

    fn tmp(name: &str) -> String {
        let dir = std::env::temp_dir().join("grafics-cli-test");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name).to_string_lossy().into_owned()
    }

    #[test]
    fn help_and_unknown_command() {
        assert!(run(&[]).unwrap().contains("commands:"));
        assert!(run(&s(&["help"])).unwrap().contains("simulate"));
        assert!(run(&s(&["frobnicate"])).is_err());
    }

    #[test]
    fn flags_parser_validates() {
        assert!(Flags::parse(&s(&["--a"])).is_err());
        assert!(Flags::parse(&s(&["a", "b"])).is_err());
        let args = s(&["--a", "1", "--b", "x"]);
        let f = Flags::parse(&args).unwrap();
        assert_eq!(f.get("a"), Some("1"));
        assert_eq!(f.required("b").unwrap(), "x");
        assert!(f.required("c").is_err());
        assert_eq!(f.parse_or("a", 0usize).unwrap(), 1);
        assert!(f.parse_or("b", 0usize).is_err());
    }

    #[test]
    fn backends_parse_named_and_positional() {
        let specs = parse_backends("a=127.0.0.1:1,127.0.0.1:2").unwrap();
        assert_eq!(specs.len(), 2);
        assert_eq!(
            (specs[0].name.as_str(), specs[0].addr.as_str()),
            ("a", "127.0.0.1:1")
        );
        assert_eq!(specs[1].name, "backend-1");
        assert!(parse_backends("").is_err());
        assert!(parse_backends("a,=x").is_err());
        assert!(parse_backends("=127.0.0.1:1").is_err());
    }

    #[test]
    fn route_requires_backends_and_validates_policies() {
        let err = run(&s(&["fleet", "route", "--http", "127.0.0.1:0"])).unwrap_err();
        assert!(err.contains("--backends"), "{err}");
        let err = run(&s(&[
            "fleet",
            "route",
            "--http",
            "127.0.0.1:0",
            "--backends",
            "127.0.0.1:1",
            "--health",
            "nope",
        ]))
        .unwrap_err();
        assert!(err.contains("--health"), "{err}");
        let err = run(&s(&[
            "fleet",
            "route",
            "--http",
            "127.0.0.1:0",
            "--backends",
            "127.0.0.1:1",
            "--rate-limit",
            "fast",
        ]))
        .unwrap_err();
        assert!(err.contains("--rate-limit"), "{err}");
    }

    #[test]
    fn simulate_rejects_bad_preset() {
        let out = tmp("bad.jsonl");
        let err = run(&s(&["simulate", "--preset", "castle", "--out", &out])).unwrap_err();
        assert!(err.contains("unknown preset"));
    }

    #[test]
    fn train_accepts_threads_flag() {
        let corpus = tmp("threads-corpus.jsonl");
        let model = tmp("threads-model.json");
        run(&s(&[
            "simulate",
            "--preset",
            "office",
            "--floors",
            "2",
            "--records-per-floor",
            "30",
            "--seed",
            "3",
            "--labels",
            "4",
            "--out",
            &corpus,
        ]))
        .unwrap();
        let msg = run(&s(&[
            "train",
            "--input",
            &corpus,
            "--epochs",
            "20",
            "--threads",
            "4",
            "--out",
            &model,
        ]))
        .unwrap();
        assert!(msg.contains("trained on"), "{msg}");
        // The trained model must serve predictions like any serial model.
        let eval = run(&s(&["evaluate", "--model", &model, "--input", &corpus])).unwrap();
        assert!(eval.contains("micro-F"), "{eval}");
        std::fs::remove_file(&corpus).ok();
        std::fs::remove_file(&model).ok();
    }

    #[test]
    fn infer_is_thread_count_invariant() {
        let corpus = tmp("serve-corpus.jsonl");
        let model = tmp("serve-model.json");
        run(&s(&[
            "simulate",
            "--preset",
            "office",
            "--floors",
            "2",
            "--records-per-floor",
            "30",
            "--seed",
            "8",
            "--labels",
            "4",
            "--out",
            &corpus,
        ]))
        .unwrap();
        run(&s(&[
            "train", "--input", &corpus, "--epochs", "20", "--out", &model,
        ]))
        .unwrap();
        let serial = run(&s(&["infer", "--model", &model, "--input", &corpus])).unwrap();
        let parallel = run(&s(&[
            "infer",
            "--model",
            &model,
            "--input",
            &corpus,
            "--threads",
            "4",
        ]))
        .unwrap();
        assert_eq!(serial, parallel, "--threads must not change predictions");
        std::fs::remove_file(&corpus).ok();
        std::fs::remove_file(&model).ok();
    }

    #[test]
    fn fleet_cli_workflow() {
        let base = std::env::temp_dir().join("grafics-cli-fleet-test");
        std::fs::remove_dir_all(&base).ok();
        let data = base.join("data").to_string_lossy().into_owned();
        let models = base.join("models").to_string_lossy().into_owned();

        // Simulate a tiny Hong Kong-like fleet trimmed to 2 buildings by
        // using the Microsoft preset with --buildings 2.
        let msg = run(&s(&[
            "fleet",
            "simulate",
            "--preset",
            "microsoft",
            "--buildings",
            "2",
            "--records-per-floor",
            "30",
            "--labels",
            "4",
            "--seed",
            "5",
            "--out",
            &data,
        ]))
        .unwrap();
        assert!(msg.contains("2 building corpora"), "{msg}");

        // Train one shard per corpus, persisting a serving configuration
        // in the directory manifest.
        let msg = run(&s(&[
            "fleet",
            "train",
            "--data",
            &data,
            "--epochs",
            "20",
            "--seed",
            "1",
            "--retention",
            "fifo:64",
            "--router",
            "weighted",
            "--publish-after-absorbs",
            "8",
            "--out",
            &models,
        ]))
        .unwrap();
        assert!(msg.contains("2 shard models"), "{msg}");

        // Serve one of the corpora through the routed fleet; output must
        // be thread-count invariant and carry the margin column.
        let scans = std::fs::read_dir(&data)
            .unwrap()
            .next()
            .unwrap()
            .unwrap()
            .path()
            .to_string_lossy()
            .into_owned();
        let serial = run(&s(&[
            "fleet", "serve", "--models", &models, "--input", &scans,
        ]))
        .unwrap();
        assert!(serial.starts_with("record,building,floor,distance,margin"));
        let parallel = run(&s(&[
            "fleet",
            "serve",
            "--models",
            &models,
            "--input",
            &scans,
            "--threads",
            "4",
        ]))
        .unwrap();
        assert_eq!(serial, parallel, "--threads must not change fleet output");
        // Essentially all scans should route to one building (b0 or b1).
        let routed: Vec<&str> = serial
            .lines()
            .skip(1)
            .filter_map(|l| l.split(',').nth(1))
            .collect();
        assert!(routed.iter().filter(|b| b.starts_with('b')).count() * 10 >= routed.len() * 9);

        // Stats cover both shards, and the manifest written at train
        // time is reloaded without runtime flags.
        let stat = run(&s(&["fleet", "stat", "--models", &models])).unwrap();
        assert!(stat.contains("shards: 2"), "{stat}");
        assert!(stat.contains("b0,") && stat.contains("b1,"), "{stat}");
        assert!(stat.contains("WeightedOverlap"), "{stat}");
        assert!(stat.contains("FifoBudget(64)"), "{stat}");
        assert!(stat.contains("publish_after_absorbs: Some(8)"), "{stat}");

        std::fs::remove_dir_all(&base).ok();
    }

    #[test]
    fn fleet_durable_train_recover_roundtrip() {
        let base = std::env::temp_dir().join("grafics-cli-durable-test");
        std::fs::remove_dir_all(&base).ok();
        let data = base.join("data").to_string_lossy().into_owned();
        let models = base.join("models").to_string_lossy().into_owned();

        run(&s(&[
            "fleet",
            "simulate",
            "--preset",
            "microsoft",
            "--buildings",
            "2",
            "--records-per-floor",
            "30",
            "--labels",
            "4",
            "--seed",
            "5",
            "--out",
            &data,
        ]))
        .unwrap();
        let msg = run(&s(&[
            "fleet",
            "train",
            "--data",
            &data,
            "--epochs",
            "20",
            "--seed",
            "1",
            "--durability",
            "fsync:8",
            "--out",
            &models,
        ]))
        .unwrap();
        assert!(msg.contains("2 shard models"), "{msg}");

        // The manifest persists the policy…
        let stat = run(&s(&["fleet", "stat", "--models", &models])).unwrap();
        assert!(stat.contains("FsyncEveryN(8)"), "{stat}");
        // …a bad spec is rejected at train time…
        let err = run(&s(&[
            "fleet",
            "train",
            "--data",
            &data,
            "--durability",
            "fsync:soon",
            "--out",
            &models,
        ]))
        .unwrap_err();
        assert!(err.contains("--durability"), "{err}");

        // …and recovery of the freshly trained (empty-WAL) directory is a
        // clean no-op that still reports per-shard detail.
        let msg = run(&s(&["fleet", "recover", "--models", &models])).unwrap();
        assert!(msg.contains("recovered 2 shard(s)"), "{msg}");
        assert!(msg.contains("0 absorb(s) replayed"), "{msg}");
        assert!(msg.contains("b0:"), "{msg}");

        std::fs::remove_dir_all(&base).ok();
    }

    #[test]
    fn fleet_rejects_bad_usage() {
        assert!(run(&s(&["fleet"])).is_err());
        assert!(run(&s(&["fleet", "frobnicate"])).is_err());
        let empty = std::env::temp_dir().join("grafics-cli-fleet-empty");
        std::fs::create_dir_all(&empty).unwrap();
        let e = empty.to_string_lossy().into_owned();
        assert!(run(&s(&["fleet", "train", "--data", &e, "--out", &e])).is_err());
        assert!(run(&s(&["fleet", "stat", "--models", &e])).is_err());
        std::fs::remove_dir_all(&empty).ok();
    }

    #[test]
    fn full_cli_workflow() {
        let corpus = tmp("corpus.jsonl");
        let test_set = tmp("test.jsonl");
        let model = tmp("model.json");

        // Simulate a labelled training corpus and a test corpus.
        let msg = run(&s(&[
            "simulate",
            "--preset",
            "office",
            "--floors",
            "2",
            "--records-per-floor",
            "40",
            "--seed",
            "1",
            "--labels",
            "4",
            "--out",
            &corpus,
        ]))
        .unwrap();
        assert!(msg.contains("2 floors"), "{msg}");
        run(&s(&[
            "simulate",
            "--preset",
            "office",
            "--floors",
            "2",
            "--records-per-floor",
            "10",
            "--seed",
            "1",
            "--out",
            &test_set,
        ]))
        .unwrap();

        // Train.
        let msg = run(&s(&[
            "train", "--input", &corpus, "--epochs", "30", "--seed", "2", "--out", &model,
        ]))
        .unwrap();
        assert!(msg.contains("8 clusters"), "{msg}");

        // Infer: CSV output with one row per record.
        let csv = run(&s(&["infer", "--model", &model, "--input", &test_set])).unwrap();
        assert!(csv.starts_with("record,floor,distance"));
        assert_eq!(csv.lines().count(), 21);

        // Evaluate: same-building same-layout test set scores highly.
        let eval = run(&s(&["evaluate", "--model", &model, "--input", &test_set])).unwrap();
        assert!(eval.contains("micro-F"), "{eval}");
        for f in std::fs::read_dir(std::env::temp_dir().join("grafics-cli-test")).unwrap() {
            std::fs::remove_file(f.unwrap().path()).ok();
        }
    }
}
