//! CLI contracts for the scenario engine: `grafics scenario run
//! --preset NAME --out report.json` writes a report that parses back
//! and equals the library replay bit for bit, and `scenario list`
//! names every built-in preset.

use grafics_cli::run;
use grafics_scenario::{replay, RefreshMode, ReplayConfig, Scenario, ScenarioReport};

fn args(list: &[&str]) -> Vec<String> {
    list.iter().map(|s| (*s).to_owned()).collect()
}

#[test]
fn scenario_list_names_every_preset() {
    let text = run(&args(&["scenario", "list"])).unwrap();
    for name in Scenario::preset_names() {
        assert!(text.contains(name), "{name} missing from:\n{text}");
    }
}

#[test]
fn scenario_run_round_trips_report_json() {
    let dir = std::env::temp_dir().join(format!("grafics-cli-scenario-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let out = dir.join("report.json");
    let saved = dir.join("scenario.json");

    let text = run(&args(&[
        "scenario",
        "run",
        "--preset",
        "stable",
        "--epochs",
        "2",
        "--buildings",
        "2",
        "--records-per-floor",
        "25",
        "--absorbs",
        "5",
        "--probes",
        "10",
        "--save-scenario",
        saved.to_str().unwrap(),
        "--out",
        out.to_str().unwrap(),
    ]))
    .unwrap();
    assert!(text.contains("mean accuracy"), "{text}");

    // The written report parses back and equals the library replay of
    // the saved (shrunk) scenario under the same defaults — the CLI adds
    // no hidden knobs.
    let report = ScenarioReport::from_json(&std::fs::read_to_string(&out).unwrap()).unwrap();
    assert_eq!(report.scenario, "stable");
    assert_eq!(report.epochs.len(), 2);
    let scenario = Scenario::load(&saved).unwrap();
    let reference = replay(
        &scenario,
        &ReplayConfig {
            seed: 2022,
            refresh: RefreshMode::None,
            ..ReplayConfig::default()
        },
    )
    .unwrap();
    assert_eq!(
        report, reference,
        "CLI report must equal the library replay"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn scenario_run_rejects_unknown_preset() {
    let err = run(&args(&["scenario", "run", "--preset", "no-such"])).unwrap_err();
    assert!(err.contains("unknown scenario preset"), "{err}");
    let err = run(&args(&["scenario", "run"])).unwrap_err();
    assert!(err.contains("--preset"), "{err}");
}
