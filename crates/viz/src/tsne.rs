//! Exact t-SNE (van der Maaten & Hinton, 2008) for small point sets.
//!
//! O(n²) per iteration — fine for the few-thousand-point figures the paper
//! draws. Includes perplexity calibration by bisection, early exaggeration
//! and momentum, following the reference implementation.

use rand::Rng;
use std::fmt;

/// t-SNE hyper-parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TsneConfig {
    /// Output dimensionality (2 for the paper's figures).
    pub out_dim: usize,
    /// Target perplexity of the conditional distributions.
    pub perplexity: f64,
    /// Gradient-descent iterations.
    pub iterations: usize,
    /// Learning rate.
    pub learning_rate: f64,
    /// Early-exaggeration factor applied for the first quarter of the run.
    pub exaggeration: f64,
}

impl Default for TsneConfig {
    fn default() -> Self {
        TsneConfig {
            out_dim: 2,
            perplexity: 20.0,
            iterations: 400,
            learning_rate: 100.0,
            exaggeration: 4.0,
        }
    }
}

/// Errors from t-SNE.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum TsneError {
    /// Fewer than two input points.
    TooFewPoints,
    /// Ragged or empty input rows.
    DimensionMismatch,
    /// Non-finite input coordinate.
    NonFiniteInput,
}

impl fmt::Display for TsneError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TsneError::TooFewPoints => write!(f, "t-SNE needs at least two points"),
            TsneError::DimensionMismatch => write!(f, "input points must share one dimension"),
            TsneError::NonFiniteInput => write!(f, "input points must be finite"),
        }
    }
}

impl std::error::Error for TsneError {}

/// The t-SNE projector.
#[derive(Debug, Clone)]
pub struct Tsne {
    config: TsneConfig,
}

impl Tsne {
    /// Creates a projector.
    #[must_use]
    pub fn new(config: TsneConfig) -> Self {
        Tsne { config }
    }

    /// Projects `points` to `config.out_dim` dimensions.
    ///
    /// # Errors
    ///
    /// See [`TsneError`].
    pub fn run<R: Rng + ?Sized>(
        &self,
        points: &[Vec<f64>],
        rng: &mut R,
    ) -> Result<Vec<Vec<f64>>, TsneError> {
        let n = points.len();
        if n < 2 {
            return Err(TsneError::TooFewPoints);
        }
        let dim = points[0].len();
        if dim == 0 || points.iter().any(|p| p.len() != dim) {
            return Err(TsneError::DimensionMismatch);
        }
        if points.iter().flatten().any(|x| !x.is_finite()) {
            return Err(TsneError::NonFiniteInput);
        }
        let cfg = &self.config;

        // Pairwise squared distances.
        let mut d2 = vec![0.0f64; n * n];
        for i in 0..n {
            for j in (i + 1)..n {
                let d: f64 = points[i]
                    .iter()
                    .zip(&points[j])
                    .map(|(&a, &b)| (a - b) * (a - b))
                    .sum();
                d2[i * n + j] = d;
                d2[j * n + i] = d;
            }
        }

        // Conditional probabilities with per-point bandwidth calibrated to
        // the target perplexity, then symmetrised.
        let target_entropy = cfg.perplexity.max(2.0).ln();
        let mut p = vec![0.0f64; n * n];
        for i in 0..n {
            let (mut lo, mut hi) = (1e-20f64, 1e20f64);
            let mut beta = 1.0f64;
            for _ in 0..50 {
                let mut sum = 0.0;
                let mut dot = 0.0;
                for j in 0..n {
                    if j == i {
                        continue;
                    }
                    let w = (-beta * d2[i * n + j]).exp();
                    sum += w;
                    dot += w * d2[i * n + j];
                }
                if sum <= 0.0 {
                    beta /= 2.0;
                    continue;
                }
                // Shannon entropy of the conditional distribution.
                let entropy = beta * dot / sum + sum.ln();
                if (entropy - target_entropy).abs() < 1e-5 {
                    break;
                }
                if entropy > target_entropy {
                    lo = beta;
                    beta = if hi >= 1e20 {
                        beta * 2.0
                    } else {
                        (beta + hi) / 2.0
                    };
                } else {
                    hi = beta;
                    beta = (beta + lo) / 2.0;
                }
            }
            let mut sum = 0.0;
            for j in 0..n {
                if j != i {
                    let w = (-beta * d2[i * n + j]).exp();
                    p[i * n + j] = w;
                    sum += w;
                }
            }
            if sum > 0.0 {
                for j in 0..n {
                    p[i * n + j] /= sum;
                }
            }
        }
        // Symmetrise: p_ij = (p_{j|i} + p_{i|j}) / 2n, floored for stability.
        for i in 0..n {
            for j in (i + 1)..n {
                let v = ((p[i * n + j] + p[j * n + i]) / (2.0 * n as f64)).max(1e-12);
                p[i * n + j] = v;
                p[j * n + i] = v;
            }
        }

        // Gradient descent on the output coordinates.
        let od = cfg.out_dim;
        let mut y: Vec<f64> = (0..n * od).map(|_| rng.gen_range(-1e-2..1e-2)).collect();
        let mut velocity = vec![0.0f64; n * od];
        let mut q = vec![0.0f64; n * n];
        let exag_until = cfg.iterations / 4;

        for iter in 0..cfg.iterations {
            let exag = if iter < exag_until {
                cfg.exaggeration
            } else {
                1.0
            };
            // Student-t affinities.
            let mut qsum = 0.0;
            for i in 0..n {
                for j in (i + 1)..n {
                    let mut d = 0.0;
                    for k in 0..od {
                        let diff = y[i * od + k] - y[j * od + k];
                        d += diff * diff;
                    }
                    let w = 1.0 / (1.0 + d);
                    q[i * n + j] = w;
                    q[j * n + i] = w;
                    qsum += 2.0 * w;
                }
            }
            let momentum = if iter < 100 { 0.5 } else { 0.8 };
            for i in 0..n {
                let mut grad = vec![0.0f64; od];
                for j in 0..n {
                    if j == i {
                        continue;
                    }
                    let w = q[i * n + j];
                    let coeff = 4.0 * (exag * p[i * n + j] - w / qsum) * w;
                    for k in 0..od {
                        grad[k] += coeff * (y[i * od + k] - y[j * od + k]);
                    }
                }
                for k in 0..od {
                    velocity[i * od + k] =
                        momentum * velocity[i * od + k] - cfg.learning_rate * grad[k];
                    y[i * od + k] += velocity[i * od + k];
                }
            }
        }

        Ok((0..n).map(|i| y[i * od..(i + 1) * od].to_vec()).collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn blobs(n_per: usize, centers: &[f64]) -> Vec<Vec<f64>> {
        let mut pts = Vec::new();
        for &c in centers {
            for i in 0..n_per {
                pts.push(vec![c + (i as f64) * 0.01, c - (i as f64) * 0.02, c]);
            }
        }
        pts
    }

    #[test]
    fn separated_blobs_stay_separated() {
        let pts = blobs(12, &[0.0, 100.0]);
        let cfg = TsneConfig {
            iterations: 250,
            perplexity: 5.0,
            ..Default::default()
        };
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let y = Tsne::new(cfg).run(&pts, &mut rng).unwrap();
        let centroid = |range: std::ops::Range<usize>| -> (f64, f64) {
            let m = range.len() as f64;
            let sx: f64 = range.clone().map(|i| y[i][0]).sum();
            let sy: f64 = range.map(|i| y[i][1]).sum();
            (sx / m, sy / m)
        };
        let (ax, ay) = centroid(0..12);
        let (bx, by) = centroid(12..24);
        let inter = ((ax - bx).powi(2) + (ay - by).powi(2)).sqrt();
        // mean intra-cluster spread
        let spread: f64 = (0..12)
            .map(|i| ((y[i][0] - ax).powi(2) + (y[i][1] - ay).powi(2)).sqrt())
            .sum::<f64>()
            / 12.0;
        assert!(inter > 3.0 * spread, "inter {inter} vs spread {spread}");
    }

    #[test]
    fn output_shape_and_finiteness() {
        let pts = blobs(5, &[0.0, 10.0, 20.0]);
        let cfg = TsneConfig {
            iterations: 60,
            perplexity: 4.0,
            ..Default::default()
        };
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let y = Tsne::new(cfg).run(&pts, &mut rng).unwrap();
        assert_eq!(y.len(), 15);
        for row in &y {
            assert_eq!(row.len(), 2);
            assert!(row.iter().all(|v| v.is_finite()));
        }
    }

    #[test]
    fn input_validation() {
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let t = Tsne::new(TsneConfig::default());
        assert_eq!(t.run(&[vec![0.0]], &mut rng), Err(TsneError::TooFewPoints));
        assert_eq!(
            t.run(&[vec![0.0], vec![0.0, 1.0]], &mut rng),
            Err(TsneError::DimensionMismatch)
        );
        assert_eq!(
            t.run(&[vec![f64::NAN], vec![0.0]], &mut rng),
            Err(TsneError::NonFiniteInput)
        );
    }
}
