//! A dependency-free SVG scatter-plot writer for the figure binaries.

use std::fmt::Write as _;

/// One named, coloured point series.
#[derive(Debug, Clone, PartialEq)]
pub struct Series {
    /// Legend label.
    pub label: String,
    /// CSS colour (e.g. `"#e41a1c"`).
    pub color: String,
    /// `(x, y)` points.
    pub points: Vec<(f64, f64)>,
}

impl Series {
    /// Convenience constructor.
    #[must_use]
    pub fn new(label: &str, color: &str, points: Vec<(f64, f64)>) -> Self {
        Series {
            label: label.to_owned(),
            color: color.to_owned(),
            points,
        }
    }
}

/// A scatter plot rendered to a standalone SVG string.
#[derive(Debug, Clone)]
pub struct ScatterPlot {
    title: String,
    series: Vec<Series>,
    width: f64,
    height: f64,
}

impl ScatterPlot {
    /// Creates an 800×600 plot.
    #[must_use]
    pub fn new(title: &str) -> Self {
        ScatterPlot {
            title: title.to_owned(),
            series: Vec::new(),
            width: 800.0,
            height: 600.0,
        }
    }

    /// Adds a series.
    pub fn add_series(&mut self, series: Series) -> &mut Self {
        self.series.push(series);
        self
    }

    /// A qualitative palette matching typical paper figures.
    #[must_use]
    pub fn palette(i: usize) -> &'static str {
        const COLORS: [&str; 8] = [
            "#e41a1c", "#377eb8", "#4daf4a", "#984ea3", "#ff7f00", "#a65628", "#f781bf", "#999999",
        ];
        COLORS[i % COLORS.len()]
    }

    /// Renders the SVG document.
    #[must_use]
    pub fn render(&self) -> String {
        let (w, h) = (self.width, self.height);
        let margin = 50.0;
        let all: Vec<(f64, f64)> = self
            .series
            .iter()
            .flat_map(|s| s.points.iter().copied())
            .collect();
        let (xmin, xmax, ymin, ymax) = bounds(&all);
        let sx = |x: f64| margin + (x - xmin) / (xmax - xmin).max(1e-12) * (w - 2.0 * margin);
        let sy = |y: f64| h - margin - (y - ymin) / (ymax - ymin).max(1e-12) * (h - 2.0 * margin);

        let mut out = String::new();
        let _ = writeln!(
            out,
            r#"<svg xmlns="http://www.w3.org/2000/svg" width="{w}" height="{h}" viewBox="0 0 {w} {h}">"#
        );
        let _ = writeln!(out, r#"<rect width="{w}" height="{h}" fill="white"/>"#);
        let _ = writeln!(
            out,
            r#"<text x="{}" y="24" font-family="sans-serif" font-size="18" text-anchor="middle">{}</text>"#,
            w / 2.0,
            xml_escape(&self.title)
        );
        for (si, s) in self.series.iter().enumerate() {
            for &(x, y) in &s.points {
                let _ = writeln!(
                    out,
                    r#"<circle cx="{:.2}" cy="{:.2}" r="3" fill="{}" fill-opacity="0.7"/>"#,
                    sx(x),
                    sy(y),
                    s.color
                );
            }
            // Legend entry.
            let ly = 40.0 + 20.0 * si as f64;
            let _ = writeln!(
                out,
                r#"<circle cx="{}" cy="{}" r="5" fill="{}"/>"#,
                w - 160.0,
                ly,
                s.color
            );
            let _ = writeln!(
                out,
                r#"<text x="{}" y="{}" font-family="sans-serif" font-size="13">{}</text>"#,
                w - 148.0,
                ly + 4.0,
                xml_escape(&s.label)
            );
        }
        out.push_str("</svg>\n");
        out
    }
}

fn bounds(points: &[(f64, f64)]) -> (f64, f64, f64, f64) {
    if points.is_empty() {
        return (0.0, 1.0, 0.0, 1.0);
    }
    let mut b = (
        f64::INFINITY,
        f64::NEG_INFINITY,
        f64::INFINITY,
        f64::NEG_INFINITY,
    );
    for &(x, y) in points {
        b.0 = b.0.min(x);
        b.1 = b.1.max(x);
        b.2 = b.2.min(y);
        b.3 = b.3.max(y);
    }
    (b.0, b.1, b.2, b.3)
}

fn xml_escape(s: &str) -> String {
    s.replace('&', "&amp;")
        .replace('<', "&lt;")
        .replace('>', "&gt;")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_well_formed_svg() {
        let mut plot = ScatterPlot::new("Fig & test");
        plot.add_series(Series::new(
            "floor <0>",
            ScatterPlot::palette(0),
            vec![(0.0, 0.0), (1.0, 1.0)],
        ));
        plot.add_series(Series::new(
            "floor 1",
            ScatterPlot::palette(1),
            vec![(2.0, -1.0)],
        ));
        let svg = plot.render();
        assert!(svg.starts_with("<svg"));
        assert!(svg.trim_end().ends_with("</svg>"));
        assert_eq!(svg.matches("<circle").count(), 3 + 2); // points + legend dots
        assert!(svg.contains("Fig &amp; test"));
        assert!(svg.contains("floor &lt;0&gt;"));
    }

    #[test]
    fn empty_plot_is_valid() {
        let svg = ScatterPlot::new("empty").render();
        assert!(svg.contains("</svg>"));
    }

    #[test]
    fn palette_cycles() {
        assert_eq!(ScatterPlot::palette(0), ScatterPlot::palette(8));
    }

    #[test]
    fn bounds_degenerate_input() {
        assert_eq!(bounds(&[]), (0.0, 1.0, 0.0, 1.0));
        let b = bounds(&[(2.0, 3.0)]);
        assert_eq!((b.0, b.1), (2.0, 2.0));
    }
}
