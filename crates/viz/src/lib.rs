//! Visualisation support for the paper's qualitative figures: an exact
//! t-SNE implementation (Fig. 6, Fig. 8) and a small SVG scatter-plot
//! writer.
//!
//! # Examples
//!
//! ```
//! use grafics_viz::{Tsne, TsneConfig};
//! use rand::SeedableRng;
//!
//! // Two tight clusters stay separated after projection to 2-D.
//! let mut points = Vec::new();
//! for i in 0..20 {
//!     let off = if i < 10 { 0.0 } else { 50.0 };
//!     points.push(vec![off + (i % 5) as f64 * 0.1, off, off]);
//! }
//! let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(0);
//! let config = TsneConfig { iterations: 150, ..TsneConfig::default() };
//! let projected = Tsne::new(config).run(&points, &mut rng).unwrap();
//! assert_eq!(projected.len(), 20);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod svg;
mod tsne;

pub use svg::{ScatterPlot, Series};
pub use tsne::{Tsne, TsneConfig, TsneError};
