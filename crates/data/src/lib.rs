//! Synthetic crowdsourced RF datasets for GRAFICS.
//!
//! The paper evaluates on Microsoft's Kaggle indoor-location dataset (204
//! buildings in Hangzhou) and a 5-building Hong Kong dataset, neither of
//! which is redistributable. This crate substitutes a physically grounded
//! simulator (see DESIGN.md for the substitution argument):
//!
//! - [`PropagationModel`] — log-distance path loss with a floor-attenuation
//!   factor, log-normal shadowing and a receiver sensitivity cut-off: the
//!   standard multi-floor indoor model (Seidel & Rappaport).
//! - [`BuildingModel`] — building geometry, AP placement, and the
//!   *crowdsourcing* artefacts that make floor identification hard:
//!   device RSS offsets, limited scan size, and uniformly scattered
//!   measurement positions.
//! - [`FleetPreset`] — building populations mimicking the two datasets'
//!   summary statistics (paper Fig. 9).
//! - [`stats`] — the Fig. 1 statistics (MACs-per-record CDF, pairwise
//!   overlap-ratio CDF) used to validate the simulation.
//! - [`io`] — JSONL snapshots of datasets.
//!
//! # Examples
//!
//! ```
//! use grafics_data::BuildingModel;
//! use rand::SeedableRng;
//!
//! let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(1);
//! let ds = BuildingModel::office("hq", 3).with_records_per_floor(50).simulate(&mut rng);
//! assert_eq!(ds.stats().floors, 3);
//! assert_eq!(ds.len(), 150);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod building;
mod fleet;
pub mod io;
mod propagation;
pub mod stats;
pub mod trajectory;

pub use building::{ApNode, BuildingLayout, BuildingModel};
pub use fleet::FleetPreset;
pub use propagation::PropagationModel;
pub use trajectory::{simulate_trajectory, trajectory_samples, TrajectoryConfig, TrajectoryPoint};

use rand::Rng;

/// Draws from a standard normal via Box–Muller (the `rand_distr` crate is
/// intentionally avoided to keep the dependency set to the approved list).
pub(crate) fn standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn standard_normal_moments() {
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let n = 100_000;
        let samples: Vec<f64> = (0..n).map(|_| standard_normal(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((var - 1.0).abs() < 0.03, "var {var}");
    }
}
