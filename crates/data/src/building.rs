//! Building geometry, AP layout and the crowdsourced measurement process.

use crate::{standard_normal, PropagationModel};
use grafics_types::{Dataset, FloorId, MacAddr, Reading, Sample, SignalRecord};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// One deployed access point.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ApNode {
    /// The AP's BSSID.
    pub mac: MacAddr,
    /// Position, metres from the building's south-west corner.
    pub x: f64,
    /// Position, metres.
    pub y: f64,
    /// Floor the AP is mounted on.
    pub floor: i16,
    /// Transmit power (EIRP) in dBm.
    pub tx_power_dbm: f64,
}

/// A concrete AP deployment sampled from a [`BuildingModel`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BuildingLayout {
    /// Building name (copied from the model).
    pub name: String,
    /// The deployed APs.
    pub aps: Vec<ApNode>,
}

impl BuildingLayout {
    /// All MACs deployed in this layout.
    #[must_use]
    pub fn macs(&self) -> Vec<MacAddr> {
        self.aps.iter().map(|a| a.mac).collect()
    }
}

/// A parametric multi-floor building and its crowdsourcing process.
///
/// `simulate` produces a fully ground-truth-labelled [`Dataset`] — callers
/// hide labels afterwards with [`Dataset::with_label_budget`], matching the
/// paper's protocol. The crowdsourcing artefacts modelled:
///
/// - measurement positions scattered uniformly over each floor plate;
/// - per-record *device offset* (cheap radios read RSS lower/higher);
/// - per-record *scan limit*: low-end devices report only their strongest
///   N MACs, the source of the "most records contain < 40 MACs" statistic
///   of paper Fig. 1(a);
/// - APs heard through the slab from adjacent floors (the confusable part
///   of the problem).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BuildingModel {
    /// Building name, used in reports.
    pub name: String,
    /// Number of floors (ground floor is 0).
    pub floors: i16,
    /// Floor-plate width in metres.
    pub width_m: f64,
    /// Floor-plate depth in metres.
    pub depth_m: f64,
    /// Physical access points deployed per floor.
    pub aps_per_floor: usize,
    /// Virtual BSSIDs broadcast per physical AP (real deployments expose
    /// several SSIDs per radio, which is why the paper observes 805
    /// distinct MACs on a single mall floor).
    pub bssids_per_ap: usize,
    /// Crowdsourced records collected per floor.
    pub records_per_floor: usize,
    /// Scan-size cap: a device reports at most this many strongest MACs.
    pub max_macs_per_record: usize,
    /// Minimum scan size for the per-device scan-limit draw.
    pub min_macs_per_record: usize,
    /// Standard deviation of the per-device RSS offset, dB.
    pub device_sigma_db: f64,
    /// Probability that a scan additionally picks up 1–2 *ephemeral* MACs
    /// (phone hotspots, passing devices) that are not part of the
    /// building's AP deployment — a pollution source real crowdsourced
    /// corpora always contain. Ephemeral MACs essentially never repeat
    /// across records.
    pub noise_mac_rate: f64,
    /// Mean AP transmit power, dBm.
    pub tx_power_dbm: f64,
    /// Spread of AP transmit powers, dB.
    pub tx_power_sigma_db: f64,
    /// The propagation physics.
    pub propagation: PropagationModel,
    /// Seed namespace so two buildings never share MACs.
    pub mac_namespace: u64,
}

impl BuildingModel {
    /// A mid-size office tower: 40 × 30 m plate, 16 physical APs per floor
    /// each broadcasting 4 BSSIDs (64 MACs/floor).
    #[must_use]
    pub fn office(name: &str, floors: i16) -> Self {
        BuildingModel {
            name: name.to_owned(),
            floors,
            width_m: 40.0,
            depth_m: 30.0,
            aps_per_floor: 16,
            bssids_per_ap: 4,
            records_per_floor: 200,
            max_macs_per_record: 35,
            min_macs_per_record: 6,
            device_sigma_db: 3.0,
            noise_mac_rate: 0.1,
            tx_power_dbm: 16.0,
            tx_power_sigma_db: 2.0,
            propagation: PropagationModel::default(),
            mac_namespace: fnv1a(name),
        }
    }

    /// A shopping mall: large 90 × 60 m plate, dense APs (45 physical per
    /// floor × 5 BSSIDs = 225 MACs/floor), matching the order of magnitude
    /// of the paper's Fig. 1 mall floor.
    #[must_use]
    pub fn mall(name: &str, floors: i16) -> Self {
        BuildingModel {
            width_m: 90.0,
            depth_m: 60.0,
            aps_per_floor: 45,
            bssids_per_ap: 5,
            ..BuildingModel::office(name, floors)
        }
    }

    /// A hospital: 70 × 50 m plate, 30 physical APs per floor, slightly
    /// lossier walls (more partitions).
    #[must_use]
    pub fn hospital(name: &str, floors: i16) -> Self {
        BuildingModel {
            width_m: 70.0,
            depth_m: 50.0,
            aps_per_floor: 30,
            propagation: PropagationModel {
                path_loss_exponent: 3.1,
                ..PropagationModel::default()
            },
            ..BuildingModel::office(name, floors)
        }
    }

    /// Sets the number of crowdsourced records per floor.
    #[must_use]
    pub fn with_records_per_floor(mut self, n: usize) -> Self {
        self.records_per_floor = n;
        self
    }

    /// Sets the AP count per floor.
    #[must_use]
    pub fn with_aps_per_floor(mut self, n: usize) -> Self {
        self.aps_per_floor = n;
        self
    }

    /// Sets the propagation model.
    #[must_use]
    pub fn with_propagation(mut self, p: PropagationModel) -> Self {
        self.propagation = p;
        self
    }

    /// Floor-plate area in m².
    #[must_use]
    pub fn area_m2(&self) -> f64 {
        self.width_m * self.depth_m
    }

    /// Samples a concrete AP deployment: physical APs uniformly scattered
    /// over each floor plate with jittered transmit powers, each radio
    /// broadcasting [`BuildingModel::bssids_per_ap`] virtual BSSIDs from
    /// the same location (with sub-dB power spread between BSSIDs).
    pub fn layout<R: Rng + ?Sized>(&self, rng: &mut R) -> BuildingLayout {
        let per_floor = self.aps_per_floor * self.bssids_per_ap.max(1);
        let mut aps = Vec::with_capacity(self.floors as usize * per_floor);
        let mut serial: u64 = 0;
        for floor in 0..self.floors {
            for _ in 0..self.aps_per_floor {
                let x = rng.gen_range(0.0..self.width_m);
                let y = rng.gen_range(0.0..self.depth_m);
                let radio_power = self.tx_power_dbm + self.tx_power_sigma_db * standard_normal(rng);
                for _ in 0..self.bssids_per_ap.max(1) {
                    // Namespaced MAC: high bits building, low bits serial.
                    let mac = MacAddr::from_u64((self.mac_namespace << 20) | serial);
                    serial += 1;
                    aps.push(ApNode {
                        mac,
                        x,
                        y,
                        floor,
                        tx_power_dbm: radio_power + rng.gen_range(-0.5..0.5),
                    });
                }
            }
        }
        BuildingLayout {
            name: self.name.clone(),
            aps,
        }
    }

    /// Applies *environment drift* to a deployment (§III-A: "APs could be
    /// added and removed over time"): removes a random `remove_frac` of
    /// the BSSIDs, deploys `add_frac` (of the original count) fresh
    /// physical APs, and jitters surviving transmit powers by
    /// `power_jitter_db` — modelling maintenance, upgrades and seasonal
    /// changes between training and inference time.
    pub fn drift_layout<R: Rng + ?Sized>(
        &self,
        layout: &mut BuildingLayout,
        remove_frac: f64,
        add_frac: f64,
        power_jitter_db: f64,
        rng: &mut R,
    ) {
        use rand::seq::SliceRandom;
        let original = layout.aps.len();
        // Remove.
        let keep = ((original as f64) * (1.0 - remove_frac)).round() as usize;
        layout.aps.shuffle(rng);
        layout.aps.truncate(keep);
        // Jitter survivors.
        for ap in &mut layout.aps {
            ap.tx_power_dbm += power_jitter_db * standard_normal(rng);
        }
        // Add new radios with fresh MACs (disjoint high-serial namespace).
        let add_radios =
            ((original as f64) * add_frac / self.bssids_per_ap.max(1) as f64).round() as usize;
        let mut serial: u64 = (1 << 19) | rng.gen_range(0..(1 << 16));
        for _ in 0..add_radios {
            let x = rng.gen_range(0.0..self.width_m);
            let y = rng.gen_range(0.0..self.depth_m);
            let floor = rng.gen_range(0..self.floors);
            let radio_power = self.tx_power_dbm + self.tx_power_sigma_db * standard_normal(rng);
            for _ in 0..self.bssids_per_ap.max(1) {
                let mac = MacAddr::from_u64((self.mac_namespace << 20) | serial);
                serial += 1;
                layout.aps.push(ApNode {
                    mac,
                    x,
                    y,
                    floor,
                    tx_power_dbm: radio_power + rng.gen_range(-0.5..0.5),
                });
            }
        }
    }

    /// Simulates the full crowdsourced corpus: a fresh layout plus
    /// `records_per_floor` scans on every floor. All samples carry their
    /// ground-truth label.
    pub fn simulate<R: Rng + ?Sized>(&self, rng: &mut R) -> Dataset {
        let layout = self.layout(rng);
        self.simulate_with_layout(&layout, rng)
    }

    /// Simulates scans against an existing deployment (e.g. after
    /// [`BuildingLayout`] mutation in AP-churn experiments).
    pub fn simulate_with_layout<R: Rng + ?Sized>(
        &self,
        layout: &BuildingLayout,
        rng: &mut R,
    ) -> Dataset {
        let mut ds = Dataset::default();
        for floor in 0..self.floors {
            for _ in 0..self.records_per_floor {
                if let Some(record) = self.scan(layout, floor, rng) {
                    ds.push(Sample::labeled(record, FloorId(floor)));
                }
            }
        }
        ds
    }

    /// One crowdsourced scan at a random position on `floor`. Returns
    /// `None` in the (vanishingly rare) case no AP is audible.
    pub fn scan<R: Rng + ?Sized>(
        &self,
        layout: &BuildingLayout,
        floor: i16,
        rng: &mut R,
    ) -> Option<SignalRecord> {
        let x = rng.gen_range(0.0..self.width_m);
        let y = rng.gen_range(0.0..self.depth_m);
        self.scan_at(layout, x, y, floor, rng)
    }

    /// [`BuildingModel::scan`] with an extra device-population RSS offset
    /// (see [`BuildingModel::scan_at_with_offset`]).
    pub fn scan_with_offset<R: Rng + ?Sized>(
        &self,
        layout: &BuildingLayout,
        floor: i16,
        extra_offset_db: f64,
        rng: &mut R,
    ) -> Option<SignalRecord> {
        let x = rng.gen_range(0.0..self.width_m);
        let y = rng.gen_range(0.0..self.depth_m);
        self.scan_at_with_offset(layout, x, y, floor, extra_offset_db, rng)
    }

    /// One scan at a fixed position (used by trajectory-style examples).
    pub fn scan_at<R: Rng + ?Sized>(
        &self,
        layout: &BuildingLayout,
        x: f64,
        y: f64,
        floor: i16,
        rng: &mut R,
    ) -> Option<SignalRecord> {
        self.scan_at_with_offset(layout, x, y, floor, 0.0, rng)
    }

    /// [`BuildingModel::scan_at`] with an extra constant RSS offset added
    /// on top of the per-scan device offset — how the scenario engine
    /// models *device populations* (a cheap handset fleet reads every AP
    /// a few dB weaker than the phones that built the corpus). The RNG
    /// draw order is identical to `scan_at`, so
    /// `scan_at_with_offset(.., 0.0, ..)` is bit-identical to `scan_at`.
    pub fn scan_at_with_offset<R: Rng + ?Sized>(
        &self,
        layout: &BuildingLayout,
        x: f64,
        y: f64,
        floor: i16,
        extra_offset_db: f64,
        rng: &mut R,
    ) -> Option<SignalRecord> {
        let device_offset = self.device_sigma_db * standard_normal(rng) + extra_offset_db;
        let scan_limit = rng.gen_range(
            self.min_macs_per_record..=self.max_macs_per_record.max(self.min_macs_per_record),
        );
        let mut readings: Vec<Reading> = layout
            .aps
            .iter()
            .filter_map(|ap| {
                self.propagation
                    .receive(
                        ap.tx_power_dbm,
                        ap.x,
                        ap.y,
                        ap.floor,
                        x,
                        y,
                        floor,
                        device_offset,
                        rng,
                    )
                    .map(|rssi| Reading::new(ap.mac, rssi))
            })
            .collect();
        // Crowdsourcing pollution: ephemeral hotspot MACs nearby.
        if rng.gen::<f64>() < self.noise_mac_rate {
            let n_noise = rng.gen_range(1..=2);
            for _ in 0..n_noise {
                // A random MAC in a namespace disjoint from deployed APs
                // (bit 44 set); collisions across records are negligible.
                let mac = MacAddr::from_u64((1 << 44) | rng.gen_range(0u64..(1 << 40)));
                // Hotspots travel with people, so they are close and loud —
                // which is exactly why they survive the strongest-N scan
                // cap and pollute real corpora.
                let rssi = grafics_types::Rssi::saturating(rng.gen_range(-60.0..-35.0));
                readings.push(Reading::new(mac, rssi));
            }
        }
        // Low-end devices keep only their strongest `scan_limit` readings.
        readings.sort_by_key(|r| std::cmp::Reverse(r.rssi));
        readings.truncate(scan_limit);
        SignalRecord::new(readings).ok()
    }
}

/// Tiny FNV-1a over the name for a stable MAC namespace per building.
fn fnv1a(s: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in s.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h & 0xff_ffff // 24 bits of namespace, leaving 20+ bits for serials
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn layout_places_aps_within_plate() {
        let b = BuildingModel::office("t", 4);
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let layout = b.layout(&mut rng);
        assert_eq!(layout.aps.len(), 4 * 16 * 4); // floors × APs × BSSIDs
        for ap in &layout.aps {
            assert!((0.0..b.width_m).contains(&ap.x));
            assert!((0.0..b.depth_m).contains(&ap.y));
            assert!((0..4).contains(&ap.floor));
        }
    }

    #[test]
    fn macs_unique_within_and_across_buildings() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let a = BuildingModel::office("alpha", 3).layout(&mut rng);
        let b = BuildingModel::office("beta", 3).layout(&mut rng);
        let mut all: Vec<MacAddr> = a.macs();
        all.extend(b.macs());
        let before = all.len();
        all.sort_unstable();
        all.dedup();
        assert_eq!(all.len(), before, "MAC collision between buildings");
    }

    #[test]
    fn simulate_covers_every_floor() {
        let b = BuildingModel::office("t", 5).with_records_per_floor(30);
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let ds = b.simulate(&mut rng);
        let counts = ds.per_floor_counts();
        assert_eq!(counts.len(), 5);
        for (_, &c) in counts.iter() {
            assert_eq!(c, 30);
        }
    }

    #[test]
    fn scan_respects_size_cap() {
        let b = BuildingModel::mall("m", 2).with_records_per_floor(20);
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let ds = b.simulate(&mut rng);
        for s in ds.samples() {
            assert!(s.record.len() <= b.max_macs_per_record);
            assert!(!s.record.readings().is_empty());
        }
    }

    #[test]
    fn same_floor_aps_dominate_record() {
        // With 16 dB slab attenuation, the strongest reading of a scan
        // should usually come from an AP on the scanner's own floor.
        let b = BuildingModel::office("t", 3).with_records_per_floor(50);
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        let layout = b.layout(&mut rng);
        let ds = b.simulate_with_layout(&layout, &mut rng);
        let floor_of = |mac: MacAddr| layout.aps.iter().find(|a| a.mac == mac).map(|a| a.floor);
        let own_floor_strongest = ds
            .samples()
            .iter()
            .filter(|s| floor_of(s.record.strongest().mac).map(FloorId) == Some(s.ground_truth))
            .count();
        assert!(
            own_floor_strongest * 10 >= ds.len() * 8,
            "{own_floor_strongest}/{} strongest-reading-on-own-floor",
            ds.len()
        );
    }

    #[test]
    fn records_hear_some_other_floor_aps() {
        // The problem must stay non-trivial: adjacent-floor APs do appear.
        let b = BuildingModel::office("t", 3).with_records_per_floor(50);
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let layout = b.layout(&mut rng);
        let ds = b.simulate_with_layout(&layout, &mut rng);
        let floor_of = |mac: MacAddr| layout.aps.iter().find(|a| a.mac == mac).map(|a| a.floor);
        let cross = ds
            .samples()
            .iter()
            .filter(|s| {
                s.record
                    .macs()
                    .any(|m| matches!(floor_of(m), Some(f) if FloorId(f) != s.ground_truth))
            })
            .count();
        assert!(
            cross * 10 >= ds.len() * 3,
            "expect ≥30% records with cross-floor MACs, got {cross}/{}",
            ds.len()
        );
    }

    #[test]
    fn noise_macs_pollute_the_vocabulary() {
        let clean = BuildingModel {
            noise_mac_rate: 0.0,
            ..BuildingModel::office("n", 2)
        }
        .with_records_per_floor(100);
        let noisy = BuildingModel {
            noise_mac_rate: 0.5,
            ..BuildingModel::office("n", 2)
        }
        .with_records_per_floor(100);
        let vocab_clean = clean
            .simulate(&mut ChaCha8Rng::seed_from_u64(6))
            .stats()
            .macs;
        let vocab_noisy = noisy
            .simulate(&mut ChaCha8Rng::seed_from_u64(6))
            .stats()
            .macs;
        assert!(
            vocab_noisy > vocab_clean + 30,
            "hotspot MACs should bloat the vocabulary: {vocab_clean} vs {vocab_noisy}"
        );
    }

    #[test]
    fn noise_macs_live_in_disjoint_namespace() {
        let b = BuildingModel {
            noise_mac_rate: 1.0,
            ..BuildingModel::office("n2", 1)
        }
        .with_records_per_floor(30);
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let layout = b.layout(&mut rng);
        let deployed: std::collections::HashSet<MacAddr> = layout.macs().into_iter().collect();
        let ds = b.simulate_with_layout(&layout, &mut rng);
        let noise_count: usize = ds
            .samples()
            .iter()
            .flat_map(|s| s.record.macs())
            .filter(|m| !deployed.contains(m))
            .count();
        assert!(noise_count > 0);
        for s in ds.samples() {
            for m in s.record.macs() {
                if !deployed.contains(&m) {
                    assert_eq!(m.as_u64() >> 44, 1, "noise namespace bit");
                }
            }
        }
    }

    #[test]
    fn drift_removes_adds_and_jitters() {
        let b = BuildingModel::office("drift", 3);
        let mut rng = ChaCha8Rng::seed_from_u64(8);
        let mut layout = b.layout(&mut rng);
        let before: std::collections::HashSet<MacAddr> = layout.macs().into_iter().collect();
        let n_before = layout.aps.len();
        b.drift_layout(&mut layout, 0.3, 0.2, 1.0, &mut rng);
        let after: std::collections::HashSet<MacAddr> = layout.macs().into_iter().collect();
        let survivors = before.intersection(&after).count();
        let added = after.difference(&before).count();
        assert!(survivors <= (n_before as f64 * 0.7).round() as usize + 1);
        assert!(added >= b.bssids_per_ap, "fresh APs deployed: {added}");
        // New MACs never collide with removed ones.
        for m in after.difference(&before) {
            assert!(!before.contains(m));
        }
    }

    #[test]
    fn drift_zero_is_identity_modulo_power() {
        let b = BuildingModel::office("drift0", 2);
        let mut rng = ChaCha8Rng::seed_from_u64(9);
        let mut layout = b.layout(&mut rng);
        let macs_before = layout.macs();
        b.drift_layout(&mut layout, 0.0, 0.0, 0.0, &mut rng);
        let mut macs_after = layout.macs();
        let mut sorted_before = macs_before;
        sorted_before.sort_unstable();
        macs_after.sort_unstable();
        assert_eq!(sorted_before, macs_after);
    }

    #[test]
    fn deterministic_per_seed() {
        let b = BuildingModel::office("t", 2).with_records_per_floor(10);
        let d1 = b.simulate(&mut ChaCha8Rng::seed_from_u64(9));
        let d2 = b.simulate(&mut ChaCha8Rng::seed_from_u64(9));
        assert_eq!(d1, d2);
    }

    #[test]
    fn presets_differ_in_geometry() {
        let office = BuildingModel::office("o", 3);
        let mall = BuildingModel::mall("m", 3);
        let hospital = BuildingModel::hospital("h", 3);
        assert!(mall.area_m2() > hospital.area_m2());
        assert!(hospital.area_m2() > office.area_m2());
        assert!(mall.aps_per_floor > office.aps_per_floor);
    }
}
