//! Dataset statistics matching the paper's Fig. 1: the CDF of the number
//! of MACs per record and the CDF of pairwise overlap ratios.

use grafics_types::Dataset;
use rand::seq::SliceRandom;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// An empirical CDF as `(value, F(value))` points, ascending in value.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Cdf {
    /// `(x, F(x))` points.
    pub points: Vec<(f64, f64)>,
}

impl Cdf {
    /// Builds the empirical CDF of `values`.
    #[must_use]
    pub fn from_values(mut values: Vec<f64>) -> Self {
        values.sort_by(|a, b| a.partial_cmp(b).expect("finite values"));
        let n = values.len();
        let points = values
            .into_iter()
            .enumerate()
            .map(|(i, v)| (v, (i + 1) as f64 / n as f64))
            .collect();
        Cdf { points }
    }

    /// `F(x)`: fraction of mass at or below `x` (0 for empty CDFs).
    #[must_use]
    pub fn at(&self, x: f64) -> f64 {
        match self
            .points
            .binary_search_by(|&(v, _)| v.partial_cmp(&x).expect("finite"))
        {
            Ok(mut i) => {
                // Step to the last equal value.
                while i + 1 < self.points.len() && self.points[i + 1].0 <= x {
                    i += 1;
                }
                self.points[i].1
            }
            Err(0) => 0.0,
            Err(i) => self.points[i - 1].1,
        }
    }

    /// The `q`-quantile (0 ≤ q ≤ 1).
    #[must_use]
    pub fn quantile(&self, q: f64) -> f64 {
        if self.points.is_empty() {
            return f64::NAN;
        }
        let idx = ((q * self.points.len() as f64).ceil() as usize).clamp(1, self.points.len()) - 1;
        self.points[idx].0
    }
}

/// CDF of the number of MACs per record — paper Fig. 1(a).
#[must_use]
pub fn macs_per_record_cdf(dataset: &Dataset) -> Cdf {
    Cdf::from_values(
        dataset
            .samples()
            .iter()
            .map(|s| s.record.len() as f64)
            .collect(),
    )
}

/// CDF of the pairwise overlap ratio (|∩| / |∪| of MAC sets) over up to
/// `max_pairs` random record pairs — paper Fig. 1(b).
pub fn overlap_ratio_cdf<R: Rng + ?Sized>(dataset: &Dataset, max_pairs: usize, rng: &mut R) -> Cdf {
    let n = dataset.len();
    if n < 2 {
        return Cdf { points: Vec::new() };
    }
    let all_pairs = n * (n - 1) / 2;
    let mut ratios = Vec::with_capacity(max_pairs.min(all_pairs));
    if all_pairs <= max_pairs {
        for a in 0..n {
            for b in (a + 1)..n {
                ratios.push(
                    dataset.samples()[a]
                        .record
                        .overlap_ratio(&dataset.samples()[b].record),
                );
            }
        }
    } else {
        let idx: Vec<usize> = (0..n).collect();
        for _ in 0..max_pairs {
            let pick: Vec<usize> = idx.choose_multiple(rng, 2).copied().collect();
            ratios.push(
                dataset.samples()[pick[0]]
                    .record
                    .overlap_ratio(&dataset.samples()[pick[1]].record),
            );
        }
    }
    Cdf::from_values(ratios)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::BuildingModel;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn cdf_basic_properties() {
        let cdf = Cdf::from_values(vec![3.0, 1.0, 2.0, 2.0]);
        assert_eq!(cdf.at(0.5), 0.0);
        assert_eq!(cdf.at(1.0), 0.25);
        assert_eq!(cdf.at(2.0), 0.75);
        assert_eq!(cdf.at(10.0), 1.0);
        assert_eq!(cdf.quantile(0.5), 2.0);
    }

    #[test]
    fn fig1a_shape_most_records_under_40_macs() {
        // Validates the simulator against the paper's Fig. 1(a): the
        // majority of records on a dense mall floor carry < 40 MACs.
        let b = BuildingModel::mall("m", 1).with_records_per_floor(300);
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let ds = b.simulate(&mut rng);
        let cdf = macs_per_record_cdf(&ds);
        assert!(cdf.at(40.0) > 0.8, "F(40) = {}", cdf.at(40.0));
        assert!(cdf.at(5.0) < 0.3, "records should usually hear >5 APs");
    }

    #[test]
    fn fig1b_shape_most_pairs_overlap_under_half() {
        // Paper Fig. 1(b): ~78 % of same-floor record pairs share fewer
        // than half their MACs. The simulator reproduces heavy partial
        // overlap (limited coverage + scan caps).
        let b = BuildingModel::mall("m", 1).with_records_per_floor(200);
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let ds = b.simulate(&mut rng);
        let cdf = overlap_ratio_cdf(&ds, 5_000, &mut rng);
        let under_half = cdf.at(0.5);
        assert!(
            under_half > 0.5,
            "F(0.5) = {under_half}, want mostly-partial overlap"
        );
        assert!(cdf.at(0.999) > 0.99, "identical MAC sets should be rare");
    }

    #[test]
    fn overlap_cdf_small_dataset_exhaustive() {
        let b = BuildingModel::office("o", 1).with_records_per_floor(10);
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let ds = b.simulate(&mut rng);
        let cdf = overlap_ratio_cdf(&ds, 1_000, &mut rng);
        assert_eq!(cdf.points.len(), 45); // C(10, 2)
    }

    #[test]
    fn overlap_cdf_degenerate() {
        let ds = Dataset::default();
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        assert!(overlap_ratio_cdf(&ds, 10, &mut rng).points.is_empty());
    }
}
