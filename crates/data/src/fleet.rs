//! Building fleets mimicking the paper's two evaluation datasets (Fig. 9).

use crate::BuildingModel;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Which dataset population to mimic.
///
/// The paper evaluates over 204 Hangzhou buildings (Microsoft's Kaggle
/// dataset; 2–12 floors, ~1 000 records per floor) and five Hong Kong
/// facilities (two office towers, a hospital, two malls). These presets
/// generate building fleets with those population statistics; see DESIGN.md
/// for the substitution argument.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
#[non_exhaustive]
pub enum FleetPreset {
    /// Microsoft/Hangzhou-like population: mixed building types, floor
    /// counts concentrated in 2–8 with a tail to 12.
    Microsoft,
    /// Hong Kong-like population: exactly five facilities — two office
    /// towers, one hospital, two malls.
    HongKong,
}

impl FleetPreset {
    /// Generates the fleet, scaled to `buildings` buildings (ignored for
    /// [`FleetPreset::HongKong`], which always has five) and
    /// `records_per_floor` crowdsourced records per floor.
    ///
    /// The paper-scale values are `buildings = 204` and
    /// `records_per_floor = 1000`; the experiment harness defaults to a
    /// representative sub-fleet for laptop runtimes.
    pub fn generate<R: Rng + ?Sized>(
        self,
        buildings: usize,
        records_per_floor: usize,
        rng: &mut R,
    ) -> Vec<BuildingModel> {
        match self {
            FleetPreset::Microsoft => (0..buildings)
                .map(|i| {
                    let name = format!("hz-{i:03}");
                    // Floor-count distribution: mostly low-rise, tail to 12
                    // (paper Fig. 9: 2–12 floors).
                    let floors = sample_floor_count(rng);
                    let archetype = rng.gen_range(0..3);
                    let b = match archetype {
                        0 => BuildingModel::office(&name, floors),
                        1 => BuildingModel::mall(&name, floors.min(6)),
                        _ => BuildingModel::hospital(&name, floors.min(8)),
                    };
                    jitter(b, rng).with_records_per_floor(records_per_floor)
                })
                .collect(),
            FleetPreset::HongKong => vec![
                BuildingModel::office("hk-tower-1", 10).with_records_per_floor(records_per_floor),
                BuildingModel::office("hk-tower-2", 12).with_records_per_floor(records_per_floor),
                BuildingModel::hospital("hk-hospital", 8).with_records_per_floor(records_per_floor),
                BuildingModel::mall("hk-mall-1", 5).with_records_per_floor(records_per_floor),
                BuildingModel::mall("hk-mall-2", 4).with_records_per_floor(records_per_floor),
            ],
        }
    }
}

/// 2–12 floors, weighted towards low-rise like the Kaggle population.
fn sample_floor_count<R: Rng + ?Sized>(rng: &mut R) -> i16 {
    let u: f64 = rng.gen();
    match u {
        u if u < 0.25 => rng.gen_range(2..=3),
        u if u < 0.65 => rng.gen_range(4..=6),
        u if u < 0.90 => rng.gen_range(7..=9),
        _ => rng.gen_range(10..=12),
    }
}

/// Randomises plate size and AP density ±30 % so buildings differ.
fn jitter<R: Rng + ?Sized>(mut b: BuildingModel, rng: &mut R) -> BuildingModel {
    let scale = rng.gen_range(0.7..1.3);
    b.width_m *= scale;
    b.depth_m *= scale;
    let ap_scale = rng.gen_range(0.7..1.3);
    b.aps_per_floor = ((b.aps_per_floor as f64 * ap_scale).round() as usize).max(4);
    b
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn microsoft_fleet_size_and_floor_range() {
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let fleet = FleetPreset::Microsoft.generate(50, 100, &mut rng);
        assert_eq!(fleet.len(), 50);
        for b in &fleet {
            assert!(
                (2..=12).contains(&b.floors),
                "{} has {} floors",
                b.name,
                b.floors
            );
            assert_eq!(b.records_per_floor, 100);
        }
        // Population must be heterogeneous.
        let distinct_floor_counts: std::collections::BTreeSet<i16> =
            fleet.iter().map(|b| b.floors).collect();
        assert!(distinct_floor_counts.len() >= 5);
    }

    #[test]
    fn hong_kong_fleet_is_five_archetypes() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let fleet = FleetPreset::HongKong.generate(999, 100, &mut rng);
        assert_eq!(fleet.len(), 5);
        assert!(fleet.iter().any(|b| b.name.contains("hospital")));
        assert_eq!(fleet.iter().filter(|b| b.name.contains("mall")).count(), 2);
        assert_eq!(fleet.iter().filter(|b| b.name.contains("tower")).count(), 2);
    }

    #[test]
    fn fleet_names_unique() {
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let fleet = FleetPreset::Microsoft.generate(30, 10, &mut rng);
        let mut names: Vec<&str> = fleet.iter().map(|b| b.name.as_str()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 30);
    }
}
