//! User trajectories through a building: correlated sequences of scans, as
//! produced by a person walking (with occasional floor changes via a
//! stairwell/lift). The paper notes RNN baselines need trajectory data
//! (§II); crowdsourced corpora are sporadic, but *inference-time* queries
//! often arrive along a walk — geofencing and navigation examples use
//! this module.

use crate::{standard_normal, BuildingLayout, BuildingModel};
use grafics_types::{FloorId, Sample, SignalRecord};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Parameters of a random-walk trajectory.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TrajectoryConfig {
    /// Number of scan points along the walk.
    pub steps: usize,
    /// Mean step length in metres (pedestrian stride between scans).
    pub step_length_m: f64,
    /// Probability per step of taking the stairwell/lift one floor up or
    /// down (when possible).
    pub floor_change_prob: f64,
}

impl Default for TrajectoryConfig {
    fn default() -> Self {
        TrajectoryConfig {
            steps: 30,
            step_length_m: 4.0,
            floor_change_prob: 0.05,
        }
    }
}

/// One scan point of a trajectory.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TrajectoryPoint {
    /// Position in metres.
    pub x: f64,
    /// Position in metres.
    pub y: f64,
    /// Ground-truth floor.
    pub floor: FloorId,
    /// The WiFi scan at this point (absent when no AP was audible).
    pub scan: Option<SignalRecord>,
}

/// Simulates a pedestrian random walk with WiFi scans.
///
/// The walk reflects off the floor-plate walls; floor changes happen at
/// the plate centre (where the stairwell is assumed to be) with
/// probability [`TrajectoryConfig::floor_change_prob`].
pub fn simulate_trajectory<R: Rng + ?Sized>(
    building: &BuildingModel,
    layout: &BuildingLayout,
    config: &TrajectoryConfig,
    rng: &mut R,
) -> Vec<TrajectoryPoint> {
    let mut x = rng.gen_range(0.0..building.width_m);
    let mut y = rng.gen_range(0.0..building.depth_m);
    let mut floor: i16 = rng.gen_range(0..building.floors);
    let mut heading: f64 = rng.gen_range(0.0..std::f64::consts::TAU);

    let mut points = Vec::with_capacity(config.steps);
    for _ in 0..config.steps {
        // Wander: small heading noise, reflect off walls.
        heading += 0.4 * standard_normal(rng);
        let step = config.step_length_m * (0.7 + 0.6 * rng.gen::<f64>());
        x += step * heading.cos();
        y += step * heading.sin();
        if x < 0.0 || x > building.width_m {
            x = x.clamp(0.0, building.width_m);
            heading = std::f64::consts::PI - heading;
        }
        if y < 0.0 || y > building.depth_m {
            y = y.clamp(0.0, building.depth_m);
            heading = -heading;
        }
        // Floor change near the stairwell (plate centre).
        if rng.gen::<f64>() < config.floor_change_prob {
            let delta = if rng.gen::<bool>() { 1 } else { -1 };
            let next = floor + delta;
            if (0..building.floors).contains(&next) {
                floor = next;
                // The stairwell pins the position to the core.
                x = building.width_m / 2.0;
                y = building.depth_m / 2.0;
            }
        }
        let scan = building.scan_at(layout, x, y, floor, rng);
        points.push(TrajectoryPoint {
            x,
            y,
            floor: FloorId(floor),
            scan,
        });
    }
    points
}

/// Converts trajectory points into labelled [`Sample`]s (dropping scanless
/// points), e.g. to augment a training corpus with trajectory data.
#[must_use]
pub fn trajectory_samples(points: &[TrajectoryPoint]) -> Vec<Sample> {
    points
        .iter()
        .filter_map(|p| p.scan.clone().map(|scan| Sample::labeled(scan, p.floor)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn trajectory_stays_in_building() {
        let b = BuildingModel::office("traj", 4);
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let layout = b.layout(&mut rng);
        let cfg = TrajectoryConfig {
            steps: 200,
            ..Default::default()
        };
        let pts = simulate_trajectory(&b, &layout, &cfg, &mut rng);
        assert_eq!(pts.len(), 200);
        for p in &pts {
            assert!((0.0..=b.width_m).contains(&p.x));
            assert!((0.0..=b.depth_m).contains(&p.y));
            assert!((0..b.floors).contains(&p.floor.0));
        }
    }

    #[test]
    fn floor_changes_are_single_steps() {
        let b = BuildingModel::office("traj2", 6);
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let layout = b.layout(&mut rng);
        let cfg = TrajectoryConfig {
            steps: 300,
            floor_change_prob: 0.3,
            ..Default::default()
        };
        let pts = simulate_trajectory(&b, &layout, &cfg, &mut rng);
        let mut changes = 0;
        for w in pts.windows(2) {
            let d = (w[1].floor.0 - w[0].floor.0).abs();
            assert!(d <= 1, "floor jumps must be single steps");
            changes += usize::from(d == 1);
        }
        assert!(
            changes > 10,
            "with prob 0.3 over 300 steps, changes should happen"
        );
    }

    #[test]
    fn zero_change_prob_stays_on_one_floor() {
        let b = BuildingModel::office("traj3", 5);
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let layout = b.layout(&mut rng);
        let cfg = TrajectoryConfig {
            steps: 100,
            floor_change_prob: 0.0,
            ..Default::default()
        };
        let pts = simulate_trajectory(&b, &layout, &cfg, &mut rng);
        let f0 = pts[0].floor;
        assert!(pts.iter().all(|p| p.floor == f0));
    }

    #[test]
    fn samples_carry_the_walk_floor() {
        let b = BuildingModel::office("traj4", 3);
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let layout = b.layout(&mut rng);
        let pts = simulate_trajectory(&b, &layout, &TrajectoryConfig::default(), &mut rng);
        let samples = trajectory_samples(&pts);
        assert!(!samples.is_empty());
        for s in &samples {
            assert!(s.is_labeled());
        }
    }

    #[test]
    fn consecutive_scans_overlap_more_than_random_pairs() {
        // Walking scans are spatially correlated: adjacent points should
        // share more MACs than far-apart points, on average.
        let b = BuildingModel::mall("traj5", 1);
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        let layout = b.layout(&mut rng);
        let cfg = TrajectoryConfig {
            steps: 120,
            floor_change_prob: 0.0,
            ..Default::default()
        };
        let pts = simulate_trajectory(&b, &layout, &cfg, &mut rng);
        let scans: Vec<&SignalRecord> = pts.iter().filter_map(|p| p.scan.as_ref()).collect();
        let mut adjacent = 0.0;
        let mut adj_n = 0;
        for w in scans.windows(2) {
            adjacent += w[0].overlap_ratio(w[1]);
            adj_n += 1;
        }
        let mut distant = 0.0;
        let mut dist_n = 0;
        for i in 0..scans.len() {
            let j = (i + scans.len() / 2) % scans.len();
            distant += scans[i].overlap_ratio(scans[j]);
            dist_n += 1;
        }
        assert!(
            adjacent / adj_n as f64 > distant / dist_n as f64,
            "adjacent overlap {} should exceed distant {}",
            adjacent / adj_n as f64,
            distant / dist_n as f64
        );
    }
}
