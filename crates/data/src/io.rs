//! Dataset snapshots: JSON-lines (one sample per line) and a simple CSV
//! fingerprint format (`floor,mac,rssi` triples grouped by record).

use grafics_types::{Dataset, FloorId, MacAddr, Reading, Rssi, Sample, SignalRecord};
use std::fmt;
use std::io::{BufRead, BufReader, Read, Write};
use std::path::Path;

/// Errors from dataset IO.
#[derive(Debug)]
#[non_exhaustive]
pub enum IoError {
    /// Underlying filesystem error.
    Io(std::io::Error),
    /// A JSONL line failed to parse.
    Json {
        /// 1-based line number.
        line: usize,
        /// Parser message.
        message: String,
    },
    /// A CSV row failed to parse.
    Csv {
        /// 1-based line number.
        line: usize,
        /// Parser message.
        message: String,
    },
}

impl fmt::Display for IoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IoError::Io(e) => write!(f, "io error: {e}"),
            IoError::Json { line, message } => {
                write!(f, "jsonl parse error at line {line}: {message}")
            }
            IoError::Csv { line, message } => {
                write!(f, "csv parse error at line {line}: {message}")
            }
        }
    }
}

impl std::error::Error for IoError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            IoError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for IoError {
    fn from(e: std::io::Error) -> Self {
        IoError::Io(e)
    }
}

/// Writes a dataset as JSON lines, one [`Sample`] per line.
pub fn write_jsonl<W: Write>(dataset: &Dataset, mut w: W) -> Result<(), IoError> {
    for sample in dataset.samples() {
        let line = serde_json::to_string(sample).map_err(|e| IoError::Json {
            line: 0,
            message: e.to_string(),
        })?;
        writeln!(w, "{line}")?;
    }
    Ok(())
}

/// Reads a dataset from JSON lines.
pub fn read_jsonl<R: Read>(r: R) -> Result<Dataset, IoError> {
    let mut ds = Dataset::default();
    for (i, line) in BufReader::new(r).lines().enumerate() {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        let sample: Sample = serde_json::from_str(&line).map_err(|e| IoError::Json {
            line: i + 1,
            message: e.to_string(),
        })?;
        ds.push(sample);
    }
    Ok(ds)
}

/// Writes a dataset to a JSONL file.
pub fn save_jsonl<P: AsRef<Path>>(dataset: &Dataset, path: P) -> Result<(), IoError> {
    let f = std::fs::File::create(path)?;
    write_jsonl(dataset, std::io::BufWriter::new(f))
}

/// Reads a dataset from a JSONL file.
pub fn load_jsonl<P: AsRef<Path>>(path: P) -> Result<Dataset, IoError> {
    read_jsonl(std::fs::File::open(path)?)
}

/// Writes the CSV fingerprint format:
/// `record_id,floor_or_empty,ground_truth,mac,rssi` one reading per row.
pub fn write_csv<W: Write>(dataset: &Dataset, mut w: W) -> Result<(), IoError> {
    writeln!(w, "record,label,truth,mac,rssi")?;
    for (i, s) in dataset.samples().iter().enumerate() {
        let label = s.floor.map(|f| f.0.to_string()).unwrap_or_default();
        for r in s.record.readings() {
            writeln!(
                w,
                "{i},{label},{},{},{}",
                s.ground_truth.0,
                r.mac,
                r.rssi.dbm()
            )?;
        }
    }
    Ok(())
}

/// Reads the CSV fingerprint format written by [`write_csv`].
pub fn read_csv<R: Read>(r: R) -> Result<Dataset, IoError> {
    let mut rows: Vec<(usize, Option<i16>, i16, MacAddr, f64)> = Vec::new();
    for (i, line) in BufReader::new(r).lines().enumerate() {
        let line = line?;
        if i == 0 || line.trim().is_empty() {
            continue; // header
        }
        let err = |m: &str| IoError::Csv {
            line: i + 1,
            message: m.to_owned(),
        };
        let parts: Vec<&str> = line.split(',').collect();
        if parts.len() != 5 {
            return Err(err("expected 5 columns"));
        }
        let record: usize = parts[0].parse().map_err(|_| err("bad record id"))?;
        let label: Option<i16> = if parts[1].is_empty() {
            None
        } else {
            Some(parts[1].parse().map_err(|_| err("bad label"))?)
        };
        let truth: i16 = parts[2].parse().map_err(|_| err("bad ground truth"))?;
        let mac: MacAddr = parts[3].parse().map_err(|_| err("bad mac"))?;
        let rssi: f64 = parts[4].parse().map_err(|_| err("bad rssi"))?;
        rows.push((record, label, truth, mac, rssi));
    }
    let mut ds = Dataset::default();
    let mut current: Option<(usize, Option<i16>, i16, Vec<Reading>)> = None;
    for (rec, label, truth, mac, rssi) in rows {
        let rssi = Rssi::new(rssi).map_err(|e| IoError::Csv {
            line: 0,
            message: e.to_string(),
        })?;
        match &mut current {
            Some((cur, _, _, readings)) if *cur == rec => readings.push(Reading::new(mac, rssi)),
            _ => {
                flush(&mut ds, current.take())?;
                current = Some((rec, label, truth, vec![Reading::new(mac, rssi)]));
            }
        }
    }
    flush(&mut ds, current.take())?;
    Ok(ds)
}

fn flush(
    ds: &mut Dataset,
    group: Option<(usize, Option<i16>, i16, Vec<Reading>)>,
) -> Result<(), IoError> {
    if let Some((_, label, truth, readings)) = group {
        let record = SignalRecord::new(readings).map_err(|e| IoError::Csv {
            line: 0,
            message: e.to_string(),
        })?;
        let sample = match label {
            Some(f) => Sample::labeled(record, FloorId(f)),
            None => Sample {
                record,
                floor: None,
                ground_truth: FloorId(truth),
            },
        };
        ds.push(sample);
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::BuildingModel;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn toy() -> Dataset {
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let ds = BuildingModel::office("io", 2)
            .with_records_per_floor(5)
            .simulate(&mut rng);
        ds.with_label_budget(2, &mut rng)
    }

    #[test]
    fn jsonl_roundtrip() {
        let ds = toy();
        let mut buf = Vec::new();
        write_jsonl(&ds, &mut buf).unwrap();
        let back = read_jsonl(buf.as_slice()).unwrap();
        assert_eq!(back, ds);
    }

    #[test]
    fn jsonl_skips_blank_lines() {
        let ds = toy();
        let mut buf = Vec::new();
        write_jsonl(&ds, &mut buf).unwrap();
        let mut text = String::from_utf8(buf).unwrap();
        text.push_str("\n\n");
        let back = read_jsonl(text.as_bytes()).unwrap();
        assert_eq!(back.len(), ds.len());
    }

    #[test]
    fn jsonl_reports_line_of_bad_record() {
        let text = "{\"bad\": true}\n";
        match read_jsonl(text.as_bytes()) {
            Err(IoError::Json { line, .. }) => assert_eq!(line, 1),
            other => panic!("expected Json error, got {other:?}"),
        }
    }

    #[test]
    fn csv_roundtrip_preserves_labels_and_truth() {
        let ds = toy();
        let mut buf = Vec::new();
        write_csv(&ds, &mut buf).unwrap();
        let back = read_csv(buf.as_slice()).unwrap();
        assert_eq!(back.len(), ds.len());
        for (a, b) in back.samples().iter().zip(ds.samples()) {
            assert_eq!(a.floor, b.floor);
            assert_eq!(a.ground_truth, b.ground_truth);
            assert_eq!(a.record, b.record);
        }
    }

    #[test]
    fn csv_rejects_malformed_rows() {
        let text = "record,label,truth,mac,rssi\n0,,0,zz:zz,-60\n";
        assert!(matches!(
            read_csv(text.as_bytes()),
            Err(IoError::Csv { line: 2, .. })
        ));
        let text = "record,label,truth,mac,rssi\n0,,0\n";
        assert!(matches!(
            read_csv(text.as_bytes()),
            Err(IoError::Csv { line: 2, .. })
        ));
    }

    #[test]
    fn file_roundtrip() {
        let ds = toy();
        let dir = std::env::temp_dir().join("grafics-io-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("ds.jsonl");
        save_jsonl(&ds, &path).unwrap();
        let back = load_jsonl(&path).unwrap();
        assert_eq!(back, ds);
        std::fs::remove_file(path).ok();
    }
}
