//! Multi-floor indoor RF propagation.

use crate::standard_normal;
use grafics_types::Rssi;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Log-distance path-loss model with floor attenuation (Seidel–Rappaport):
///
/// ```text
/// RSS = P_tx − PL₀ − 10·n·log₁₀(d/d₀) − FAF·|Δfloor| + X_σ
/// ```
///
/// where `n` is the path-loss exponent, `FAF` the per-floor attenuation
/// factor in dB, and `X_σ` log-normal shadowing. Readings below the
/// receiver sensitivity are not reported — which is precisely what makes
/// crowdsourced records variable-length and floor-discriminative: APs one
/// or more floors away usually fall below the cut-off.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PropagationModel {
    /// Path-loss exponent `n` (2.0 free space; 2.5–3.5 indoors).
    pub path_loss_exponent: f64,
    /// Reference path loss at 1 m, in dB (~40 dB at 2.4 GHz).
    pub reference_loss_db: f64,
    /// Attenuation per floor crossed, in dB (13–25 dB for concrete slabs).
    pub floor_attenuation_db: f64,
    /// Log-normal shadowing standard deviation, in dB.
    pub shadowing_sigma_db: f64,
    /// Receiver sensitivity in dBm; weaker signals are not observed.
    pub sensitivity_dbm: f64,
    /// Floor-to-floor height in metres (for 3-D distance).
    pub floor_height_m: f64,
}

impl Default for PropagationModel {
    fn default() -> Self {
        PropagationModel {
            path_loss_exponent: 2.8,
            reference_loss_db: 40.0,
            floor_attenuation_db: 16.0,
            shadowing_sigma_db: 4.0,
            sensitivity_dbm: -93.0,
            floor_height_m: 3.5,
        }
    }
}

impl PropagationModel {
    /// Computes the received signal strength at `(x, y, floor)` from a
    /// transmitter at `(ap_x, ap_y, ap_floor)` with transmit power
    /// `tx_power_dbm`, adding shadowing noise and the caller-supplied
    /// per-device offset. Returns `None` when the signal falls below the
    /// receiver sensitivity (the AP is simply not scanned).
    #[allow(clippy::too_many_arguments)]
    pub fn receive<R: Rng + ?Sized>(
        &self,
        tx_power_dbm: f64,
        ap_x: f64,
        ap_y: f64,
        ap_floor: i16,
        x: f64,
        y: f64,
        floor: i16,
        device_offset_db: f64,
        rng: &mut R,
    ) -> Option<Rssi> {
        let dz = f64::from(ap_floor - floor) * self.floor_height_m;
        let d = ((ap_x - x).powi(2) + (ap_y - y).powi(2) + dz * dz)
            .sqrt()
            .max(1.0);
        let floors_crossed = f64::from((ap_floor - floor).abs());
        let shadowing = self.shadowing_sigma_db * standard_normal(rng);
        let rss = tx_power_dbm
            - self.reference_loss_db
            - 10.0 * self.path_loss_exponent * d.log10()
            - self.floor_attenuation_db * floors_crossed
            + shadowing
            + device_offset_db;
        if rss < self.sensitivity_dbm {
            None
        } else {
            Some(Rssi::saturating(rss))
        }
    }

    /// Deterministic mean RSS (no shadowing, no device offset); handy for
    /// tests and analytical checks.
    #[must_use]
    pub fn mean_rss(&self, tx_power_dbm: f64, distance_m: f64, floors_crossed: u16) -> f64 {
        tx_power_dbm
            - self.reference_loss_db
            - 10.0 * self.path_loss_exponent * distance_m.max(1.0).log10()
            - self.floor_attenuation_db * f64::from(floors_crossed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn rss_decreases_with_distance() {
        let m = PropagationModel::default();
        let near = m.mean_rss(0.0, 2.0, 0);
        let far = m.mean_rss(0.0, 50.0, 0);
        assert!(near > far, "near {near} should beat far {far}");
    }

    #[test]
    fn each_floor_costs_attenuation() {
        let m = PropagationModel::default();
        let same = m.mean_rss(0.0, 10.0, 0);
        let one = m.mean_rss(0.0, 10.0, 1);
        let two = m.mean_rss(0.0, 10.0, 2);
        assert!((same - one - m.floor_attenuation_db).abs() < 1e-9);
        assert!((one - two - m.floor_attenuation_db).abs() < 1e-9);
    }

    #[test]
    fn sub_metre_distances_clamped() {
        let m = PropagationModel::default();
        assert_eq!(m.mean_rss(0.0, 0.01, 0), m.mean_rss(0.0, 1.0, 0));
    }

    #[test]
    fn weak_signals_unobserved() {
        let m = PropagationModel {
            shadowing_sigma_db: 0.0,
            ..Default::default()
        };
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        // Two floors away and 80 m horizontal: far below sensitivity.
        let r = m.receive(-10.0, 0.0, 0.0, 2, 80.0, 0.0, 0, 0.0, &mut rng);
        assert!(r.is_none());
        // Same floor, 3 m away: comfortably observed.
        let r = m.receive(-10.0, 0.0, 0.0, 0, 3.0, 0.0, 0, 0.0, &mut rng);
        assert!(r.is_some());
    }

    #[test]
    fn device_offset_shifts_rss() {
        let m = PropagationModel {
            shadowing_sigma_db: 0.0,
            ..Default::default()
        };
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let base = m
            .receive(-10.0, 0.0, 0.0, 0, 5.0, 0.0, 0, 0.0, &mut rng)
            .unwrap();
        let boosted = m
            .receive(-10.0, 0.0, 0.0, 0, 5.0, 0.0, 0, 6.0, &mut rng)
            .unwrap();
        assert!((boosted.dbm() - base.dbm() - 6.0).abs() < 1e-9);
    }

    #[test]
    fn shadowing_produces_spread() {
        let m = PropagationModel::default();
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let vals: Vec<f64> = (0..200)
            .filter_map(|_| {
                m.receive(-10.0, 0.0, 0.0, 0, 5.0, 0.0, 0, 0.0, &mut rng)
                    .map(|r| r.dbm())
            })
            .collect();
        let mean = vals.iter().sum::<f64>() / vals.len() as f64;
        let var = vals.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / vals.len() as f64;
        assert!(var > 4.0, "shadowing variance {var} should be visible");
    }
}
