//! Property-based tests of the clustering invariants the paper's
//! algorithm guarantees (§IV-C).

use grafics_cluster::{ClusterModel, ClusteringConfig};
use grafics_types::FloorId;
use proptest::prelude::*;

/// Points in 3-D with a handful of labels sprinkled in.
fn arb_problem() -> impl Strategy<Value = (Vec<Vec<f64>>, Vec<Option<FloorId>>)> {
    (3usize..40).prop_flat_map(|n| {
        let points = prop::collection::vec(prop::collection::vec(-100.0f64..100.0, 3), n..=n);
        let labels = prop::collection::vec(prop::option::weighted(0.2, 0i16..4), n..=n);
        (points, labels).prop_map(|(points, labels)| {
            let mut labels: Vec<Option<FloorId>> =
                labels.into_iter().map(|l| l.map(FloorId)).collect();
            // Guarantee at least one label.
            if labels.iter().all(|l| l.is_none()) {
                labels[0] = Some(FloorId(0));
            }
            (points, labels)
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The result is a partition: every point in exactly one cluster.
    #[test]
    fn clustering_is_a_partition((points, labels) in arb_problem()) {
        let model = ClusterModel::fit(&points, &labels, &ClusteringConfig::default()).unwrap();
        let mut seen = vec![false; points.len()];
        for c in model.clusters() {
            for &m in &c.members {
                prop_assert!(!seen[m]);
                seen[m] = true;
            }
        }
        prop_assert!(seen.iter().all(|&s| s));
    }

    /// Exactly one labelled sample per cluster; cluster count equals the
    /// number of labelled samples; each cluster carries its sample's floor.
    #[test]
    fn one_label_per_cluster((points, labels) in arb_problem()) {
        let model = ClusterModel::fit(&points, &labels, &ClusteringConfig::default()).unwrap();
        let n_labeled = labels.iter().filter(|l| l.is_some()).count();
        prop_assert_eq!(model.clusters().len(), n_labeled);
        for c in model.clusters() {
            let labeled: Vec<usize> =
                c.members.iter().copied().filter(|&m| labels[m].is_some()).collect();
            prop_assert_eq!(labeled.len(), 1);
            prop_assert_eq!(labels[labeled[0]].unwrap(), c.floor);
        }
    }

    /// Centroids are member means and live in the convex hull's bounding
    /// box.
    #[test]
    fn centroids_are_means((points, labels) in arb_problem()) {
        let model = ClusterModel::fit(&points, &labels, &ClusteringConfig::default()).unwrap();
        for c in model.clusters() {
            #[allow(clippy::needless_range_loop)]
            for d in 0..3 {
                let mean: f64 =
                    c.members.iter().map(|&m| points[m][d]).sum::<f64>() / c.members.len() as f64;
                prop_assert!((c.centroid[d] - mean).abs() < 1e-9);
                let lo = c.members.iter().map(|&m| points[m][d]).fold(f64::INFINITY, f64::min);
                let hi = c.members.iter().map(|&m| points[m][d]).fold(f64::NEG_INFINITY, f64::max);
                prop_assert!(c.centroid[d] >= lo - 1e-9 && c.centroid[d] <= hi + 1e-9);
            }
        }
    }

    /// Prediction always returns a floor that exists among the labels, and
    /// the reported distance is non-negative.
    #[test]
    fn predictions_are_well_formed(
        (points, labels) in arb_problem(),
        query in prop::collection::vec(-100.0f64..100.0, 3),
    ) {
        let model = ClusterModel::fit(&points, &labels, &ClusteringConfig::default()).unwrap();
        let pred = model.predict(&query).unwrap();
        prop_assert!(labels.iter().flatten().any(|&f| f == pred.floor));
        prop_assert!(pred.distance >= 0.0 && pred.distance.is_finite());
        prop_assert!(pred.cluster < model.clusters().len());
    }

    /// Virtual labels agree with cluster floors.
    #[test]
    fn virtual_labels_consistent((points, labels) in arb_problem()) {
        let model = ClusterModel::fit(&points, &labels, &ClusteringConfig::default()).unwrap();
        let virt = model.virtual_labels();
        for (i, &cluster_idx) in model.assignment().iter().enumerate() {
            prop_assert_eq!(virt[i], model.clusters()[cluster_idx].floor);
        }
    }
}
