//! Property-based tests of the clustering invariants the paper's
//! algorithm guarantees (§IV-C), plus parity proofs that the flat-matrix
//! math backbone reproduces the historical nested-`Vec` / per-candidate
//! `sqrt` paths bit for bit.

use grafics_cluster::{dissimilarity_matrix, ClusterModel, ClusteringConfig};
use grafics_types::{FloorId, RowMatrix};
use proptest::prelude::*;

/// Points in 3-D with a handful of labels sprinkled in.
fn arb_problem() -> impl Strategy<Value = (Vec<Vec<f64>>, Vec<Option<FloorId>>)> {
    (3usize..40).prop_flat_map(|n| {
        let points = prop::collection::vec(prop::collection::vec(-100.0f64..100.0, 3), n..=n);
        let labels = prop::collection::vec(prop::option::weighted(0.2, 0i16..4), n..=n);
        (points, labels).prop_map(|(points, labels)| {
            let mut labels: Vec<Option<FloorId>> =
                labels.into_iter().map(|l| l.map(FloorId)).collect();
            // Guarantee at least one label.
            if labels.iter().all(|l| l.is_none()) {
                labels[0] = Some(FloorId(0));
            }
            (points, labels)
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The result is a partition: every point in exactly one cluster.
    #[test]
    fn clustering_is_a_partition((points, labels) in arb_problem()) {
        let model = ClusterModel::fit_rows(&points, &labels, &ClusteringConfig::default()).unwrap();
        let mut seen = vec![false; points.len()];
        for c in model.clusters() {
            for &m in &c.members {
                prop_assert!(!seen[m]);
                seen[m] = true;
            }
        }
        prop_assert!(seen.iter().all(|&s| s));
    }

    /// Exactly one labelled sample per cluster; cluster count equals the
    /// number of labelled samples; each cluster carries its sample's floor.
    #[test]
    fn one_label_per_cluster((points, labels) in arb_problem()) {
        let model = ClusterModel::fit_rows(&points, &labels, &ClusteringConfig::default()).unwrap();
        let n_labeled = labels.iter().filter(|l| l.is_some()).count();
        prop_assert_eq!(model.clusters().len(), n_labeled);
        for c in model.clusters() {
            let labeled: Vec<usize> =
                c.members.iter().copied().filter(|&m| labels[m].is_some()).collect();
            prop_assert_eq!(labeled.len(), 1);
            prop_assert_eq!(labels[labeled[0]].unwrap(), c.floor);
        }
    }

    /// Centroids are member means and live in the convex hull's bounding
    /// box.
    #[test]
    fn centroids_are_means((points, labels) in arb_problem()) {
        let model = ClusterModel::fit_rows(&points, &labels, &ClusteringConfig::default()).unwrap();
        for c in model.clusters() {
            #[allow(clippy::needless_range_loop)]
            for d in 0..3 {
                let mean: f64 =
                    c.members.iter().map(|&m| points[m][d]).sum::<f64>() / c.members.len() as f64;
                prop_assert!((c.centroid[d] - mean).abs() < 1e-9);
                let lo = c.members.iter().map(|&m| points[m][d]).fold(f64::INFINITY, f64::min);
                let hi = c.members.iter().map(|&m| points[m][d]).fold(f64::NEG_INFINITY, f64::max);
                prop_assert!(c.centroid[d] >= lo - 1e-9 && c.centroid[d] <= hi + 1e-9);
            }
        }
    }

    /// Prediction always returns a floor that exists among the labels, and
    /// the reported distance is non-negative.
    #[test]
    fn predictions_are_well_formed(
        (points, labels) in arb_problem(),
        query in prop::collection::vec(-100.0f64..100.0, 3),
    ) {
        let model = ClusterModel::fit_rows(&points, &labels, &ClusteringConfig::default()).unwrap();
        let pred = model.predict(&query).unwrap();
        prop_assert!(labels.iter().flatten().any(|&f| f == pred.floor));
        prop_assert!(pred.distance >= 0.0 && pred.distance.is_finite());
        prop_assert!(pred.cluster < model.clusters().len());
    }

    /// Virtual labels agree with cluster floors.
    #[test]
    fn virtual_labels_consistent((points, labels) in arb_problem()) {
        let model = ClusterModel::fit_rows(&points, &labels, &ClusteringConfig::default()).unwrap();
        let virt = model.virtual_labels();
        for (i, &cluster_idx) in model.assignment().iter().enumerate() {
            prop_assert_eq!(virt[i], model.clusters()[cluster_idx].floor);
        }
    }

    /// The flat-matrix, cache-blocked dissimilarity build is bit-identical
    /// to the seed's nested-`Vec` row-by-row reference on random inputs of
    /// random dimension (the tiling only reorders *which pair* is computed
    /// when, never the per-pair arithmetic).
    #[test]
    fn flat_dissimilarity_bit_identical_to_nested_seed_path(
        (dim, points) in (1usize..40).prop_flat_map(|dim| {
            (Just(dim),
             prop::collection::vec(prop::collection::vec(-100.0f64..100.0, dim), 2..150))
        }),
    ) {
        let _ = dim;
        let flat = dissimilarity_matrix(&RowMatrix::from_rows(&points), 1);
        // The pre-backbone reference: pointer-chased rows, sequential
        // Σ(x−y)² then sqrt, row-major condensed order.
        let mut reference = Vec::with_capacity(points.len() * (points.len() - 1) / 2);
        for a in 1..points.len() {
            for b in 0..a {
                let sq: f64 = points[a]
                    .iter()
                    .zip(&points[b])
                    .map(|(&x, &y)| (x - y) * (x - y))
                    .sum();
                reference.push(sq.sqrt());
            }
        }
        prop_assert_eq!(flat.len(), reference.len());
        for (i, (f, r)) in flat.iter().zip(&reference).enumerate() {
            prop_assert_eq!(f.to_bits(), r.to_bits(), "entry {} diverged", i);
        }
    }

    /// The sqrt-free matching paths (squared-distance sweeps, winners-only
    /// sqrt) agree bit for bit with a two-pass reference that pays a sqrt
    /// per candidate, across predict / predict_topk / predict_with_margin.
    #[test]
    fn sqrt_free_matching_matches_two_pass_sqrt_reference(
        (points, labels) in arb_problem(),
        query in prop::collection::vec(-100.0f64..100.0, 3),
        k in 1usize..6,
    ) {
        let model = ClusterModel::fit_rows(&points, &labels, &ClusteringConfig::default()).unwrap();
        // Reference: the historical per-candidate sqrt sweep.
        let dists: Vec<f64> = model
            .clusters()
            .iter()
            .map(|c| {
                c.centroid
                    .iter()
                    .zip(&query)
                    .map(|(&x, &y)| (x - y) * (x - y))
                    .sum::<f64>()
                    .sqrt()
            })
            .collect();
        let best = dists
            .iter()
            .enumerate()
            .min_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .unwrap()
            .0;

        let pred = model.predict(&query).unwrap();
        prop_assert_eq!(pred.cluster, best);
        prop_assert_eq!(pred.distance.to_bits(), dists[best].to_bits());

        // Top-k: full (distance, index) ranking with per-candidate sqrt.
        let mut ranked: Vec<(usize, f64)> = dists.iter().copied().enumerate().collect();
        ranked.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap().then(a.0.cmp(&b.0)));
        let top = model.predict_topk(&query, k).unwrap();
        prop_assert_eq!(top.len(), k.min(dists.len()));
        for (got, want) in top.iter().zip(&ranked) {
            prop_assert_eq!(got.0, model.clusters()[want.0].floor);
            prop_assert_eq!(got.1.to_bits(), want.1.to_bits());
        }

        // Margin: nearest different-floor distance minus best distance.
        let rival = dists
            .iter()
            .enumerate()
            .filter(|&(i, _)| model.clusters()[i].floor != pred.floor)
            .map(|(_, &d)| d)
            .fold(f64::INFINITY, f64::min);
        let (mpred, margin) = model.predict_with_margin(&query).unwrap();
        prop_assert_eq!(mpred, pred);
        prop_assert_eq!(margin.to_bits(), (rival - pred.distance).to_bits());
    }
}
