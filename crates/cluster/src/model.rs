//! The fitted cluster model and nearest-centroid prediction.

use crate::agglomerative::{
    agglomerate, Agglomeration, ClusterError, ClusteringConfig, DistanceMatrix, MergeStep,
};
use grafics_types::kernels::{sqdist_f64, sqdist_lanes_f32};
use grafics_types::{FloorId, RowMatrix};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Numeric precision of the nearest-centroid sweep.
///
/// [`MatchPrecision::F32Refined`] sweeps the single-precision shadow
/// centroids (half the memory bandwidth), then re-scores the
/// within-tolerance candidates in `f64` — so the returned floor,
/// distance, and margin are bit-identical to [`MatchPrecision::F64`]
/// whenever the `f32` ranking is unambiguous, and an ambiguous ranking
/// (more near-ties than the re-score bound) falls back to the full
/// `f64` sweep.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum MatchPrecision {
    /// The historical double-precision sweep.
    #[default]
    F64,
    /// `f32` sweep + `f64` re-score of the top candidates.
    F32Refined,
}

/// One floor-labelled cluster of embeddings.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Cluster {
    /// The floor label inherited from the cluster's labelled sample.
    pub floor: FloorId,
    /// Centroid `ψ_i` of the member ego embeddings (§V-B).
    pub centroid: Vec<f64>,
    /// Indices (into the input point slice) of the cluster's members.
    pub members: Vec<usize>,
}

/// The outcome of a nearest-centroid floor prediction.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Prediction {
    /// Predicted floor `l_{i*}`.
    pub floor: FloorId,
    /// Index of the winning cluster in [`ClusterModel::clusters`].
    pub cluster: usize,
    /// ℓ2 distance to the winning centroid.
    pub distance: f64,
}

/// Reusable buffers for [`ClusterModel::predict_topk_with`]: a serving
/// session (one per fleet/batch worker) holds one of these across a
/// whole batch, so per-query matching allocates only the returned
/// top-`k` pairs, never the full candidate sweep.
#[derive(Debug, Clone, Default)]
pub struct MatchScratch {
    cand: Vec<(usize, FloorId, f64)>,
    /// The query narrowed to `f32` for the shadow-centroid sweep.
    q32: Vec<f32>,
    /// Per-cluster `f32` squared distances of the current query.
    d32: Vec<f32>,
    /// Cluster indices surviving the `f32` tolerance cut.
    cand_idx: Vec<usize>,
    /// An `f32` ego row widened to `f64` for the margin probe.
    wide: Vec<f64>,
}

impl MatchScratch {
    /// Creates empty scratch buffers.
    #[must_use]
    pub fn new() -> Self {
        MatchScratch::default()
    }
}

/// A fitted proximity-based hierarchical clustering (§IV-C).
///
/// See the [crate docs](crate) for the algorithm and an example.
#[derive(Debug, Clone, PartialEq, Deserialize)]
#[serde(try_from = "ClusterModelRepr")]
pub struct ClusterModel {
    dim: usize,
    clusters: Vec<Cluster>,
    assignment: Vec<usize>,
    history: Vec<MergeStep>,
    /// Flat row-major copy of every cluster centroid: the matching hot
    /// paths sweep this one contiguous buffer instead of pointer-chasing
    /// per-cluster `Vec`s. Derived from `clusters` (rebuilt on
    /// deserialize), so the wire format is unchanged.
    centroids: RowMatrix<f64>,
    /// Single-precision shadow of `centroids` for the
    /// [`MatchPrecision::F32Refined`] sweep. Derived (deterministic
    /// narrowing of `centroids`), never serialized.
    centroids_f32: RowMatrix<f32>,
}

/// The persisted shape of [`ClusterModel`] — exactly the historical
/// field set, so model files round-trip across this refactor; the flat
/// centroid matrix is rebuilt on load.
#[derive(Deserialize)]
struct ClusterModelRepr {
    dim: usize,
    clusters: Vec<Cluster>,
    assignment: Vec<usize>,
    history: Vec<MergeStep>,
}

// Manual (not via `#[serde(into)]`, which would deep-clone the whole
// model per save): writes the historical four fields by reference, in
// the same order and shape the pre-backbone derived impl produced.
impl Serialize for ClusterModel {
    fn to_value(&self) -> serde::Value {
        serde::Value::Map(vec![
            (String::from("dim"), self.dim.to_value()),
            (String::from("clusters"), self.clusters.to_value()),
            (String::from("assignment"), self.assignment.to_value()),
            (String::from("history"), self.history.to_value()),
        ])
    }
}

// Infallible by design, but `TryFrom` (not `From`) because the vendored
// serde derive only supports the `try_from` container attribute.
#[allow(clippy::infallible_try_from)]
impl TryFrom<ClusterModelRepr> for ClusterModel {
    type Error = std::convert::Infallible;

    fn try_from(r: ClusterModelRepr) -> Result<Self, Self::Error> {
        let mut centroids = RowMatrix::with_capacity(r.clusters.len(), r.dim);
        for c in &r.clusters {
            centroids.push_row(&c.centroid);
        }
        let centroids_f32 = narrow_centroids(&centroids);
        Ok(ClusterModel {
            dim: r.dim,
            clusters: r.clusters,
            assignment: r.assignment,
            history: r.history,
            centroids,
            centroids_f32,
        })
    }
}

impl ClusterModel {
    /// Fits the clustering to `points` (one embedding per row) with
    /// `labels[i]` carrying the floor of the few labelled samples.
    /// Callers holding legacy nested rows can use
    /// [`ClusterModel::fit_rows`].
    ///
    /// # Errors
    ///
    /// - [`ClusterError::Empty`] if `points` has no rows;
    /// - [`ClusterError::NonFiniteInput`] on NaN/∞ coordinates;
    /// - [`ClusterError::NoLabeledSamples`] if every label is `None`.
    ///
    /// # Panics
    ///
    /// Panics if `points.rows() != labels.len()`.
    pub fn fit(
        points: &RowMatrix<f64>,
        labels: &[Option<FloorId>],
        config: &ClusteringConfig,
    ) -> Result<Self, ClusterError> {
        if points.is_empty() {
            return Err(ClusterError::Empty);
        }
        assert_eq!(
            points.rows(),
            labels.len(),
            "points and labels must be parallel"
        );
        let dim = points.cols();
        if points.data().iter().any(|x| !x.is_finite()) {
            return Err(ClusterError::NonFiniteInput);
        }
        let n_labeled = labels.iter().filter(|l| l.is_some()).count();
        if n_labeled == 0 {
            return Err(ClusterError::NoLabeledSamples);
        }

        let labeled_mask: Vec<bool> = labels.iter().map(|l| l.is_some()).collect();
        let mut dist = DistanceMatrix::from_points(points, config.threads);
        let agg: Agglomeration = if points.rows() == 1 {
            Agglomeration {
                roots: vec![0],
                history: Vec::new(),
            }
        } else {
            agglomerate(&mut dist, &labeled_mask, config, n_labeled)
        };

        // Group points by final root.
        let mut by_root: HashMap<usize, Vec<usize>> = HashMap::new();
        for (i, &r) in agg.roots.iter().enumerate() {
            by_root.entry(r).or_default().push(i);
        }
        let mut roots: Vec<usize> = by_root.keys().copied().collect();
        roots.sort_unstable();

        // Label each cluster.
        let mut clusters = Vec::with_capacity(roots.len());
        let mut centroids = RowMatrix::with_capacity(roots.len(), dim);
        let mut assignment = vec![usize::MAX; points.rows()];
        let mut unlabeled_clusters: Vec<(usize, Vec<usize>)> = Vec::new();
        for &root in &roots {
            let members = by_root.remove(&root).expect("root exists");
            let floor = cluster_floor(&members, labels, config.constrained);
            match floor {
                Some(floor) => {
                    let centroid = centroid_of(points, &members, dim);
                    let idx = clusters.len();
                    for &m in &members {
                        assignment[m] = idx;
                    }
                    centroids.push_row(&centroid);
                    clusters.push(Cluster {
                        floor,
                        centroid,
                        members,
                    });
                }
                None => unlabeled_clusters.push((root, members)),
            }
        }
        // Unconstrained ablation can leave label-free clusters; adopt the
        // floor of the nearest labelled centroid.
        for (_, members) in unlabeled_clusters {
            let centroid = centroid_of(points, &members, dim);
            let (best, _) =
                nearest_centroid_sq(&centroids, &centroid).ok_or(ClusterError::NoLabeledSamples)?;
            let floor = clusters[best].floor;
            let idx = clusters.len();
            for &m in &members {
                assignment[m] = idx;
            }
            centroids.push_row(&centroid);
            clusters.push(Cluster {
                floor,
                centroid,
                members,
            });
        }

        let centroids_f32 = narrow_centroids(&centroids);
        Ok(ClusterModel {
            dim,
            clusters,
            assignment,
            history: agg.history,
            centroids,
            centroids_f32,
        })
    }

    /// [`ClusterModel::fit`] over legacy nested rows: validates shape
    /// (so ragged input still reports
    /// [`ClusterError::DimensionMismatch`]) and converts to the flat
    /// [`RowMatrix`] the fitting pipeline runs on.
    ///
    /// # Errors
    ///
    /// [`ClusterError::DimensionMismatch`] on ragged input, plus every
    /// [`ClusterModel::fit`] failure mode.
    pub fn fit_rows(
        points: &[Vec<f64>],
        labels: &[Option<FloorId>],
        config: &ClusteringConfig,
    ) -> Result<Self, ClusterError> {
        let matrix = RowMatrix::try_from_rows(points)
            .map_err(|(expected, found)| ClusterError::DimensionMismatch { expected, found })?;
        Self::fit(&matrix, labels, config)
    }

    /// Embedding dimensionality the model was fitted on.
    #[must_use]
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// The fitted clusters.
    #[must_use]
    pub fn clusters(&self) -> &[Cluster] {
        &self.clusters
    }

    /// The cluster index assigned to each input point.
    #[must_use]
    pub fn assignment(&self) -> &[usize] {
        &self.assignment
    }

    /// Merge history (only populated when
    /// [`ClusteringConfig::record_history`] was set).
    #[must_use]
    pub fn history(&self) -> &[MergeStep] {
        &self.history
    }

    /// Exports the recorded merge history as a Newick-like nested-group
    /// string with merge distances as branch annotations, for external
    /// dendrogram tooling. Leaves are input point indices. Clusters that
    /// never merged appear as top-level leaves.
    ///
    /// Returns `None` unless the model was fitted with
    /// [`ClusteringConfig::record_history`].
    #[must_use]
    pub fn dendrogram_newick(&self) -> Option<String> {
        if self.history.is_empty() && self.assignment.len() > self.clusters.len() {
            return None;
        }
        let n = self.assignment.len();
        // Build up subtree strings via union-find replay.
        let mut repr: Vec<Option<String>> = (0..n).map(|i| Some(i.to_string())).collect();
        let mut root: Vec<usize> = (0..n).collect();
        fn find(root: &mut [usize], mut i: usize) -> usize {
            while root[i] != i {
                root[i] = root[root[i]];
                i = root[i];
            }
            i
        }
        for step in &self.history {
            let (rk, ra) = (find(&mut root, step.kept), find(&mut root, step.absorbed));
            let a = repr[rk].take().expect("live subtree");
            let b = repr[ra].take().expect("live subtree");
            root[ra] = rk;
            repr[rk] = Some(format!("({a},{b}):{:.6}", step.distance));
        }
        let tops: Vec<String> = repr.into_iter().flatten().collect();
        Some(format!("({});", tops.join(",")))
    }

    /// The *virtual label* of every input point: the floor of the cluster
    /// it was merged into. The paper uses these as pseudo-labels when
    /// training the supervised baselines (§VI-A).
    #[must_use]
    pub fn virtual_labels(&self) -> Vec<FloorId> {
        self.assignment
            .iter()
            .map(|&c| self.clusters[c].floor)
            .collect()
    }

    /// Predicts the floor of a new ego embedding as the label of the
    /// nearest cluster centroid (§V-B). Candidates are compared by
    /// *squared* distance and only the winner pays the `sqrt`; the
    /// reported distance is bit-identical to the historical
    /// per-candidate-`sqrt` sweep. The comparison is monotone-equivalent
    /// and strictly finer: exact ties still go to the first (lowest)
    /// cluster index, and in the measure-zero case where two *distinct*
    /// squared distances round to the same `sqrt`, the truly nearer
    /// centroid now wins (historically the lower index did).
    ///
    /// # Errors
    ///
    /// [`ClusterError::QueryDimensionMismatch`] if `query` has the wrong
    /// dimension, [`ClusterError::NonFiniteInput`] if it is not finite.
    pub fn predict(&self, query: &[f64]) -> Result<Prediction, ClusterError> {
        self.validate_query(query)?;
        let (cluster, sq) =
            nearest_centroid_sq(&self.centroids, query).expect("model has >= 1 cluster");
        Ok(Prediction {
            floor: self.clusters[cluster].floor,
            cluster,
            distance: sq.sqrt(),
        })
    }

    /// The `k` nearest clusters as `(floor, distance)` pairs, ascending by
    /// centroid distance — the shape downstream confidence consumers want
    /// (a small gap between the best two *different-floor* candidates
    /// signals an uncertain prediction, e.g. near a staircase; the fleet
    /// router surfaces that gap per served query).
    ///
    /// The first pair always equals [`ClusterModel::predict`]'s floor and
    /// distance. Several clusters may carry the same floor, so a floor can
    /// appear more than once in the result.
    ///
    /// # Errors
    ///
    /// Same validation as [`ClusterModel::predict`].
    pub fn predict_topk(
        &self,
        query: &[f64],
        k: usize,
    ) -> Result<Vec<(FloorId, f64)>, ClusterError> {
        self.predict_topk_with(query, k, &mut MatchScratch::new())
    }

    /// [`ClusterModel::predict_topk`] with caller-owned scratch: the
    /// full candidate sweep reuses `scratch` across calls, so a serving
    /// session matching a whole batch allocates only the `k`-pair
    /// results. Candidates carry *squared* distances through selection
    /// and sorting (monotone-equivalent ordering, ties still broken by
    /// cluster index); only the `k` winners pay a `sqrt`.
    ///
    /// # Errors
    ///
    /// Same validation as [`ClusterModel::predict`].
    pub fn predict_topk_with(
        &self,
        query: &[f64],
        k: usize,
        scratch: &mut MatchScratch,
    ) -> Result<Vec<(FloorId, f64)>, ClusterError> {
        self.validate_query(query)?;
        if k == 0 {
            return Ok(Vec::new());
        }
        // Compute every squared distance exactly once, then partially
        // select the k nearest in O(n) and sort only that prefix —
        // O(n + k log k), with n − k candidates never paying a sqrt.
        let all = &mut scratch.cand;
        all.clear();
        all.extend(self.clusters.iter().enumerate().map(|(cluster, c)| {
            (
                cluster,
                c.floor,
                sqdist_f64(self.centroids.row(cluster), query),
            )
        }));
        // Total order: distance, then cluster index — deterministic under
        // ties and consistent with `predict` (first minimum wins).
        let by_distance = |a: &(usize, FloorId, f64), b: &(usize, FloorId, f64)| {
            a.2.partial_cmp(&b.2).expect("finite").then(a.0.cmp(&b.0))
        };
        if k < all.len() {
            all.select_nth_unstable_by(k - 1, by_distance);
            all.truncate(k);
        }
        all.sort_unstable_by(by_distance);
        Ok(all
            .iter()
            .map(|&(_, floor, sq)| (floor, sq.sqrt()))
            .collect())
    }

    /// [`ClusterModel::predict`] plus the distance gap to the nearest
    /// cluster of a *different* floor — the natural per-query confidence
    /// signal (large mid-floor, small near stairwells) — in **one** sweep
    /// over the centroids; the fleet serve path calls this per query.
    /// The margin is `f64::INFINITY` when every cluster carries the
    /// best prediction's floor.
    ///
    /// # Errors
    ///
    /// Same validation as [`ClusterModel::predict`].
    pub fn predict_with_margin(&self, query: &[f64]) -> Result<(Prediction, f64), ClusterError> {
        self.validate_query(query)?;
        // The sweep tracks *squared* distances (monotone-equivalent, so
        // best/rival winners are unchanged) and defers the sqrt to the
        // two survivors: `sqrt(min(d²))` equals `min(sqrt(d²))` bit for
        // bit, so prediction distance and margin match the historical
        // per-candidate-sqrt sweep exactly.
        let mut best: Option<(usize, FloorId, f64)> = None;
        let mut rival = f64::INFINITY;
        for (i, c) in self.clusters.iter().enumerate() {
            let d = sqdist_f64(self.centroids.row(i), query);
            match best {
                None => best = Some((i, c.floor, d)),
                Some((_, best_floor, best_d)) => {
                    if d < best_d {
                        // The demoted best is ≤ every distance seen so
                        // far, so folding it in subsumes every earlier
                        // rival candidate — rival stays the exact minimum
                        // over clusters whose floor differs from the
                        // (final) best floor.
                        if best_floor != c.floor {
                            rival = rival.min(best_d);
                        }
                        best = Some((i, c.floor, d));
                    } else if c.floor != best_floor {
                        rival = rival.min(d);
                    }
                }
            }
        }
        let (cluster, floor, sq) = best.expect("model has >= 1 cluster");
        let distance = sq.sqrt();
        Ok((
            Prediction {
                floor,
                cluster,
                distance,
            },
            rival.sqrt() - distance,
        ))
    }

    /// The margin half of [`ClusterModel::predict_with_margin`].
    ///
    /// # Errors
    ///
    /// Same validation as [`ClusterModel::predict`].
    pub fn floor_margin(&self, query: &[f64]) -> Result<f64, ClusterError> {
        Ok(self.predict_with_margin(query)?.1)
    }

    /// [`ClusterModel::predict_with_margin`] on the
    /// [`MatchPrecision::F32Refined`] path: sweeps the `f32` shadow
    /// centroids, then re-scores the candidates within the `f32`
    /// rounding tolerance in `f64` — the winning cluster, its distance,
    /// and the margin are computed from the **same** [`sqdist_f64`]
    /// values the full `f64` sweep uses, so the result is bit-identical
    /// to [`ClusterModel::predict_with_margin`] whenever the tolerance
    /// cut keeps the true winners (it does by construction: the cut is
    /// orders of magnitude wider than the worst-case `f32` narrowing
    /// error on embedding-scale coordinates). If more clusters survive a
    /// cut than the re-score bound, the ranking is genuinely ambiguous
    /// at `f32` precision and the full `f64` sweep answers instead; the
    /// returned flag reports that fallback so serving tiers can count
    /// it.
    ///
    /// # Errors
    ///
    /// Same validation as [`ClusterModel::predict`].
    pub fn predict_with_margin_f32(
        &self,
        query: &[f64],
        scratch: &mut MatchScratch,
    ) -> Result<(Prediction, f64, bool), ClusterError> {
        self.validate_query(query)?;
        scratch.q32.clear();
        scratch.q32.extend(query.iter().map(|&x| x as f32));
        let n = self.centroids_f32.rows();
        scratch.d32.clear();
        for i in 0..n {
            scratch
                .d32
                .push(sqdist_lanes_f32(self.centroids_f32.row(i), &scratch.q32));
        }
        let d32 = &scratch.d32;
        let best32 = d32.iter().copied().fold(f32::INFINITY, f32::min);

        // Tolerance cut: everything whose f32 squared distance is within
        // rounding slack of the f32 minimum could be the f64 winner.
        let cut = |anchor: f32| anchor.mul_add(F32_REL_TOL, F32_ABS_TOL) + anchor;
        let best_cut = cut(best32);
        scratch.cand_idx.clear();
        for (i, &d) in d32.iter().enumerate() {
            if d <= best_cut {
                scratch.cand_idx.push(i);
            }
        }
        if scratch.cand_idx.len() > F32_MAX_CANDIDATES {
            let (pred, margin) = self.predict_with_margin(query)?;
            return Ok((pred, margin, true));
        }
        // f64 re-score, ascending cluster index: strict `<` keeps the
        // first minimum, the same tie rule as the full sweep.
        let mut best: Option<(usize, f64)> = None;
        for &i in &scratch.cand_idx {
            let d = sqdist_f64(self.centroids.row(i), query);
            if best.is_none_or(|(_, b)| d < b) {
                best = Some((i, d));
            }
        }
        let (cluster, sq) = best.expect("model has >= 1 cluster");
        let floor = self.clusters[cluster].floor;
        let distance = sq.sqrt();
        let prediction = Prediction {
            floor,
            cluster,
            distance,
        };

        // Rival: the nearest cluster of a *different* floor, found the
        // same way — f32 minimum, tolerance cut, f64 re-score.
        let mut rival32 = f32::INFINITY;
        for (i, c) in self.clusters.iter().enumerate() {
            if c.floor != floor && d32[i] < rival32 {
                rival32 = d32[i];
            }
        }
        if rival32.is_infinite() {
            return Ok((prediction, f64::INFINITY, false));
        }
        let rival_cut = cut(rival32);
        scratch.cand_idx.clear();
        for (i, c) in self.clusters.iter().enumerate() {
            if c.floor != floor && d32[i] <= rival_cut {
                scratch.cand_idx.push(i);
            }
        }
        if scratch.cand_idx.len() > F32_MAX_CANDIDATES {
            let (pred, margin) = self.predict_with_margin(query)?;
            return Ok((pred, margin, true));
        }
        let mut rival = f64::INFINITY;
        for &i in &scratch.cand_idx {
            rival = rival.min(sqdist_f64(self.centroids.row(i), query));
        }
        Ok((prediction, rival.sqrt() - distance, false))
    }

    /// The adaptive-budget early-stop probe: `true` when the runner-up
    /// centroid of a *different* floor is at least
    /// `(1 + margin_ratio)×` the best squared distance away from the
    /// (partially refined, still-`f32`) ego row — refining further
    /// cannot plausibly flip the floor, so the serving path may stop.
    /// A model whose clusters all share one floor is always decisive;
    /// `margin_ratio <= 0` (or a row of the wrong dimension, or a
    /// non-finite row mid-refinement) never is. Consumes no RNG by
    /// construction — it only reads.
    #[must_use]
    pub fn margin_decisive(
        &self,
        ego: &[f32],
        margin_ratio: f64,
        scratch: &mut MatchScratch,
    ) -> bool {
        if margin_ratio <= 0.0 || ego.len() != self.dim {
            return false;
        }
        scratch.wide.clear();
        scratch.wide.extend(ego.iter().map(|&x| f64::from(x)));
        let mut best: Option<(FloorId, f64)> = None;
        let mut rival = f64::INFINITY;
        for (i, c) in self.clusters.iter().enumerate() {
            let d = sqdist_f64(self.centroids.row(i), &scratch.wide);
            match best {
                None => best = Some((c.floor, d)),
                Some((best_floor, best_d)) => {
                    if d < best_d {
                        if best_floor != c.floor {
                            rival = rival.min(best_d);
                        }
                        best = Some((c.floor, d));
                    } else if c.floor != best_floor {
                        rival = rival.min(d);
                    }
                }
            }
        }
        let Some((_, best_sq)) = best else {
            return false;
        };
        // `>=` on non-finite terms is false, so a NaN mid-refinement row
        // simply keeps refining; an all-one-floor model (rival = ∞) is
        // decisive outright.
        rival - best_sq >= margin_ratio * best_sq
    }

    fn validate_query(&self, query: &[f64]) -> Result<(), ClusterError> {
        if query.len() != self.dim {
            return Err(ClusterError::QueryDimensionMismatch {
                expected: self.dim,
                found: query.len(),
            });
        }
        if query.iter().any(|x| !x.is_finite()) {
            return Err(ClusterError::NonFiniteInput);
        }
        Ok(())
    }
}

/// Relative tolerance of the `F32Refined` candidate cut. The worst-case
/// relative gap between an `f32` shadow squared distance and its `f64`
/// value on embedding-scale coordinates is a few ULPs (~1e-6); 1e-3
/// gives three orders of magnitude of headroom while still cutting all
/// but near-tied clusters.
const F32_REL_TOL: f32 = 1e-3;
/// Absolute companion of [`F32_REL_TOL`], covering distances near zero
/// where relative error is unbounded (narrowing error is ~1e-6 absolute
/// there).
const F32_ABS_TOL: f32 = 1e-4;
/// Re-score bound: more near-tied candidates than this means the `f32`
/// ranking is genuinely ambiguous and the full `f64` sweep answers.
const F32_MAX_CANDIDATES: usize = 8;

/// Deterministic `f64 → f32` narrowing of the flat centroid matrix —
/// the derived shadow the `F32Refined` sweep reads.
fn narrow_centroids(centroids: &RowMatrix<f64>) -> RowMatrix<f32> {
    let data: Vec<f32> = centroids.data().iter().map(|&x| x as f32).collect();
    RowMatrix::from_flat(centroids.rows(), centroids.cols(), data)
}

fn cluster_floor(
    members: &[usize],
    labels: &[Option<FloorId>],
    constrained: bool,
) -> Option<FloorId> {
    if constrained {
        // Exactly one labelled member by the merge constraint.
        members.iter().find_map(|&m| labels[m])
    } else {
        // Majority vote among labelled members; ties broken by lower floor.
        let mut counts: HashMap<FloorId, usize> = HashMap::new();
        for &m in members {
            if let Some(f) = labels[m] {
                *counts.entry(f).or_default() += 1;
            }
        }
        counts
            .into_iter()
            .max_by(|a, b| a.1.cmp(&b.1).then(b.0.cmp(&a.0)))
            .map(|(f, _)| f)
    }
}

fn centroid_of(points: &RowMatrix<f64>, members: &[usize], dim: usize) -> Vec<f64> {
    let mut c = vec![0.0; dim];
    for &m in members {
        for (d, &x) in points.row(m).iter().enumerate() {
            c[d] += x;
        }
    }
    for x in &mut c {
        *x /= members.len() as f64;
    }
    c
}

/// The nearest centroid by *squared* ℓ2 distance over the flat centroid
/// matrix — strict-`<` tracking keeps first-minimum-wins tie semantics,
/// matching the historical `min_by` over sqrt'd distances.
fn nearest_centroid_sq(centroids: &RowMatrix<f64>, query: &[f64]) -> Option<(usize, f64)> {
    let mut best: Option<(usize, f64)> = None;
    for i in 0..centroids.rows() {
        let d = sqdist_f64(centroids.row(i), query);
        if best.is_none_or(|(_, b)| d < b) {
            best = Some((i, d));
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    fn blob(cx: f64, cy: f64, n: usize, spread: f64) -> Vec<Vec<f64>> {
        (0..n)
            .map(|i| {
                vec![
                    cx + spread * (i as f64 / n as f64 - 0.5),
                    cy + spread * ((i * 7 % n) as f64 / n as f64 - 0.5),
                ]
            })
            .collect()
    }

    fn three_floor_setup() -> (Vec<Vec<f64>>, Vec<Option<FloorId>>) {
        let mut points = Vec::new();
        let mut labels = Vec::new();
        for (f, (cx, cy)) in [(0, (0.0, 0.0)), (1, (10.0, 0.0)), (2, (0.0, 10.0))] {
            let pts = blob(cx, cy, 16, 1.0);
            for (i, p) in pts.into_iter().enumerate() {
                points.push(p);
                labels.push(if i < 2 { Some(FloorId(f)) } else { None });
            }
        }
        (points, labels)
    }

    #[test]
    fn one_cluster_per_labeled_sample() {
        let (points, labels) = three_floor_setup();
        let model = ClusterModel::fit_rows(&points, &labels, &ClusteringConfig::default()).unwrap();
        assert_eq!(model.clusters().len(), 6); // 2 labels × 3 floors
                                               // every cluster has exactly one labelled member
        for c in model.clusters() {
            let n_labeled = c.members.iter().filter(|&&m| labels[m].is_some()).count();
            assert_eq!(n_labeled, 1);
        }
    }

    #[test]
    fn partition_covers_all_points_exactly_once() {
        let (points, labels) = three_floor_setup();
        let model = ClusterModel::fit_rows(&points, &labels, &ClusteringConfig::default()).unwrap();
        let mut seen = vec![false; points.len()];
        for c in model.clusters() {
            for &m in &c.members {
                assert!(!seen[m], "point {m} in two clusters");
                seen[m] = true;
            }
        }
        assert!(seen.iter().all(|&s| s));
        assert!(model
            .assignment()
            .iter()
            .all(|&a| a < model.clusters().len()));
    }

    #[test]
    fn virtual_labels_match_ground_truth_on_separated_blobs() {
        let (points, labels) = three_floor_setup();
        let model = ClusterModel::fit_rows(&points, &labels, &ClusteringConfig::default()).unwrap();
        let virt = model.virtual_labels();
        for (i, v) in virt.iter().enumerate() {
            let truth = FloorId((i / 16) as i16);
            assert_eq!(*v, truth, "point {i}");
        }
    }

    #[test]
    fn predict_nearest_centroid() {
        let (points, labels) = three_floor_setup();
        let model = ClusterModel::fit_rows(&points, &labels, &ClusteringConfig::default()).unwrap();
        assert_eq!(model.predict(&[0.2, -0.1]).unwrap().floor, FloorId(0));
        assert_eq!(model.predict(&[9.5, 0.4]).unwrap().floor, FloorId(1));
        assert_eq!(model.predict(&[-0.3, 10.2]).unwrap().floor, FloorId(2));
    }

    #[test]
    fn predict_validates_query() {
        let (points, labels) = three_floor_setup();
        let model = ClusterModel::fit_rows(&points, &labels, &ClusteringConfig::default()).unwrap();
        assert!(matches!(
            model.predict(&[1.0]),
            Err(ClusterError::QueryDimensionMismatch {
                expected: 2,
                found: 1
            })
        ));
        assert!(matches!(
            model.predict(&[f64::NAN, 0.0]),
            Err(ClusterError::NonFiniteInput)
        ));
    }

    #[test]
    fn fit_validates_input() {
        assert!(matches!(
            ClusterModel::fit_rows(&[], &[], &ClusteringConfig::default()),
            Err(ClusterError::Empty)
        ));
        let ragged = vec![vec![0.0, 0.0], vec![1.0]];
        assert!(matches!(
            ClusterModel::fit_rows(
                &ragged,
                &[Some(FloorId(0)), None],
                &ClusteringConfig::default()
            ),
            Err(ClusterError::DimensionMismatch { .. })
        ));
        let nan = vec![vec![f64::NAN, 0.0]];
        assert!(matches!(
            ClusterModel::fit_rows(&nan, &[Some(FloorId(0))], &ClusteringConfig::default()),
            Err(ClusterError::NonFiniteInput)
        ));
        let unlabeled = vec![vec![0.0], vec![1.0]];
        assert!(matches!(
            ClusterModel::fit_rows(&unlabeled, &[None, None], &ClusteringConfig::default()),
            Err(ClusterError::NoLabeledSamples)
        ));
    }

    #[test]
    fn single_point_dataset() {
        let model = ClusterModel::fit_rows(
            &[vec![1.0, 2.0]],
            &[Some(FloorId(5))],
            &ClusteringConfig::default(),
        )
        .unwrap();
        assert_eq!(model.clusters().len(), 1);
        assert_eq!(model.predict(&[0.0, 0.0]).unwrap().floor, FloorId(5));
    }

    #[test]
    fn multiple_clusters_per_floor_allowed() {
        // Two labelled samples of the SAME floor in distant blobs: the
        // constraint still keeps them separate — two clusters, same floor.
        let mut points = blob(0.0, 0.0, 8, 1.0);
        points.extend(blob(20.0, 0.0, 8, 1.0));
        let mut labels = vec![None; 16];
        labels[0] = Some(FloorId(3));
        labels[8] = Some(FloorId(3));
        let model = ClusterModel::fit_rows(&points, &labels, &ClusteringConfig::default()).unwrap();
        assert_eq!(model.clusters().len(), 2);
        assert!(model.clusters().iter().all(|c| c.floor == FloorId(3)));
    }

    #[test]
    fn unconstrained_ablation_labels_by_majority() {
        let (points, labels) = three_floor_setup();
        let cfg = ClusteringConfig {
            constrained: false,
            ..Default::default()
        };
        let model = ClusterModel::fit_rows(&points, &labels, &cfg).unwrap();
        // 6 labelled samples → stops at 6 clusters; every cluster gets a
        // floor from vote or nearest-centroid adoption.
        assert_eq!(model.clusters().len(), 6);
        let virt = model.virtual_labels();
        let correct = virt
            .iter()
            .enumerate()
            .filter(|&(i, v)| *v == FloorId((i / 16) as i16))
            .count();
        assert!(
            correct >= 40,
            "unconstrained should still be mostly right, got {correct}/48"
        );
    }

    #[test]
    fn centroid_is_member_mean() {
        let points = vec![vec![0.0, 0.0], vec![2.0, 4.0]];
        let labels = vec![Some(FloorId(0)), None];
        let model = ClusterModel::fit_rows(&points, &labels, &ClusteringConfig::default()).unwrap();
        assert_eq!(model.clusters().len(), 1);
        assert_eq!(model.clusters()[0].centroid, vec![1.0, 2.0]);
    }

    #[test]
    fn topk_sorted_and_consistent_with_predict() {
        let (points, labels) = three_floor_setup();
        let model = ClusterModel::fit_rows(&points, &labels, &ClusteringConfig::default()).unwrap();
        let query = [0.3, 0.1];
        let top = model.predict_topk(&query, 3).unwrap();
        assert_eq!(top.len(), 3);
        assert!(top.windows(2).all(|w| w[0].1 <= w[1].1));
        let best = model.predict(&query).unwrap();
        assert_eq!(top[0], (best.floor, best.distance));
        // Asking for more than exists returns all clusters.
        let all = model.predict_topk(&query, 99).unwrap();
        assert_eq!(all.len(), model.clusters().len());
        assert!(model.predict_topk(&[0.0], 2).is_err());
    }

    #[test]
    fn predict_with_margin_matches_two_pass_reference() {
        let (points, labels) = three_floor_setup();
        let model = ClusterModel::fit_rows(&points, &labels, &ClusteringConfig::default()).unwrap();
        for query in [
            [0.2, -0.1],
            [5.0, 0.3],
            [9.8, 0.0],
            [0.1, 9.9],
            [4.9, 5.1],
            [-3.0, -3.0],
        ] {
            let (pred, margin) = model.predict_with_margin(&query).unwrap();
            assert_eq!(pred, model.predict(&query).unwrap(), "query {query:?}");
            // Reference: full ranking, first different-floor candidate.
            let ranked = model.predict_topk(&query, model.clusters().len()).unwrap();
            let expected = ranked
                .iter()
                .find(|&&(f, _)| f != pred.floor)
                .map_or(f64::INFINITY, |&(_, d)| d - pred.distance);
            assert_eq!(margin.to_bits(), expected.to_bits(), "query {query:?}");
        }
    }

    #[test]
    fn floor_margin_reflects_ambiguity() {
        let (points, labels) = three_floor_setup();
        let model = ClusterModel::fit_rows(&points, &labels, &ClusteringConfig::default()).unwrap();
        // Mid-blob query: the nearest different-floor centroid is far.
        let confident = model.floor_margin(&[0.0, 0.0]).unwrap();
        // Halfway between floor 0 and floor 1 blobs: margin collapses.
        let ambiguous = model.floor_margin(&[5.0, 0.0]).unwrap();
        assert!(confident > ambiguous);
        assert!(ambiguous >= 0.0);
        // A single-floor model has no different-floor competitor.
        let one = ClusterModel::fit_rows(
            &[vec![0.0, 0.0], vec![1.0, 1.0]],
            &[Some(FloorId(4)), Some(FloorId(4))],
            &ClusteringConfig::default(),
        )
        .unwrap();
        assert_eq!(one.floor_margin(&[0.5, 0.5]).unwrap(), f64::INFINITY);
    }

    /// The `F32Refined` sweep must return bit-identical floor, cluster,
    /// distance, and margin to the full `f64` sweep on well-separated
    /// real-shaped queries (unambiguous f32 ranking → no fallback).
    #[test]
    fn f32_refined_bit_identical_to_f64_when_unambiguous() {
        let (points, labels) = three_floor_setup();
        let model = ClusterModel::fit_rows(&points, &labels, &ClusteringConfig::default()).unwrap();
        let mut scratch = MatchScratch::new();
        for query in [
            [0.2, -0.1],
            [5.0, 0.3],
            [9.8, 0.0],
            [0.1, 9.9],
            [4.9, 5.1],
            [-3.0, -3.0],
            [7.3, 2.2],
        ] {
            let (p64, m64) = model.predict_with_margin(&query).unwrap();
            let (p32, m32, fell_back) =
                model.predict_with_margin_f32(&query, &mut scratch).unwrap();
            assert_eq!(p64, p32, "query {query:?}");
            assert_eq!(m64.to_bits(), m32.to_bits(), "query {query:?}");
            assert!(!fell_back, "query {query:?}");
        }
        // Single-floor model: infinite margin on both paths.
        let one = ClusterModel::fit_rows(
            &[vec![0.0, 0.0], vec![1.0, 1.0]],
            &[Some(FloorId(4)), Some(FloorId(4))],
            &ClusteringConfig::default(),
        )
        .unwrap();
        let (_, m, fell_back) = one
            .predict_with_margin_f32(&[0.5, 0.5], &mut scratch)
            .unwrap();
        assert_eq!(m, f64::INFINITY);
        assert!(!fell_back);
    }

    /// When every centroid ties at f32 precision the candidate cut keeps
    /// them all, the re-score bound trips, and the full f64 sweep
    /// answers — still bit-identical, flagged as a fallback.
    #[test]
    fn f32_refined_falls_back_on_ambiguous_ranking() {
        // 10 points on a tiny ring around the origin, each its own
        // labelled cluster, alternating floors: every centroid is
        // within the f32 tolerance of the best for a query at the
        // centre.
        let n = 10;
        let points: Vec<Vec<f64>> = (0..n)
            .map(|i| {
                let a = i as f64 / n as f64 * std::f64::consts::TAU;
                vec![1e-4 * a.cos(), 1e-4 * a.sin()]
            })
            .collect();
        // Every point labelled + the merge constraint → 10 singleton
        // clusters.
        let labels: Vec<Option<FloorId>> = (0..n).map(|i| Some(FloorId((i % 2) as i16))).collect();
        let model = ClusterModel::fit_rows(&points, &labels, &ClusteringConfig::default()).unwrap();
        assert_eq!(model.clusters().len(), n);
        let mut scratch = MatchScratch::new();
        let query = [0.0, 0.0];
        let (p64, m64) = model.predict_with_margin(&query).unwrap();
        let (p32, m32, fell_back) = model.predict_with_margin_f32(&query, &mut scratch).unwrap();
        assert!(fell_back, "all-tied ranking must fall back");
        assert_eq!(p64, p32);
        assert_eq!(m64.to_bits(), m32.to_bits());
    }

    /// The margin probe: decisive exactly when the different-floor
    /// runner-up is `(1 + ratio)×` the best squared distance away;
    /// `ratio <= 0` never decisive; single-floor models always.
    #[test]
    fn margin_decisive_thresholds() {
        let (points, labels) = three_floor_setup();
        let model = ClusterModel::fit_rows(&points, &labels, &ClusteringConfig::default()).unwrap();
        let mut scratch = MatchScratch::new();
        // Mid-blob: huge margin — decisive at any reasonable ratio.
        assert!(model.margin_decisive(&[0.0, 0.0], 1.0, &mut scratch));
        // Equidistant between two floors: never decisive.
        assert!(!model.margin_decisive(&[5.0, 0.0], 0.5, &mut scratch));
        // ratio 0 is the never-decisive guard even mid-blob.
        assert!(!model.margin_decisive(&[0.0, 0.0], 0.0, &mut scratch));
        // Wrong dimension and non-finite rows are never decisive.
        assert!(!model.margin_decisive(&[0.0], 1.0, &mut scratch));
        assert!(!model.margin_decisive(&[f32::NAN, 0.0], 1.0, &mut scratch));
        // Single-floor model: always decisive at positive ratio.
        let one = ClusterModel::fit_rows(
            &[vec![0.0, 0.0]],
            &[Some(FloorId(1))],
            &ClusteringConfig::default(),
        )
        .unwrap();
        assert!(one.margin_decisive(&[9.0, 9.0], 10.0, &mut scratch));
    }

    /// The flat-matrix entry point and the nested-rows compatibility
    /// wrapper fit identical models (same distances, same merge
    /// decisions, same centroids — the wrapper only converts storage).
    #[test]
    fn fit_rows_equals_flat_fit() {
        let (points, labels) = three_floor_setup();
        let nested =
            ClusterModel::fit_rows(&points, &labels, &ClusteringConfig::default()).unwrap();
        let flat = ClusterModel::fit(
            &RowMatrix::from_rows(&points),
            &labels,
            &ClusteringConfig::default(),
        )
        .unwrap();
        assert_eq!(nested, flat);
    }

    /// A serde round trip rebuilds the derived flat centroid matrix, so
    /// loaded models predict bit-identically.
    #[test]
    fn serde_roundtrip_rebuilds_centroids() {
        let (points, labels) = three_floor_setup();
        let model = ClusterModel::fit_rows(&points, &labels, &ClusteringConfig::default()).unwrap();
        let json = serde_json::to_string(&model).unwrap();
        let back: ClusterModel = serde_json::from_str(&json).unwrap();
        assert_eq!(model, back);
        let q = [4.9, 5.1];
        let (a, am) = model.predict_with_margin(&q).unwrap();
        let (b, bm) = back.predict_with_margin(&q).unwrap();
        assert_eq!(a, b);
        assert_eq!(am.to_bits(), bm.to_bits());
    }

    #[test]
    fn parallel_fit_is_identical_to_serial() {
        let (points, labels) = three_floor_setup();
        let serial =
            ClusterModel::fit_rows(&points, &labels, &ClusteringConfig::default()).unwrap();
        let cfg = ClusteringConfig {
            threads: 4,
            ..Default::default()
        };
        let parallel = ClusterModel::fit_rows(&points, &labels, &cfg).unwrap();
        assert_eq!(serial.clusters(), parallel.clusters());
        assert_eq!(serial.assignment(), parallel.assignment());
    }

    #[test]
    fn history_exposed_when_requested() {
        let (points, labels) = three_floor_setup();
        let cfg = ClusteringConfig {
            record_history: true,
            ..Default::default()
        };
        let model = ClusterModel::fit_rows(&points, &labels, &cfg).unwrap();
        assert_eq!(model.history().len(), points.len() - model.clusters().len());
    }

    #[test]
    fn newick_export_is_balanced_and_complete() {
        let (points, labels) = three_floor_setup();
        let cfg = ClusteringConfig {
            record_history: true,
            ..Default::default()
        };
        let model = ClusterModel::fit_rows(&points, &labels, &cfg).unwrap();
        let newick = model.dendrogram_newick().unwrap();
        assert!(newick.ends_with(");"));
        let open = newick.matches('(').count();
        let close = newick.matches(')').count();
        assert_eq!(open, close);
        // Every leaf index appears.
        for i in 0..points.len() {
            assert!(
                newick.contains(&i.to_string()),
                "leaf {i} missing from {newick}"
            );
        }
    }

    #[test]
    fn newick_requires_history() {
        let (points, labels) = three_floor_setup();
        let model = ClusterModel::fit_rows(&points, &labels, &ClusteringConfig::default()).unwrap();
        assert_eq!(model.dendrogram_newick(), None);
    }
}
