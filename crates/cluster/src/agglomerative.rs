//! The constrained agglomerative engine.

use grafics_types::RowMatrix;
use serde::{Deserialize, Serialize};
use std::cmp::Ordering;
use std::collections::BinaryHeap;
use std::fmt;

/// Linkage criterion used for the cluster-to-cluster distance.
///
/// The paper uses group-average linkage (Eq. (11)); single and complete
/// linkage are provided for ablations. All three are maintained
/// incrementally via the Lance–Williams recurrence.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
#[non_exhaustive]
pub enum Linkage {
    /// Mean pairwise distance (UPGMA) — the paper's Eq. (11).
    #[default]
    Average,
    /// Minimum pairwise distance.
    Single,
    /// Maximum pairwise distance.
    Complete,
}

/// Configuration for [`crate::ClusterModel::fit`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ClusteringConfig {
    /// Linkage criterion.
    pub linkage: Linkage,
    /// If `true` (the paper's algorithm), two clusters that both contain a
    /// labelled sample may never merge, so the final clustering has exactly
    /// one labelled sample per cluster. If `false` (ablation), merging is
    /// unconstrained and stops when the cluster count reaches the number of
    /// labelled samples; clusters are then labelled by majority vote of
    /// their labelled members.
    pub constrained: bool,
    /// Record the merge history (needed for the Fig. 8 progression plots;
    /// costs O(n) memory).
    pub record_history: bool,
    /// Worker threads for the O(n²·d) initial dissimilarity matrix
    /// (Eq. (11) seeds every merge with all pairwise ℓ2 distances). The
    /// agglomeration itself is inherently sequential and always serial, so
    /// the fitted model is **identical for any thread count** — entries
    /// are pure functions of their two points.
    pub threads: usize,
}

impl Default for ClusteringConfig {
    fn default() -> Self {
        ClusteringConfig {
            linkage: Linkage::Average,
            constrained: true,
            record_history: false,
            threads: 1,
        }
    }
}

/// One merge event of the agglomeration, for progression visualisation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MergeStep {
    /// Surviving cluster root (an input point index).
    pub kept: usize,
    /// Absorbed cluster root.
    pub absorbed: usize,
    /// Linkage distance at which the merge happened.
    pub distance: f64,
}

/// Errors from clustering.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum ClusterError {
    /// No input points were provided.
    Empty,
    /// No point carries a label, so clusters cannot be floor-labelled.
    NoLabeledSamples,
    /// Input embeddings have inconsistent dimensions.
    DimensionMismatch {
        /// Dimension of the first point.
        expected: usize,
        /// Offending dimension encountered.
        found: usize,
    },
    /// A query embedding's dimension does not match the model.
    QueryDimensionMismatch {
        /// Model dimension.
        expected: usize,
        /// Query dimension.
        found: usize,
    },
    /// An embedding coordinate was NaN or infinite.
    NonFiniteInput,
}

impl fmt::Display for ClusterError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClusterError::Empty => write!(f, "no points to cluster"),
            ClusterError::NoLabeledSamples => {
                write!(f, "at least one labelled sample is required")
            }
            ClusterError::DimensionMismatch { expected, found } => {
                write!(
                    f,
                    "embedding dimension mismatch: expected {expected}, found {found}"
                )
            }
            ClusterError::QueryDimensionMismatch { expected, found } => {
                write!(
                    f,
                    "query dimension mismatch: expected {expected}, found {found}"
                )
            }
            ClusterError::NonFiniteInput => write!(f, "embeddings must be finite"),
        }
    }
}

impl std::error::Error for ClusterError {}

/// Heap entry: candidate merge of clusters rooted at `a` and `b`.
/// Ordered so the *smallest* distance pops first; exact distance ties
/// break by `(a, b)` so the merge order is a deterministic function of
/// the distance matrix, independent of how the heap was built
/// (historically, tied pops followed the accidental heap layout).
/// Indices and stamps are `u32` so the entry packs into 24 bytes — the
/// heap holds O(n²) of these, and sift traffic is the agglomeration's
/// main cost.
struct Candidate {
    dist: f64,
    a: u32,
    b: u32,
    /// Merge-epoch stamps; a candidate is stale if either root has since
    /// participated in a merge.
    stamp_a: u32,
    stamp_b: u32,
}

impl PartialEq for Candidate {
    fn eq(&self, other: &Self) -> bool {
        (self.dist, self.a, self.b) == (other.dist, other.a, other.b)
    }
}
impl Eq for Candidate {}
impl PartialOrd for Candidate {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Candidate {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse: min-heap on distance, lowest (a, b) first among exact
        // ties. Distances are finite by input validation, so the order
        // is total.
        other
            .dist
            .partial_cmp(&self.dist)
            .unwrap_or(Ordering::Equal)
            .then_with(|| (other.a, other.b).cmp(&(self.a, self.b)))
    }
}

/// Result of the raw agglomeration: for each input point, the root index of
/// the cluster it ended in, plus the merge history.
pub(crate) struct Agglomeration {
    pub roots: Vec<usize>,
    pub history: Vec<MergeStep>,
}

/// Runs constrained agglomerative clustering over a dense distance matrix.
///
/// `labeled[i]` marks points that carry a floor label. Returns the root
/// assignment once no further merge is allowed (constrained mode) or the
/// cluster count reaches `stop_at` (unconstrained mode).
pub(crate) fn agglomerate(
    dist: &mut DistanceMatrix,
    labeled: &[bool],
    config: &ClusteringConfig,
    stop_at: usize,
) -> Agglomeration {
    let n = labeled.len();
    let mut parent: Vec<usize> = (0..n).collect();
    let mut size: Vec<f64> = vec![1.0; n];
    let mut has_label: Vec<bool> = labeled.to_vec();
    let mut active: Vec<bool> = vec![true; n];
    let mut stamp: Vec<u32> = vec![0; n];
    let mut n_active = n;
    let mut history = Vec::new();

    // Seed every pair, then heapify in one O(n²) pass instead of n²/2
    // sifting pushes — the initial build is a large share of the
    // agglomeration's heap traffic.
    let mut seed = Vec::with_capacity(n * (n - 1) / 2);
    for a in 0..n {
        for b in (a + 1)..n {
            seed.push(Candidate {
                dist: dist.get(a, b),
                a: a as u32,
                b: b as u32,
                stamp_a: 0,
                stamp_b: 0,
            });
        }
    }
    let mut heap = BinaryHeap::from(seed);

    while n_active > stop_at {
        let Some(c) = heap.pop() else { break };
        let (a, b) = (c.a as usize, c.b as usize);
        if !active[a] || !active[b] || stamp[a] != c.stamp_a || stamp[b] != c.stamp_b {
            continue; // stale
        }
        if config.constrained && has_label[a] && has_label[b] {
            // Blocked pair: both sides already own a labelled sample. The
            // candidate is simply discarded; since stamps still match, it
            // would be re-pushed identical, so dropping it is permanent
            // until one side merges with something else.
            continue;
        }
        // Merge b into a.
        active[b] = false;
        parent[b] = a;
        has_label[a] = has_label[a] || has_label[b];
        stamp[a] += 1;
        n_active -= 1;
        if config.record_history {
            history.push(MergeStep {
                kept: a,
                absorbed: b,
                distance: c.dist,
            });
        }

        // Lance–Williams update of row a against every other active root.
        for k in 0..n {
            if k == a || k == b || !active[k] {
                continue;
            }
            let dka = dist.get(k, a);
            let dkb = dist.get(k, b);
            let new = match config.linkage {
                Linkage::Average => (size[a] * dka + size[b] * dkb) / (size[a] + size[b]),
                Linkage::Single => dka.min(dkb),
                Linkage::Complete => dka.max(dkb),
            };
            dist.set(k, a, new);
            heap.push(Candidate {
                dist: new,
                a: a.min(k) as u32,
                b: a.max(k) as u32,
                stamp_a: stamp[a.min(k)],
                stamp_b: stamp[a.max(k)],
            });
        }
        size[a] += size[b];
    }

    // Path-compress roots.
    let mut roots = vec![0usize; n];
    for (i, root) in roots.iter_mut().enumerate() {
        let mut r = i;
        while parent[r] != r {
            r = parent[r];
        }
        // compress
        let mut cur = i;
        while parent[cur] != r {
            let next = parent[cur];
            parent[cur] = r;
            cur = next;
        }
        *root = r;
    }
    Agglomeration { roots, history }
}

/// Offset of row `a`'s first entry in the condensed matrix.
#[inline]
fn condensed_offset(a: usize) -> usize {
    a * (a - 1) / 2
}

/// Rows of the b-axis kept resident per tile: 64 rows × 64 dims × 8 B =
/// 32 KiB at the largest benched dimension — sized so one transposed
/// b-tile stays L1-hot while every a-row above it streams past once.
const TILE_B: usize = 64;

/// Fills rows `row_range` of the condensed lower-triangular matrix,
/// cache-blocked and lane-parallel: the b-axis is processed in
/// [`TILE_B`]-row tiles that are **transposed to coordinate-major**
/// scratch once per tile, so the inner loop updates `width` independent
/// per-pair accumulators from *contiguous* memory — the form the
/// autovectorizer turns into packed `f64` FMA/sqrt lanes. Per-pair math
/// is exactly the historical sequential `Σ (x−y)²` (ascending `d`)
/// followed by one `sqrt` — the lanes are different *pairs*, never a
/// reassociated reduction — so every entry is bit-identical to the
/// row-by-row build (and to any thread count).
/// `chunk` must start at the condensed offset of `row_range.start`.
fn fill_rows(points: &RowMatrix<f64>, row_range: std::ops::Range<usize>, chunk: &mut [f64]) {
    let dim = points.cols();
    let base = condensed_offset(row_range.start);
    // Transposed tile: trans[d * w + j] = points[b0 + j][d].
    let mut trans = vec![0.0f64; TILE_B * dim];
    let mut acc = [0.0f64; TILE_B];
    let mut b0 = 0;
    // Entries (a, b) require b < a <= row_range.end - 1.
    while b0 < row_range.end - 1 {
        let w = TILE_B.min(row_range.end - 1 - b0);
        let a_start = row_range.start.max(b0 + 1);
        for (j, b) in (b0..b0 + w).enumerate() {
            let row = points.row(b);
            for d in 0..dim {
                trans[d * w + j] = row[d];
            }
        }
        for a in a_start..row_range.end {
            let width = (b0 + w).min(a) - b0;
            let row_a = points.row(a);
            acc[..width].fill(0.0);
            for (d, &x) in row_a.iter().enumerate() {
                let lane = &trans[d * w..d * w + width];
                for (slot, &t) in acc[..width].iter_mut().zip(lane) {
                    let diff = x - t;
                    *slot += diff * diff;
                }
            }
            let start = condensed_offset(a) - base + b0;
            for (slot, &sq) in chunk[start..start + width].iter_mut().zip(&acc[..width]) {
                *slot = sq.sqrt();
            }
        }
        b0 += w;
    }
}

/// The condensed (lower-triangular, row-major) pairwise ℓ2 dissimilarity
/// matrix of Eq. (11): entry `a*(a-1)/2 + b` holds `‖points[a] −
/// points[b]‖₂` for `b < a`. The input is the workspace's contiguous
/// [`RowMatrix`] (one flat buffer, no per-row pointer chasing), and the
/// build is cache-blocked (see [`fill_rows`]) — per-pair math unchanged,
/// so entries are bit-identical to the historical row-by-row build.
///
/// With `threads >= 2` the rows are partitioned into contiguous bands of
/// roughly equal entry counts and computed on a scoped worker pool. Every
/// entry is a pure function of its two points, so the output is identical
/// for any thread count.
#[must_use]
pub fn dissimilarity_matrix(points: &RowMatrix<f64>, threads: usize) -> Vec<f64> {
    let n = points.rows();
    if n < 2 {
        return Vec::new();
    }
    let mut data = vec![0.0; n * (n - 1) / 2];
    // Below ~128 points the matrix is a few thousand entries and thread
    // spawn overhead dominates; keep it serial.
    if threads <= 1 || n < 128 {
        fill_rows(points, 1..n, &mut data);
        return data;
    }

    // Partition rows so every band has ~equal entries. Row `a` contributes
    // `a` entries, so band boundaries follow sqrt-spaced row indices.
    let workers = threads.min(n - 1);
    let total = data.len();
    let mut bands: Vec<(std::ops::Range<usize>, &mut [f64])> = Vec::with_capacity(workers);
    let mut rest = data.as_mut_slice();
    let mut row = 1usize;
    for w in 0..workers {
        let target = total * (w + 1) / workers;
        let mut end_row = row;
        // First row of band w starts at offset row*(row-1)/2; advance until
        // the cumulative entry count reaches this band's share.
        while end_row < n && end_row * (end_row + 1) / 2 <= target {
            end_row += 1;
        }
        let end_row = if w == workers - 1 {
            n
        } else {
            end_row.max(row)
        };
        let band_len = end_row * (end_row - 1) / 2 - row * (row - 1) / 2;
        let (chunk, tail) = rest.split_at_mut(band_len);
        rest = tail;
        bands.push((row..end_row, chunk));
        row = end_row;
    }

    rayon::scope(|scope| {
        for (rows, chunk) in bands {
            scope.spawn(move |_| fill_rows(points, rows, chunk));
        }
    });
    data
}

/// Lower-triangular dense distance matrix over `n` points, `f64`.
pub(crate) struct DistanceMatrix {
    n: usize,
    data: Vec<f64>,
}

impl DistanceMatrix {
    /// Computes all pairwise Euclidean distances on `threads` workers.
    pub(crate) fn from_points(points: &RowMatrix<f64>, threads: usize) -> Self {
        DistanceMatrix {
            n: points.rows(),
            data: dissimilarity_matrix(points, threads),
        }
    }

    #[inline]
    fn offset(&self, a: usize, b: usize) -> usize {
        debug_assert!(a != b && a < self.n && b < self.n);
        let (hi, lo) = if a > b { (a, b) } else { (b, a) };
        hi * (hi - 1) / 2 + lo
    }

    #[inline]
    pub(crate) fn get(&self, a: usize, b: usize) -> f64 {
        self.data[self.offset(a, b)]
    }

    #[inline]
    pub(crate) fn set(&mut self, a: usize, b: usize, v: f64) {
        let o = self.offset(a, b);
        self.data[o] = v;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use grafics_types::kernels::euclidean_f64;

    fn pts(coords: &[(f64, f64)]) -> RowMatrix<f64> {
        let mut m = RowMatrix::with_cols(2);
        for &(x, y) in coords {
            m.push_row(&[x, y]);
        }
        m
    }

    #[test]
    fn distance_matrix_symmetric_access() {
        let p = pts(&[(0.0, 0.0), (3.0, 4.0), (6.0, 8.0)]);
        let m = DistanceMatrix::from_points(&p, 1);
        assert!((m.get(0, 1) - 5.0).abs() < 1e-12);
        assert!((m.get(1, 0) - 5.0).abs() < 1e-12);
        assert!((m.get(0, 2) - 10.0).abs() < 1e-12);
    }

    #[test]
    fn constrained_two_blobs() {
        let p = pts(&[(0.0, 0.0), (0.1, 0.0), (10.0, 0.0), (10.1, 0.0)]);
        let labeled = vec![true, false, true, false];
        let mut dist = DistanceMatrix::from_points(&p, 1);
        let agg = agglomerate(&mut dist, &labeled, &ClusteringConfig::default(), 0);
        assert_eq!(agg.roots[0], agg.roots[1]);
        assert_eq!(agg.roots[2], agg.roots[3]);
        assert_ne!(agg.roots[0], agg.roots[2]);
    }

    #[test]
    fn labeled_pair_never_merges_even_when_close() {
        let p = pts(&[(0.0, 0.0), (0.001, 0.0)]);
        let labeled = vec![true, true];
        let mut dist = DistanceMatrix::from_points(&p, 1);
        let agg = agglomerate(&mut dist, &labeled, &ClusteringConfig::default(), 0);
        assert_ne!(agg.roots[0], agg.roots[1]);
    }

    #[test]
    fn unconstrained_stops_at_target_count() {
        let p = pts(&[(0.0, 0.0), (0.1, 0.0), (5.0, 0.0), (5.1, 0.0), (10.0, 0.0)]);
        let labeled = vec![true, true, false, false, false];
        let cfg = ClusteringConfig {
            constrained: false,
            ..Default::default()
        };
        let mut dist = DistanceMatrix::from_points(&p, 1);
        let agg = agglomerate(&mut dist, &labeled, &cfg, 2);
        let mut roots: Vec<usize> = agg.roots.clone();
        roots.sort_unstable();
        roots.dedup();
        assert_eq!(roots.len(), 2);
    }

    #[test]
    fn history_recorded_in_merge_order() {
        let p = pts(&[(0.0, 0.0), (1.0, 0.0), (2.0, 0.0), (50.0, 0.0)]);
        let labeled = vec![true, false, false, true];
        let cfg = ClusteringConfig {
            record_history: true,
            ..Default::default()
        };
        let mut dist = DistanceMatrix::from_points(&p, 1);
        let agg = agglomerate(&mut dist, &labeled, &cfg, 0);
        assert_eq!(agg.history.len(), 2);
        assert!(agg.history[0].distance <= agg.history[1].distance);
    }

    #[test]
    fn average_linkage_lance_williams_matches_naive() {
        // Irregular points; verify the incrementally maintained average
        // linkage equals the brute-force mean pairwise distance at the
        // first non-trivial merge.
        let p = pts(&[(0.0, 0.0), (1.0, 0.0), (4.0, 0.0), (9.0, 3.0)]);
        let labeled = vec![false; 4];
        let cfg = ClusteringConfig {
            record_history: true,
            constrained: false,
            ..Default::default()
        };
        let mut dist = DistanceMatrix::from_points(&p, 1);
        let agg = agglomerate(&mut dist, &labeled, &cfg, 2);
        // First merge: {0},{1} at distance 1. Second merge candidates:
        // d({0,1},{2}) = (4+3)/2 = 3.5 ; d({0,1},{3}) = (sqrt(90)+sqrt(73))/2 ≈ 9.02
        // d({2},{3}) = sqrt(25+9) ≈ 5.83 → expect {0,1}+{2} at 3.5.
        assert_eq!(agg.history[0].distance, 1.0);
        assert!((agg.history[1].distance - 3.5).abs() < 1e-9);
    }

    #[test]
    fn parallel_dissimilarity_matches_serial_exactly() {
        // Deterministic pseudo-random points, enough to cross the n >= 128
        // parallel threshold.
        let points = RowMatrix::from_rows(
            &(0..200)
                .map(|i| {
                    (0..8)
                        .map(|d| (((i * 31 + d * 17) % 97) as f64).sin() * 10.0)
                        .collect()
                })
                .collect::<Vec<Vec<f64>>>(),
        );
        let serial = dissimilarity_matrix(&points, 1);
        for threads in [2, 3, 4, 7] {
            let parallel = dissimilarity_matrix(&points, threads);
            assert_eq!(serial, parallel, "threads={threads} diverged from serial");
        }
        assert_eq!(serial.len(), 200 * 199 / 2);
    }

    /// The cache-blocked build must be bit-identical to the plain
    /// row-by-row reference at every size that exercises tile
    /// boundaries (partial tiles, exact multiples, and the 4-pair tail).
    #[test]
    fn blocked_build_matches_rowwise_reference_bitwise() {
        for (n, dim) in [
            (3usize, 2usize),
            (17, 3),
            (64, 8),
            (65, 8),
            (130, 33),
            (200, 5),
        ] {
            let points = RowMatrix::from_rows(
                &(0..n)
                    .map(|i| {
                        (0..dim)
                            .map(|d| (((i * 29 + d * 13) % 89) as f64 * 0.37).sin() * 4.0)
                            .collect()
                    })
                    .collect::<Vec<Vec<f64>>>(),
            );
            let blocked = dissimilarity_matrix(&points, 1);
            let mut reference = vec![0.0; n * (n - 1) / 2];
            let mut idx = 0;
            for a in 1..n {
                for b in 0..a {
                    reference[idx] = euclidean_f64(points.row(a), points.row(b));
                    idx += 1;
                }
            }
            assert_eq!(blocked, reference, "n={n} dim={dim}");
        }
    }

    #[test]
    fn dissimilarity_degenerate_inputs() {
        assert!(dissimilarity_matrix(&RowMatrix::from_rows(&[]), 4).is_empty());
        assert!(dissimilarity_matrix(&RowMatrix::from_rows(&[vec![1.0, 2.0]]), 4).is_empty());
        let two = dissimilarity_matrix(&RowMatrix::from_rows(&[vec![0.0, 0.0], vec![3.0, 4.0]]), 4);
        assert_eq!(two, vec![5.0]);
    }

    #[test]
    fn single_and_complete_linkage() {
        let p = pts(&[(0.0, 0.0), (1.0, 0.0), (3.0, 0.0)]);
        let labeled = vec![false; 3];
        for (linkage, expected_second) in [(Linkage::Single, 2.0), (Linkage::Complete, 3.0)] {
            let cfg = ClusteringConfig {
                linkage,
                constrained: false,
                record_history: true,
                ..Default::default()
            };
            let mut dist = DistanceMatrix::from_points(&p, 1);
            let agg = agglomerate(&mut dist, &labeled, &cfg, 1);
            assert_eq!(agg.history[0].distance, 1.0);
            assert!(
                (agg.history[1].distance - expected_second).abs() < 1e-9,
                "{linkage:?}: got {}",
                agg.history[1].distance
            );
        }
    }
}
