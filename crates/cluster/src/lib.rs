//! Proximity-based hierarchical clustering with the one-label-per-cluster
//! constraint (§IV-C of the GRAFICS paper), plus nearest-centroid floor
//! prediction (§V-B).
//!
//! Every embedding starts as its own cluster. The two closest clusters are
//! merged repeatedly — *unless both already contain a floor-labelled
//! sample*, in which case that pair may never merge. The process stops when
//! every cluster contains exactly one labelled sample; the cluster inherits
//! that sample's floor. Distance between clusters is the average pairwise
//! ℓ2 distance (Eq. (11)), maintained incrementally via the Lance–Williams
//! recurrence, giving O(n² log n) total time.
//!
//! The O(n²·d) *initial* dissimilarity matrix — the dominant cost at the
//! embedding dimensions the paper uses — runs over the workspace's flat
//! [`grafics_types::RowMatrix`] with cache-blocked tiling, and can be
//! built on a worker pool via [`ClusteringConfig::threads`] (or directly
//! through [`dissimilarity_matrix`]); the fitted model is bit-identical
//! for any thread count and to the historical nested-`Vec` build.
//! Prediction compares squared distances and pays the `sqrt` only for
//! winners; [`MatchScratch`] lets serving sessions reuse the candidate
//! buffers across a batch.
//!
//! # Examples
//!
//! ```
//! use grafics_cluster::{ClusteringConfig, ClusterModel};
//! use grafics_types::{FloorId, RowMatrix};
//!
//! // Two well-separated blobs; one labelled point in each.
//! let points = RowMatrix::from_rows(&[
//!     vec![0.0, 0.0], vec![0.1, 0.0], vec![0.0, 0.1],   // floor 0
//!     vec![5.0, 5.0], vec![5.1, 5.0], vec![5.0, 5.1],   // floor 1
//! ]);
//! let labels = vec![
//!     Some(FloorId(0)), None, None,
//!     Some(FloorId(1)), None, None,
//! ];
//! let model = ClusterModel::fit(&points, &labels, &ClusteringConfig::default()).unwrap();
//! assert_eq!(model.clusters().len(), 2);
//! assert_eq!(model.predict(&[0.05, 0.05]).unwrap().floor, FloorId(0));
//! assert_eq!(model.predict(&[4.9, 5.2]).unwrap().floor, FloorId(1));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod agglomerative;
mod model;

pub use agglomerative::{dissimilarity_matrix, ClusterError, ClusteringConfig, Linkage, MergeStep};
pub use model::{Cluster, ClusterModel, MatchPrecision, MatchScratch, Prediction};
