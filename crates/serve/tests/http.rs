//! End-to-end contracts of the network front end: HTTP responses are
//! bit-identical to the in-process serving engine at equal seeds,
//! concurrent clients see one consistent answer, oversized/malformed
//! requests are rejected with the right statuses, and the maintenance
//! daemon publishes absorbed records without any client calling
//! `/v1/publish`.

use grafics_core::{
    DurabilityPolicy, FleetManifest, Grafics, GraficsConfig, GraficsFleet, MaintenancePolicy,
    RetentionPolicy, Router, RouterKind,
};
use grafics_data::BuildingModel;
use grafics_serve::{
    AbsorbBody, BatchBody, HealthBody, HttpClient, HttpServer, PredictionBody, PublishBody,
    RunningServer, ServeConfig,
};
use grafics_types::{BuildingId, SignalRecord};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::sync::OnceLock;
use std::time::{Duration, Instant};

type Fixture = (Vec<(BuildingId, Grafics)>, Vec<SignalRecord>);

/// Two trained buildings plus an interleaved held-out query stream,
/// trained once and cloned per test.
fn fixture() -> &'static Fixture {
    static FIXTURE: OnceLock<Fixture> = OnceLock::new();
    FIXTURE.get_or_init(|| {
        let mut models = Vec::new();
        let mut queries: Vec<(usize, SignalRecord)> = Vec::new();
        for (i, name) in ["net-a", "net-b"].iter().enumerate() {
            let mut rng = ChaCha8Rng::seed_from_u64(300 + i as u64);
            let ds = BuildingModel::office(name, 2)
                .with_records_per_floor(30)
                .simulate(&mut rng);
            let split = ds.split(0.7, &mut rng).unwrap();
            let train = split.train.with_label_budget(4, &mut rng);
            let model = Grafics::train(&train, &GraficsConfig::fast(), &mut rng).unwrap();
            models.push((BuildingId(i as u32), model));
            for r in split.test.samples().iter().map(|s| s.record.clone()) {
                queries.push((i, r));
            }
        }
        queries.sort_by_key(|(i, r)| (r.len(), *i, r.strongest().mac));
        (models, queries.into_iter().map(|(_, r)| r).collect())
    })
}

fn build_fleet() -> GraficsFleet {
    let (models, _) = fixture();
    let mut fleet = GraficsFleet::new();
    for (id, model) in models {
        fleet.add_shard(*id, model.clone()).unwrap();
    }
    fleet
}

fn spawn(fleet: GraficsFleet, config: ServeConfig) -> RunningServer {
    HttpServer::bind(fleet, "127.0.0.1:0", config)
        .unwrap()
        .spawn()
        .unwrap()
}

fn records_json(records: &[SignalRecord]) -> String {
    serde_json::to_string(&records.to_vec()).unwrap()
}

/// Acceptance: an `/v1/infer_batch` response is bit-identical — floors,
/// buildings, distances, margins, down to the float bits — to the
/// in-process `GraficsFleet::serve_batch` at the same seed.
#[test]
fn batch_is_bit_identical_to_in_process_serve_batch() {
    let (_, queries) = fixture();
    let reference = build_fleet().serve_batch(queries, 77, 1);

    let server = spawn(build_fleet(), ServeConfig::default());
    let mut client = HttpClient::connect(server.addr()).unwrap();
    let body = format!(
        "{{\"records\":{},\"seed\":77,\"threads\":2}}",
        records_json(queries)
    );
    let (status, response) = client.post("/v1/infer_batch", &body).unwrap();
    assert_eq!(status, 200, "{response}");
    let batch: BatchBody = serde_json::from_str(&response).unwrap();
    assert_eq!(batch.predictions.len(), reference.len());
    assert!(batch.served * 10 >= queries.len() * 9, "{}", batch.served);

    for (i, (wire, local)) in batch.predictions.iter().zip(&reference).enumerate() {
        match (wire, local) {
            (Some(w), Some(l)) => {
                assert_eq!(w.building, l.building.0, "record {i}");
                assert_eq!(w.floor, l.floor.0, "record {i}");
                assert_eq!(
                    w.distance.to_bits(),
                    l.distance.to_bits(),
                    "record {i}: distance must survive the JSON hop bit-exactly"
                );
                assert_eq!(
                    w.margin
                        .expect("two-floor shard has a finite margin")
                        .to_bits(),
                    l.margin.to_bits(),
                    "record {i}"
                );
                assert!(!w.fallback, "record {i}");
            }
            (None, None) => {}
            _ => panic!("record {i}: presence differs between HTTP and in-process"),
        }
    }
    server.shutdown().unwrap();
}

/// `/v1/infer` is the one-record batch: same stream as
/// `serve_batch(&[r], seed, 1)`.
#[test]
fn single_infer_matches_one_record_batch() {
    let (_, queries) = fixture();
    let fleet = build_fleet();
    let server = spawn(build_fleet(), ServeConfig::default());
    let mut client = HttpClient::connect(server.addr()).unwrap();
    for (i, record) in queries.iter().take(8).enumerate() {
        let reference = fleet.serve_batch(std::slice::from_ref(record), 9000 + i as u64, 1);
        let body = format!(
            "{{\"record\":{},\"seed\":{}}}",
            serde_json::to_string(record).unwrap(),
            9000 + i
        );
        let (status, response) = client.post("/v1/infer", &body).unwrap();
        match &reference[0] {
            Some(l) => {
                assert_eq!(status, 200, "{response}");
                let w: PredictionBody = serde_json::from_str(&response).unwrap();
                assert_eq!(w.building, l.building.0);
                assert_eq!(w.floor, l.floor.0);
                assert_eq!(w.distance.to_bits(), l.distance.to_bits());
            }
            None => assert_eq!(status, 422, "{response}"),
        }
    }
    server.shutdown().unwrap();
}

/// Several keep-alive clients hammering the same batch concurrently all
/// get the same bit-identical answer.
#[test]
fn concurrent_clients_get_identical_answers() {
    let (_, queries) = fixture();
    let subset: Vec<SignalRecord> = queries.iter().take(12).cloned().collect();
    let server = spawn(
        build_fleet(),
        ServeConfig {
            workers: 4,
            ..ServeConfig::default()
        },
    );
    let addr = server.addr();
    let body = format!("{{\"records\":{},\"seed\":5}}", records_json(&subset));

    let answers: Vec<String> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let body = &body;
                scope.spawn(move || {
                    let mut client = HttpClient::connect(addr).unwrap();
                    let mut last = String::new();
                    for _ in 0..3 {
                        let (status, response) = client.post("/v1/infer_batch", body).unwrap();
                        assert_eq!(status, 200);
                        last = response;
                    }
                    last
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    for other in &answers[1..] {
        assert_eq!(&answers[0], other, "clients must agree bit-for-bit");
    }
    let report = server.shutdown().unwrap();
    assert_eq!(report.requests, 12);
}

/// Unknown paths, wrong methods, malformed JSON, invalid records, and
/// oversized bodies map to 404/405/400/413.
#[test]
fn rejects_bad_requests_with_the_right_statuses() {
    let server = spawn(
        build_fleet(),
        ServeConfig {
            max_body_bytes: 2 * 1024,
            ..ServeConfig::default()
        },
    );
    let mut client = HttpClient::connect(server.addr()).unwrap();

    let (status, body) = client.get("/v1/nope").unwrap();
    assert_eq!(status, 404, "{body}");
    let (status, body) = client.get("/v1/infer").unwrap();
    assert_eq!(status, 405, "{body}");
    let (status, body) = client.post("/v1/infer", "{not json").unwrap();
    assert_eq!(status, 400, "{body}");
    let (status, body) = client.post("/v1/infer", "{\"seed\":1}").unwrap();
    assert_eq!(status, 400, "{body}"); // missing record
    let (status, body) = client
        .post("/v1/infer", "{\"record\":{\"readings\":[]}}")
        .unwrap();
    assert_eq!(status, 400, "{body}"); // empty record violates invariants
    let (status, body) = client
        .post(
            "/v1/infer",
            "{\"record\":{\"readings\":[{\"mac\":1,\"rssi\":-500.0}]}}",
        )
        .unwrap();
    assert_eq!(status, 400, "{body}"); // RSSI out of range

    // Oversized body: rejected before parsing; the server closes the
    // connection after answering.
    let huge = format!("{{\"pad\":\"{}\"}}", "x".repeat(4 * 1024));
    let (status, body) = client.post("/v1/infer", &huge).unwrap();
    assert_eq!(status, 413, "{body}");

    // A record overlapping no building: well-formed but unservable.
    let mut client = HttpClient::connect(server.addr()).unwrap();
    let (status, body) = client
        .post(
            "/v1/infer",
            "{\"record\":{\"readings\":[{\"mac\":999999999,\"rssi\":-50.0}]}}",
        )
        .unwrap();
    assert_eq!(status, 422, "{body}");
    server.shutdown().unwrap();
}

/// Absorb routes into the write side (readers unaffected), manual
/// publish exposes it, and `/v1/stat` reports the shared `FleetStats`.
#[test]
fn absorb_publish_stat_round_trip() {
    let (_, queries) = fixture();
    let server = spawn(build_fleet(), ServeConfig::default());
    let mut client = HttpClient::connect(server.addr()).unwrap();

    let (status, body) = client.get("/v1/stat").unwrap();
    assert_eq!(status, 200);
    let stats: grafics_core::FleetStats = serde_json::from_str(&body).unwrap();
    assert_eq!(stats.shards.len(), 2);
    let before = stats.shards[0].published_records;

    let mut absorbed = 0u32;
    for record in queries.iter().take(6) {
        let body = format!("{{\"record\":{}}}", serde_json::to_string(record).unwrap());
        let (status, response) = client.post("/v1/absorb", &body).unwrap();
        if status == 200 {
            let a: AbsorbBody = serde_json::from_str(&response).unwrap();
            assert!(a.pending > 0);
            absorbed += 1;
        }
    }
    assert!(absorbed >= 4, "most held-out records absorb: {absorbed}");

    // Readers still see the pre-absorb snapshot; pending is visible.
    let (_, body) = client.get("/v1/stat").unwrap();
    let stats: grafics_core::FleetStats = serde_json::from_str(&body).unwrap();
    assert_eq!(stats.shards[0].published_records, before);
    assert_eq!(stats.total_pending() as u32, absorbed);

    let (status, body) = client.post("/v1/publish", "").unwrap();
    assert_eq!(status, 200);
    let published: PublishBody = serde_json::from_str(&body).unwrap();
    assert_eq!(published.epochs.len(), 2);
    assert!(published.epochs.iter().all(|e| e.epoch == 1));

    let (_, body) = client.get("/v1/stat").unwrap();
    let stats: grafics_core::FleetStats = serde_json::from_str(&body).unwrap();
    assert_eq!(stats.total_pending(), 0);
    server.shutdown().unwrap();
}

/// `GET /metrics` answers the Prometheus-style plaintext counters,
/// consistent with the same run's request/absorb/publish activity and
/// broken down per endpoint.
#[test]
fn metrics_exposes_counters_in_plaintext() {
    let (_, queries) = fixture();
    let server = spawn(build_fleet(), ServeConfig::default());
    let mut client = HttpClient::connect(server.addr()).unwrap();

    // Drive some traffic: 3 infers (one per seed), 1 absorb, 1 publish.
    for seed in 0..3 {
        let body = format!(
            "{{\"record\":{},\"seed\":{seed}}}",
            serde_json::to_string(&queries[0]).unwrap()
        );
        let (status, _) = client.post("/v1/infer", &body).unwrap();
        assert_eq!(status, 200);
    }
    let body = format!(
        "{{\"record\":{}}}",
        serde_json::to_string(&queries[0]).unwrap()
    );
    let (status, _) = client.post("/v1/absorb", &body).unwrap();
    assert_eq!(status, 200);
    let (status, _) = client.post("/v1/publish", "").unwrap();
    assert_eq!(status, 200);

    let (status, text) = client.get("/metrics").unwrap();
    assert_eq!(status, 200, "{text}");
    // Plaintext exposition, not JSON.
    assert!(!text.trim_start().starts_with('{'), "{text}");
    let gauge = |name: &str| -> f64 {
        text.lines()
            .find(|l| l.starts_with(name) && !l.starts_with('#'))
            .unwrap_or_else(|| panic!("{name} missing from:\n{text}"))
            .rsplit(' ')
            .next()
            .unwrap()
            .parse()
            .unwrap()
    };
    // 3 infers + 1 absorb + 1 publish handled before this scrape.
    assert!(gauge("grafics_requests_total") >= 5.0);
    assert_eq!(gauge("grafics_absorbs_total"), 1.0);
    assert_eq!(gauge("grafics_publish_epochs_total"), 2.0); // 2 shards × epoch 1
    assert_eq!(gauge("grafics_shards"), 2.0);
    assert_eq!(gauge("grafics_requests{endpoint=\"infer\"}"), 3.0);
    assert_eq!(gauge("grafics_requests{endpoint=\"absorb\"}"), 1.0);
    assert_eq!(gauge("grafics_requests{endpoint=\"publish\"}"), 1.0);
    // Wrong method on /metrics is a 405, like every known route.
    let (status, _) = client.post("/metrics", "{}").unwrap();
    assert_eq!(status, 405);
    server.shutdown().unwrap();
}

/// `/metrics` exposes the serving refinement counters
/// (`grafics_serve_refine_samples_total`, `grafics_serve_early_stops_total`,
/// `grafics_match_f32_fallbacks_total`); under an adaptive budget +
/// f32-matching [`ServingPolicy`] they advance as queries flow, and the
/// HTTP answers stay bit-identical to the in-process fleet under the
/// same policy.
#[test]
fn metrics_exposes_serving_refinement_counters() {
    use grafics_core::{MatchPrecision, OnlineBudget, ServingPolicy};
    let policy = ServingPolicy {
        budget: Some(OnlineBudget::Adaptive {
            max_spe: 120,
            min_spe: 10,
            margin_ratio: 0.25,
        }),
        precision: Some(MatchPrecision::F32Refined),
    };
    let (_, queries) = fixture();
    let mut reference_fleet = build_fleet();
    reference_fleet.set_serving(policy);
    let reference = reference_fleet.serve_batch(queries, 55, 1);

    let mut fleet = build_fleet();
    fleet.set_serving(policy);
    let server = spawn(fleet, ServeConfig::default());
    let mut client = HttpClient::connect(server.addr()).unwrap();
    let body = format!(
        "{{\"records\":{},\"seed\":55,\"threads\":2}}",
        records_json(queries)
    );
    let (status, response) = client.post("/v1/infer_batch", &body).unwrap();
    assert_eq!(status, 200, "{response}");
    let batch: BatchBody = serde_json::from_str(&response).unwrap();
    for (i, (wire, local)) in batch.predictions.iter().zip(&reference).enumerate() {
        match (wire, local) {
            (Some(w), Some(l)) => {
                assert_eq!(w.floor, l.floor.0, "record {i}");
                assert_eq!(
                    w.distance.to_bits(),
                    l.distance.to_bits(),
                    "record {i}: adaptive+f32 serving must survive the HTTP hop bit-exactly"
                );
            }
            (None, None) => {}
            _ => panic!("record {i}: presence differs between HTTP and in-process"),
        }
    }

    let (status, text) = client.get("/metrics").unwrap();
    assert_eq!(status, 200, "{text}");
    let counter = |name: &str| -> u64 {
        text.lines()
            .find_map(|l| l.strip_prefix(&format!("{name} ")))
            .unwrap_or_else(|| panic!("{name} missing from:\n{text}"))
            .parse()
            .unwrap()
    };
    let refined = counter("grafics_serve_refine_samples_total");
    let stops = counter("grafics_serve_early_stops_total");
    // Presence is the contract for the fallback counter; office corpora
    // rarely trip it.
    let _ = counter("grafics_match_f32_fallbacks_total");
    assert!(refined > 0, "served queries must account their SGD samples");
    assert!(
        stops > 0,
        "well-separated office floors must early-stop some queries at ratio 0.25"
    );
    server.shutdown().unwrap();
}

/// One `/metrics` scrape pins the full gauge/counter surface the drift
/// tooling consumes: the floor-margin quantile gauges
/// (`grafics_margin_p10`/`grafics_margin_p50`, fed by every served
/// query, windowed by the manifest's `RefreshTrigger`) alongside the
/// existing serving refinement counters — one contract, one scrape.
#[test]
fn metrics_exposes_margin_gauges_alongside_serve_counters() {
    use grafics_types::RefreshTrigger;
    let (_, queries) = fixture();
    let mut fleet = build_fleet();
    fleet.set_maintenance(MaintenancePolicy {
        refresh_trigger: Some(RefreshTrigger::MarginDrop {
            window: 64,
            ratio: 0.8,
        }),
        ..MaintenancePolicy::default()
    });
    let server = spawn(fleet, ServeConfig::default());
    let mut client = HttpClient::connect(server.addr()).unwrap();

    let gauge = |text: &str, name: &str| -> f64 {
        text.lines()
            .find_map(|l| l.strip_prefix(&format!("{name} ")))
            .unwrap_or_else(|| panic!("{name} missing from:\n{text}"))
            .parse()
            .unwrap()
    };

    // Before any serving the gauges exist and read zero — dashboards can
    // pin the names unconditionally.
    let (status, text) = client.get("/metrics").unwrap();
    assert_eq!(status, 200, "{text}");
    assert_eq!(gauge(&text, "grafics_margin_p10"), 0.0);
    assert_eq!(gauge(&text, "grafics_margin_p50"), 0.0);

    let body = format!(
        "{{\"records\":{},\"seed\":7,\"fallback\":true}}",
        records_json(queries)
    );
    let (status, response) = client.post("/v1/infer_batch", &body).unwrap();
    assert_eq!(status, 200, "{response}");

    let (status, text) = client.get("/metrics").unwrap();
    assert_eq!(status, 200, "{text}");
    let p10 = gauge(&text, "grafics_margin_p10");
    let p50 = gauge(&text, "grafics_margin_p50");
    assert!(p50 > 0.0, "served queries must populate the margin window");
    assert!(p10 <= p50, "p10 {p10} must not exceed p50 {p50}");
    // The serving counters ride in the same scrape.
    for name in [
        "grafics_serve_refine_samples_total",
        "grafics_serve_early_stops_total",
        "grafics_match_f32_fallbacks_total",
    ] {
        let _ = gauge(&text, name);
    }
    server.shutdown().unwrap();
}

/// Acceptance: absorbs past the configured N trigger a publish without
/// any client calling `/v1/publish` — the maintenance daemon acts on the
/// manifest's cadence.
#[test]
fn auto_publish_after_n_absorbs() {
    let (_, queries) = fixture();
    let mut fleet = build_fleet();
    fleet.set_maintenance(MaintenancePolicy {
        publish_after_absorbs: Some(3),
        publish_after_secs: None,
        refresh_every_publishes: None,
        refresh_trigger: None,
    });
    let server = spawn(
        fleet,
        ServeConfig {
            maintenance_tick: Duration::from_millis(25),
            ..ServeConfig::default()
        },
    );
    let mut client = HttpClient::connect(server.addr()).unwrap();

    // Absorb into building 0 explicitly until 3 are pending.
    let own: Vec<&SignalRecord> = queries.iter().collect();
    let mut accepted = 0;
    for record in own {
        let body = format!(
            "{{\"record\":{},\"building\":0}}",
            serde_json::to_string(record).unwrap()
        );
        let (status, _) = client.post("/v1/absorb", &body).unwrap();
        accepted += u32::from(status == 200);
        if accepted == 3 {
            break;
        }
    }
    assert_eq!(accepted, 3);

    // The daemon must publish shard 0 on its own.
    let deadline = Instant::now() + Duration::from_secs(10);
    let published = loop {
        let (_, body) = client.get("/v1/stat").unwrap();
        let stats: grafics_core::FleetStats = serde_json::from_str(&body).unwrap();
        let b0 = stats.shard(BuildingId(0)).unwrap();
        if b0.epoch >= 1 && b0.pending == 0 {
            break true;
        }
        if Instant::now() > deadline {
            break false;
        }
        std::thread::sleep(Duration::from_millis(20));
    };
    assert!(published, "daemon never published the pending absorbs");
    let report = server.shutdown().unwrap();
    assert!(report.maintenance_publishes >= 1);
    assert_eq!(report.absorbs, 3);
}

/// A single-floor shard's infinite margin travels as `null` and the
/// typed body still deserializes (`margin: None`).
#[test]
fn single_floor_margin_is_null_not_a_parse_error() {
    let mut rng = ChaCha8Rng::seed_from_u64(500);
    let ds = BuildingModel::office("solo", 1)
        .with_records_per_floor(30)
        .simulate(&mut rng);
    let split = ds.split(0.7, &mut rng).unwrap();
    let train = split.train.with_label_budget(2, &mut rng);
    let model = Grafics::train(&train, &GraficsConfig::fast(), &mut rng).unwrap();
    let mut fleet = GraficsFleet::new();
    fleet.add_shard(BuildingId(0), model).unwrap();

    let server = spawn(fleet, ServeConfig::default());
    let mut client = HttpClient::connect(server.addr()).unwrap();
    let body = format!(
        "{{\"record\":{},\"seed\":3}}",
        serde_json::to_string(&split.test.samples()[0].record).unwrap()
    );
    let (status, response) = client.post("/v1/infer", &body).unwrap();
    assert_eq!(status, 200, "{response}");
    assert!(response.contains("\"margin\":null"), "{response}");
    let parsed: PredictionBody = serde_json::from_str(&response).unwrap();
    assert_eq!(parsed.margin, None);
    assert_eq!(parsed.floor, 0);
    server.shutdown().unwrap();
}

/// A router that always declines, forcing the broadcast fallback.
struct NeverRoute;

impl Router for NeverRoute {
    fn route(
        &self,
        _snapshots: &[(BuildingId, std::sync::Arc<Grafics>)],
        _record: &SignalRecord,
    ) -> Option<BuildingId> {
        None
    }
}

/// The cross-shard fallback works over the wire: a declined record is
/// served by the best-distance shard and flagged.
#[test]
fn fallback_flag_travels_over_http() {
    let (models, queries) = fixture();
    let mut fleet = GraficsFleet::with_router(Box::new(NeverRoute));
    for (id, model) in models {
        fleet.add_shard(*id, model.clone()).unwrap();
    }
    let reference = fleet.serve_batch_with_fallback(&queries[..4], 41, 1);

    let mut served = GraficsFleet::with_router(Box::new(NeverRoute));
    for (id, model) in models {
        served.add_shard(*id, model.clone()).unwrap();
    }
    let server = spawn(served, ServeConfig::default());
    let mut client = HttpClient::connect(server.addr()).unwrap();

    // Without the flag every record is a 422 (NoRoute)…
    let body = format!(
        "{{\"record\":{},\"seed\":41}}",
        serde_json::to_string(&queries[0]).unwrap()
    );
    let (status, _) = client.post("/v1/infer", &body).unwrap();
    assert_eq!(status, 422);

    // …with it, the broadcast answer comes back flagged and matches the
    // in-process fallback batch bit-for-bit.
    let body = format!(
        "{{\"records\":{},\"seed\":41,\"fallback\":true}}",
        records_json(&queries[..4])
    );
    let (status, response) = client.post("/v1/infer_batch", &body).unwrap();
    assert_eq!(status, 200);
    let batch: BatchBody = serde_json::from_str(&response).unwrap();
    for (i, (wire, local)) in batch.predictions.iter().zip(&reference).enumerate() {
        let (Some(w), Some(l)) = (wire, local) else {
            assert_eq!(wire.is_some(), local.is_some(), "record {i}");
            continue;
        };
        assert!(w.fallback, "record {i} must be flagged");
        assert!(l.fallback, "record {i}");
        assert_eq!(w.building, l.building.0, "record {i}");
        assert_eq!(w.distance.to_bits(), l.distance.to_bits(), "record {i}");
    }
    server.shutdown().unwrap();
}

/// A fleet saved with a non-default manifest serves over HTTP with that
/// configuration after a bare `load_dir` — no runtime flags.
#[test]
fn saved_manifest_drives_the_server() {
    let dir = std::env::temp_dir().join("grafics-serve-manifest-test");
    std::fs::remove_dir_all(&dir).ok();
    {
        let mut fleet = build_fleet();
        fleet.set_retention(RetentionPolicy::FifoBudget(5));
        fleet.set_router(RouterKind::WeightedOverlap);
        fleet.set_maintenance(MaintenancePolicy {
            publish_after_absorbs: Some(2),
            publish_after_secs: None,
            refresh_every_publishes: None,
            refresh_trigger: None,
        });
        fleet.save_dir(&dir).unwrap();
    }
    let fleet = GraficsFleet::load_dir(&dir).unwrap();
    assert_eq!(
        fleet.manifest(),
        FleetManifest {
            version: grafics_core::FLEET_MANIFEST_VERSION,
            router: RouterKind::WeightedOverlap,
            retention: RetentionPolicy::FifoBudget(5),
            maintenance: MaintenancePolicy {
                publish_after_absorbs: Some(2),
                publish_after_secs: None,
                refresh_every_publishes: None,
                refresh_trigger: None,
            },
            durability: DurabilityPolicy::Off,
            serving: None,
        }
    );

    let (_, queries) = fixture();
    let server = spawn(
        fleet,
        ServeConfig {
            maintenance_tick: Duration::from_millis(25),
            ..ServeConfig::default()
        },
    );
    let mut client = HttpClient::connect(server.addr()).unwrap();
    let mut accepted = 0;
    for record in queries {
        let body = format!(
            "{{\"record\":{},\"building\":1}}",
            serde_json::to_string(record).unwrap()
        );
        let (status, _) = client.post("/v1/absorb", &body).unwrap();
        accepted += u32::from(status == 200);
        if accepted == 2 {
            break;
        }
    }
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let (_, body) = client.get("/v1/stat").unwrap();
        let stats: grafics_core::FleetStats = serde_json::from_str(&body).unwrap();
        if stats.shard(BuildingId(1)).unwrap().epoch >= 1 {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "manifest cadence never triggered a publish"
        );
        std::thread::sleep(Duration::from_millis(20));
    }
    server.shutdown().unwrap();
    std::fs::remove_dir_all(&dir).ok();
}

/// Acceptance: absorbs acknowledged over HTTP against a durable fleet
/// are journalled, survive a restart (graceful shutdown drains the WAL
/// tail), and a recovery of the directory replays exactly the
/// acknowledged records — still pending, none lost, none torn.
#[test]
fn durable_absorbs_survive_server_restart() {
    let dir = std::env::temp_dir().join("grafics-serve-durable-test");
    std::fs::remove_dir_all(&dir).ok();
    {
        let mut fleet = build_fleet();
        fleet.set_durability(DurabilityPolicy::FsyncEveryN(2));
        fleet.save_dir(&dir).unwrap();
    }
    let (fleet, report) = GraficsFleet::recover(&dir).unwrap();
    assert_eq!(report.total_replayed(), 0);

    let (_, queries) = fixture();
    let server = spawn(
        fleet,
        ServeConfig {
            seed: 99,
            ..ServeConfig::default()
        },
    );
    let mut client = HttpClient::connect(server.addr()).unwrap();
    let mut accepted = 0u64;
    for record in queries.iter() {
        let body = format!(
            "{{\"record\":{},\"building\":0}}",
            serde_json::to_string(record).unwrap()
        );
        let (status, _) = client.post("/v1/absorb", &body).unwrap();
        accepted += u64::from(status == 200);
        if accepted == 4 {
            break;
        }
    }
    assert_eq!(accepted, 4);
    server.shutdown().unwrap(); // drains and fsyncs the WAL tail

    let (recovered, report) = GraficsFleet::recover(&dir).unwrap();
    assert!(!report.any_torn());
    let shard0 = report
        .shards
        .iter()
        .find(|s| s.building == BuildingId(0))
        .unwrap();
    assert_eq!(
        shard0.watermark + shard0.replayed,
        accepted,
        "every acknowledged absorb is durable: {report:?}"
    );
    // The replayed records are back on the write side, still unpublished.
    let stats = recovered.stats();
    assert_eq!(stats.shard(BuildingId(0)).unwrap().pending as u64, accepted);
    assert_eq!(stats.shard(BuildingId(0)).unwrap().epoch, 0);
    std::fs::remove_dir_all(&dir).ok();
}

/// `/healthz` flips to 503 `degraded` while recovery is flagged in
/// progress and back to 200 `ok` once it clears.
#[test]
fn healthz_reports_degraded_during_recovery() {
    let server = HttpServer::bind(build_fleet(), "127.0.0.1:0", ServeConfig::default()).unwrap();
    let state = std::sync::Arc::clone(server.state());
    let running = server.spawn().unwrap();
    let mut client = HttpClient::connect(running.addr()).unwrap();

    let (status, body) = client.get("/healthz").unwrap();
    assert_eq!(status, 200, "{body}");
    let health: HealthBody = serde_json::from_str(&body).unwrap();
    assert!(health.ok);
    assert_eq!(health.status, "ok");

    state.set_recovering(true);
    let (status, body) = client.get("/healthz").unwrap();
    assert_eq!(status, 503, "{body}");
    let health: HealthBody = serde_json::from_str(&body).unwrap();
    assert!(!health.ok);
    assert_eq!(health.status, "degraded");

    state.set_recovering(false);
    let (status, _) = client.get("/healthz").unwrap();
    assert_eq!(status, 200);
    running.shutdown().unwrap();
}

/// `/metrics` exposes the WAL counters (appends, fsyncs, tail bytes) and
/// the recovery counter alongside the request counters.
#[test]
fn metrics_exposes_wal_and_recovery_counters() {
    let dir = std::env::temp_dir().join("grafics-serve-wal-metrics-test");
    std::fs::remove_dir_all(&dir).ok();
    {
        let mut fleet = build_fleet();
        fleet.set_durability(DurabilityPolicy::FsyncEveryN(1));
        fleet.save_dir(&dir).unwrap();
    }
    let (fleet, _) = GraficsFleet::recover(&dir).unwrap();
    let server = HttpServer::bind(fleet, "127.0.0.1:0", ServeConfig::default()).unwrap();
    let state = std::sync::Arc::clone(server.state());
    state.count_recovery();
    let running = server.spawn().unwrap();
    let mut client = HttpClient::connect(running.addr()).unwrap();

    let (_, queries) = fixture();
    let mut accepted = 0u64;
    for record in queries.iter().take(4) {
        let body = format!(
            "{{\"record\":{},\"building\":0}}",
            serde_json::to_string(record).unwrap()
        );
        let (status, _) = client.post("/v1/absorb", &body).unwrap();
        accepted += u64::from(status == 200);
    }
    assert!(accepted >= 2, "{accepted}");
    // Group commit is asynchronous: barrier on the flusher before the
    // scrape so the counters are settled.
    state.fleet().drain_wal().unwrap();

    let (status, text) = client.get("/metrics").unwrap();
    assert_eq!(status, 200, "{text}");
    let gauge = |name: &str| -> f64 {
        text.lines()
            .find(|l| l.starts_with(name) && !l.starts_with('#'))
            .unwrap_or_else(|| panic!("{name} missing from:\n{text}"))
            .rsplit(' ')
            .next()
            .unwrap()
            .parse()
            .unwrap()
    };
    assert_eq!(gauge("grafics_wal_appends_total"), accepted as f64);
    assert!(gauge("grafics_wal_fsyncs_total") >= 1.0);
    assert!(gauge("grafics_wal_tail_bytes") > 0.0);
    assert_eq!(gauge("grafics_recoveries_total"), 1.0);
    running.shutdown().unwrap();
    std::fs::remove_dir_all(&dir).ok();
}

/// Idempotent requests ride out an idle-timeout disconnect via
/// reconnect-and-retry; `/v1/absorb` on the same dead connection fails
/// fast without a single retry.
#[test]
fn idempotent_requests_retry_but_absorb_fails_fast() {
    let server = spawn(
        build_fleet(),
        ServeConfig {
            read_timeout: Duration::from_millis(100),
            ..ServeConfig::default()
        },
    );
    let mut client = HttpClient::connect(server.addr()).unwrap();
    client.set_retry_policy(2, Duration::from_millis(1));
    let (status, _) = client.get("/healthz").unwrap();
    assert_eq!(status, 200);
    assert_eq!(client.retries_performed(), 0);

    // Let the server's idle timeout close the keep-alive connection,
    // then a GET transparently reconnects and retries.
    std::thread::sleep(Duration::from_millis(300));
    let (status, _) = client.get("/healthz").unwrap();
    assert_eq!(status, 200);
    assert_eq!(
        client.retries_performed(),
        1,
        "the idle close costs exactly one retry"
    );

    // Same dead-connection scenario, but absorb must NOT be resent: the
    // request fails with the transport error and the retry counter does
    // not move.
    std::thread::sleep(Duration::from_millis(300));
    let (_, queries) = fixture();
    let body = format!(
        "{{\"record\":{}}}",
        serde_json::to_string(&queries[0]).unwrap()
    );
    let err = client.post("/v1/absorb", &body).unwrap_err();
    assert_ne!(err.kind(), std::io::ErrorKind::InvalidData, "{err}");
    assert_eq!(client.retries_performed(), 1, "absorb never retries");
    server.shutdown().unwrap();
}

/// With `access_log` configured, every handled request appends one JSON
/// line carrying endpoint, status, latency, and the answering shard.
#[test]
fn access_log_records_one_line_per_request() {
    let path = std::env::temp_dir().join("grafics-serve-access-log-test.jsonl");
    std::fs::remove_file(&path).ok();
    let server = spawn(
        build_fleet(),
        ServeConfig {
            access_log: Some(path.clone()),
            ..ServeConfig::default()
        },
    );
    let mut client = HttpClient::connect(server.addr()).unwrap();
    let (status, _) = client.get("/healthz").unwrap();
    assert_eq!(status, 200);
    let (_, queries) = fixture();
    let body = format!(
        "{{\"record\":{},\"seed\":7}}",
        serde_json::to_string(&queries[0]).unwrap()
    );
    let (status, _) = client.post("/v1/infer", &body).unwrap();
    assert_eq!(status, 200);
    server.shutdown().unwrap(); // flushes the log

    let log = std::fs::read_to_string(&path).unwrap();
    let lines: Vec<&str> = log.lines().collect();
    assert_eq!(lines.len(), 2, "{log}");
    assert!(lines[0].contains("\"endpoint\":\"/healthz\""), "{log}");
    assert!(lines[0].contains("\"status\":200"), "{log}");
    assert!(lines[0].contains("\"latency_us\":"), "{log}");
    assert!(lines[0].contains("\"shard\":null"), "{log}");
    assert!(lines[1].contains("\"endpoint\":\"/v1/infer\""), "{log}");
    assert!(lines[1].contains("\"method\":\"POST\""), "{log}");
    assert!(lines[1].contains("\"fallback\":false"), "{log}");
    // The infer line names the shard that answered.
    assert!(
        lines[1].contains("\"shard\":0") || lines[1].contains("\"shard\":1"),
        "{log}"
    );
    std::fs::remove_file(&path).ok();
}
