//! End-to-end contracts of the fault-tolerant router tier: a proxied
//! multi-process fleet answers bit-for-bit what a single process
//! holding every shard would answer; backend faults (delays, resets,
//! black holes, truncated responses, 5xx bursts, kills) degrade
//! service gracefully and recover; and absorbs are never
//! double-applied, proven by a WAL sequence audit.

use grafics_core::{
    BackendSpec, DurabilityPolicy, Grafics, GraficsConfig, GraficsFleet, RouterManifest,
};
use grafics_data::BuildingModel;
use grafics_serve::{
    AbsorbBody, BatchBody, ChaosProxy, EpochBody, Fault, HttpClient, HttpServer, PredictionBody,
    RouteTableBody, RouterConfig, RouterRunning, RouterServer, RunningServer, ServeConfig,
};
use grafics_types::{
    BackendState, BreakerPolicy, BuildingId, HealthPolicy, MacAddr, RateLimitPolicy, Reading, Rssi,
    SignalRecord,
};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::Deserialize;
use std::net::SocketAddr;
use std::sync::OnceLock;
use std::time::{Duration, Instant};

type Fixture = (Vec<(BuildingId, Grafics)>, Vec<SignalRecord>);

/// Two trained buildings plus an interleaved held-out query stream,
/// trained once and cloned per test (same fixture as `tests/http.rs`).
fn fixture() -> &'static Fixture {
    static FIXTURE: OnceLock<Fixture> = OnceLock::new();
    FIXTURE.get_or_init(|| {
        let mut models = Vec::new();
        let mut queries: Vec<(usize, SignalRecord)> = Vec::new();
        for (i, name) in ["net-a", "net-b"].iter().enumerate() {
            let mut rng = ChaCha8Rng::seed_from_u64(300 + i as u64);
            let ds = BuildingModel::office(name, 2)
                .with_records_per_floor(30)
                .simulate(&mut rng);
            let split = ds.split(0.7, &mut rng).unwrap();
            let train = split.train.with_label_budget(4, &mut rng);
            let model = Grafics::train(&train, &GraficsConfig::fast(), &mut rng).unwrap();
            models.push((BuildingId(i as u32), model));
            for r in split.test.samples().iter().map(|s| s.record.clone()) {
                queries.push((i, r));
            }
        }
        queries.sort_by_key(|(i, r)| (r.len(), *i, r.strongest().mac));
        (models, queries.into_iter().map(|(_, r)| r).collect())
    })
}

/// A fleet holding exactly one of the fixture's buildings.
fn shard_fleet(building: usize) -> GraficsFleet {
    let (models, _) = fixture();
    let (id, model) = &models[building];
    let mut fleet = GraficsFleet::new();
    fleet.add_shard(*id, model.clone()).unwrap();
    fleet
}

/// The single-process reference: both shards in one fleet.
fn full_fleet() -> GraficsFleet {
    let (models, _) = fixture();
    let mut fleet = GraficsFleet::new();
    for (id, model) in models {
        fleet.add_shard(*id, model.clone()).unwrap();
    }
    fleet
}

/// Fixture queries answered by building 0 — safe to absorb into shard 0
/// (a record sharing no MAC with the shard's graph is rejected 422).
fn building0_queries() -> &'static Vec<SignalRecord> {
    static QUERIES: OnceLock<Vec<SignalRecord>> = OnceLock::new();
    QUERIES.get_or_init(|| {
        let (_, queries) = fixture();
        let reference = full_fleet().serve_batch(queries, 7, 1);
        queries
            .iter()
            .zip(&reference)
            .filter(|(_, p)| p.as_ref().is_some_and(|p| p.building.0 == 0))
            .map(|(r, _)| r.clone())
            .collect()
    })
}

fn spawn_backend(fleet: GraficsFleet, config: ServeConfig) -> RunningServer {
    HttpServer::bind(fleet, "127.0.0.1:0", config)
        .unwrap()
        .spawn()
        .unwrap()
}

/// A router over `addrs` with test-friendly fast probing; `tweak`
/// adjusts the config (policies, timeouts) before bind.
fn router_over(addrs: &[SocketAddr], tweak: impl FnOnce(&mut RouterConfig)) -> RouterRunning {
    let mut manifest = RouterManifest::default();
    for (i, addr) in addrs.iter().enumerate() {
        manifest.backends.push(BackendSpec {
            name: format!("b{i}"),
            addr: addr.to_string(),
        });
    }
    manifest.health = HealthPolicy {
        probe_interval_ms: 25,
        probe_timeout_ms: 250,
        fail_threshold: 3,
        recover_threshold: 1,
    };
    let mut config = RouterConfig {
        manifest,
        backend_timeout: Duration::from_millis(800),
        retries: 2,
        backoff_base: Duration::from_millis(5),
        ..RouterConfig::default()
    };
    tweak(&mut config);
    RouterServer::bind(config, "127.0.0.1:0")
        .unwrap()
        .spawn()
        .unwrap()
}

fn records_json(records: &[SignalRecord]) -> String {
    serde_json::to_string(&records.to_vec()).unwrap()
}

/// One raw HTTP request over a fresh connection, returning the status
/// and the *full* response text (head + body) so tests can assert on
/// headers the pooled [`HttpClient`] does not expose.
fn raw_request(addr: SocketAddr, method: &str, path: &str, body: &str) -> (u16, String) {
    use std::io::{Read, Write};
    let mut stream = std::net::TcpStream::connect(addr).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    write!(
        stream,
        "{method} {path} HTTP/1.1\r\nHost: grafics\r\nContent-Type: application/json\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len(),
    )
    .unwrap();
    let mut text = String::new();
    stream.read_to_string(&mut text).unwrap();
    let status = text
        .split(' ')
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| panic!("unparseable response: {text}"));
    (status, text)
}

/// Asserts two wire predictions carry the same float bits.
fn assert_bits_equal(wire: &PredictionBody, local: &grafics_core::FleetPrediction, ctx: &str) {
    assert_eq!(wire.building, local.building.0, "{ctx}");
    assert_eq!(wire.floor, local.floor.0, "{ctx}");
    assert_eq!(
        wire.distance.to_bits(),
        local.distance.to_bits(),
        "{ctx}: distance must survive the proxy hop bit-exactly"
    );
    if local.margin.is_finite() {
        assert_eq!(
            wire.margin
                .expect("finite margin crosses the wire")
                .to_bits(),
            local.margin.to_bits(),
            "{ctx}"
        );
    } else {
        assert!(wire.margin.is_none(), "{ctx}");
    }
}

/// The router's `/v1/stat` rows the typed crate API does not export.
#[derive(Deserialize)]
struct RouterStat {
    backends: Vec<BackendRow>,
    degraded: bool,
}

#[derive(Deserialize)]
struct BackendRow {
    name: String,
    state: String,
    breaker_open: bool,
}

#[derive(Deserialize)]
struct RouterPublish {
    epochs: Vec<EpochBody>,
    degraded: bool,
}

#[derive(Deserialize)]
struct WalSeq {
    seq: u64,
}

/// A record whose MACs exist in no building — the NoRoute case.
fn alien_record() -> SignalRecord {
    SignalRecord::new(
        (0..3)
            .map(|i| Reading {
                mac: MacAddr::from_u64(0x00DE_AD00_0000 + i),
                rssi: Rssi::new(-55.0 - i as f64).unwrap(),
            })
            .collect(),
    )
    .unwrap()
}

/// Acceptance (tentpole): a fault-free proxied fleet — two backend
/// processes, one shard each, behind a router that owns no models — is
/// bit-identical to the single process on `/v1/infer_batch` and
/// `/v1/infer`, merges `/v1/stat` and `/v1/route_table`, and reports
/// itself healthy.
#[test]
fn proxied_fleet_is_bit_identical_to_single_process() {
    let (_, queries) = fixture();
    let reference = full_fleet().serve_batch(queries, 77, 1);

    let backend_a = spawn_backend(shard_fleet(0), ServeConfig::default());
    let backend_b = spawn_backend(shard_fleet(1), ServeConfig::default());
    let router = router_over(&[backend_a.addr(), backend_b.addr()], |_| {});
    assert!(
        router.wait_for_buildings(2, Duration::from_secs(10)),
        "router never mirrored both route tables"
    );
    let mut client = HttpClient::connect(router.addr()).unwrap();

    // Batch: every slot, every float bit.
    let body = format!(
        "{{\"records\":{},\"seed\":77,\"threads\":2}}",
        records_json(queries)
    );
    let (status, response) = client.post("/v1/infer_batch", &body).unwrap();
    assert_eq!(status, 200, "{response}");
    let batch: BatchBody = serde_json::from_str(&response).unwrap();
    assert!(!batch.degraded, "fault-free fleet must not degrade");
    assert_eq!(batch.predictions.len(), reference.len());
    for (i, (wire, local)) in batch.predictions.iter().zip(&reference).enumerate() {
        match (wire, local) {
            (Some(w), Some(l)) => {
                assert_bits_equal(w, l, &format!("record {i}"));
                assert!(!w.fallback, "record {i}");
            }
            (None, None) => {}
            _ => panic!("record {i}: presence differs between router and in-process"),
        }
    }

    // Singles: the one-record batch stream, proxied.
    for (k, record) in queries.iter().take(6).enumerate() {
        let single_ref = full_fleet().serve_batch(std::slice::from_ref(record), 42, 1);
        let body = format!(
            "{{\"record\":{},\"seed\":42}}",
            serde_json::to_string(record).unwrap()
        );
        let (status, response) = client.post("/v1/infer", &body).unwrap();
        match &single_ref[0] {
            Some(l) => {
                assert_eq!(status, 200, "record {k}: {response}");
                let w: PredictionBody = serde_json::from_str(&response).unwrap();
                assert_bits_equal(&w, l, &format!("single {k}"));
            }
            None => assert_eq!(status, 422, "record {k}: {response}"),
        }
    }

    // NoRoute + fallback: scatter-gather over live backends; nobody can
    // embed an alien record, so the miss is unanimous — 422, not 503.
    let body = format!(
        "{{\"record\":{},\"fallback\":true}}",
        serde_json::to_string(&alien_record()).unwrap()
    );
    let (status, response) = client.post("/v1/infer", &body).unwrap();
    assert_eq!(status, 422, "{response}");
    assert!(response.contains("overlaps no building"), "{response}");

    // Stat: both shards merged, both backends visible and up.
    let (status, response) = client.get("/v1/stat").unwrap();
    assert_eq!(status, 200, "{response}");
    let stats: grafics_core::FleetStats = serde_json::from_str(&response).unwrap();
    assert_eq!(
        stats
            .shards
            .iter()
            .map(|s| s.building.0)
            .collect::<Vec<_>>(),
        vec![0, 1]
    );
    let rstat: RouterStat = serde_json::from_str(&response).unwrap();
    assert!(!rstat.degraded);
    assert_eq!(rstat.backends.len(), 2);
    for row in &rstat.backends {
        assert_eq!(row.state, "up", "{}", row.name);
        assert!(!row.breaker_open, "{}", row.name);
    }

    // Route table: merged inventory covers both buildings.
    let (status, response) = client.get("/v1/route_table").unwrap();
    assert_eq!(status, 200, "{response}");
    let table: RouteTableBody = serde_json::from_str(&response).unwrap();
    assert_eq!(
        table.shards.iter().map(|e| e.building).collect::<Vec<_>>(),
        vec![0, 1]
    );

    // The router's own health and metrics surfaces.
    let (status, response) = client.get("/healthz").unwrap();
    assert_eq!(status, 200, "{response}");
    assert!(response.contains("\"status\":\"ok\""), "{response}");
    assert!(response.contains("\"backends_up\":2"), "{response}");
    let (status, response) = client.get("/metrics").unwrap();
    assert_eq!(status, 200);
    assert!(
        response.contains("grafics_router_requests_total"),
        "{response}"
    );
    assert!(
        response.contains("grafics_router_backend_up{backend=\"b0\"} 1"),
        "{response}"
    );

    router.shutdown().unwrap();
    backend_a.shutdown().unwrap();
    backend_b.shutdown().unwrap();
}

/// Transient faults — a reset during the table fetch, a delayed link, a
/// 5xx burst — are absorbed by the retry budget: the caller still sees
/// 200 and the same bits as the fault-free answer.
#[test]
fn transient_faults_are_absorbed_by_retries() {
    let (_, queries) = fixture();
    // Short backend idle timeout so pooled router connections die
    // between phases and each faulted request opens a *fresh* proxy
    // connection (ChaosProxy faults are assigned per connection).
    let backend = spawn_backend(
        full_fleet(),
        ServeConfig {
            read_timeout: Duration::from_millis(200),
            ..ServeConfig::default()
        },
    );
    let proxy = ChaosProxy::spawn(backend.addr()).unwrap();
    // Connection order at spawn is deterministic: probe, then table
    // fetch. The probe passes; the table fetch is reset mid-flight and
    // must survive via the client's clean-EOF retry.
    proxy.push_schedule(&[Fault::None, Fault::Reset]);
    let router = router_over(&[proxy.local_addr()], |c| {
        // Probes far apart so they cannot race the scripted faults.
        c.manifest.health.probe_interval_ms = 10_000;
    });
    assert!(
        router.wait_for_buildings(2, Duration::from_secs(10)),
        "table fetch did not survive the injected reset"
    );
    assert!(
        router.state().backend_retry_count() >= 1,
        "the reset table fetch must have cost at least one retry"
    );

    // Pick a routable query and pin its fault-free answer.
    let mut client = HttpClient::connect(router.addr()).unwrap();
    let (record, base) = queries
        .iter()
        .find_map(|r| {
            let body = format!(
                "{{\"record\":{},\"seed\":7}}",
                serde_json::to_string(r).unwrap()
            );
            let (status, response) = client.post("/v1/infer", &body).unwrap();
            (status == 200).then_some((r.clone(), response))
        })
        .expect("some query must route");
    let infer_body = format!(
        "{{\"record\":{},\"seed\":7}}",
        serde_json::to_string(&record).unwrap()
    );

    // Delay: the fresh connection is held 50 ms, well inside the 800 ms
    // per-attempt deadline — same answer, just slower.
    std::thread::sleep(Duration::from_millis(400)); // idle out the pool
    proxy.set_default_fault(Fault::Delay(Duration::from_millis(50)));
    let (status, response) = client.post("/v1/infer", &infer_body).unwrap();
    assert_eq!(status, 200, "{response}");
    assert_eq!(response, base, "delayed answer must be bit-identical");

    // 5xx burst: one well-framed 503 from the intermediary; the router
    // retries within its budget and the caller never sees it.
    proxy.set_default_fault(Fault::None);
    std::thread::sleep(Duration::from_millis(400)); // idle out the pool
    proxy.push_schedule(&[Fault::Burst5xx]);
    let (status, response) = client.post("/v1/infer", &infer_body).unwrap();
    assert_eq!(status, 200, "{response}");
    assert_eq!(response, base, "post-burst answer must be bit-identical");

    assert!(proxy.faults_injected() >= 2, "{}", proxy.faults_injected());
    assert!(
        router.state().backend_retry_count() >= 2,
        "{}",
        router.state().backend_retry_count()
    );
    router.shutdown().unwrap();
    backend.shutdown().unwrap();
}

/// A killed backend trips the circuit breaker (fail-fast 503s with the
/// backend's state in the error), scatter-gather fails the traffic over
/// to a redundant backend bit-identically with the degraded marker set,
/// and a restarted backend re-closes the breaker and resumes.
#[test]
fn killed_backend_trips_breaker_then_recovers() {
    let (_, queries) = fixture();
    let reference = full_fleet().serve_batch(queries, 7, 1);

    // b0 owns building 0 (behind the chaos proxy, so it can "move"),
    // b1 owns building 1, b2 holds both shards — the redundancy that
    // lets scatter-gather answer building-0 traffic while b0 is dead.
    let backend_a = spawn_backend(shard_fleet(0), ServeConfig::default());
    let backend_b = spawn_backend(shard_fleet(1), ServeConfig::default());
    let backend_c = spawn_backend(full_fleet(), ServeConfig::default());
    let proxy = ChaosProxy::spawn(backend_a.addr()).unwrap();
    let router = router_over(
        &[proxy.local_addr(), backend_b.addr(), backend_c.addr()],
        |c| {
            // Keep the prober from marking Down: this test isolates the
            // hot-path breaker. Trip after 2 failures, 300 ms cooldown.
            c.manifest.health.probe_interval_ms = 100;
            c.manifest.health.fail_threshold = 1000;
            c.manifest.breaker = BreakerPolicy {
                trip_threshold: 2,
                cooldown_ms: 300,
            };
        },
    );
    assert!(router.wait_for_buildings(2, Duration::from_secs(10)));
    let mut client = HttpClient::connect(router.addr()).unwrap();

    // A query owned by building 0, and its fault-free wire answer.
    let q0 = queries
        .iter()
        .enumerate()
        .find(|(i, _)| reference[*i].as_ref().is_some_and(|p| p.building.0 == 0))
        .map(|(_, r)| r.clone())
        .expect("fixture has building-0 queries");
    let infer_q0 = format!(
        "{{\"record\":{},\"seed\":7}}",
        serde_json::to_string(&q0).unwrap()
    );
    let (status, base) = client.post("/v1/infer", &infer_q0).unwrap();
    assert_eq!(status, 200, "{base}");

    // Kill b0. The proxy frontage stays up, so the router sees clean
    // EOFs, not a vanished listener.
    backend_a.shutdown().unwrap();

    // Two transport failures trip the breaker…
    for _ in 0..2 {
        let (status, response) = client.post("/v1/infer", &infer_q0).unwrap();
        assert_eq!(
            status, 502,
            "dead backend surfaces as bad gateway: {response}"
        );
    }
    let b0 = router.state().backends().next().unwrap();
    assert!(b0.breaker.trips() >= 1, "breaker must have tripped");

    // …after which requests fail fast with the breaker named, no wire
    // cost. (A half-open trial may sneak in a 502; keep asking.)
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let (status, response) = client.post("/v1/infer", &infer_q0).unwrap();
        if status == 503 && response.contains("breaker-open") {
            assert!(response.contains("shards are excluded"), "{response}");
            break;
        }
        assert!(
            Instant::now() < deadline,
            "never saw a fail-fast breaker-open 503; last: {status} {response}"
        );
        std::thread::sleep(Duration::from_millis(25));
    }

    // Fallback: scatter-gather over the live backends. b2 also holds
    // building 0 and answers it by *routing* (not broadcast), so the
    // failover answer is bit-identical to the fault-free one.
    let fallback_q0 = format!(
        "{{\"record\":{},\"seed\":7,\"fallback\":true}}",
        serde_json::to_string(&q0).unwrap()
    );
    let (status, response) = client.post("/v1/infer", &fallback_q0).unwrap();
    assert_eq!(status, 200, "{response}");
    assert_eq!(response, base, "failover via b2 must be bit-identical");

    // Batch with fallback: full answers, degraded marker set (the owner
    // of building 0 is excluded), and every slot still matches the
    // single-process reference bit-for-bit.
    let body = format!(
        "{{\"records\":{},\"seed\":7,\"fallback\":true}}",
        records_json(queries)
    );
    let degraded_before = router.state().degraded_count();
    let (status, response) = client.post("/v1/infer_batch", &body).unwrap();
    assert_eq!(status, 200, "{response}");
    let batch: BatchBody = serde_json::from_str(&response).unwrap();
    assert!(
        batch.degraded,
        "a dead owner must mark the response degraded"
    );
    assert!(router.state().degraded_count() > degraded_before);
    for (i, (wire, local)) in batch.predictions.iter().zip(&reference).enumerate() {
        if let (Some(w), Some(l)) = (wire, local) {
            assert_bits_equal(w, l, &format!("degraded-mode record {i}"));
        }
    }
    // The degraded marker also rides the response head for clients that
    // do not parse bodies.
    let (status, text) = raw_request(router.addr(), "POST", "/v1/infer_batch", &body);
    assert_eq!(status, 200);
    assert!(text.contains("X-Grafics-Degraded: true"), "{text}");
    assert!(router.state().scatter_count() >= 1);

    // Restart b0 elsewhere; the proxy repoints at it ("the process came
    // back on a new port"). The next half-open trial closes the breaker.
    let backend_a2 = spawn_backend(shard_fleet(0), ServeConfig::default());
    proxy.set_target(backend_a2.addr());
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let (status, response) = client.post("/v1/infer", &infer_q0).unwrap();
        if status == 200 {
            assert_eq!(response, base, "recovered answer must be bit-identical");
            break;
        }
        assert!(
            Instant::now() < deadline,
            "backend never recovered: {status} {response}"
        );
        std::thread::sleep(Duration::from_millis(50));
    }
    let b0 = router.state().backends().next().unwrap();
    assert!(
        !b0.breaker.is_open(),
        "successful trial re-closes the breaker"
    );
    assert_eq!(b0.state(), BackendState::Up);

    router.shutdown().unwrap();
    backend_b.shutdown().unwrap();
    backend_c.shutdown().unwrap();
    backend_a2.shutdown().unwrap();
}

/// The prober's state ladder: a 5xx-bursting backend goes Degraded (alive
/// but not serving) and its shards fall back to scatter-gather; a killed
/// backend goes Down; both recover to Up when the fault clears, and the
/// mirrored route table is refetched.
#[test]
fn probe_ladder_degrades_downs_and_recovers() {
    let (_, queries) = fixture();
    let reference = full_fleet().serve_batch(queries, 7, 1);
    let backend_a = spawn_backend(shard_fleet(0), ServeConfig::default());
    let backend_b = spawn_backend(shard_fleet(1), ServeConfig::default());
    let proxy = ChaosProxy::spawn(backend_a.addr()).unwrap();
    let router = router_over(&[proxy.local_addr(), backend_b.addr()], |c| {
        c.manifest.health = HealthPolicy {
            probe_interval_ms: 25,
            probe_timeout_ms: 250,
            fail_threshold: 2,
            recover_threshold: 1,
        };
    });
    assert!(router.wait_for_buildings(2, Duration::from_secs(10)));
    let mut client = HttpClient::connect(router.addr()).unwrap();
    let b0_state = || router.state().backends().next().unwrap().state();
    let wait_for_state = |want: BackendState| {
        let deadline = Instant::now() + Duration::from_secs(10);
        while b0_state() != want {
            assert!(Instant::now() < deadline, "b0 never reached {want:?}");
            std::thread::sleep(Duration::from_millis(10));
        }
    };

    // 5xx burst on every connection: probes see 503 → Degraded.
    proxy.set_default_fault(Fault::Burst5xx);
    wait_for_state(BackendState::Degraded);

    // Building-0 traffic falls back to scatter; only b1 is live and it
    // cannot embed net-a records, so slots for building 0 go null while
    // building-1 slots stay bit-identical — partial results, marked.
    let body = format!(
        "{{\"records\":{},\"seed\":7,\"fallback\":true}}",
        records_json(queries)
    );
    let (status, response) = client.post("/v1/infer_batch", &body).unwrap();
    assert_eq!(status, 200, "{response}");
    let batch: BatchBody = serde_json::from_str(&response).unwrap();
    assert!(batch.degraded);
    for (i, (wire, local)) in batch.predictions.iter().zip(&reference).enumerate() {
        match local {
            Some(l) if l.building.0 == 1 => {
                let w = wire.as_ref().unwrap_or_else(|| panic!("record {i} lost"));
                assert_bits_equal(w, l, &format!("record {i}"));
            }
            Some(_) => assert!(wire.is_none(), "record {i}: b0's shard is excluded"),
            None => {}
        }
    }

    // Fault cleared: one healthy probe re-admits a Degraded backend.
    proxy.set_default_fault(Fault::None);
    wait_for_state(BackendState::Up);

    // Kill it outright: probes fail → Down after the threshold; its
    // refusals now carry the prober's verdict.
    backend_a.shutdown().unwrap();
    wait_for_state(BackendState::Down);
    let (pos_q0, q0) = queries
        .iter()
        .enumerate()
        .find(|(i, _)| reference[*i].as_ref().is_some_and(|p| p.building.0 == 0))
        .map(|(i, r)| (i, r.clone()))
        .unwrap();
    // `index` pins the RNG stream to the record's batch position, so the
    // recovered answer can be compared against the batch reference.
    let infer_q0 = format!(
        "{{\"record\":{},\"seed\":7,\"index\":{pos_q0}}}",
        serde_json::to_string(&q0).unwrap()
    );
    let (status, response) = client.post("/v1/infer", &infer_q0).unwrap();
    assert_eq!(status, 503, "{response}");
    assert!(response.contains("is down"), "{response}");
    // Router-level health reflects the partial fleet.
    let (status, response) = client.get("/healthz").unwrap();
    assert_eq!(status, 200, "one backend is still up: {response}");
    assert!(response.contains("\"status\":\"degraded\""), "{response}");

    // Restart + repoint: the ladder climbs back to Up, the table is
    // refetched, and building-0 answers resume bit-identically.
    let backend_a2 = spawn_backend(shard_fleet(0), ServeConfig::default());
    proxy.set_target(backend_a2.addr());
    wait_for_state(BackendState::Up);
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let (status, response) = client.post("/v1/infer", &infer_q0).unwrap();
        if status == 200 {
            let w: PredictionBody = serde_json::from_str(&response).unwrap();
            assert_bits_equal(&w, reference[pos_q0].as_ref().unwrap(), "recovered q0");
            break;
        }
        assert!(Instant::now() < deadline, "{status} {response}");
        std::thread::sleep(Duration::from_millis(25));
    }
    let b0 = router.state().backends().next().unwrap();
    assert!(b0.transition_count() >= 3, "{}", b0.transition_count());

    router.shutdown().unwrap();
    backend_b.shutdown().unwrap();
    backend_a2.shutdown().unwrap();
}

/// Acceptance: absorbs are never double-applied. Truncated responses
/// (applied, ack lost), resets (never applied), and router-proxied
/// absorbs are audited against the WAL: sequence numbers strictly
/// increasing, applied count exactly acks + in-doubt truncations.
#[test]
fn absorbs_are_never_double_applied_wal_audit() {
    let dir = std::env::temp_dir().join("grafics-router-wal-audit-test");
    std::fs::remove_dir_all(&dir).ok();
    {
        let mut fleet = shard_fleet(0);
        fleet.set_durability(DurabilityPolicy::FsyncEveryN(1));
        fleet.save_dir(&dir).unwrap();
    }
    let (fleet, _) = GraficsFleet::recover(&dir).unwrap();
    let backend = spawn_backend(fleet, ServeConfig::default());
    let proxy = ChaosProxy::spawn(backend.addr()).unwrap();

    let absorbable = building0_queries();
    assert!(absorbable.len() >= 12, "{}", absorbable.len());
    let mut acks = 0u64;
    let mut truncated = 0u64;
    // One fresh client per absorb: each consumes exactly one scheduled
    // fault, so the script controls which absorb hits which failure.
    for (i, record) in absorbable.iter().take(10).enumerate() {
        let fault = match i {
            3 | 7 => Fault::Truncate(12), // applied, ack torn mid-status-line
            5 => Fault::Reset,            // dropped before the backend saw it
            _ => Fault::None,
        };
        proxy.push_schedule(&[fault]);
        let mut client = HttpClient::connect(proxy.local_addr()).unwrap();
        let body = format!(
            "{{\"record\":{},\"building\":0}}",
            serde_json::to_string(record).unwrap()
        );
        match client.post("/v1/absorb", &body) {
            Ok((200, response)) => {
                let ack: AbsorbBody = serde_json::from_str(&response).unwrap();
                assert_eq!(ack.building, 0);
                acks += 1;
            }
            Ok((status, response)) => panic!("absorb {i}: unexpected {status} {response}"),
            Err(_) => {
                assert_eq!(
                    client.retries_performed(),
                    0,
                    "absorb {i}: a failed absorb must NEVER be resent"
                );
                match fault {
                    Fault::Truncate(_) => truncated += 1,
                    Fault::Reset => {}
                    _ => panic!("absorb {i} failed without an injected fault"),
                }
            }
        }
    }
    assert_eq!(acks, 7, "7 clean absorbs acknowledged");
    assert_eq!(truncated, 2, "both truncations must surface as errors");

    // Router-proxied absorbs ride the same single-shot discipline.
    let router = router_over(&[proxy.local_addr()], |_| {});
    assert!(router.wait_for_buildings(1, Duration::from_secs(10)));
    let mut client = HttpClient::connect(router.addr()).unwrap();
    for record in absorbable.iter().skip(10).take(2) {
        let body = format!(
            "{{\"record\":{},\"building\":0}}",
            serde_json::to_string(record).unwrap()
        );
        let (status, response) = client.post("/v1/absorb", &body).unwrap();
        assert_eq!(status, 200, "{response}");
        acks += 1;
    }
    router.shutdown().unwrap();
    drop(proxy);
    backend.shutdown().unwrap(); // drains and fsyncs the WAL tail

    // The audit: every applied absorb is exactly one WAL entry, seqs
    // strictly increasing (no gaps re-applied, no entry twice), and the
    // applied count is acks plus the in-doubt truncations — the reset
    // absorb, which the backend never saw, is absent.
    let wal = std::fs::read_to_string(dir.join("wal-0.jsonl")).unwrap();
    let seqs: Vec<u64> = wal
        .lines()
        .skip(1) // header line
        .map(|line| serde_json::from_str::<WalSeq>(line).unwrap().seq)
        .collect();
    assert_eq!(
        seqs.len() as u64,
        acks + truncated,
        "applied = acknowledged + in-doubt truncations, nothing else"
    );
    for pair in seqs.windows(2) {
        assert!(
            pair[1] > pair[0],
            "WAL seqs must be strictly increasing (no double-apply): {seqs:?}"
        );
    }
    // And the recovered fleet agrees.
    let (recovered, report) = GraficsFleet::recover(&dir).unwrap();
    assert!(!report.any_torn());
    assert_eq!(
        recovered.stats().shard(BuildingId(0)).unwrap().pending as u64,
        acks + truncated
    );
    std::fs::remove_dir_all(&dir).ok();
}

/// Bearer-token auth guards the write endpoints end to end: the router
/// 401s unauthenticated absorbs/publishes before touching any backend,
/// the backends enforce the same gate directly, and reads stay open.
#[test]
fn write_endpoints_require_bearer_token_end_to_end() {
    let (_, queries) = fixture();
    let token = "sekrit-7";
    let backend_a = spawn_backend(
        shard_fleet(0),
        ServeConfig {
            auth_token: Some(token.to_owned()),
            ..ServeConfig::default()
        },
    );
    let backend_b = spawn_backend(
        shard_fleet(1),
        ServeConfig {
            auth_token: Some(token.to_owned()),
            ..ServeConfig::default()
        },
    );
    let router = router_over(&[backend_a.addr(), backend_b.addr()], |c| {
        c.manifest.auth_token = Some(token.to_owned());
    });
    assert!(router.wait_for_buildings(2, Duration::from_secs(10)));

    let mut client = HttpClient::connect(router.addr()).unwrap();
    let absorb_body = format!(
        "{{\"record\":{},\"building\":0}}",
        serde_json::to_string(&building0_queries()[0]).unwrap()
    );

    // No token / wrong token: 401 from the router's own gate.
    let (status, response) = client.post("/v1/absorb", &absorb_body).unwrap();
    assert_eq!(status, 401, "{response}");
    assert!(response.contains("bearer token"), "{response}");
    client.set_auth_token(Some("wrong".to_owned()));
    let (status, _) = client.post("/v1/absorb", &absorb_body).unwrap();
    assert_eq!(status, 401);
    let (status, _) = client.post("/v1/publish", "{}").unwrap();
    assert_eq!(status, 401);

    // Reads stay open without a token.
    client.set_auth_token(None);
    let (status, _) = client.get("/v1/stat").unwrap();
    assert_eq!(status, 200);
    let infer_body = format!(
        "{{\"record\":{}}}",
        serde_json::to_string(&queries[0]).unwrap()
    );
    let (status, _) = client.post("/v1/infer", &infer_body).unwrap();
    assert!(status == 200 || status == 422, "{status}");

    // With the token: absorb lands (router forwards its manifest token
    // to the backend) and a fleet-wide publish merges both epochs.
    client.set_auth_token(Some(token.to_owned()));
    let (status, response) = client.post("/v1/absorb", &absorb_body).unwrap();
    assert_eq!(status, 200, "{response}");
    let (status, response) = client.post("/v1/publish", "").unwrap();
    assert_eq!(status, 200, "{response}");
    let publish: RouterPublish = serde_json::from_str(&response).unwrap();
    assert!(!publish.degraded, "{response}");
    assert_eq!(
        publish
            .epochs
            .iter()
            .map(|e| e.building)
            .collect::<Vec<_>>(),
        vec![0, 1]
    );

    // The backends enforce the same gate when addressed directly.
    let mut direct = HttpClient::connect(backend_a.addr()).unwrap();
    let (status, _) = direct.post("/v1/absorb", &absorb_body).unwrap();
    assert_eq!(status, 401);
    direct.set_auth_token(Some(token.to_owned()));
    let (status, _) = direct.post("/v1/absorb", &absorb_body).unwrap();
    assert_eq!(status, 200);

    router.shutdown().unwrap();
    backend_a.shutdown().unwrap();
    backend_b.shutdown().unwrap();
}

/// The per-client token bucket throttles `/v1/*` with 429 +
/// `Retry-After`, counts it on `/metrics`, leaves `/healthz` and
/// `/metrics` unthrottled, and refills over time.
#[test]
fn rate_limited_clients_get_429_with_retry_after() {
    let backend = spawn_backend(full_fleet(), ServeConfig::default());
    let router = router_over(&[backend.addr()], |c| {
        c.manifest.rate_limit = RateLimitPolicy::PerClient {
            rate_per_sec: 2,
            burst: 2,
        };
    });
    assert!(router.wait_for_buildings(2, Duration::from_secs(10)));

    // Burst of 2 passes; the third hits the empty bucket.
    let mut statuses = Vec::new();
    let mut throttled_text = String::new();
    for _ in 0..3 {
        let (status, text) = raw_request(router.addr(), "GET", "/v1/stat", "");
        if status == 429 {
            throttled_text = text.clone();
        }
        statuses.push(status);
    }
    assert_eq!(statuses, vec![200, 200, 429], "{throttled_text}");
    assert!(throttled_text.contains("Retry-After:"), "{throttled_text}");
    assert!(
        throttled_text.contains("rate limit exceeded"),
        "{throttled_text}"
    );

    // Health and metrics are never throttled, and the counter shows.
    for _ in 0..5 {
        let (status, _) = raw_request(router.addr(), "GET", "/healthz", "");
        assert_eq!(status, 200);
    }
    let (status, metrics) = raw_request(router.addr(), "GET", "/metrics", "");
    assert_eq!(status, 200);
    let counter = metrics
        .lines()
        .find(|l| l.starts_with("grafics_rate_limited_total"))
        .unwrap_or_else(|| panic!("counter missing:\n{metrics}"));
    let count: u64 = counter.rsplit(' ').next().unwrap().parse().unwrap();
    assert!(count >= 1, "{counter}");
    assert_eq!(router.state().rate_limited_count(), count);

    // Tokens refill: after a second the same client is admitted again.
    std::thread::sleep(Duration::from_millis(1100));
    let (status, _) = raw_request(router.addr(), "GET", "/v1/stat", "");
    assert_eq!(status, 200);

    router.shutdown().unwrap();
    backend.shutdown().unwrap();
}

/// `HttpClient` retry invariants under injected faults: a clean EOF
/// before any status byte is retried end-to-end, backoff respects the
/// exponential lower bound, non-idempotent requests are never resent
/// (exactly one wire connection), and a black-holed read times out and
/// recovers on a fresh connection.
#[test]
fn client_retry_invariants_under_chaos() {
    let (_, queries) = fixture();
    let backend = spawn_backend(full_fleet(), ServeConfig::default());
    let proxy = ChaosProxy::spawn(backend.addr()).unwrap();

    // Clean EOF before status → one retry, then success. Each section
    // drops its client when done: an idle keep-alive connection pins a
    // backend worker (default pool: 2), and a leaked one would starve
    // the later sections into spurious timeouts.
    proxy.push_schedule(&[Fault::Reset]);
    let mut eof_client = HttpClient::connect(proxy.local_addr()).unwrap();
    let (status, _) = eof_client.get("/v1/stat").unwrap();
    assert_eq!(status, 200);
    assert_eq!(eof_client.retries_performed(), 1);
    assert_eq!(proxy.connections(), 2, "reset conn + fresh conn");
    drop(eof_client);

    // Non-idempotent: the failed absorb dies on its single connection.
    let before = proxy.connections();
    proxy.push_schedule(&[Fault::Reset]);
    let mut writer = HttpClient::connect(proxy.local_addr()).unwrap();
    let body = format!(
        "{{\"record\":{},\"building\":0}}",
        serde_json::to_string(&queries[0]).unwrap()
    );
    writer.post("/v1/absorb", &body).unwrap_err();
    assert_eq!(writer.retries_performed(), 0, "absorb must not be resent");
    assert_eq!(proxy.connections(), before + 1, "exactly one wire attempt");
    drop(writer);

    // Backoff bounds: three resets cost at least base * (1 + 2 + 4).
    proxy.push_schedule(&[Fault::Reset, Fault::Reset, Fault::Reset]);
    let mut backoff_client = HttpClient::connect(proxy.local_addr()).unwrap();
    backoff_client.set_retry_policy(3, Duration::from_millis(40));
    let start = Instant::now();
    let (status, _) = backoff_client.get("/v1/stat").unwrap();
    let elapsed = start.elapsed();
    assert_eq!(status, 200);
    assert_eq!(backoff_client.retries_performed(), 3);
    assert!(
        elapsed >= Duration::from_millis(280),
        "exponential backoff floor violated: {elapsed:?}"
    );
    assert!(
        elapsed < Duration::from_secs(2),
        "backoff overshoots its cap: {elapsed:?}"
    );
    drop(backoff_client);

    // Black hole: the read times out (not a protocol error), and the
    // retry lands on a fresh, healthy connection.
    proxy.push_schedule(&[Fault::BlackHole]);
    let mut client = HttpClient::connect(proxy.local_addr()).unwrap();
    // Generous timeout: the test binary runs its suites in parallel and a
    // tight budget makes every retry attempt time out under CPU load.
    client
        .set_timeouts(Duration::from_millis(500), Duration::from_millis(500))
        .unwrap();
    client.set_retry_policy(3, Duration::from_millis(5));
    let start = Instant::now();
    let (status, _) = client.get("/v1/stat").unwrap();
    assert_eq!(status, 200);
    assert!(client.retries_performed() >= 1);
    assert!(
        start.elapsed() >= Duration::from_millis(450),
        "the black-holed attempt must burn its read timeout"
    );

    drop(proxy);
    backend.shutdown().unwrap();
}
