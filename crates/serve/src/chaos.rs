//! A fault-injecting TCP forwarder for robustness tests and benchmarks.
//!
//! [`ChaosProxy`] sits between an HTTP client (the router tier, an
//! [`crate::HttpClient`]) and a real backend, forwarding bytes verbatim
//! until told to misbehave. Faults are injected *per connection* from a
//! deterministic schedule: each accepted connection pops the next
//! [`Fault`] from the schedule (falling back to a settable default), so
//! a test script controls exactly which request hits which failure —
//! no timing races, no randomness.
//!
//! The proxy address is stable across backend restarts:
//! [`ChaosProxy::set_target`] repoints the forwarder at a new ephemeral
//! port, which is how the e2e tests model "the backend process was
//! killed and came back somewhere else" without rebinding races.
//!
//! Std-only, like the rest of the crate: threads + blocking sockets.

use std::collections::VecDeque;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

/// One per-connection fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fault {
    /// Forward both directions verbatim (no fault).
    None,
    /// Forward verbatim after holding the connection for this long —
    /// models a slow or congested link (drives deadline/timeout paths).
    Delay(Duration),
    /// Accept, read, and never answer: the client sees its read timeout.
    BlackHole,
    /// Accept and close abruptly — the client sees EOF/ECONNRESET
    /// before any response byte (the retryable clean-EOF path).
    Reset,
    /// Forward the request, then relay only the first `n` bytes of the
    /// real response and close — a torn response mid-body.
    Truncate(usize),
    /// Answer a well-framed 503 without contacting the backend — an
    /// overloaded-intermediary burst.
    Burst5xx,
}

struct Shared {
    target: Mutex<SocketAddr>,
    schedule: Mutex<VecDeque<Fault>>,
    default_fault: Mutex<Fault>,
    shutdown: AtomicBool,
    connections: AtomicU64,
    faults_injected: AtomicU64,
}

/// The running proxy. Dropping it stops the accept loop (in-flight
/// pumps die with their sockets as the test's backends shut down).
pub struct ChaosProxy {
    addr: SocketAddr,
    shared: Arc<Shared>,
    accept_thread: Option<JoinHandle<()>>,
}

impl ChaosProxy {
    /// Binds an ephemeral local port and starts forwarding to `target`.
    ///
    /// # Errors
    ///
    /// Propagates the bind error.
    pub fn spawn(target: SocketAddr) -> std::io::Result<Self> {
        let listener = TcpListener::bind("127.0.0.1:0")?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let shared = Arc::new(Shared {
            target: Mutex::new(target),
            schedule: Mutex::new(VecDeque::new()),
            default_fault: Mutex::new(Fault::None),
            shutdown: AtomicBool::new(false),
            connections: AtomicU64::new(0),
            faults_injected: AtomicU64::new(0),
        });
        let accept_shared = Arc::clone(&shared);
        let accept_thread = std::thread::spawn(move || accept_loop(&listener, &accept_shared));
        Ok(ChaosProxy {
            addr,
            shared,
            accept_thread: Some(accept_thread),
        })
    }

    /// The stable frontage address clients should connect to.
    #[must_use]
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Repoints the forwarder (e.g. at a restarted backend's new
    /// ephemeral port). Existing connections keep their old target.
    pub fn set_target(&self, target: SocketAddr) {
        *self.shared.target.lock().unwrap() = target;
    }

    /// Sets the fault applied to connections with an empty schedule.
    pub fn set_default_fault(&self, fault: Fault) {
        *self.shared.default_fault.lock().unwrap() = fault;
    }

    /// Appends faults to the per-connection schedule: connection `k`
    /// after this call consumes the `k`-th queued entry, then later
    /// connections fall back to the default fault.
    pub fn push_schedule(&self, faults: &[Fault]) {
        self.shared.schedule.lock().unwrap().extend(faults);
    }

    /// Connections accepted so far.
    #[must_use]
    pub fn connections(&self) -> u64 {
        self.shared.connections.load(Ordering::Relaxed)
    }

    /// Connections that were given a non-[`Fault::None`] treatment.
    #[must_use]
    pub fn faults_injected(&self) -> u64 {
        self.shared.faults_injected.load(Ordering::Relaxed)
    }
}

impl Drop for ChaosProxy {
    fn drop(&mut self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
    }
}

fn accept_loop(listener: &TcpListener, shared: &Arc<Shared>) {
    while !shared.shutdown.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _)) => {
                shared.connections.fetch_add(1, Ordering::Relaxed);
                let fault = shared
                    .schedule
                    .lock()
                    .unwrap()
                    .pop_front()
                    .unwrap_or_else(|| *shared.default_fault.lock().unwrap());
                if fault != Fault::None {
                    shared.faults_injected.fetch_add(1, Ordering::Relaxed);
                }
                let conn_shared = Arc::clone(shared);
                std::thread::spawn(move || handle(stream, fault, &conn_shared));
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(2));
            }
            Err(_) => break,
        }
    }
}

fn handle(client: TcpStream, fault: Fault, shared: &Arc<Shared>) {
    let target = *shared.target.lock().unwrap();
    match fault {
        Fault::None => pump_both(client, target),
        Fault::Delay(d) => {
            std::thread::sleep(d);
            pump_both(client, target);
        }
        Fault::BlackHole => black_hole(client, shared),
        // Dropping the only handle closes the socket with the request
        // unread — the kernel answers the client with a reset, or at
        // best an EOF before any response byte.
        Fault::Reset => drop(client),
        Fault::Truncate(n) => truncate(client, target, n),
        Fault::Burst5xx => burst_5xx(client),
    }
}

/// Verbatim bidirectional byte pump: one thread per direction, both die
/// on the first EOF/error. Keep-alive, pipelining, and framing all pass
/// through untouched — under `Fault::None` the proxy is wire-invisible.
fn pump_both(client: TcpStream, target: SocketAddr) {
    let Ok(backend) = TcpStream::connect(target) else {
        return; // client sees EOF: connect-refused surfaced verbatim
    };
    let _ = client.set_nodelay(true);
    let _ = backend.set_nodelay(true);
    let (Ok(client_r), Ok(backend_r)) = (client.try_clone(), backend.try_clone()) else {
        return;
    };
    let up = std::thread::spawn(move || pump(client_r, backend));
    pump(backend_r, client);
    let _ = up.join();
}

fn pump(mut from: TcpStream, mut to: TcpStream) {
    let mut buf = [0u8; 16 * 1024];
    loop {
        match from.read(&mut buf) {
            Ok(0) | Err(_) => break,
            Ok(n) => {
                if to.write_all(&buf[..n]).is_err() {
                    break;
                }
            }
        }
    }
    let _ = to.shutdown(std::net::Shutdown::Both);
}

/// Reads and discards until the proxy shuts down or the client gives up
/// — the request is consumed so the client blocks on the *response*,
/// exercising its read-timeout path rather than a write error.
fn black_hole(mut client: TcpStream, shared: &Arc<Shared>) {
    let _ = client.set_read_timeout(Some(Duration::from_millis(50)));
    let mut buf = [0u8; 4096];
    while !shared.shutdown.load(Ordering::SeqCst) {
        match client.read(&mut buf) {
            Ok(0) => break,
            Ok(_) => {}
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) => {}
            Err(_) => break,
        }
    }
}

/// Forwards the request, then relays only the first `n` response bytes.
fn truncate(client: TcpStream, target: SocketAddr, n: usize) {
    let Ok(mut backend) = TcpStream::connect(target) else {
        return;
    };
    let _ = backend.set_nodelay(true);
    let (Ok(mut client_r), Ok(backend_r)) = (client.try_clone(), backend.try_clone()) else {
        return;
    };
    // Upstream pump so the backend sees (and processes!) the request —
    // a truncated *response* must still mean an applied absorb, which
    // is exactly the double-apply hazard the WAL audit test checks.
    let up = std::thread::spawn(move || {
        let mut buf = [0u8; 4096];
        loop {
            match client_r.read(&mut buf) {
                Ok(0) | Err(_) => break,
                Ok(k) => {
                    if backend.write_all(&buf[..k]).is_err() {
                        break;
                    }
                }
            }
        }
    });
    let mut backend_r = backend_r;
    let mut client_w = client;
    let mut remaining = n;
    let mut buf = [0u8; 4096];
    while remaining > 0 {
        let want = remaining.min(buf.len());
        match backend_r.read(&mut buf[..want]) {
            Ok(0) | Err(_) => break,
            Ok(k) => {
                if client_w.write_all(&buf[..k]).is_err() {
                    break;
                }
                remaining -= k;
            }
        }
    }
    let _ = client_w.shutdown(std::net::Shutdown::Both);
    let _ = backend_r.shutdown(std::net::Shutdown::Both);
    let _ = up.join();
}

/// Consumes one request (head + `Content-Length` body), answers a
/// well-framed 503, and closes. The backend is never contacted.
fn burst_5xx(mut client: TcpStream) {
    let _ = client.set_read_timeout(Some(Duration::from_secs(5)));
    let mut head = Vec::new();
    let mut byte = [0u8; 1];
    while !head.ends_with(b"\r\n\r\n") && head.len() < 64 * 1024 {
        match client.read(&mut byte) {
            Ok(1) => head.push(byte[0]),
            _ => return,
        }
    }
    let content_length = std::str::from_utf8(&head)
        .ok()
        .and_then(|h| {
            h.lines().find_map(|l| {
                let (name, value) = l.split_once(':')?;
                name.trim()
                    .eq_ignore_ascii_case("content-length")
                    .then(|| value.trim().parse::<usize>().ok())?
            })
        })
        .unwrap_or(0);
    let mut body = vec![0u8; content_length];
    if client.read_exact(&mut body).is_err() {
        return;
    }
    let body = "{\"error\":\"chaos: injected 503 burst\"}";
    let _ = write!(
        client,
        "HTTP/1.1 503 Service Unavailable\r\nContent-Type: application/json\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len(),
    );
    let _ = client.flush();
    let _ = client.shutdown(std::net::Shutdown::Both);
}
