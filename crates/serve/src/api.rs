//! The JSON API over a [`FleetState`]: request/response bodies and the
//! endpoint dispatcher. Wire shapes reuse the workspace's `serde` models
//! (a record is the same `{"readings":[{"mac":…,"rssi":…}]}` JSON that
//! JSONL corpora carry), and the serving endpoints are *bit-identical*
//! to the in-process paths: `/v1/infer_batch` with seed `s` returns
//! exactly [`GraficsFleet::serve_batch`]`(records, s, threads)`, and
//! `/v1/infer` is the one-record batch (`record_rng(seed, 0)` stream).
//!
//! [`GraficsFleet::serve_batch`]: grafics_core::GraficsFleet::serve_batch

use crate::state::FleetState;
use grafics_core::{FleetError, FleetPrediction, RouterKind, WeightFunction};
use grafics_types::{BuildingId, SignalRecord};
use serde::{Deserialize, Serialize};

/// One served prediction on the wire.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PredictionBody {
    /// The shard that answered.
    pub building: u32,
    /// Predicted floor number (ground floor 0, basements negative).
    pub floor: i16,
    /// Human-readable floor name (`"GF"`, `"2F"`, `"B1"`).
    pub floor_name: String,
    /// ℓ2 distance to the winning centroid.
    pub distance: f64,
    /// Distance gap to the nearest different-floor cluster — `None` on
    /// single-floor shards, where the in-process margin is `+∞` (JSON
    /// has no infinities; `null` keeps the typed body deserializable).
    pub margin: Option<f64>,
    /// `true` if the answer came from the cross-shard broadcast
    /// fallback rather than the router.
    pub fallback: bool,
}

impl From<&FleetPrediction> for PredictionBody {
    fn from(p: &FleetPrediction) -> Self {
        PredictionBody {
            building: p.building.0,
            floor: p.floor.0,
            floor_name: p.floor.to_string(),
            distance: p.distance,
            margin: p.margin.is_finite().then_some(p.margin),
            fallback: p.fallback,
        }
    }
}

/// `POST /v1/infer_batch` response.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BatchBody {
    /// One slot per input record, in order; `null` where the record
    /// could not be routed or embedded.
    pub predictions: Vec<Option<PredictionBody>>,
    /// Count of non-null predictions.
    pub served: usize,
    /// `true` when part of the fleet was unreachable while answering —
    /// a router with Down backends excluded their shards, so `null`
    /// slots may be transient. A single process always has the full
    /// fleet in view and answers `false`.
    pub degraded: bool,
}

/// One shard's routing inventory in a `GET /v1/route_table` response:
/// enough for a router tier to reproduce this fleet's routing decision
/// bit-for-bit without holding any model state.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RouteTableEntry {
    /// The building this inventory belongs to.
    pub building: u32,
    /// The shard's publish epoch when the table was taken (a router can
    /// poll `/v1/stat` epochs to notice staleness).
    pub epoch: u64,
    /// The published AP inventory: every MAC the fleet router would
    /// count as an overlap, as raw 48-bit values, ascending.
    pub macs: Vec<u64>,
    /// The weight function of the shard's graph — what
    /// `WeightedOverlap` routing scores with.
    pub weight: WeightFunction,
}

/// `GET /v1/route_table` response.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RouteTableBody {
    /// Which routing rule this fleet applies.
    pub router: RouterKind,
    /// Per-shard inventories, ascending by building id.
    pub shards: Vec<RouteTableEntry>,
}

/// `POST /v1/absorb` response.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AbsorbBody {
    /// The shard that absorbed the record.
    pub building: u32,
    /// The record's id inside that shard (feeds retention bookkeeping).
    pub record_id: u32,
    /// Zero-based process-wide absorb sequence number (the RNG stream
    /// index of this absorb).
    pub seq: u64,
    /// Absorbs pending publish on that shard, after this one.
    pub pending: usize,
}

/// One `(building, epoch)` pair in a `POST /v1/publish` response.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EpochBody {
    /// The published shard.
    pub building: u32,
    /// Its publish epoch after the call.
    pub epoch: u64,
}

/// `POST /v1/publish` response.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PublishBody {
    /// The shards published by this call, ascending by building id.
    pub epochs: Vec<EpochBody>,
}

/// `GET /healthz` response.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HealthBody {
    /// `true` when the server is fully up; `false` (with a 503) while
    /// crash-recovery replay is still in progress.
    pub ok: bool,
    /// `"ok"`, or `"degraded"` during recovery replay.
    pub status: String,
    /// Shards in the served fleet.
    pub shards: usize,
    /// Seconds since the server started.
    pub uptime_secs: f64,
    /// Requests handled so far.
    pub requests: u64,
    /// Records absorbed so far.
    pub absorbs: u64,
}

/// `POST /v1/infer` request.
#[derive(Deserialize)]
pub struct InferRequest {
    /// The scan to serve.
    pub record: SignalRecord,
    /// RNG stream base seed (default 0).
    pub seed: Option<u64>,
    /// Broadcast to every shard when the router declines the record.
    pub fallback: Option<bool>,
    /// RNG stream index for the record (default 0). A router forwarding
    /// record `i` of a batch sets `i` so the answer is bit-identical to
    /// the single-process batch.
    pub index: Option<u64>,
}

/// `POST /v1/infer_batch` request.
#[derive(Deserialize)]
pub struct InferBatchRequest {
    /// The scans to serve, answered in order.
    pub records: Vec<SignalRecord>,
    /// RNG stream base seed (default 0).
    pub seed: Option<u64>,
    /// Worker threads for this batch (clamped to 1..=16).
    pub threads: Option<usize>,
    /// Broadcast unroutable records to every shard.
    pub fallback: Option<bool>,
    /// Per-record RNG stream indices (default `0..records.len()`). Set
    /// by a router splitting one logical batch across backends.
    pub indices: Option<Vec<u64>>,
}

/// `POST /v1/absorb` request.
#[derive(Deserialize)]
pub struct AbsorbRequest {
    /// The scan to absorb.
    pub record: SignalRecord,
    /// Absorb into this building, bypassing the router.
    pub building: Option<u32>,
}

/// `POST /v1/publish` request.
#[derive(Deserialize)]
pub struct PublishRequest {
    /// Publish only this building (default: every shard).
    pub building: Option<u32>,
}

/// An HTTP `(status, JSON body)` pair.
pub type ApiResult = (u16, String);

/// JSON responses (every endpoint except `/metrics`).
pub const CONTENT_TYPE_JSON: &str = "application/json";
/// The `/metrics` plaintext exposition format.
pub const CONTENT_TYPE_TEXT: &str = "text/plain; version=0.0.4";

fn json_body<T: Serialize>(value: &T) -> String {
    serde_json::to_string(value).unwrap_or_else(|_| "{}".to_owned())
}

/// Serializes into the reused response buffer; returns the status.
fn json_into<T: Serialize>(status: u16, value: &T, out: &mut String) -> u16 {
    if serde_json::to_string_into(value, out).is_err() {
        out.clear();
        out.push_str("{}");
    }
    status
}

pub(crate) fn error_body(status: u16, message: &str) -> ApiResult {
    (status, json_body(&serde_json::json!({ "error": message })))
}

/// Copies a cold-path error result into the reused buffer.
fn fill((status, body): ApiResult, out: &mut String) -> u16 {
    out.clear();
    out.push_str(&body);
    status
}

pub(crate) fn parse_json<T: serde::Deserialize>(body: &[u8]) -> Result<T, ApiResult> {
    let text =
        std::str::from_utf8(body).map_err(|_| error_body(400, "request body is not UTF-8"))?;
    serde_json::from_str(text).map_err(|e| error_body(400, &format!("invalid JSON: {e}")))
}

/// Re-validates a record that arrived over the wire (derived `serde`
/// bypasses [`SignalRecord::new`]'s sort/dedup/non-empty invariants).
pub(crate) fn sanitize(record: &SignalRecord) -> Result<SignalRecord, ApiResult> {
    SignalRecord::new(record.readings().to_vec())
        .map_err(|e| error_body(400, &format!("invalid record: {e}")))
}

/// What a handled request touched, for the structured access log: the
/// shard that answered (when one did) and whether the answer came from
/// the cross-shard broadcast fallback.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RequestMeta {
    /// The shard that answered/absorbed, if the endpoint resolved one.
    pub shard: Option<u32>,
    /// `true` if a serving answer came from the broadcast fallback.
    pub fallback: bool,
}

/// Constant-time bearer-token check: `authorization` must be exactly
/// `Bearer <token>`. The comparison XOR-folds over every byte of both
/// strings (padded to the longer length) so a mismatch at byte 0 and a
/// mismatch at byte N take the same time — no prefix oracle.
#[must_use]
pub fn bearer_token_matches(authorization: &str, token: &str) -> bool {
    let presented = authorization.strip_prefix("Bearer ").unwrap_or("");
    let a = presented.as_bytes();
    let b = token.as_bytes();
    let mut diff = a.len() ^ b.len();
    for i in 0..a.len().max(b.len()) {
        let x = a.get(i).copied().unwrap_or(0);
        let y = b.get(i).copied().unwrap_or(0);
        diff |= usize::from(x ^ y);
    }
    diff == 0
}

/// Routes one request to its handler. Unknown paths get 404; known paths
/// with the wrong method get 405.
#[must_use]
pub fn dispatch(state: &FleetState, method: &str, path: &str, body: &[u8]) -> ApiResult {
    let mut out = String::new();
    let (status, _content_type) = dispatch_into(state, method, path, body, &mut out);
    (status, out)
}

/// [`dispatch`] into a caller-owned response buffer (cleared first): a
/// worker reuses one buffer across every request of a keep-alive
/// connection, so the hot serving endpoints allocate no response string
/// per request. Returns `(status, content type)`. Also feeds the
/// per-endpoint counters behind `/metrics`.
#[must_use]
pub fn dispatch_into(
    state: &FleetState,
    method: &str,
    path: &str,
    body: &[u8],
    out: &mut String,
) -> (u16, &'static str) {
    let mut meta = RequestMeta::default();
    dispatch_meta(state, method, path, body, "", out, &mut meta)
}

/// [`dispatch_into`] that also reports [`RequestMeta`] — what the access
/// log wants to know beyond the status — and enforces bearer-token auth
/// on the write endpoints when the state carries a token
/// (`authorization` is the request's `Authorization` header verbatim,
/// `""` when absent).
#[must_use]
pub fn dispatch_meta(
    state: &FleetState,
    method: &str,
    path: &str,
    body: &[u8],
    authorization: &str,
    out: &mut String,
    meta: &mut RequestMeta,
) -> (u16, &'static str) {
    out.clear();
    *meta = RequestMeta::default();
    state.endpoints().count(path);
    // Writes mutate fleet state; when a token is configured they must
    // present it. Reads stay open — probers and dashboards keep working.
    if matches!(path, "/v1/absorb" | "/v1/publish")
        && state
            .auth_token()
            .is_some_and(|token| !bearer_token_matches(authorization, token))
    {
        let status = fill(
            error_body(401, "missing or invalid bearer token on a write endpoint"),
            out,
        );
        return (status, CONTENT_TYPE_JSON);
    }
    let status = match (method, path) {
        ("GET", "/healthz") => healthz(state, out),
        ("GET", "/metrics") => return (metrics(state, out), CONTENT_TYPE_TEXT),
        ("GET", "/v1/stat") => json_into(200, &state.fleet().stats(), out),
        ("GET", "/v1/route_table") => route_table(state, out),
        ("POST", "/v1/infer") => infer(state, body, out, meta).unwrap_or_else(|e| fill(e, out)),
        ("POST", "/v1/infer_batch") => {
            infer_batch(state, body, out).unwrap_or_else(|e| fill(e, out))
        }
        ("POST", "/v1/absorb") => absorb(state, body, out, meta).unwrap_or_else(|e| fill(e, out)),
        ("POST", "/v1/publish") => publish(state, body, out).unwrap_or_else(|e| fill(e, out)),
        (
            _,
            "/healthz" | "/metrics" | "/v1/stat" | "/v1/route_table" | "/v1/infer"
            | "/v1/infer_batch" | "/v1/absorb" | "/v1/publish",
        ) => fill(error_body(405, &format!("{method} not allowed here")), out),
        _ => fill(error_body(404, &format!("no route for {path}")), out),
    };
    (status, CONTENT_TYPE_JSON)
}

/// `GET /v1/route_table`: the fleet's routing rule plus each shard's
/// published AP inventory — what a router tier mirrors to route without
/// models.
fn route_table(state: &FleetState, out: &mut String) -> u16 {
    let fleet = state.fleet();
    let router = fleet.manifest().router;
    let mut shards = Vec::with_capacity(fleet.len());
    for (id, snap) in fleet.snapshots() {
        let graph = snap.graph();
        let mut macs: Vec<u64> = graph.macs().map(grafics_types::MacAddr::as_u64).collect();
        macs.sort_unstable();
        shards.push(RouteTableEntry {
            building: id.0,
            epoch: fleet.shard(id).map_or(0, |s| s.epoch()),
            macs,
            weight: graph.weight_function(),
        });
    }
    json_into(200, &RouteTableBody { router, shards }, out)
}

fn healthz(state: &FleetState, out: &mut String) -> u16 {
    // Degraded while recovery replay is still running: load balancers
    // should hold traffic until the durable state is fully restored.
    let recovering = state.is_recovering();
    json_into(
        if recovering { 503 } else { 200 },
        &HealthBody {
            ok: !recovering,
            status: if recovering { "degraded" } else { "ok" }.to_owned(),
            shards: state.fleet().len(),
            uptime_secs: state.uptime_secs(),
            requests: state.request_count(),
            absorbs: state.absorb_count(),
        },
        out,
    )
}

/// `GET /metrics`: the Prometheus-style plaintext exposition of the
/// serving counters, sharing [`FleetStats`](grafics_core::FleetStats)
/// with `/v1/stat` and `grafics fleet stat` — requests served, absorbs,
/// publish epochs, per-endpoint request counters, and per-shard gauges.
fn metrics(state: &FleetState, out: &mut String) -> u16 {
    use std::fmt::Write as _;
    let stats = state.fleet().stats();
    let w = |out: &mut String, name: &str, kind: &str, value: &dyn std::fmt::Display| {
        let _ = writeln!(out, "# TYPE {name} {kind}\n{name} {value}");
    };
    w(
        out,
        "grafics_requests_total",
        "counter",
        &state.request_count(),
    );
    w(
        out,
        "grafics_absorbs_total",
        "counter",
        &state.absorb_count(),
    );
    w(
        out,
        "grafics_publish_epochs_total",
        "counter",
        &stats.total_epochs(),
    );
    w(out, "grafics_uptime_seconds", "gauge", &state.uptime_secs());
    w(out, "grafics_shards", "gauge", &stats.shards.len());
    w(
        out,
        "grafics_resident_records",
        "gauge",
        &stats.total_resident_records(),
    );
    w(
        out,
        "grafics_pending_absorbs",
        "gauge",
        &stats.total_pending(),
    );
    let wal = state.fleet().wal_stats();
    w(out, "grafics_wal_appends_total", "counter", &wal.appends);
    w(out, "grafics_wal_fsyncs_total", "counter", &wal.fsyncs);
    w(out, "grafics_wal_tail_bytes", "gauge", &wal.tail_bytes);
    // Serving-path refinement counters (adaptive budget + f32 matching).
    let serve = state.fleet().serve_counters();
    w(
        out,
        "grafics_serve_refine_samples_total",
        "counter",
        &serve.refine_samples,
    );
    w(
        out,
        "grafics_serve_early_stops_total",
        "counter",
        &serve.early_stops,
    );
    w(
        out,
        "grafics_match_f32_fallbacks_total",
        "counter",
        &serve.f32_fallbacks,
    );
    // Floor-margin drift gauges: low quantiles of the recently served
    // margin distribution, the signal behind `RefreshTrigger::MarginDrop`.
    // Window follows the configured trigger (default 256). Exported as 0
    // until anything has been served so the names are always present.
    let window = state
        .fleet()
        .maintenance()
        .effective_trigger()
        .map_or(grafics_core::DEFAULT_MARGIN_WINDOW, |t| t.window());
    let (margin_p10, margin_p50) = state.fleet().margin_quantiles(window).unwrap_or((0.0, 0.0));
    w(out, "grafics_margin_p10", "gauge", &margin_p10);
    w(out, "grafics_margin_p50", "gauge", &margin_p50);
    w(
        out,
        "grafics_recoveries_total",
        "counter",
        &state.recovery_count(),
    );
    let _ = writeln!(out, "# TYPE grafics_requests counter");
    for (endpoint, count) in state.endpoints().snapshot() {
        let _ = writeln!(out, "grafics_requests{{endpoint=\"{endpoint}\"}} {count}");
    }
    let _ = writeln!(out, "# TYPE grafics_shard_records gauge");
    for shard in &stats.shards {
        let _ = writeln!(
            out,
            "grafics_shard_records{{building=\"{}\"}} {}",
            shard.building, shard.resident_records
        );
    }
    200
}

fn infer(
    state: &FleetState,
    body: &[u8],
    out: &mut String,
    meta: &mut RequestMeta,
) -> Result<u16, ApiResult> {
    let req: InferRequest = parse_json(body)?;
    let record = sanitize(&req.record)?;
    let seed = req.seed.unwrap_or(0);
    let records = [record];
    let indices = [req.index.unwrap_or(0)];
    let preds = if req.fallback.unwrap_or(false) {
        state
            .fleet()
            .serve_batch_indexed_with_fallback(&records, &indices, seed, 1)
    } else {
        state
            .fleet()
            .serve_batch_indexed(&records, &indices, seed, 1)
    };
    match &preds[0] {
        Some(p) => {
            meta.shard = Some(p.building.0);
            meta.fallback = p.fallback;
            Ok(json_into(200, &PredictionBody::from(p), out))
        }
        None => Err(error_body(
            422,
            "record overlaps no building in the fleet; discarded",
        )),
    }
}

fn infer_batch(state: &FleetState, body: &[u8], out: &mut String) -> Result<u16, ApiResult> {
    let req: InferBatchRequest = parse_json(body)?;
    let mut records = Vec::with_capacity(req.records.len());
    for r in &req.records {
        records.push(sanitize(r)?);
    }
    let seed = req.seed.unwrap_or(0);
    // The worker thread answering this request fans the batch out on the
    // shared rayon pool; the cap keeps one request from claiming an
    // unbounded number of workers.
    let threads = req.threads.unwrap_or(1).clamp(1, 16);
    if req
        .indices
        .as_ref()
        .is_some_and(|idx| idx.len() != records.len())
    {
        return Err(error_body(400, "indices length must match records length"));
    }
    let fallback = req.fallback.unwrap_or(false);
    let fleet = state.fleet();
    let preds = match (&req.indices, fallback) {
        (Some(idx), true) => fleet.serve_batch_indexed_with_fallback(&records, idx, seed, threads),
        (Some(idx), false) => fleet.serve_batch_indexed(&records, idx, seed, threads),
        (None, true) => fleet.serve_batch_with_fallback(&records, seed, threads),
        (None, false) => fleet.serve_batch(&records, seed, threads),
    };
    let predictions: Vec<Option<PredictionBody>> = preds
        .iter()
        .map(|p| p.as_ref().map(PredictionBody::from))
        .collect();
    let served = predictions.iter().flatten().count();
    Ok(json_into(
        200,
        &BatchBody {
            predictions,
            served,
            degraded: false,
        },
        out,
    ))
}

fn absorb(
    state: &FleetState,
    body: &[u8],
    out: &mut String,
    meta: &mut RequestMeta,
) -> Result<u16, ApiResult> {
    let req: AbsorbRequest = parse_json(body)?;
    let record = sanitize(&req.record)?;
    let seq = state.next_absorb_seq();
    // The durable path: journals the absorb before acknowledging when
    // the fleet has a WAL attached, and *is* the plain deterministic
    // absorb (same `record_rng(seed, seq)` stream) when it does not.
    let outcome = match req.building {
        Some(b) => state
            .fleet()
            .absorb_to_durable(BuildingId(b), &record, state.seed(), seq)
            .map(|rid| (BuildingId(b), rid)),
        None => state.fleet().absorb_durable(&record, state.seed(), seq),
    };
    let (building, rid) = outcome.map_err(|e| match e {
        FleetError::UnknownBuilding(_) => error_body(404, &e.to_string()),
        // A poisoned WAL must not acknowledge absorbs it cannot journal.
        FleetError::Durability(_) => error_body(503, &e.to_string()),
        _ => error_body(422, &e.to_string()),
    })?;
    meta.shard = Some(building.0);
    state.count_absorb_accepted();
    let pending = state
        .fleet()
        .shard(building)
        .map_or(0, |s| s.stats().pending);
    // Wake the maintenance daemon as soon as a publish threshold is
    // crossed, instead of waiting out its poll tick.
    if state
        .fleet()
        .maintenance()
        .publish_after_absorbs
        .is_some_and(|n| n > 0 && pending >= n)
    {
        state.cadence().notify();
    }
    Ok(json_into(
        200,
        &AbsorbBody {
            building: building.0,
            record_id: rid.0,
            seq,
            pending,
        },
        out,
    ))
}

fn publish(state: &FleetState, body: &[u8], out: &mut String) -> Result<u16, ApiResult> {
    let req: PublishRequest = if body.is_empty() {
        PublishRequest { building: None }
    } else {
        parse_json(body)?
    };
    let mut epochs = Vec::new();
    match req.building {
        Some(b) => {
            let shard = state
                .fleet()
                .shard(BuildingId(b))
                .ok_or_else(|| error_body(404, &format!("no shard for building b{b}")))?;
            epochs.push(EpochBody {
                building: b,
                epoch: shard.publish(),
            });
        }
        None => {
            for shard in state.fleet().shards() {
                epochs.push(EpochBody {
                    building: shard.id().0,
                    epoch: shard.publish(),
                });
            }
        }
    }
    Ok(json_into(200, &PublishBody { epochs }, out))
}
