//! `grafics-serve` — the network front end over a
//! [`GraficsFleet`](grafics_core::GraficsFleet): a std-only threaded
//! HTTP/1.1 server (no async runtime — every dependency in this build is
//! vendored) plus a background [`MaintenanceDaemon`] that owns the
//! publish/refresh cadence. This is what turns the repository from a
//! library into a deployable service: `grafics fleet serve --http ADDR`.
//!
//! # Endpoints
//!
//! | method | path | body | answer |
//! |---|---|---|---|
//! | `POST` | `/v1/infer` | `{"record": {...}, "seed"?, "fallback"?}` | building, floor, distance, margin |
//! | `POST` | `/v1/infer_batch` | `{"records": [...], "seed"?, "threads"?, "fallback"?}` | one slot per record |
//! | `POST` | `/v1/absorb` | `{"record": {...}, "building"?}` | routed building, record id, pending |
//! | `POST` | `/v1/publish` | `{"building"?}` or empty | new epochs |
//! | `GET` | `/v1/stat` | — | [`FleetStats`](grafics_core::FleetStats) |
//! | `GET` | `/healthz` | — | liveness + counters (503 `degraded` during recovery) |
//! | `GET` | `/metrics` | — | Prometheus-style counters, incl. `wal_*` and `recoveries_total` |
//!
//! When the fleet manifest carries a non-`Off`
//! [`DurabilityPolicy`](grafics_core::DurabilityPolicy), `/v1/absorb`
//! journals every accepted record to the per-shard write-ahead log
//! before acknowledging it, and a poisoned WAL turns absorbs into 503s
//! rather than acknowledging records it cannot make durable. Graceful
//! shutdown drains and fsyncs the WAL tail before `run` returns. With
//! `ServeConfig::access_log` set, every request appends one JSON line
//! (endpoint, method, status, latency µs, shard, fallback flag).
//!
//! Serving is **bit-identical to the in-process engine**: an
//! `/v1/infer_batch` call with seed `s` returns exactly
//! `GraficsFleet::serve_batch(records, s, threads)` (the floats survive
//! the JSON hop unchanged — the writer prints shortest-roundtrip
//! representations), and `/v1/infer` is the one-record batch. Absorbs
//! draw from the deterministic per-sequence streams `record_rng(seed,
//! i)`, so a replayed absorb log reproduces the same write-side state.
//!
//! # Architecture
//!
//! ```text
//!            accept loop (nonblocking, shutdown-aware)
//!                 │ bounded ConnQueue (backpressure)
//!        ┌────────┼──────────┐
//!    worker₁  worker₂ …  workerₙ     each: keep-alive request loop
//!        │        │          │        → api::dispatch → GraficsFleet
//!        └────────┴──────────┘
//!    MaintenanceDaemon: publish after N absorbs / T secs,
//!                       refresh write side every K publishes
//! ```
//!
//! Graceful shutdown ([`ServerHandle::shutdown`], or SIGINT/SIGTERM when
//! [`ServeConfig::handle_signals`] is set) stops accepting, answers
//! everything queued and in flight with `Connection: close`, then joins
//! workers and daemon.
//!
//! # Example
//!
//! ```
//! use grafics_core::{Grafics, GraficsConfig, GraficsFleet};
//! use grafics_data::BuildingModel;
//! use grafics_serve::{HttpClient, HttpServer, ServeConfig};
//! use grafics_types::BuildingId;
//! use rand::SeedableRng;
//!
//! let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(5);
//! let ds = BuildingModel::office("hq", 2).with_records_per_floor(30).simulate(&mut rng);
//! let train = ds.with_label_budget(4, &mut rng);
//! let model = Grafics::train(&train, &GraficsConfig::fast(), &mut rng).unwrap();
//! let mut fleet = GraficsFleet::new();
//! fleet.add_shard(BuildingId(0), model).unwrap();
//!
//! let server = HttpServer::bind(fleet, "127.0.0.1:0", ServeConfig::default()).unwrap();
//! let running = server.spawn().unwrap();
//! let mut client = HttpClient::connect(running.addr()).unwrap();
//! let (status, body) = client.get("/healthz").unwrap();
//! assert_eq!(status, 200);
//! assert!(body.contains("\"ok\":true"));
//! running.shutdown().unwrap();
//! ```

#![deny(unsafe_code)] // one documented exception: the SIGINT hook in `server::sig`
#![warn(missing_docs)]

pub mod api;
pub mod chaos;
mod client;
mod daemon;
pub mod health;
pub mod http;
pub mod router;
mod server;
mod state;

pub use api::{
    AbsorbBody, BatchBody, EpochBody, HealthBody, PredictionBody, PublishBody, RequestMeta,
    RouteTableBody, RouteTableEntry,
};
pub use chaos::{ChaosProxy, Fault};
pub use client::HttpClient;
pub use daemon::{MaintenanceDaemon, MaintenanceReport};
pub use health::{BackendStatus, Breaker, ProbeOutcome};
pub use router::{
    RouterConfig, RouterHandle, RouterReport, RouterRunning, RouterServer, RouterState,
};
pub use server::{HttpServer, RunningServer, ServeConfig, ServeReport, ServerHandle};
pub use state::{CadenceSignal, FleetState};
