//! Background maintenance over a served fleet: auto-publish after N
//! absorbs or T seconds, and periodic write-side refresh — the cadence a
//! `MaintenancePolicy` describes and a long-running deployment needs so
//! that no client ever has to call `/v1/publish` by hand.

use crate::state::FleetState;
use grafics_core::MaintenancePolicy;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// What the daemon did over its lifetime.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MaintenanceReport {
    /// Shard publishes triggered by the absorb-count or elapsed-time
    /// thresholds.
    pub publishes: u64,
    /// Write-side refreshes (each immediately followed by a publish).
    pub refreshes: u64,
}

/// A background thread enforcing a [`MaintenancePolicy`] over the
/// served fleet:
///
/// - **publish after N absorbs** — a shard whose pending-absorb count
///   reaches `publish_after_absorbs` is published; the absorb handler
///   nudges the daemon's [`CadenceSignal`](crate::state::CadenceSignal)
///   so the publish happens promptly, not at the next poll tick;
/// - **publish after T seconds** — a shard with *any* pending absorbs is
///   published once `publish_after_secs` have elapsed since its last
///   daemon publish, bounding staleness under a trickle of traffic;
/// - **refresh every K publishes** — before its K-th publish, a shard's
///   write side is re-trained ([`Shard::refresh_write_side`]) so the
///   published snapshot sheds the drift of frozen-background online
///   embedding;
/// - **drift-triggered refresh** — with a `refresh_trigger` set, a shard
///   whose served floor-margin p10 drops below the trigger ratio of its
///   post-refresh baseline ([`Shard::margin_refresh_due`]) is refreshed
///   and published immediately, independent of the blind cadence.
///
/// [`Shard::margin_refresh_due`]: grafics_core::Shard::margin_refresh_due
///
/// Publishing and refreshing run on this thread — the serve path never
/// pays for a model clone or a re-train. Refresh draws from the daemon's
/// own deterministic RNG stream (`seed`).
///
/// [`Shard::refresh_write_side`]: grafics_core::Shard::refresh_write_side
pub struct MaintenanceDaemon {
    stop: Arc<AtomicBool>,
    state: Arc<FleetState>,
    thread: JoinHandle<MaintenanceReport>,
}

impl MaintenanceDaemon {
    /// Spawns the daemon. `tick` is the poll interval for the timed
    /// knobs (the absorb-count knob is also signal-driven). A no-op
    /// policy ([`MaintenancePolicy::is_noop`]) spawns a thread that only
    /// waits for [`MaintenanceDaemon::stop`].
    #[must_use]
    pub fn spawn(
        state: Arc<FleetState>,
        policy: MaintenancePolicy,
        tick: Duration,
        seed: u64,
    ) -> Self {
        let stop = Arc::new(AtomicBool::new(false));
        let thread = {
            let state = Arc::clone(&state);
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || run(&state, policy, tick, seed, &stop))
        };
        MaintenanceDaemon {
            stop,
            state,
            thread,
        }
    }

    /// Stops the daemon after at most one more tick and returns what it
    /// did. Pending work is not flushed — publish explicitly if the
    /// final state must be visible.
    #[must_use]
    pub fn stop(self) -> MaintenanceReport {
        self.stop.store(true, Ordering::SeqCst);
        self.state.cadence().notify();
        self.thread.join().unwrap_or_default()
    }
}

fn run(
    state: &FleetState,
    policy: MaintenancePolicy,
    tick: Duration,
    seed: u64,
    stop: &AtomicBool,
) -> MaintenanceReport {
    let mut report = MaintenanceReport::default();
    let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 0x6d61_696e_7464_6165); // "maintdae"
    let shards = state.fleet().shards();
    let mut last_publish: Vec<Instant> = shards.iter().map(|_| Instant::now()).collect();
    let mut publishes_since_refresh: Vec<u32> = vec![0; shards.len()];

    while !stop.load(Ordering::SeqCst) {
        state.cadence().wait_timeout(tick);
        if stop.load(Ordering::SeqCst) {
            break;
        }
        if policy.is_noop() {
            continue;
        }
        for (i, shard) in shards.iter().enumerate() {
            // Drift trigger first: a shard whose served-margin p10 has
            // collapsed below its post-refresh baseline is re-trained and
            // published *now*, pending absorbs or not — the damage shows
            // in what is already being served, so waiting for the next
            // cadence publish only prolongs it.
            if let Some(trigger) = policy.effective_trigger() {
                if shard.margin_refresh_due(trigger) {
                    if shard.refresh_write_side(&mut rng).is_ok() {
                        report.refreshes += 1;
                    }
                    shard.publish();
                    last_publish[i] = Instant::now();
                    publishes_since_refresh[i] = 0;
                    report.publishes += 1;
                    continue;
                }
            }
            let pending = shard.stats().pending;
            // `Some(0)` thresholds are treated as disabled — otherwise
            // they would publish (a full model clone under the absorb
            // lock) on every tick with nothing pending.
            let due_count = policy
                .publish_after_absorbs
                .is_some_and(|n| n > 0 && pending >= n);
            let due_time = policy
                .publish_after_secs
                .is_some_and(|t| pending > 0 && last_publish[i].elapsed().as_secs_f64() >= t);
            if !(due_count || due_time) {
                continue;
            }
            publishes_since_refresh[i] += 1;
            if policy
                .refresh_every_publishes
                .is_some_and(|k| k > 0 && publishes_since_refresh[i] >= k)
            {
                // Refresh feeds the publish below: the new snapshot is
                // the re-trained model. A failed refresh (should not
                // happen on a trained shard) still publishes the
                // un-refreshed write side.
                if shard.refresh_write_side(&mut rng).is_ok() {
                    report.refreshes += 1;
                }
                publishes_since_refresh[i] = 0;
            }
            shard.publish();
            last_publish[i] = Instant::now();
            report.publishes += 1;
        }
    }
    report
}
