//! A minimal blocking HTTP/1.1 client over one keep-alive connection —
//! enough to drive the server from tests, the `http_smoke`/`wal_smoke`
//! benchmarks, and operator scripts without any external dependency. Not
//! a general client: no redirects, no TLS, no chunked responses (the
//! server never sends them).
//!
//! The client is hardened for flaky links: every socket carries read
//! *and* write timeouts, and **idempotent** requests (`GET` anything,
//! `POST /v1/infer*`, `/v1/stat`, `/healthz`, `/metrics`) that die on a
//! transport error are retried over a fresh connection with exponential
//! backoff plus jitter. `/v1/absorb` and `/v1/publish` are **never**
//! retried — a response lost after the server processed the request
//! would make a blind resend absorb the record twice.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
use std::time::{Duration, SystemTime};

/// One keep-alive connection to a `grafics-serve` endpoint, with
/// reconnect-and-retry on idempotent requests.
pub struct HttpClient {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
    addr: SocketAddr,
    read_timeout: Duration,
    write_timeout: Duration,
    /// Retry attempts allowed per idempotent request (0 disables).
    max_retries: u32,
    /// Base of the exponential backoff between retries.
    backoff_base: Duration,
    /// Reconnect-and-retry attempts actually performed (for tests and
    /// diagnostics).
    retries_performed: u64,
    /// Bearer token attached to every request (write endpoints require
    /// it when the server is token-protected).
    auth_token: Option<String>,
}

impl HttpClient {
    /// Connects to `addr` with the default hardening: 30 s read timeout,
    /// 10 s write timeout, up to 3 retries on idempotent requests with
    /// 25 ms base backoff.
    ///
    /// # Errors
    ///
    /// Propagates the resolve/connect error.
    pub fn connect<A: ToSocketAddrs>(addr: A) -> std::io::Result<Self> {
        let addr = addr.to_socket_addrs()?.next().ok_or_else(|| {
            std::io::Error::new(
                std::io::ErrorKind::InvalidInput,
                "address resolved to nothing",
            )
        })?;
        let read_timeout = Duration::from_secs(30);
        let write_timeout = Duration::from_secs(10);
        let stream = Self::open(addr, read_timeout, write_timeout)?;
        Ok(HttpClient {
            reader: BufReader::new(stream.try_clone()?),
            writer: stream,
            addr,
            read_timeout,
            write_timeout,
            max_retries: 3,
            backoff_base: Duration::from_millis(25),
            retries_performed: 0,
            auth_token: None,
        })
    }

    /// Attaches `Authorization: Bearer <token>` to every request
    /// (`None` stops sending the header).
    pub fn set_auth_token(&mut self, token: Option<String>) {
        self.auth_token = token;
    }

    /// Adjusts the socket timeouts (applied to the live connection and
    /// every reconnect).
    ///
    /// # Errors
    ///
    /// Propagates the socket error.
    pub fn set_timeouts(&mut self, read: Duration, write: Duration) -> std::io::Result<()> {
        self.read_timeout = read;
        self.write_timeout = write;
        self.writer.set_read_timeout(Some(read))?;
        self.writer.set_write_timeout(Some(write))
    }

    /// Adjusts the retry policy for idempotent requests: up to
    /// `max_retries` reconnect-and-resend attempts, exponentially backed
    /// off from `base` (plus jitter). `max_retries == 0` disables
    /// retrying entirely.
    pub fn set_retry_policy(&mut self, max_retries: u32, base: Duration) {
        self.max_retries = max_retries;
        self.backoff_base = base;
    }

    /// Reconnect-and-retry attempts this client has performed.
    #[must_use]
    pub fn retries_performed(&self) -> u64 {
        self.retries_performed
    }

    fn open(
        addr: SocketAddr,
        read_timeout: Duration,
        write_timeout: Duration,
    ) -> std::io::Result<TcpStream> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        stream.set_read_timeout(Some(read_timeout))?;
        stream.set_write_timeout(Some(write_timeout))?;
        Ok(stream)
    }

    fn reconnect(&mut self) -> std::io::Result<()> {
        let stream = Self::open(self.addr, self.read_timeout, self.write_timeout)?;
        self.reader = BufReader::new(stream.try_clone()?);
        self.writer = stream;
        Ok(())
    }

    /// `true` if a transport failure may be blindly resent: the request
    /// cannot have mutated fleet state. Absorb/publish are excluded — a
    /// lost *response* does not mean an unprocessed *request*.
    fn idempotent(method: &str, path: &str) -> bool {
        method == "GET" || path.starts_with("/v1/infer")
    }

    /// Exponential backoff with jitter: `base << attempt`, capped, plus
    /// up to ~25% random skew so a fleet of clients does not retry in
    /// lockstep. Jitter is seeded from the subsecond clock — no RNG
    /// dependency for the client.
    fn backoff(&self, attempt: u32) -> Duration {
        let base = self.backoff_base.max(Duration::from_millis(1));
        let exp = base.saturating_mul(1u32 << attempt.min(10));
        let capped = exp.min(Duration::from_secs(2));
        let nanos = SystemTime::now()
            .duration_since(SystemTime::UNIX_EPOCH)
            .unwrap_or_default()
            .subsec_nanos();
        let jitter = capped.as_micros() as u64 / 4;
        let skew = if jitter == 0 {
            0
        } else {
            u64::from(nanos) % jitter
        };
        capped + Duration::from_micros(skew)
    }

    /// Sends one request and reads the response; returns
    /// `(status, body)`. The connection stays open for the next call.
    /// Idempotent requests that die on a transport error are retried on
    /// a fresh connection (bounded, backed off); everything else fails
    /// fast.
    ///
    /// # Errors
    ///
    /// IO errors (after retries, where allowed), or `InvalidData` on a
    /// malformed response.
    pub fn request(
        &mut self,
        method: &str,
        path: &str,
        body: Option<&str>,
    ) -> std::io::Result<(u16, String)> {
        let retries = if Self::idempotent(method, path) {
            self.max_retries
        } else {
            0
        };
        let mut attempt = 0u32;
        loop {
            match self.request_once(method, path, body) {
                Ok(resp) => return Ok(resp),
                // A malformed-but-received response is a server bug, not
                // a transport flake: resending cannot help.
                Err(e) if e.kind() == std::io::ErrorKind::InvalidData => return Err(e),
                Err(e) => {
                    if attempt >= retries {
                        return Err(e);
                    }
                    std::thread::sleep(self.backoff(attempt));
                    attempt += 1;
                    self.retries_performed += 1;
                    // A dead reconnect target still counts down the
                    // attempts; keep trying until the budget runs out.
                    let _ = self.reconnect();
                }
            }
        }
    }

    fn request_once(
        &mut self,
        method: &str,
        path: &str,
        body: Option<&str>,
    ) -> std::io::Result<(u16, String)> {
        let body = body.unwrap_or("");
        write!(
            self.writer,
            "{method} {path} HTTP/1.1\r\nHost: grafics\r\nContent-Type: application/json\r\nContent-Length: {}\r\nConnection: keep-alive\r\n",
            body.len(),
        )?;
        if let Some(token) = &self.auth_token {
            write!(self.writer, "Authorization: Bearer {token}\r\n")?;
        }
        write!(self.writer, "\r\n{body}")?;
        self.writer.flush()?;
        self.read_response()
    }

    /// Convenience: `POST` with a JSON body.
    ///
    /// # Errors
    ///
    /// Same as [`HttpClient::request`].
    pub fn post(&mut self, path: &str, json: &str) -> std::io::Result<(u16, String)> {
        self.request("POST", path, Some(json))
    }

    /// Convenience: `GET`.
    ///
    /// # Errors
    ///
    /// Same as [`HttpClient::request`].
    pub fn get(&mut self, path: &str) -> std::io::Result<(u16, String)> {
        self.request("GET", path, None)
    }

    fn read_response(&mut self) -> std::io::Result<(u16, String)> {
        let malformed =
            |m: &str| std::io::Error::new(std::io::ErrorKind::InvalidData, m.to_owned());
        let mut line = String::new();
        if self.reader.read_line(&mut line)? == 0 {
            // Clean EOF before a status line: the server closed the
            // keep-alive connection (idle timeout, drain). Retryable.
            return Err(std::io::Error::new(
                std::io::ErrorKind::ConnectionAborted,
                "connection closed before response",
            ));
        }
        if !line.ends_with('\n') {
            // Bytes arrived but the line never terminated: the response
            // was torn mid-status-line. Without this check a tear after
            // `HTTP/1.1 200` would parse as a bodyless 200 — a phantom
            // ack for a write whose outcome is actually unknown.
            return Err(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "response torn mid-status-line",
            ));
        }
        // Skip any interim 1xx responses (the server sends 100 Continue
        // only when asked; tolerate it anyway).
        loop {
            let status: u16 = line
                .split(' ')
                .nth(1)
                .and_then(|s| s.parse().ok())
                .ok_or_else(|| malformed(&format!("bad status line {line:?}")))?;
            let mut content_length = 0usize;
            loop {
                let mut header = String::new();
                if self.reader.read_line(&mut header)? == 0 || !header.ends_with('\n') {
                    // EOF inside the header block is a tear, not an
                    // end-of-headers: the blank separator line never came.
                    return Err(std::io::Error::new(
                        std::io::ErrorKind::UnexpectedEof,
                        "response torn mid-headers",
                    ));
                }
                let header = header.trim_end();
                if header.is_empty() {
                    break;
                }
                if let Some((name, value)) = header.split_once(':') {
                    if name.trim().eq_ignore_ascii_case("content-length") {
                        content_length = value
                            .trim()
                            .parse()
                            .map_err(|_| malformed("bad content-length"))?;
                    }
                }
            }
            if (100..200).contains(&status) {
                line.clear();
                self.reader.read_line(&mut line)?;
                continue;
            }
            let mut body = vec![0u8; content_length];
            self.reader.read_exact(&mut body)?;
            let body = String::from_utf8(body).map_err(|_| malformed("body not UTF-8"))?;
            return Ok((status, body));
        }
    }
}
