//! A minimal blocking HTTP/1.1 client over one keep-alive connection —
//! enough to drive the server from tests, the `http_smoke` benchmark,
//! and operator scripts without any external dependency. Not a general
//! client: no redirects, no TLS, no chunked responses (the server never
//! sends them).

use std::io::{BufRead, BufReader, Read, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

/// One keep-alive connection to a `grafics-serve` endpoint.
pub struct HttpClient {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl HttpClient {
    /// Connects to `addr`.
    ///
    /// # Errors
    ///
    /// Propagates the connect error.
    pub fn connect<A: ToSocketAddrs>(addr: A) -> std::io::Result<Self> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        stream.set_read_timeout(Some(Duration::from_secs(30)))?;
        Ok(HttpClient {
            reader: BufReader::new(stream.try_clone()?),
            writer: stream,
        })
    }

    /// Sends one request and reads the response; returns
    /// `(status, body)`. The connection stays open for the next call.
    ///
    /// # Errors
    ///
    /// IO errors, or `InvalidData` on a malformed response.
    pub fn request(
        &mut self,
        method: &str,
        path: &str,
        body: Option<&str>,
    ) -> std::io::Result<(u16, String)> {
        let body = body.unwrap_or("");
        write!(
            self.writer,
            "{method} {path} HTTP/1.1\r\nHost: grafics\r\nContent-Type: application/json\r\nContent-Length: {}\r\nConnection: keep-alive\r\n\r\n{body}",
            body.len(),
        )?;
        self.writer.flush()?;
        self.read_response()
    }

    /// Convenience: `POST` with a JSON body.
    ///
    /// # Errors
    ///
    /// Same as [`HttpClient::request`].
    pub fn post(&mut self, path: &str, json: &str) -> std::io::Result<(u16, String)> {
        self.request("POST", path, Some(json))
    }

    /// Convenience: `GET`.
    ///
    /// # Errors
    ///
    /// Same as [`HttpClient::request`].
    pub fn get(&mut self, path: &str) -> std::io::Result<(u16, String)> {
        self.request("GET", path, None)
    }

    fn read_response(&mut self) -> std::io::Result<(u16, String)> {
        let malformed =
            |m: &str| std::io::Error::new(std::io::ErrorKind::InvalidData, m.to_owned());
        let mut line = String::new();
        self.reader.read_line(&mut line)?;
        // Skip any interim 1xx responses (the server sends 100 Continue
        // only when asked; tolerate it anyway).
        loop {
            let status: u16 = line
                .split(' ')
                .nth(1)
                .and_then(|s| s.parse().ok())
                .ok_or_else(|| malformed(&format!("bad status line {line:?}")))?;
            let mut content_length = 0usize;
            loop {
                let mut header = String::new();
                self.reader.read_line(&mut header)?;
                let header = header.trim_end();
                if header.is_empty() {
                    break;
                }
                if let Some((name, value)) = header.split_once(':') {
                    if name.trim().eq_ignore_ascii_case("content-length") {
                        content_length = value
                            .trim()
                            .parse()
                            .map_err(|_| malformed("bad content-length"))?;
                    }
                }
            }
            if (100..200).contains(&status) {
                line.clear();
                self.reader.read_line(&mut line)?;
                continue;
            }
            let mut body = vec![0u8; content_length];
            self.reader.read_exact(&mut body)?;
            let body = String::from_utf8(body).map_err(|_| malformed("body not UTF-8"))?;
            return Ok((status, body));
        }
    }
}
