//! Backend health tracking for the router tier: the active `/healthz`
//! prober's per-backend state machine and the per-backend circuit
//! breaker.
//!
//! Two independent mechanisms guard the hot path:
//!
//! - the **prober** (driven by the router's health thread) actively
//!   probes each backend's `/healthz` on a fixed cadence and flips the
//!   backend between [`BackendState::Up`] / [`BackendState::Degraded`] /
//!   [`BackendState::Down`] after configurable consecutive-result
//!   thresholds ([`HealthPolicy`]);
//! - the **breaker** reacts to request failures *on the hot path*, so a
//!   backend that dies between probe rounds stops costing per-request
//!   connect timeouts after a few consecutive failures — an open breaker
//!   makes a dead backend cost one table lookup. After a cooldown the
//!   breaker goes half-open: exactly one trial request is admitted, and
//!   its outcome closes or re-trips the breaker.
//!
//! A probe transition to Up resets the breaker: active evidence of
//! liveness outranks stale hot-path failures.

use grafics_types::{BackendState, BreakerPolicy, HealthPolicy};
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// What one `/healthz` probe observed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProbeOutcome {
    /// 200: the backend is serving.
    Healthy,
    /// The backend answered but is not ready (503 — e.g. WAL replay in
    /// progress). Alive, so it does not count towards Down.
    DegradedAlive,
    /// Connect/read failure or a non-health status: counts towards Down.
    Failed,
}

#[derive(Debug)]
struct HealthMachine {
    state: BackendState,
    consecutive_ok: u32,
    consecutive_failed: u32,
}

#[derive(Debug, Default)]
struct BreakerInner {
    consecutive_failures: u32,
    opened_at: Option<Instant>,
    half_open_inflight: bool,
}

/// The hot-path circuit breaker for one backend.
#[derive(Debug)]
pub struct Breaker {
    policy: BreakerPolicy,
    inner: Mutex<BreakerInner>,
    trips: AtomicU64,
}

impl Breaker {
    /// A closed breaker under `policy`.
    #[must_use]
    pub fn new(policy: BreakerPolicy) -> Self {
        Breaker {
            policy,
            inner: Mutex::new(BreakerInner::default()),
            trips: AtomicU64::new(0),
        }
    }

    /// May a request be sent now? Closed ⇒ yes. Open ⇒ no, until the
    /// cooldown elapses — then exactly one caller is admitted as the
    /// half-open trial (concurrent callers keep getting `false` until
    /// that trial reports back).
    #[must_use]
    pub fn admit(&self) -> bool {
        let mut inner = self.inner.lock().unwrap();
        match inner.opened_at {
            None => true,
            Some(at) => {
                if inner.half_open_inflight
                    || at.elapsed() < Duration::from_millis(self.policy.cooldown_ms)
                {
                    false
                } else {
                    inner.half_open_inflight = true;
                    true
                }
            }
        }
    }

    /// Reports a successful request: closes the breaker and zeroes the
    /// failure run.
    pub fn record_success(&self) {
        let mut inner = self.inner.lock().unwrap();
        inner.consecutive_failures = 0;
        inner.opened_at = None;
        inner.half_open_inflight = false;
    }

    /// Reports a failed request: extends the failure run and trips the
    /// breaker at the policy threshold (a failed half-open trial
    /// re-trips immediately, restarting the cooldown).
    pub fn record_failure(&self) {
        let mut inner = self.inner.lock().unwrap();
        inner.consecutive_failures = inner.consecutive_failures.saturating_add(1);
        let was_open = inner.opened_at.is_some();
        if inner.half_open_inflight || inner.consecutive_failures >= self.policy.failures_to_trip()
        {
            inner.opened_at = Some(Instant::now());
            inner.half_open_inflight = false;
            if !was_open {
                self.trips.fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    /// `true` while the breaker refuses (non-trial) traffic.
    #[must_use]
    pub fn is_open(&self) -> bool {
        self.inner.lock().unwrap().opened_at.is_some()
    }

    /// Non-consuming peek: would [`Breaker::admit`] say yes right now?
    /// Routing decisions use this so that *planning* a request does not
    /// claim the half-open trial slot — only an actual send (which will
    /// report back success or failure) consumes it via `admit`.
    #[must_use]
    pub fn would_admit(&self) -> bool {
        let inner = self.inner.lock().unwrap();
        match inner.opened_at {
            None => true,
            Some(at) => {
                !inner.half_open_inflight
                    && at.elapsed() >= Duration::from_millis(self.policy.cooldown_ms)
            }
        }
    }

    /// Force-closes the breaker (a probe saw the backend healthy).
    pub fn reset(&self) {
        let mut inner = self.inner.lock().unwrap();
        *inner = BreakerInner::default();
    }

    /// Times the breaker has tripped open.
    #[must_use]
    pub fn trips(&self) -> u64 {
        self.trips.load(Ordering::Relaxed)
    }
}

/// Everything the router tracks about one backend: identity, the
/// prober's state machine, the breaker, and counters for `/metrics`.
#[derive(Debug)]
pub struct BackendStatus {
    name: String,
    addr: SocketAddr,
    machine: Mutex<HealthMachine>,
    /// The breaker guarding this backend's hot path.
    pub breaker: Breaker,
    probes: AtomicU64,
    transitions: AtomicU64,
    /// Set on an Up transition (and at birth): the router should
    /// (re)fetch this backend's `/v1/route_table`.
    table_dirty: AtomicBool,
}

impl BackendStatus {
    /// A new backend, optimistically Up (the breaker shields the hot
    /// path if it is actually dead; the prober demotes it within
    /// `fail_threshold` rounds).
    #[must_use]
    pub fn new(name: String, addr: SocketAddr, breaker: BreakerPolicy) -> Self {
        BackendStatus {
            name,
            addr,
            machine: Mutex::new(HealthMachine {
                state: BackendState::Up,
                consecutive_ok: 0,
                consecutive_failed: 0,
            }),
            breaker: Breaker::new(breaker),
            probes: AtomicU64::new(0),
            transitions: AtomicU64::new(0),
            table_dirty: AtomicBool::new(true),
        }
    }

    /// The backend's stable name (metrics label, `/v1/stat`).
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The backend's listener address.
    #[must_use]
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Current prober state.
    #[must_use]
    pub fn state(&self) -> BackendState {
        self.machine.lock().unwrap().state
    }

    /// `true` when the router may send this backend traffic right now:
    /// the prober says Up *and* the breaker admits (an admitted call on
    /// an open breaker is the half-open trial). **Consuming**: call only
    /// when a request will actually be sent, so a claimed trial slot is
    /// always resolved by `record_success`/`record_failure`.
    #[must_use]
    pub fn admit(&self) -> bool {
        self.state().is_routable() && self.breaker.admit()
    }

    /// Non-consuming admission peek for routing *decisions* (which
    /// backends to include in a plan) — see [`Breaker::would_admit`].
    #[must_use]
    pub fn routable(&self) -> bool {
        self.state().is_routable() && self.breaker.would_admit()
    }

    /// Probes sent to this backend.
    #[must_use]
    pub fn probe_count(&self) -> u64 {
        self.probes.load(Ordering::Relaxed)
    }

    /// State transitions observed.
    #[must_use]
    pub fn transition_count(&self) -> u64 {
        self.transitions.load(Ordering::Relaxed)
    }

    /// Takes (and clears) the "route table needs refetching" flag.
    pub fn take_table_dirty(&self) -> bool {
        self.table_dirty.swap(false, Ordering::SeqCst)
    }

    /// Re-flags the route table as dirty (a fetch failed; retry later).
    pub fn mark_table_dirty(&self) {
        self.table_dirty.store(true, Ordering::SeqCst);
    }

    /// Feeds one probe outcome through the state machine; returns the
    /// new state when this probe caused a transition. An Up transition
    /// resets the breaker and marks the route table dirty.
    pub fn apply_probe(
        &self,
        outcome: ProbeOutcome,
        policy: &HealthPolicy,
    ) -> Option<BackendState> {
        self.probes.fetch_add(1, Ordering::Relaxed);
        let mut m = self.machine.lock().unwrap();
        let next = match outcome {
            ProbeOutcome::Healthy => {
                m.consecutive_ok = m.consecutive_ok.saturating_add(1);
                m.consecutive_failed = 0;
                (m.state != BackendState::Up
                    // Degraded means "alive but not ready": the moment it
                    // reports healthy it is safe again — no full ladder.
                    && (m.consecutive_ok >= policy.successes_to_up()
                        || m.state == BackendState::Degraded))
                    .then_some(BackendState::Up)
            }
            ProbeOutcome::DegradedAlive => {
                m.consecutive_ok = 0;
                m.consecutive_failed = 0;
                (m.state != BackendState::Degraded).then_some(BackendState::Degraded)
            }
            ProbeOutcome::Failed => {
                m.consecutive_ok = 0;
                m.consecutive_failed = m.consecutive_failed.saturating_add(1);
                (m.state != BackendState::Down && m.consecutive_failed >= policy.failures_to_down())
                    .then_some(BackendState::Down)
            }
        };
        if let Some(state) = next {
            m.state = state;
            self.transitions.fetch_add(1, Ordering::Relaxed);
            if state == BackendState::Up {
                self.breaker.reset();
                self.table_dirty.store(true, Ordering::SeqCst);
            }
        }
        next
    }
}

/// One active `/healthz` probe over a fresh connection: connect with a
/// timeout, send the request, classify the status line. Std-only and
/// allocation-light — this runs every probe interval for every backend.
#[must_use]
pub fn probe_healthz(addr: SocketAddr, timeout: Duration) -> ProbeOutcome {
    let Ok(stream) = TcpStream::connect_timeout(&addr, timeout) else {
        return ProbeOutcome::Failed;
    };
    if stream.set_read_timeout(Some(timeout)).is_err()
        || stream.set_write_timeout(Some(timeout)).is_err()
    {
        return ProbeOutcome::Failed;
    }
    let mut writer = stream;
    if writer
        .write_all(b"GET /healthz HTTP/1.1\r\nHost: grafics\r\nConnection: close\r\n\r\n")
        .is_err()
    {
        return ProbeOutcome::Failed;
    }
    let Ok(reader) = writer.try_clone() else {
        return ProbeOutcome::Failed;
    };
    let mut line = String::new();
    if BufReader::new(reader).read_line(&mut line).is_err() {
        return ProbeOutcome::Failed;
    }
    match line.split(' ').nth(1).and_then(|s| s.parse::<u16>().ok()) {
        Some(200) => ProbeOutcome::Healthy,
        Some(503) => ProbeOutcome::DegradedAlive,
        _ => ProbeOutcome::Failed,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn status() -> BackendStatus {
        BackendStatus::new(
            "b".to_owned(),
            "127.0.0.1:1".parse().unwrap(),
            BreakerPolicy {
                trip_threshold: 2,
                cooldown_ms: 10,
            },
        )
    }

    #[test]
    fn probe_ladder_down_and_up() {
        let s = status();
        let policy = HealthPolicy {
            probe_interval_ms: 10,
            probe_timeout_ms: 10,
            fail_threshold: 2,
            recover_threshold: 2,
        };
        assert_eq!(s.state(), BackendState::Up);
        assert_eq!(s.apply_probe(ProbeOutcome::Failed, &policy), None);
        assert_eq!(
            s.apply_probe(ProbeOutcome::Failed, &policy),
            Some(BackendState::Down)
        );
        // One healthy probe is not enough to come back…
        assert_eq!(s.apply_probe(ProbeOutcome::Healthy, &policy), None);
        assert_eq!(s.state(), BackendState::Down);
        // …two are.
        assert_eq!(
            s.apply_probe(ProbeOutcome::Healthy, &policy),
            Some(BackendState::Up)
        );
        assert_eq!(s.probe_count(), 4);
        assert_eq!(s.transition_count(), 2);
    }

    #[test]
    fn degraded_is_sticky_until_healthy() {
        let s = status();
        let policy = HealthPolicy::default();
        assert_eq!(
            s.apply_probe(ProbeOutcome::DegradedAlive, &policy),
            Some(BackendState::Degraded)
        );
        // Degraded does not decay to Down on more 503s…
        assert_eq!(s.apply_probe(ProbeOutcome::DegradedAlive, &policy), None);
        assert_eq!(s.state(), BackendState::Degraded);
        // …and one healthy probe re-admits (alive the whole time).
        assert_eq!(
            s.apply_probe(ProbeOutcome::Healthy, &policy),
            Some(BackendState::Up)
        );
    }

    #[test]
    fn breaker_trips_half_opens_and_closes() {
        let b = Breaker::new(BreakerPolicy {
            trip_threshold: 2,
            cooldown_ms: 20,
        });
        assert!(b.admit());
        b.record_failure();
        assert!(!b.is_open());
        b.record_failure();
        assert!(b.is_open());
        assert_eq!(b.trips(), 1);
        // Open: nothing admitted before the cooldown.
        assert!(!b.admit());
        std::thread::sleep(Duration::from_millis(25));
        // Half-open: exactly one trial.
        assert!(b.admit());
        assert!(!b.admit());
        b.record_success();
        assert!(!b.is_open());
        assert!(b.admit());
    }

    #[test]
    fn failed_trial_retrips_without_counting_twice() {
        let b = Breaker::new(BreakerPolicy {
            trip_threshold: 1,
            cooldown_ms: 10,
        });
        b.record_failure();
        assert!(b.is_open());
        std::thread::sleep(Duration::from_millis(15));
        assert!(b.admit());
        b.record_failure();
        assert!(b.is_open());
        assert_eq!(b.trips(), 1, "re-trip extends the same outage");
        assert!(!b.admit());
    }

    #[test]
    fn up_transition_resets_breaker_and_dirties_table() {
        let s = status();
        let policy = HealthPolicy {
            fail_threshold: 1,
            recover_threshold: 1,
            ..HealthPolicy::default()
        };
        assert!(s.take_table_dirty(), "dirty at birth");
        s.breaker.record_failure();
        s.breaker.record_failure();
        assert!(s.breaker.is_open());
        s.apply_probe(ProbeOutcome::Failed, &policy);
        assert_eq!(s.state(), BackendState::Down);
        assert!(!s.admit());
        s.apply_probe(ProbeOutcome::Healthy, &policy);
        assert_eq!(s.state(), BackendState::Up);
        assert!(!s.breaker.is_open(), "probe recovery closes the breaker");
        assert!(s.take_table_dirty(), "recovery re-fetches the table");
        assert!(s.admit());
    }
}
