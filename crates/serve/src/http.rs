//! A minimal HTTP/1.1 layer over blocking std TCP: request parsing with
//! hard size limits, keep-alive bookkeeping, `Expect: 100-continue`, and
//! response writing. Deliberately tiny — the API surface is six JSON
//! endpoints served by a worker pool, not a general web framework — and
//! std-only, because this build environment vendors every dependency.
//!
//! Unsupported on purpose: chunked transfer encoding (501), HTTP/2,
//! TLS (terminate upstream), multipart. Oversized heads and bodies are
//! rejected with 431/413 *before* any allocation proportional to the
//! claimed size beyond the limit.

use std::io::{BufRead, ErrorKind, Write};

/// Parsing limits, from [`crate::ServeConfig`].
#[derive(Debug, Clone, Copy)]
pub struct Limits {
    /// Maximum bytes of request line + headers.
    pub max_head_bytes: usize,
    /// Maximum bytes of request body (`Content-Length`).
    pub max_body_bytes: usize,
}

/// One parsed HTTP request. Designed for reuse: a worker keeps one
/// `Request` per connection and refills it via [`read_request_into`],
/// so the head, method, path, and body buffers are allocated once per
/// connection instead of once per request.
#[derive(Debug, Default)]
pub struct Request {
    /// Upper-cased method (`GET`, `POST`, …).
    pub method: String,
    /// The path component as sent (query strings are not split off; the
    /// API routes on exact paths).
    pub path: String,
    /// The request body (empty if no `Content-Length`).
    pub body: Vec<u8>,
    /// Whether the client asked to keep the connection open.
    pub keep_alive: bool,
    /// The `Authorization` header verbatim, if the client sent one
    /// (empty = absent; reused like the other buffers).
    pub authorization: String,
    /// Reused buffer for the raw request line + headers.
    head: Vec<u8>,
}

impl Request {
    /// Fresh reusable buffers.
    #[must_use]
    pub fn new() -> Self {
        Request::default()
    }
}

/// Why a request could not be parsed.
#[derive(Debug)]
pub enum RequestError {
    /// The peer closed (or timed out) mid-request — nothing to answer.
    Closed,
    /// Request line + headers exceed [`Limits::max_head_bytes`].
    HeadTooLarge,
    /// `Content-Length` exceeds [`Limits::max_body_bytes`].
    BodyTooLarge(usize),
    /// Syntactically invalid request.
    Malformed(String),
    /// Syntactically valid but unsupported (e.g. chunked encoding).
    Unsupported(String),
}

impl RequestError {
    /// The `(status, message)` to answer with, or `None` when the
    /// connection is already gone.
    #[must_use]
    pub fn response(&self) -> Option<(u16, String)> {
        match self {
            RequestError::Closed => None,
            RequestError::HeadTooLarge => Some((431, "request head too large".to_owned())),
            RequestError::BodyTooLarge(limit) => {
                Some((413, format!("request body exceeds the {limit}-byte limit")))
            }
            RequestError::Malformed(m) => Some((400, format!("malformed request: {m}"))),
            RequestError::Unsupported(m) => Some((501, format!("unsupported: {m}"))),
        }
    }
}

/// Reads one request off a keep-alive connection. `Ok(None)` means the
/// peer closed (or went idle past the read timeout) *between* requests —
/// a clean end of the connection, nothing to answer.
///
/// `writer` is needed for the interim `100 Continue` response: clients
/// like `curl` pause before sending larger bodies until the server waves
/// them on.
///
/// # Errors
///
/// See [`RequestError`]; [`RequestError::response`] maps each variant to
/// the status to answer with.
pub fn read_request<R: BufRead, W: Write>(
    reader: &mut R,
    writer: &mut W,
    limits: &Limits,
) -> Result<Option<Request>, RequestError> {
    let mut req = Request::new();
    Ok(read_request_into(reader, writer, limits, &mut req)?.then_some(req))
}

/// [`read_request`] into caller-owned buffers: `req`'s head, method,
/// path, and body are cleared and refilled, so a keep-alive connection
/// parses every request into the same allocations. Returns `Ok(false)`
/// on a clean close between requests (the `Ok(None)` of
/// [`read_request`]).
///
/// # Errors
///
/// See [`RequestError`].
pub fn read_request_into<R: BufRead, W: Write>(
    reader: &mut R,
    writer: &mut W,
    limits: &Limits,
    req: &mut Request,
) -> Result<bool, RequestError> {
    let mut head = std::mem::take(&mut req.head);
    if !read_head(reader, limits.max_head_bytes, &mut head)? {
        req.head = head;
        return Ok(false);
    }
    let result = parse_into(&head, reader, writer, limits, req);
    req.head = head;
    result.map(|()| true)
}

/// Parses one raw head (+ streams the body) into `req`'s reused fields.
fn parse_into<R: BufRead, W: Write>(
    head: &[u8],
    reader: &mut R,
    writer: &mut W,
    limits: &Limits,
    req: &mut Request,
) -> Result<(), RequestError> {
    let head = std::str::from_utf8(head)
        .map_err(|_| RequestError::Malformed("head is not UTF-8".to_owned()))?;
    let mut lines = head.split("\r\n");
    let request_line = lines.next().unwrap_or_default();
    let mut parts = request_line.split(' ');
    let (Some(method), Some(path), Some(version)) = (parts.next(), parts.next(), parts.next())
    else {
        return Err(RequestError::Malformed(format!(
            "bad request line {request_line:?}"
        )));
    };
    if parts.next().is_some() {
        return Err(RequestError::Malformed(format!(
            "bad request line {request_line:?}"
        )));
    }
    let http11 = match version {
        "HTTP/1.1" => true,
        "HTTP/1.0" => false,
        other => {
            return Err(RequestError::Unsupported(format!("version {other:?}")));
        }
    };

    let mut content_length = 0usize;
    let mut keep_alive = http11;
    let mut expect_continue = false;
    req.authorization.clear();
    for line in lines {
        if line.is_empty() {
            continue; // the blank terminator
        }
        let Some((name, value)) = line.split_once(':') else {
            return Err(RequestError::Malformed(format!("bad header {line:?}")));
        };
        let name = name.trim().to_ascii_lowercase();
        let value = value.trim();
        match name.as_str() {
            "content-length" => {
                content_length = value
                    .parse()
                    .map_err(|_| RequestError::Malformed(format!("content-length {value:?}")))?;
            }
            "transfer-encoding" => {
                return Err(RequestError::Unsupported(
                    "transfer-encoding (send Content-Length)".to_owned(),
                ));
            }
            "connection" => {
                if value.eq_ignore_ascii_case("close") {
                    keep_alive = false;
                } else if value.eq_ignore_ascii_case("keep-alive") {
                    keep_alive = true;
                }
            }
            "expect" => expect_continue = value.eq_ignore_ascii_case("100-continue"),
            "authorization" => req.authorization.push_str(value),
            _ => {}
        }
    }
    if content_length > limits.max_body_bytes {
        return Err(RequestError::BodyTooLarge(limits.max_body_bytes));
    }

    req.body.clear();
    req.body.resize(content_length, 0);
    if content_length > 0 {
        if expect_continue {
            let _ = writer.write_all(b"HTTP/1.1 100 Continue\r\n\r\n");
            let _ = writer.flush();
        }
        reader
            .read_exact(&mut req.body)
            .map_err(|_| RequestError::Closed)?;
    }
    req.method.clear();
    req.method.push_str(method);
    req.path.clear();
    req.path.push_str(path);
    req.keep_alive = keep_alive;
    Ok(())
}

/// Reads bytes up to and including the `\r\n\r\n` head terminator into
/// the reused `head` buffer (cleared first). `Ok(false)` on EOF/timeout
/// before the first byte.
fn read_head<R: BufRead>(
    reader: &mut R,
    max: usize,
    head: &mut Vec<u8>,
) -> Result<bool, RequestError> {
    head.clear();
    let mut byte = [0u8; 1];
    loop {
        match reader.read(&mut byte) {
            Ok(0) => {
                return if head.is_empty() {
                    Ok(false)
                } else {
                    Err(RequestError::Closed)
                };
            }
            Ok(_) => {
                if head.len() >= max {
                    return Err(RequestError::HeadTooLarge);
                }
                head.push(byte[0]);
                if head.ends_with(b"\r\n\r\n") {
                    return Ok(true);
                }
            }
            Err(e) if e.kind() == ErrorKind::Interrupted => {}
            Err(e)
                if head.is_empty()
                    && matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) =>
            {
                // Idle keep-alive connection hit the read timeout.
                return Ok(false);
            }
            Err(_) => return Err(RequestError::Closed),
        }
    }
}

/// The reason phrase for the statuses this server emits.
#[must_use]
pub fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        401 => "Unauthorized",
        404 => "Not Found",
        405 => "Method Not Allowed",
        413 => "Payload Too Large",
        422 => "Unprocessable Entity",
        429 => "Too Many Requests",
        431 => "Request Header Fields Too Large",
        500 => "Internal Server Error",
        501 => "Not Implemented",
        502 => "Bad Gateway",
        503 => "Service Unavailable",
        504 => "Gateway Timeout",
        _ => "",
    }
}

/// Writes one JSON response (status line, minimal headers, body).
///
/// # Errors
///
/// Propagates the underlying IO error (the connection is then dropped).
pub fn write_response<W: Write>(
    writer: &mut W,
    status: u16,
    body: &str,
    keep_alive: bool,
) -> std::io::Result<()> {
    write_response_typed(writer, status, "application/json", body, keep_alive)
}

/// [`write_response`] with an explicit `Content-Type` (the `/metrics`
/// endpoint answers plaintext).
///
/// # Errors
///
/// Propagates the underlying IO error (the connection is then dropped).
pub fn write_response_typed<W: Write>(
    writer: &mut W,
    status: u16,
    content_type: &str,
    body: &str,
    keep_alive: bool,
) -> std::io::Result<()> {
    write_response_extra(writer, status, content_type, &[], body, keep_alive)
}

/// [`write_response_typed`] with extra response headers, each a
/// `(name, value)` pair — e.g. the `Retry-After` hint on a 429.
///
/// # Errors
///
/// Propagates the underlying IO error (the connection is then dropped).
pub fn write_response_extra<W: Write>(
    writer: &mut W,
    status: u16,
    content_type: &str,
    extra_headers: &[(&str, &str)],
    body: &str,
    keep_alive: bool,
) -> std::io::Result<()> {
    write!(
        writer,
        "HTTP/1.1 {status} {}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: {}\r\n",
        reason(status),
        body.len(),
        if keep_alive { "keep-alive" } else { "close" },
    )?;
    for (name, value) in extra_headers {
        write!(writer, "{name}: {value}\r\n")?;
    }
    writer.write_all(b"\r\n")?;
    writer.write_all(body.as_bytes())?;
    writer.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    const LIMITS: Limits = Limits {
        max_head_bytes: 1024,
        max_body_bytes: 64,
    };

    fn parse(raw: &str) -> Result<Option<Request>, RequestError> {
        let mut sink = Vec::new();
        read_request(
            &mut Cursor::new(raw.as_bytes().to_vec()),
            &mut sink,
            &LIMITS,
        )
    }

    #[test]
    fn parses_post_with_body() {
        let req = parse("POST /v1/infer HTTP/1.1\r\nContent-Length: 2\r\n\r\n{}")
            .unwrap()
            .unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/v1/infer");
        assert_eq!(req.body, b"{}");
        assert!(req.keep_alive);
    }

    #[test]
    fn connection_close_and_http10() {
        let req = parse("GET /healthz HTTP/1.1\r\nConnection: close\r\n\r\n")
            .unwrap()
            .unwrap();
        assert!(!req.keep_alive);
        let req = parse("GET /healthz HTTP/1.0\r\n\r\n").unwrap().unwrap();
        assert!(!req.keep_alive);
    }

    #[test]
    fn rejects_oversized_body_and_head() {
        assert!(matches!(
            parse("POST /x HTTP/1.1\r\nContent-Length: 65\r\n\r\n"),
            Err(RequestError::BodyTooLarge(64))
        ));
        let huge = format!("GET /x HTTP/1.1\r\nX-Pad: {}\r\n\r\n", "a".repeat(2048));
        assert!(matches!(parse(&huge), Err(RequestError::HeadTooLarge)));
    }

    #[test]
    fn rejects_malformed_and_unsupported() {
        assert!(matches!(
            parse("nonsense\r\n\r\n"),
            Err(RequestError::Malformed(_))
        ));
        assert!(matches!(
            parse("GET /x HTTP/2\r\n\r\n"),
            Err(RequestError::Unsupported(_))
        ));
        assert!(matches!(
            parse("POST /x HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n"),
            Err(RequestError::Unsupported(_))
        ));
        assert!(matches!(
            parse("POST /x HTTP/1.1\r\nContent-Length: many\r\n\r\n"),
            Err(RequestError::Malformed(_))
        ));
    }

    #[test]
    fn captures_authorization_header() {
        let req = parse("GET /v1/stat HTTP/1.1\r\nAuthorization: Bearer sesame\r\n\r\n")
            .unwrap()
            .unwrap();
        assert_eq!(req.authorization, "Bearer sesame");
        let req = parse("GET /v1/stat HTTP/1.1\r\n\r\n").unwrap().unwrap();
        assert!(req.authorization.is_empty());
    }

    #[test]
    fn extra_headers_are_emitted() {
        let mut out = Vec::new();
        write_response_extra(
            &mut out,
            429,
            "application/json",
            &[("Retry-After", "1")],
            "{}",
            true,
        )
        .unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(
            text.starts_with("HTTP/1.1 429 Too Many Requests\r\n"),
            "{text}"
        );
        assert!(text.contains("Retry-After: 1\r\n"), "{text}");
        assert!(text.ends_with("\r\n\r\n{}"), "{text}");
    }

    #[test]
    fn clean_eof_is_none() {
        assert!(parse("").unwrap().is_none());
    }

    /// Two keep-alive requests parse into the same reused `Request`
    /// without leaking state from the first into the second.
    #[test]
    fn request_buffers_are_reused_across_requests() {
        let raw = "POST /v1/absorb HTTP/1.1\r\nContent-Length: 9\r\n\r\nfirstbody\
                   GET /healthz HTTP/1.1\r\n\r\n";
        let mut reader = Cursor::new(raw.as_bytes().to_vec());
        let mut sink = Vec::new();
        let mut req = Request::new();
        assert!(read_request_into(&mut reader, &mut sink, &LIMITS, &mut req).unwrap());
        assert_eq!(
            (req.method.as_str(), req.path.as_str()),
            ("POST", "/v1/absorb")
        );
        assert_eq!(req.body, b"firstbody");
        assert!(read_request_into(&mut reader, &mut sink, &LIMITS, &mut req).unwrap());
        assert_eq!(
            (req.method.as_str(), req.path.as_str()),
            ("GET", "/healthz")
        );
        assert!(req.body.is_empty(), "body cleared between requests");
        assert!(!read_request_into(&mut reader, &mut sink, &LIMITS, &mut req).unwrap());
    }

    #[test]
    fn response_shape() {
        let mut out = Vec::new();
        write_response(&mut out, 200, "{\"ok\":true}", true).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"), "{text}");
        assert!(text.contains("Content-Length: 11\r\n"), "{text}");
        assert!(text.contains("Connection: keep-alive\r\n"), "{text}");
        assert!(text.ends_with("{\"ok\":true}"), "{text}");
    }
}
