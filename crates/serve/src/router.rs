//! The fault-tolerant router tier: a process that owns **no models** —
//! only the fleet's routing inventory — and proxies `/v1/*` to
//! per-building backend processes over the same HTTP protocol the
//! single-process server speaks.
//!
//! ```text
//!                      clients (HTTP/1.1)
//!                            │
//!                   ┌────────▼────────┐
//!                   │  RouterServer   │  auth · rate limit · metrics
//!                   │  RouteIndex     │  mirror of /v1/route_table
//!                   │  health prober  │  Up / Degraded / Down
//!                   │  circuit breaker│  per backend
//!                   └──┬─────┬─────┬──┘
//!                      │     │     │   keep-alive pools, deadlines,
//!                   backend₁ … backendₙ  budgeted idempotent retries
//! ```
//!
//! # Bit-identical proxying
//!
//! The router mirrors each backend's `GET /v1/route_table` (published AP
//! inventory + weight function per building) and reproduces the fleet
//! router's decision *exactly* — same strict-greater comparison, same
//! ascending-building-id tie-break, same `f64` accumulation order for
//! weighted overlap. A routed record is forwarded with its original RNG
//! stream index (`index`/`indices` on the infer endpoints), so a proxied
//! fleet answers **bit-for-bit** what a single process holding every
//! shard would answer. Cross-backend fallback merges per-backend
//! broadcast winners by strict-smaller distance with the same
//! ascending-id tie-break, composing to the single-process broadcast.
//!
//! # Degraded mode
//!
//! A Down backend (prober) or open breaker (hot path) excludes its
//! shards. Requests that needed them fail fast with the backend's state
//! in the error, or — with `"fallback": true` — are answered by
//! scatter-gather over the live backends. Any response missing part of
//! the fleet carries `"degraded": true` (batch body) and an
//! `X-Grafics-Degraded: true` header. Absorbs and publishes are **never
//! retried or rerouted**: a lost response does not mean an unprocessed
//! request, so the router surfaces 502/503 and lets the operator decide.

use crate::api::{
    self, AbsorbRequest, BatchBody, EpochBody, InferBatchRequest, InferRequest, PredictionBody,
    PublishBody, PublishRequest, RouteTableBody, RouteTableEntry, CONTENT_TYPE_JSON,
    CONTENT_TYPE_TEXT,
};
use crate::client::HttpClient;
use crate::health::{probe_healthz, BackendStatus};
use crate::http::{self, Limits, Request};
use grafics_core::{FleetStats, RouterKind, RouterManifest, ShardStats, WeightFunction};
use grafics_types::{BackendState, HealthPolicy, SignalRecord};
use serde::Serialize;
use std::collections::{BTreeMap, HashMap};
use std::io::{BufReader, BufWriter};
use std::net::{IpAddr, Ipv4Addr, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, RwLock};
use std::time::{Duration, Instant};

/// Router-tier configuration: the manifest (backends + policies) plus
/// transport tuning.
#[derive(Debug, Clone)]
pub struct RouterConfig {
    /// Backends, health/breaker/rate-limit policies, optional token.
    pub manifest: RouterManifest,
    /// Idle read timeout on client-facing keep-alive connections.
    pub read_timeout: Duration,
    /// Per-attempt deadline (read *and* write) on backend requests.
    pub backend_timeout: Duration,
    /// Retry budget per idempotent backend request — transport retries
    /// (reconnect + resend inside [`HttpClient`]) and router-level 5xx
    /// retries each draw from a budget of this size. Absorb/publish are
    /// never retried regardless.
    pub retries: u32,
    /// Base of the exponential retry backoff.
    pub backoff_base: Duration,
    /// Client-facing request head limit, as in `ServeConfig`.
    pub max_head_bytes: usize,
    /// Client-facing request body limit, as in `ServeConfig`.
    pub max_body_bytes: usize,
}

impl Default for RouterConfig {
    fn default() -> Self {
        RouterConfig {
            manifest: RouterManifest::default(),
            read_timeout: Duration::from_secs(30),
            backend_timeout: Duration::from_secs(2),
            retries: 2,
            backoff_base: Duration::from_millis(10),
            max_head_bytes: 16 * 1024,
            max_body_bytes: 8 * 1024 * 1024,
        }
    }
}

/// One backend: health/breaker status plus a pool of keep-alive
/// connections (popped per request, pushed back on success, dropped on
/// any transport error).
struct Backend {
    status: BackendStatus,
    pool: Mutex<Vec<HttpClient>>,
}

/// One building's row in the mirrored routing inventory.
#[derive(Debug, Clone, Copy)]
struct BuildingRoute {
    building: u32,
    backend: usize,
    weight: WeightFunction,
}

/// The router's mirror of the fleet routing state: which backend owns
/// which building, and the MAC inventory the fleet router scores with.
/// Rebuilt wholesale whenever any backend's table is (re)fetched.
#[derive(Default)]
struct RouteIndex {
    kind: Option<RouterKind>,
    /// Ascending by building id — scan order *is* the tie-break.
    buildings: Vec<BuildingRoute>,
    /// MAC → slots into `buildings` (ascending, since inserted in order).
    mac_map: HashMap<u64, Vec<u32>>,
}

impl RouteIndex {
    fn is_empty(&self) -> bool {
        self.buildings.is_empty()
    }

    /// Reproduces `GraficsFleet`'s routing decision from the mirrored
    /// inventory: strict-greater scan over ascending building ids, so
    /// ties keep the lowest id — and for weighted overlap the per-slot
    /// `f64` accumulation visits readings in record order, matching the
    /// backend's summation order bit-for-bit. Returns a slot into
    /// `buildings`.
    fn route(&self, record: &SignalRecord) -> Option<usize> {
        match self.kind? {
            RouterKind::Overlap => {
                let mut counts: HashMap<u32, usize> = HashMap::new();
                for mac in record.macs() {
                    if let Some(slots) = self.mac_map.get(&mac.as_u64()) {
                        for &slot in slots {
                            *counts.entry(slot).or_insert(0) += 1;
                        }
                    }
                }
                let mut scored: Vec<(u32, usize)> = counts.into_iter().collect();
                scored.sort_unstable_by_key(|&(slot, _)| slot);
                let mut best: Option<(u32, usize)> = None;
                for (slot, count) in scored {
                    if count > 0 && best.is_none_or(|(_, b)| count > b) {
                        best = Some((slot, count));
                    }
                }
                best.map(|(slot, _)| slot as usize)
            }
            RouterKind::WeightedOverlap => {
                let mut weights: HashMap<u32, f64> = HashMap::new();
                for reading in record.readings() {
                    if let Some(slots) = self.mac_map.get(&reading.mac.as_u64()) {
                        for &slot in slots {
                            let w = self.buildings[slot as usize].weight.weight(reading.rssi);
                            *weights.entry(slot).or_insert(0.0) += w;
                        }
                    }
                }
                let mut scored: Vec<(u32, f64)> = weights.into_iter().collect();
                scored.sort_unstable_by_key(|&(slot, _)| slot);
                let mut best: Option<(u32, f64)> = None;
                for (slot, weight) in scored {
                    if weight > 0.0 && best.is_none_or(|(_, b)| weight > b) {
                        best = Some((slot, weight));
                    }
                }
                best.map(|(slot, _)| slot as usize)
            }
        }
    }

    /// The backend owning `building`, if any.
    fn owner_of(&self, building: u32) -> Option<usize> {
        self.buildings
            .binary_search_by_key(&building, |r| r.building)
            .ok()
            .map(|slot| self.buildings[slot].backend)
    }
}

/// Why a guarded backend call did not produce a response.
enum CallError {
    /// The breaker/prober refused the send — the backend cost one table
    /// lookup, nothing hit the wire.
    Refused,
    /// The send happened (or was attempted) and died on transport.
    Transport(std::io::Error),
}

/// A per-client-IP token bucket: `rate` tokens/second, holding at most
/// `burst`. Applied to `/v1/*` only, so probers and dashboards hitting
/// `/healthz` and `/metrics` are never throttled.
struct RateLimiter {
    rate: f64,
    burst: f64,
    buckets: Mutex<HashMap<IpAddr, TokenBucket>>,
}

struct TokenBucket {
    tokens: f64,
    last: Instant,
}

impl RateLimiter {
    fn new(rate_per_sec: u32, burst: u32) -> Self {
        RateLimiter {
            rate: f64::from(rate_per_sec.max(1)),
            burst: f64::from(burst.max(1)),
            buckets: Mutex::new(HashMap::new()),
        }
    }

    /// `Ok` consumes one token; `Err(secs)` is the `Retry-After` hint.
    fn check(&self, ip: IpAddr) -> Result<(), u64> {
        let now = Instant::now();
        let mut buckets = self.buckets.lock().unwrap();
        // Bound the table: drop buckets that have long since refilled
        // (an idle client's bucket carries no information).
        if buckets.len() > 4096 {
            let horizon = Duration::from_secs(60);
            buckets.retain(|_, b| now.duration_since(b.last) < horizon);
        }
        let bucket = buckets.entry(ip).or_insert(TokenBucket {
            tokens: self.burst,
            last: now,
        });
        let refill = now.duration_since(bucket.last).as_secs_f64() * self.rate;
        bucket.tokens = (bucket.tokens + refill).min(self.burst);
        bucket.last = now;
        if bucket.tokens >= 1.0 {
            bucket.tokens -= 1.0;
            Ok(())
        } else {
            let wait = ((1.0 - bucket.tokens) / self.rate).ceil();
            Err((wait as u64).max(1))
        }
    }
}

/// Shared state of a running router: backends, the mirrored route
/// index, policies, and the counters behind `/metrics`.
pub struct RouterState {
    backends: Vec<Backend>,
    tables: Mutex<Vec<Option<RouteTableBody>>>,
    index: RwLock<RouteIndex>,
    health: HealthPolicy,
    backend_timeout: Duration,
    retries: u32,
    backoff_base: Duration,
    auth_token: Option<String>,
    limiter: Option<RateLimiter>,
    shutdown: AtomicBool,
    requests: AtomicU64,
    rate_limited: AtomicU64,
    degraded_responses: AtomicU64,
    scatter_gathers: AtomicU64,
    backend_retries: AtomicU64,
    started: Instant,
}

impl RouterState {
    /// Per-backend health/breaker status, in manifest order.
    pub fn backends(&self) -> impl Iterator<Item = &BackendStatus> {
        self.backends.iter().map(|b| &b.status)
    }

    /// Requests handled so far (including throttled ones).
    #[must_use]
    pub fn request_count(&self) -> u64 {
        self.requests.load(Ordering::Relaxed)
    }

    /// Requests answered 429 by the per-client rate limiter.
    #[must_use]
    pub fn rate_limited_count(&self) -> u64 {
        self.rate_limited.load(Ordering::Relaxed)
    }

    /// Responses that went out flagged degraded.
    #[must_use]
    pub fn degraded_count(&self) -> u64 {
        self.degraded_responses.load(Ordering::Relaxed)
    }

    /// Scatter-gather fan-outs performed (fallback over live backends).
    #[must_use]
    pub fn scatter_count(&self) -> u64 {
        self.scatter_gathers.load(Ordering::Relaxed)
    }

    /// Retries performed against backends (transport + 5xx).
    #[must_use]
    pub fn backend_retry_count(&self) -> u64 {
        self.backend_retries.load(Ordering::Relaxed)
    }

    /// Buildings currently in the mirrored route index.
    #[must_use]
    pub fn building_count(&self) -> usize {
        self.index.read().unwrap().buildings.len()
    }

    /// Rebuilds the route index from the stored tables. On a building
    /// claimed by several backends the lowest manifest index wins.
    fn rebuild_index(&self) {
        let tables = self.tables.lock().unwrap();
        let mut kind: Option<RouterKind> = None;
        let mut merged: BTreeMap<u32, (usize, WeightFunction, Vec<u64>)> = BTreeMap::new();
        for (backend, table) in tables.iter().enumerate() {
            let Some(table) = table else { continue };
            kind.get_or_insert(table.router);
            for entry in &table.shards {
                merged
                    .entry(entry.building)
                    .or_insert_with(|| (backend, entry.weight, entry.macs.clone()));
            }
        }
        drop(tables);
        let mut buildings = Vec::with_capacity(merged.len());
        let mut mac_map: HashMap<u64, Vec<u32>> = HashMap::new();
        for (building, (backend, weight, macs)) in merged {
            let slot = buildings.len() as u32;
            buildings.push(BuildingRoute {
                building,
                backend,
                weight,
            });
            for mac in macs {
                mac_map.entry(mac).or_default().push(slot);
            }
        }
        *self.index.write().unwrap() = RouteIndex {
            kind,
            buildings,
            mac_map,
        };
    }

    /// One raw request to backend `idx` over a pooled connection. The
    /// breaker sees the outcome; the caller is responsible for having
    /// consulted `admit()` first (this is the consuming send).
    fn call_raw(
        &self,
        idx: usize,
        method: &str,
        path: &str,
        body: Option<&str>,
    ) -> std::io::Result<(u16, String)> {
        let backend = &self.backends[idx];
        let pooled = backend.pool.lock().unwrap().pop();
        let mut client = match pooled {
            Some(client) => client,
            None => match HttpClient::connect(backend.status.addr()) {
                Ok(client) => client,
                Err(e) => {
                    backend.status.breaker.record_failure();
                    return Err(e);
                }
            },
        };
        let _ = client.set_timeouts(self.backend_timeout, self.backend_timeout);
        client.set_retry_policy(self.retries, self.backoff_base);
        client.set_auth_token(self.auth_token.clone());
        let retries_before = client.retries_performed();
        let result = client.request(method, path, body);
        self.backend_retries.fetch_add(
            client.retries_performed() - retries_before,
            Ordering::Relaxed,
        );
        match &result {
            Ok(_) => {
                backend.status.breaker.record_success();
                backend.pool.lock().unwrap().push(client);
            }
            Err(_) => backend.status.breaker.record_failure(),
        }
        result
    }

    /// Breaker-guarded idempotent call: admission is claimed at send
    /// time (a claimed half-open trial is always resolved by the send's
    /// outcome), transport errors were already retried by the client,
    /// and 5xx answers are retried here within the same budget — an
    /// overloaded-intermediary burst should not surface to the caller
    /// while the budget lasts.
    fn call_idempotent(
        &self,
        idx: usize,
        method: &str,
        path: &str,
        body: Option<&str>,
    ) -> Result<(u16, String), CallError> {
        let mut attempt = 0u32;
        loop {
            if !self.backends[idx].status.admit() {
                return Err(CallError::Refused);
            }
            match self.call_raw(idx, method, path, body) {
                Ok((status, resp)) if status >= 500 && attempt < self.retries => {
                    attempt += 1;
                    self.backend_retries.fetch_add(1, Ordering::Relaxed);
                    drop(resp);
                    std::thread::sleep(
                        self.backoff_base
                            .max(Duration::from_millis(1))
                            .saturating_mul(1 << attempt.min(6)),
                    );
                }
                Ok(resp) => return Ok(resp),
                Err(e) => return Err(CallError::Transport(e)),
            }
        }
    }

    /// Breaker-guarded **single-shot** call for the write endpoints:
    /// exactly one send, never resent ([`HttpClient`] already refuses to
    /// retry non-idempotent paths; this adds the admission gate).
    fn call_write(
        &self,
        idx: usize,
        path: &str,
        body: Option<&str>,
    ) -> Result<(u16, String), CallError> {
        if !self.backends[idx].status.admit() {
            return Err(CallError::Refused);
        }
        self.call_raw(idx, "POST", path, body)
            .map_err(CallError::Transport)
    }

    /// Human-readable reason a backend is refusing traffic.
    fn refusal(&self, idx: usize) -> String {
        let status = &self.backends[idx].status;
        let why = if status.state().is_routable() && status.breaker.is_open() {
            "breaker-open".to_owned()
        } else {
            status.state().as_str().to_owned()
        };
        format!("backend {} is {}", status.name(), why)
    }
}

/// One response ready to write: status, content type, body, and whether
/// it must carry the degraded marker (`X-Grafics-Degraded: true`).
struct Resp {
    status: u16,
    content_type: &'static str,
    body: String,
    degraded: bool,
}

impl Resp {
    fn json<T: Serialize>(status: u16, value: &T) -> Resp {
        Resp {
            status,
            content_type: CONTENT_TYPE_JSON,
            body: serde_json::to_string(value).unwrap_or_else(|_| "{}".to_owned()),
            degraded: false,
        }
    }

    fn error(status: u16, message: &str) -> Resp {
        Resp {
            status,
            content_type: CONTENT_TYPE_JSON,
            body: serde_json::to_string(&serde_json::json!({ "error": message }))
                .unwrap_or_else(|_| "{}".to_owned()),
            degraded: false,
        }
    }

    fn passthrough(status: u16, body: String) -> Resp {
        Resp {
            status,
            content_type: CONTENT_TYPE_JSON,
            body,
            degraded: false,
        }
    }

    fn from_api((status, body): (u16, String)) -> Resp {
        Resp::passthrough(status, body)
    }

    fn degraded(mut self) -> Resp {
        self.degraded = true;
        self
    }
}

/// Sub-batch forwarded to one backend: the routed records with their
/// **original** stream indices, so the backend draws from the same RNG
/// streams the single process would.
#[derive(Serialize)]
struct SubBatchRequest {
    records: Vec<SignalRecord>,
    seed: u64,
    threads: usize,
    fallback: bool,
    indices: Vec<u64>,
}

/// Single-record scatter probe (fallback path of `/v1/infer`).
#[derive(Serialize)]
struct SubInferRequest {
    record: SignalRecord,
    seed: u64,
    fallback: bool,
    index: u64,
}

/// `GET /v1/stat` through the router: merged shard stats plus the
/// router's own view of each backend.
#[derive(Serialize)]
struct RouterStatBody {
    shards: Vec<ShardStats>,
    backends: Vec<BackendStatBody>,
    degraded: bool,
}

/// One backend's row in [`RouterStatBody`].
#[derive(Serialize)]
struct BackendStatBody {
    name: String,
    addr: String,
    state: String,
    breaker_open: bool,
    breaker_trips: u64,
    probes: u64,
    transitions: u64,
}

/// `POST /v1/publish` through the router: merged epochs + degraded flag.
#[derive(Serialize)]
struct RouterPublishBody {
    epochs: Vec<EpochBody>,
    degraded: bool,
}

/// `GET /healthz` on the router itself.
#[derive(Serialize)]
struct RouterHealthBody {
    ok: bool,
    status: String,
    backends: usize,
    backends_up: usize,
    buildings: usize,
    uptime_secs: f64,
    requests: u64,
}

fn dispatch_router(
    state: &RouterState,
    method: &str,
    path: &str,
    body: &[u8],
    authorization: &str,
) -> Resp {
    // Same write-endpoint auth gate as the backend server.
    if matches!(path, "/v1/absorb" | "/v1/publish")
        && state
            .auth_token
            .as_deref()
            .is_some_and(|token| !api::bearer_token_matches(authorization, token))
    {
        return Resp::error(401, "missing or invalid bearer token on a write endpoint");
    }
    match (method, path) {
        ("GET", "/healthz") => healthz(state),
        ("GET", "/metrics") => metrics(state),
        ("GET", "/v1/stat") => stat(state),
        ("GET", "/v1/route_table") => route_table(state),
        ("POST", "/v1/infer") => infer(state, body),
        ("POST", "/v1/infer_batch") => infer_batch(state, body),
        ("POST", "/v1/absorb") => absorb(state, body),
        ("POST", "/v1/publish") => publish(state, body),
        (
            _,
            "/healthz" | "/metrics" | "/v1/stat" | "/v1/route_table" | "/v1/infer"
            | "/v1/infer_batch" | "/v1/absorb" | "/v1/publish",
        ) => Resp::error(405, &format!("{method} not allowed here")),
        _ => Resp::error(404, &format!("no route for {path}")),
    }
}

fn healthz(state: &RouterState) -> Resp {
    let ups = state
        .backends
        .iter()
        .filter(|b| b.status.state() == BackendState::Up)
        .count();
    let total = state.backends.len();
    let status = if ups == total {
        "ok"
    } else if ups > 0 {
        "degraded"
    } else {
        "down"
    };
    Resp::json(
        if ups > 0 { 200 } else { 503 },
        &RouterHealthBody {
            ok: ups > 0,
            status: status.to_owned(),
            backends: total,
            backends_up: ups,
            buildings: state.building_count(),
            uptime_secs: state.started.elapsed().as_secs_f64(),
            requests: state.request_count(),
        },
    )
}

fn metrics(state: &RouterState) -> Resp {
    use std::fmt::Write as _;
    let mut out = String::new();
    let w = |out: &mut String, name: &str, kind: &str, value: &dyn std::fmt::Display| {
        let _ = writeln!(out, "# TYPE {name} {kind}\n{name} {value}");
    };
    w(
        &mut out,
        "grafics_router_requests_total",
        "counter",
        &state.request_count(),
    );
    w(
        &mut out,
        "grafics_rate_limited_total",
        "counter",
        &state.rate_limited_count(),
    );
    w(
        &mut out,
        "grafics_router_degraded_responses_total",
        "counter",
        &state.degraded_count(),
    );
    w(
        &mut out,
        "grafics_router_scatter_gathers_total",
        "counter",
        &state.scatter_count(),
    );
    w(
        &mut out,
        "grafics_router_backend_retries_total",
        "counter",
        &state.backend_retry_count(),
    );
    w(
        &mut out,
        "grafics_router_uptime_seconds",
        "gauge",
        &state.started.elapsed().as_secs_f64(),
    );
    w(
        &mut out,
        "grafics_router_backends",
        "gauge",
        &state.backends.len(),
    );
    w(
        &mut out,
        "grafics_router_buildings",
        "gauge",
        &state.building_count(),
    );
    type BackendMetric<'a> = (&'a str, &'a str, &'a dyn Fn(&BackendStatus) -> u64);
    let per_backend: [BackendMetric; 5] = [
        ("grafics_router_backend_up", "gauge", &|s| {
            u64::from(s.state() == BackendState::Up)
        }),
        ("grafics_router_breaker_open", "gauge", &|s| {
            u64::from(s.breaker.is_open())
        }),
        ("grafics_router_breaker_trips_total", "counter", &|s| {
            s.breaker.trips()
        }),
        ("grafics_router_probes_total", "counter", &|s| {
            s.probe_count()
        }),
        ("grafics_router_transitions_total", "counter", &|s| {
            s.transition_count()
        }),
    ];
    for (name, kind, value) in per_backend {
        let _ = writeln!(out, "# TYPE {name} {kind}");
        for backend in &state.backends {
            let _ = writeln!(
                out,
                "{name}{{backend=\"{}\"}} {}",
                backend.status.name(),
                value(&backend.status)
            );
        }
    }
    let _ = writeln!(out, "# TYPE grafics_router_backend_state gauge");
    for backend in &state.backends {
        let _ = writeln!(
            out,
            "grafics_router_backend_state{{backend=\"{}\",state=\"{}\"}} 1",
            backend.status.name(),
            backend.status.state().as_str()
        );
    }
    Resp {
        status: 200,
        content_type: CONTENT_TYPE_TEXT,
        body: out,
        degraded: false,
    }
}

fn stat(state: &RouterState) -> Resp {
    let mut shards: Vec<ShardStats> = Vec::new();
    let mut degraded = state.index.read().unwrap().is_empty();
    for idx in 0..state.backends.len() {
        if !state.backends[idx].status.routable() {
            degraded = true;
            continue;
        }
        match state.call_idempotent(idx, "GET", "/v1/stat", None) {
            Ok((200, body)) => match serde_json::from_str::<FleetStats>(&body) {
                Ok(stats) => shards.extend(stats.shards),
                Err(_) => degraded = true,
            },
            _ => degraded = true,
        }
    }
    shards.sort_by_key(|s| s.building.0);
    let backends = state
        .backends
        .iter()
        .map(|b| BackendStatBody {
            name: b.status.name().to_owned(),
            addr: b.status.addr().to_string(),
            state: b.status.state().as_str().to_owned(),
            breaker_open: b.status.breaker.is_open(),
            breaker_trips: b.status.breaker.trips(),
            probes: b.status.probe_count(),
            transitions: b.status.transition_count(),
        })
        .collect();
    let resp = Resp::json(
        200,
        &RouterStatBody {
            shards,
            backends,
            degraded,
        },
    );
    if degraded {
        resp.degraded()
    } else {
        resp
    }
}

fn route_table(state: &RouterState) -> Resp {
    let index = state.index.read().unwrap();
    let Some(kind) = index.kind else {
        return Resp::error(503, "route table not yet learned from any backend").degraded();
    };
    let tables = state.tables.lock().unwrap();
    let mut merged: BTreeMap<u32, RouteTableEntry> = BTreeMap::new();
    for table in tables.iter().flatten() {
        for entry in &table.shards {
            merged
                .entry(entry.building)
                .or_insert_with(|| entry.clone());
        }
    }
    Resp::json(
        200,
        &RouteTableBody {
            router: kind,
            shards: merged.into_values().collect(),
        },
    )
}

fn infer(state: &RouterState, body: &[u8]) -> Resp {
    let req: InferRequest = match api::parse_json(body) {
        Ok(req) => req,
        Err(e) => return Resp::from_api(e),
    };
    let record = match api::sanitize(&req.record) {
        Ok(record) => record,
        Err(e) => return Resp::from_api(e),
    };
    let fallback = req.fallback.unwrap_or(false);
    let routed_backend = {
        let index = state.index.read().unwrap();
        index
            .route(&record)
            .map(|slot| index.buildings[slot].backend)
    };
    let raw = std::str::from_utf8(body).unwrap_or("{}");
    match routed_backend {
        Some(idx) => match state.call_idempotent(idx, "POST", "/v1/infer", Some(raw)) {
            // The routed backend's answer is returned byte-for-byte.
            Ok((status, resp)) => Resp::passthrough(status, resp),
            Err(CallError::Refused) if fallback => scatter_infer(state, &record, &req),
            Err(CallError::Refused) => Resp::error(
                503,
                &format!("{}; its shards are excluded", state.refusal(idx)),
            )
            .degraded(),
            Err(CallError::Transport(_)) if fallback => scatter_infer(state, &record, &req),
            Err(CallError::Transport(e)) => {
                Resp::error(502, &format!("{} failed: {e}", backend_name(state, idx))).degraded()
            }
        },
        None if fallback => scatter_infer(state, &record, &req),
        None => Resp::error(422, "record overlaps no building in the fleet; discarded"),
    }
}

fn backend_name(state: &RouterState, idx: usize) -> String {
    format!("backend {}", state.backends[idx].status.name())
}

/// Fallback for one record: ask every live backend (with
/// `fallback: true` and the original stream index) and return the
/// smallest-distance answer verbatim, ties to the lowest building id —
/// the exact cross-backend composition of the single-process broadcast.
fn scatter_infer(state: &RouterState, record: &SignalRecord, req: &InferRequest) -> Resp {
    state.scatter_gathers.fetch_add(1, Ordering::Relaxed);
    let sub = SubInferRequest {
        record: record.clone(),
        seed: req.seed.unwrap_or(0),
        fallback: true,
        index: req.index.unwrap_or(0),
    };
    let Ok(sub_body) = serde_json::to_string(&sub) else {
        return Resp::error(500, "could not serialize scatter request");
    };
    let mut degraded = state.index.read().unwrap().is_empty();
    let answers: Vec<Option<(u16, String)>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..state.backends.len())
            .map(|idx| {
                let sub_body = sub_body.as_str();
                scope.spawn(move || {
                    if !state.backends[idx].status.routable() {
                        return None;
                    }
                    state
                        .call_idempotent(idx, "POST", "/v1/infer", Some(sub_body))
                        .ok()
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().unwrap_or_default())
            .collect()
    });
    let mut best: Option<(f64, u32, String)> = None;
    for answer in answers {
        match answer {
            Some((200, body)) => {
                let Ok(pred) = serde_json::from_str::<PredictionBody>(&body) else {
                    degraded = true;
                    continue;
                };
                let better = best.as_ref().is_none_or(|(d, b, _)| {
                    pred.distance < *d || (pred.distance == *d && pred.building < *b)
                });
                if better {
                    best = Some((pred.distance, pred.building, body));
                }
            }
            // 422: that backend cannot answer this record at all — an
            // expected miss, not degradation.
            Some((422, _)) => {}
            // Refused, transport-dead, or an unexpected status: part of
            // the fleet did not contribute to this answer.
            _ => degraded = true,
        }
    }
    match best {
        Some((_, _, body)) => {
            let resp = Resp::passthrough(200, body);
            if degraded {
                resp.degraded()
            } else {
                resp
            }
        }
        None if degraded => {
            Resp::error(503, "no live backend could answer the fallback broadcast").degraded()
        }
        None => Resp::error(422, "record overlaps no building in the fleet; discarded"),
    }
}

fn infer_batch(state: &RouterState, body: &[u8]) -> Resp {
    let req: InferBatchRequest = match api::parse_json(body) {
        Ok(req) => req,
        Err(e) => return Resp::from_api(e),
    };
    let mut records = Vec::with_capacity(req.records.len());
    for r in &req.records {
        match api::sanitize(r) {
            Ok(record) => records.push(record),
            Err(e) => return Resp::from_api(e),
        }
    }
    let n = records.len();
    let seed = req.seed.unwrap_or(0);
    let threads = req.threads.unwrap_or(1);
    let fallback = req.fallback.unwrap_or(false);
    let indices: Vec<u64> = match req.indices {
        Some(idx) if idx.len() != n => {
            return Resp::from_api(api::error_body(
                400,
                "indices length must match records length",
            ))
        }
        Some(idx) => idx,
        None => (0..n as u64).collect(),
    };

    // Route every record against the mirrored index, grouping positions
    // by owning backend. Unroutable (or routed-to-refusing, with
    // fallback) positions go to the scatter list.
    let mut groups: BTreeMap<usize, Vec<usize>> = BTreeMap::new();
    let mut scatter: Vec<usize> = Vec::new();
    let mut degraded = state.index.read().unwrap().is_empty();
    {
        let index = state.index.read().unwrap();
        for (pos, record) in records.iter().enumerate() {
            match index.route(record) {
                Some(slot) => {
                    let backend = index.buildings[slot].backend;
                    if state.backends[backend].status.routable() {
                        groups.entry(backend).or_default().push(pos);
                    } else {
                        degraded = true;
                        if fallback {
                            scatter.push(pos);
                        }
                    }
                }
                None => {
                    if fallback {
                        scatter.push(pos);
                    }
                }
            }
        }
    }

    let mut slots: Vec<Option<PredictionBody>> = vec![None; n];

    // Fan the routed groups out in parallel, one sub-batch per backend,
    // each carrying the original stream indices.
    let group_list: Vec<(usize, Vec<usize>)> = groups.into_iter().collect();
    let group_results: Vec<Option<BatchBody>> = std::thread::scope(|scope| {
        let handles: Vec<_> = group_list
            .iter()
            .map(|(backend, positions)| {
                let records = &records;
                let indices = &indices;
                scope.spawn(move || {
                    let sub = SubBatchRequest {
                        records: positions.iter().map(|&p| records[p].clone()).collect(),
                        seed,
                        threads,
                        fallback: false,
                        indices: positions.iter().map(|&p| indices[p]).collect(),
                    };
                    let sub_body = serde_json::to_string(&sub).ok()?;
                    match state.call_idempotent(
                        *backend,
                        "POST",
                        "/v1/infer_batch",
                        Some(&sub_body),
                    ) {
                        Ok((200, resp)) => serde_json::from_str::<BatchBody>(&resp).ok(),
                        _ => None,
                    }
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().unwrap_or_default())
            .collect()
    });
    for ((_, positions), result) in group_list.iter().zip(group_results) {
        match result {
            Some(batch) if batch.predictions.len() == positions.len() => {
                for (&pos, pred) in positions.iter().zip(batch.predictions) {
                    slots[pos] = pred;
                }
            }
            _ => {
                // The whole sub-batch failed: its backend is unreachable
                // or answered garbage. Degrade, and broadcast the
                // affected records if the caller allowed fallback.
                degraded = true;
                if fallback {
                    scatter.extend(positions.iter().copied());
                }
            }
        }
    }

    // Scatter-gather: broadcast the leftover records to every live
    // backend with fallback=true and merge the per-backend winners.
    if !scatter.is_empty() {
        scatter.sort_unstable();
        state.scatter_gathers.fetch_add(1, Ordering::Relaxed);
        let sub = SubBatchRequest {
            records: scatter.iter().map(|&p| records[p].clone()).collect(),
            seed,
            threads,
            fallback: true,
            indices: scatter.iter().map(|&p| indices[p]).collect(),
        };
        if let Ok(sub_body) = serde_json::to_string(&sub) {
            let answers: Vec<Option<BatchBody>> = std::thread::scope(|scope| {
                let handles: Vec<_> = (0..state.backends.len())
                    .map(|idx| {
                        let sub_body = sub_body.as_str();
                        scope.spawn(move || {
                            if !state.backends[idx].status.routable() {
                                return None;
                            }
                            match state.call_idempotent(
                                idx,
                                "POST",
                                "/v1/infer_batch",
                                Some(sub_body),
                            ) {
                                Ok((200, resp)) => serde_json::from_str::<BatchBody>(&resp).ok(),
                                _ => None,
                            }
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().unwrap_or_default())
                    .collect()
            });
            for answer in answers.into_iter().flatten() {
                if answer.predictions.len() != scatter.len() {
                    degraded = true;
                    continue;
                }
                for (&pos, pred) in scatter.iter().zip(answer.predictions) {
                    let Some(pred) = pred else { continue };
                    // Strict-smaller distance wins; ties keep the lowest
                    // building id — composing per-backend broadcasts to
                    // the single-process broadcast bit-for-bit.
                    let better = slots[pos].as_ref().is_none_or(|cur| {
                        pred.distance < cur.distance
                            || (pred.distance == cur.distance && pred.building < cur.building)
                    });
                    if better {
                        slots[pos] = Some(pred);
                    }
                }
            }
        }
    }

    let served = slots.iter().flatten().count();
    let resp = Resp::json(
        200,
        &BatchBody {
            predictions: slots,
            served,
            degraded,
        },
    );
    if degraded {
        resp.degraded()
    } else {
        resp
    }
}

fn absorb(state: &RouterState, body: &[u8]) -> Resp {
    let req: AbsorbRequest = match api::parse_json(body) {
        Ok(req) => req,
        Err(e) => return Resp::from_api(e),
    };
    let record = match api::sanitize(&req.record) {
        Ok(record) => record,
        Err(e) => return Resp::from_api(e),
    };
    let target = {
        let index = state.index.read().unwrap();
        match req.building {
            Some(b) => match index.owner_of(b) {
                Some(backend) => Some(backend),
                None => return Resp::error(404, &format!("no shard for building b{b}")),
            },
            None => index
                .route(&record)
                .map(|slot| index.buildings[slot].backend),
        }
    };
    let Some(idx) = target else {
        return Resp::error(422, "record overlaps no building in the fleet; discarded");
    };
    let raw = std::str::from_utf8(body).unwrap_or("{}");
    match state.call_write(idx, "/v1/absorb", Some(raw)) {
        Ok((status, resp)) => Resp::passthrough(status, resp),
        // Fail fast, state known: nothing was sent, a resend is safe.
        Err(CallError::Refused) => Resp::error(
            503,
            &format!("{}; absorb not attempted — resend is safe", state.refusal(idx)),
        )
        .degraded(),
        // Fail fast, state UNKNOWN: the request may have been applied
        // before the connection died. Never blindly resent.
        Err(CallError::Transport(e)) => Resp::error(
            502,
            &format!(
                "{} failed mid-absorb ({e}); applied-state unknown — audit the WAL before resending",
                backend_name(state, idx)
            ),
        )
        .degraded(),
    }
}

fn publish(state: &RouterState, body: &[u8]) -> Resp {
    let req: PublishRequest = if body.is_empty() {
        PublishRequest { building: None }
    } else {
        match api::parse_json(body) {
            Ok(req) => req,
            Err(e) => return Resp::from_api(e),
        }
    };
    if let Some(b) = req.building {
        let target = state.index.read().unwrap().owner_of(b);
        let Some(idx) = target else {
            return Resp::error(404, &format!("no shard for building b{b}"));
        };
        let raw = std::str::from_utf8(body).unwrap_or("{}");
        return match state.call_write(idx, "/v1/publish", Some(raw)) {
            Ok((status, resp)) => Resp::passthrough(status, resp),
            Err(CallError::Refused) => Resp::error(
                503,
                &format!("{}; publish not attempted", state.refusal(idx)),
            )
            .degraded(),
            Err(CallError::Transport(e)) => Resp::error(
                502,
                &format!("{} failed mid-publish: {e}", backend_name(state, idx)),
            )
            .degraded(),
        };
    }
    // Fleet-wide publish: one single-shot publish per live backend.
    let mut epochs: Vec<EpochBody> = Vec::new();
    let mut degraded = state.index.read().unwrap().is_empty();
    for idx in 0..state.backends.len() {
        match state.call_write(idx, "/v1/publish", Some("{}")) {
            Ok((200, resp)) => match serde_json::from_str::<PublishBody>(&resp) {
                Ok(body) => epochs.extend(body.epochs),
                Err(_) => degraded = true,
            },
            _ => degraded = true,
        }
    }
    epochs.sort_by_key(|e| e.building);
    let resp = Resp::json(200, &RouterPublishBody { epochs, degraded });
    if degraded {
        resp.degraded()
    } else {
        resp
    }
}

/// The bound-but-not-yet-running router (mirrors [`crate::HttpServer`]).
pub struct RouterServer {
    listener: TcpListener,
    addr: SocketAddr,
    state: Arc<RouterState>,
    config: RouterConfig,
}

/// Shutdown handle for a running router.
#[derive(Clone)]
pub struct RouterHandle {
    state: Arc<RouterState>,
}

impl RouterHandle {
    /// Asks the router to stop accepting and drain.
    pub fn shutdown(&self) {
        self.state.shutdown.store(true, Ordering::SeqCst);
    }
}

/// What [`RouterServer::run`] reports after a graceful shutdown.
#[derive(Debug, Clone, Copy)]
pub struct RouterReport {
    /// Requests handled over the router's lifetime.
    pub requests: u64,
}

/// A router running on its own thread (from [`RouterServer::spawn`]).
pub struct RouterRunning {
    addr: SocketAddr,
    handle: RouterHandle,
    state: Arc<RouterState>,
    thread: std::thread::JoinHandle<std::io::Result<RouterReport>>,
}

impl RouterRunning {
    /// The bound listener address.
    #[must_use]
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// A cloneable shutdown handle.
    #[must_use]
    pub fn handle(&self) -> RouterHandle {
        self.handle.clone()
    }

    /// The shared router state (health/breaker/counters, for tests and
    /// embedding).
    #[must_use]
    pub fn state(&self) -> &Arc<RouterState> {
        &self.state
    }

    /// Polls until the mirrored route index holds at least `buildings`
    /// buildings; `false` on timeout. Call after spawn so the first
    /// requests do not race the initial table fetch.
    #[must_use]
    pub fn wait_for_buildings(&self, buildings: usize, timeout: Duration) -> bool {
        let deadline = Instant::now() + timeout;
        while Instant::now() < deadline {
            if self.state.building_count() >= buildings {
                return true;
            }
            std::thread::sleep(Duration::from_millis(5));
        }
        self.state.building_count() >= buildings
    }

    /// Graceful shutdown: stop accepting, drain, join.
    ///
    /// # Errors
    ///
    /// Propagates the run loop's IO error.
    pub fn shutdown(self) -> std::io::Result<RouterReport> {
        self.handle.shutdown();
        self.thread
            .join()
            .map_err(|_| std::io::Error::other("router thread panicked"))?
    }
}

impl RouterServer {
    /// Resolves the manifest's backends and binds the listener (pass
    /// port 0 for an ephemeral port). Probing and table mirroring start
    /// with [`RouterServer::run`]/[`RouterServer::spawn`].
    ///
    /// # Errors
    ///
    /// Bind/resolve errors, or `InvalidInput` on an empty backend list.
    pub fn bind<A: ToSocketAddrs>(config: RouterConfig, addr: A) -> std::io::Result<Self> {
        if config.manifest.backends.is_empty() {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidInput,
                "router needs at least one backend",
            ));
        }
        let mut backends = Vec::with_capacity(config.manifest.backends.len());
        for spec in &config.manifest.backends {
            let resolved = spec.addr.to_socket_addrs()?.next().ok_or_else(|| {
                std::io::Error::new(
                    std::io::ErrorKind::InvalidInput,
                    format!("backend {} resolved to nothing", spec.name),
                )
            })?;
            backends.push(Backend {
                status: BackendStatus::new(spec.name.clone(), resolved, config.manifest.breaker),
                pool: Mutex::new(Vec::new()),
            });
        }
        let limiter = config
            .manifest
            .rate_limit
            .per_client()
            .map(|(rate, burst)| RateLimiter::new(rate, burst));
        let tables = Mutex::new(vec![None; backends.len()]);
        let state = Arc::new(RouterState {
            backends,
            tables,
            index: RwLock::new(RouteIndex::default()),
            health: config.manifest.health,
            backend_timeout: config.backend_timeout,
            retries: config.retries,
            backoff_base: config.backoff_base,
            auth_token: config.manifest.auth_token.clone(),
            limiter,
            shutdown: AtomicBool::new(false),
            requests: AtomicU64::new(0),
            rate_limited: AtomicU64::new(0),
            degraded_responses: AtomicU64::new(0),
            scatter_gathers: AtomicU64::new(0),
            backend_retries: AtomicU64::new(0),
            started: Instant::now(),
        });
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        Ok(RouterServer {
            listener,
            addr,
            state,
            config,
        })
    }

    /// The bound listener address.
    #[must_use]
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// A shutdown handle usable before/while `run` executes.
    #[must_use]
    pub fn handle(&self) -> RouterHandle {
        RouterHandle {
            state: Arc::clone(&self.state),
        }
    }

    /// The shared router state.
    #[must_use]
    pub fn state(&self) -> Arc<RouterState> {
        Arc::clone(&self.state)
    }

    /// Runs the prober and the accept loop until shutdown.
    ///
    /// # Errors
    ///
    /// Fatal listener errors (per-connection errors are contained).
    pub fn run(self) -> std::io::Result<RouterReport> {
        let state = self.state;
        let prober_state = Arc::clone(&state);
        let prober = std::thread::spawn(move || prober_loop(&prober_state));
        let limits = Limits {
            max_head_bytes: self.config.max_head_bytes,
            max_body_bytes: self.config.max_body_bytes,
        };
        let read_timeout = self.config.read_timeout;
        let mut workers: Vec<std::thread::JoinHandle<()>> = Vec::new();
        while !state.shutdown.load(Ordering::SeqCst) {
            match self.listener.accept() {
                Ok((stream, _)) => {
                    let conn_state = Arc::clone(&state);
                    workers.push(std::thread::spawn(move || {
                        handle_connection(stream, &conn_state, limits, read_timeout);
                    }));
                    workers.retain(|w| !w.is_finished());
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    std::thread::sleep(Duration::from_millis(2));
                }
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(e) => {
                    state.shutdown.store(true, Ordering::SeqCst);
                    let _ = prober.join();
                    return Err(e);
                }
            }
        }
        for worker in workers {
            let _ = worker.join();
        }
        let _ = prober.join();
        Ok(RouterReport {
            requests: state.request_count(),
        })
    }

    /// Runs on a background thread; see [`RouterRunning`].
    ///
    /// # Errors
    ///
    /// None today (the signature allows spawn-time checks to grow).
    pub fn spawn(self) -> std::io::Result<RouterRunning> {
        let addr = self.addr;
        let handle = self.handle();
        let state = self.state();
        let thread = std::thread::spawn(move || self.run());
        Ok(RouterRunning {
            addr,
            handle,
            state,
            thread,
        })
    }
}

/// The health thread: probes every backend's `/healthz` each interval,
/// feeds the state machines, and (re)fetches `/v1/route_table` from
/// backends whose table is flagged dirty (at birth and on every Down→Up
/// recovery — a restarted backend may own different shards).
fn prober_loop(state: &Arc<RouterState>) {
    let interval = Duration::from_millis(state.health.interval_ms());
    let timeout = Duration::from_millis(state.health.timeout_ms());
    while !state.shutdown.load(Ordering::SeqCst) {
        for backend in &state.backends {
            let outcome = probe_healthz(backend.status.addr(), timeout);
            backend.status.apply_probe(outcome, &state.health);
        }
        let mut rebuilt = false;
        for (idx, backend) in state.backends.iter().enumerate() {
            if backend.status.state() != BackendState::Up || !backend.status.take_table_dirty() {
                continue;
            }
            match state.call_idempotent(idx, "GET", "/v1/route_table", None) {
                Ok((200, body)) => match serde_json::from_str::<RouteTableBody>(&body) {
                    Ok(table) => {
                        state.tables.lock().unwrap()[idx] = Some(table);
                        rebuilt = true;
                    }
                    Err(_) => backend.status.mark_table_dirty(),
                },
                _ => backend.status.mark_table_dirty(),
            }
        }
        if rebuilt {
            state.rebuild_index();
        }
        // Sleep in short slices so shutdown stays responsive under long
        // probe intervals.
        let deadline = Instant::now() + interval;
        while Instant::now() < deadline && !state.shutdown.load(Ordering::SeqCst) {
            std::thread::sleep(Duration::from_millis(10));
        }
    }
}

fn handle_connection(
    stream: TcpStream,
    state: &Arc<RouterState>,
    limits: Limits,
    read_timeout: Duration,
) {
    let peer = stream
        .peer_addr()
        .map_or(IpAddr::V4(Ipv4Addr::UNSPECIFIED), |a| a.ip());
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(read_timeout));
    let Ok(read_half) = stream.try_clone() else {
        return;
    };
    let mut reader = BufReader::new(read_half);
    let mut writer = BufWriter::new(stream);
    let mut req = Request::new();
    loop {
        if state.shutdown.load(Ordering::SeqCst) {
            return;
        }
        match http::read_request_into(&mut reader, &mut writer, &limits, &mut req) {
            Ok(true) => {}
            Ok(false) => return,
            Err(e) => {
                if let Some((status, message)) = e.response() {
                    let body = serde_json::to_string(&serde_json::json!({ "error": message }))
                        .unwrap_or_else(|_| "{}".to_owned());
                    let _ = http::write_response(&mut writer, status, &body, false);
                }
                return;
            }
        }
        state.requests.fetch_add(1, Ordering::Relaxed);
        let keep_alive = req.keep_alive && !state.shutdown.load(Ordering::SeqCst);
        if req.path.starts_with("/v1/") {
            if let Some(limiter) = &state.limiter {
                if let Err(retry_after) = limiter.check(peer) {
                    state.rate_limited.fetch_add(1, Ordering::Relaxed);
                    let body = serde_json::to_string(
                        &serde_json::json!({ "error": "rate limit exceeded; slow down" }),
                    )
                    .unwrap_or_else(|_| "{}".to_owned());
                    let retry = retry_after.to_string();
                    if http::write_response_extra(
                        &mut writer,
                        429,
                        CONTENT_TYPE_JSON,
                        &[("Retry-After", retry.as_str())],
                        &body,
                        keep_alive,
                    )
                    .is_err()
                        || !keep_alive
                    {
                        return;
                    }
                    continue;
                }
            }
        }
        let resp = dispatch_router(state, &req.method, &req.path, &req.body, &req.authorization);
        if resp.degraded {
            state.degraded_responses.fetch_add(1, Ordering::Relaxed);
        }
        let extra: &[(&str, &str)] = if resp.degraded {
            &[("X-Grafics-Degraded", "true")]
        } else {
            &[]
        };
        if http::write_response_extra(
            &mut writer,
            resp.status,
            resp.content_type,
            extra,
            &resp.body,
            keep_alive,
        )
        .is_err()
            || !keep_alive
        {
            return;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn index_of(kind: RouterKind, entries: &[(u32, usize, &[u64])]) -> RouteIndex {
        let mut buildings = Vec::new();
        let mut mac_map: HashMap<u64, Vec<u32>> = HashMap::new();
        for &(building, backend, macs) in entries {
            let slot = buildings.len() as u32;
            buildings.push(BuildingRoute {
                building,
                backend,
                weight: WeightFunction::default(),
            });
            for &m in macs {
                mac_map.entry(m).or_default().push(slot);
            }
        }
        RouteIndex {
            kind: Some(kind),
            buildings,
            mac_map,
        }
    }

    fn record(macs: &[u64]) -> SignalRecord {
        use grafics_types::{MacAddr, Reading, Rssi};
        SignalRecord::new(
            macs.iter()
                .map(|&m| Reading {
                    mac: MacAddr::from_u64(m),
                    rssi: Rssi::new(-60.0).unwrap(),
                })
                .collect(),
        )
        .unwrap()
    }

    #[test]
    fn overlap_routing_prefers_more_macs_then_lowest_building() {
        let index = index_of(
            RouterKind::Overlap,
            &[(2, 0, &[1, 2, 3]), (7, 1, &[3, 4, 5])],
        );
        // Two overlaps with b7, one with b2.
        let slot = index.route(&record(&[3, 4, 9])).unwrap();
        assert_eq!(index.buildings[slot].building, 7);
        // Equal overlap (mac 3 hits both): the lowest building id wins.
        let slot = index.route(&record(&[3, 9])).unwrap();
        assert_eq!(index.buildings[slot].building, 2);
        // No overlap at all: no route.
        assert!(index.route(&record(&[77, 78])).is_none());
    }

    #[test]
    fn owner_lookup_is_by_building_id() {
        let index = index_of(RouterKind::Overlap, &[(2, 0, &[1]), (7, 1, &[4])]);
        assert_eq!(index.owner_of(7), Some(1));
        assert_eq!(index.owner_of(2), Some(0));
        assert_eq!(index.owner_of(3), None);
    }

    #[test]
    fn rate_limiter_throttles_then_refills() {
        let limiter = RateLimiter::new(1000, 2);
        let ip: IpAddr = "10.0.0.1".parse().unwrap();
        assert!(limiter.check(ip).is_ok());
        assert!(limiter.check(ip).is_ok());
        let retry = limiter.check(ip).expect_err("burst of 2 exhausted");
        assert!(retry >= 1);
        // Other clients are unaffected.
        assert!(limiter.check("10.0.0.2".parse().unwrap()).is_ok());
        // 1000 tokens/s refill fast enough to observe.
        std::thread::sleep(Duration::from_millis(20));
        assert!(limiter.check(ip).is_ok());
    }

    #[test]
    fn empty_backend_list_is_rejected() {
        let err = RouterServer::bind(RouterConfig::default(), "127.0.0.1:0")
            .map(|_| ())
            .unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidInput);
    }
}
