//! The threaded HTTP server: one accept loop feeding a bounded queue of
//! connections, a fixed worker pool draining it (keep-alive: one worker
//! drives one connection at a time), a [`MaintenanceDaemon`] alongside,
//! and graceful shutdown — on SIGINT/SIGTERM (when enabled) or
//! [`ServerHandle::shutdown`], the listener stops accepting, queued and
//! in-flight requests are answered (`Connection: close`), and `run`
//! returns a [`ServeReport`].

use crate::api;
use crate::daemon::MaintenanceDaemon;
use crate::http::{self, Limits};
use crate::state::FleetState;
use grafics_core::GraficsFleet;
use std::collections::{HashMap, VecDeque};
use std::io::{BufReader, BufWriter, ErrorKind, Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Server tuning knobs. The defaults suit a small deployment (and the
/// tests/benches); the CLI maps flags onto them.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Worker threads handling connections. Each worker owns one
    /// connection at a time (keep-alive), so this is also the concurrent
    /// connection limit being *served*; further connections wait in the
    /// accept queue.
    pub workers: usize,
    /// Bounded depth of the accepted-connection queue. When full, the
    /// accept loop stops pulling from the listener backlog — TCP
    /// backpressure, not unbounded memory.
    pub queue_depth: usize,
    /// Maximum request-head bytes (431 beyond).
    pub max_head_bytes: usize,
    /// Maximum request-body bytes (413 beyond).
    pub max_body_bytes: usize,
    /// Per-connection read timeout; an idle keep-alive connection is
    /// closed after this long, freeing its worker.
    pub read_timeout: Duration,
    /// Base seed of the `/v1/absorb` RNG streams (absorb `i` draws from
    /// `record_rng(seed, i)`) and of the daemon's refresh RNG.
    pub seed: u64,
    /// Poll tick of the maintenance daemon's timed knobs.
    pub maintenance_tick: Duration,
    /// Install a SIGINT/SIGTERM handler that drains and exits (the CLI
    /// sets this; tests shut down via [`ServerHandle`] instead).
    pub handle_signals: bool,
    /// Structured access log: one JSON line per request (endpoint,
    /// method, status, latency µs, answering shard, fallback flag)
    /// appended to this file. `None` disables logging entirely.
    pub access_log: Option<PathBuf>,
    /// Bearer token required on `/v1/absorb` and `/v1/publish` (401
    /// without it, constant-time compare). `None` leaves writes open.
    pub auth_token: Option<String>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            workers: 2,
            queue_depth: 64,
            max_head_bytes: 8 * 1024,
            max_body_bytes: 4 << 20,
            read_timeout: Duration::from_secs(30),
            seed: 0,
            maintenance_tick: Duration::from_millis(100),
            handle_signals: false,
            access_log: None,
            auth_token: None,
        }
    }
}

/// What the server did over its lifetime, returned by
/// [`HttpServer::run`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServeReport {
    /// Requests answered (including error responses).
    pub requests: u64,
    /// Records absorbed through `/v1/absorb`.
    pub absorbs: u64,
    /// Publishes performed by the maintenance daemon.
    pub maintenance_publishes: u64,
    /// Write-side refreshes performed by the maintenance daemon.
    pub maintenance_refreshes: u64,
}

/// A clonable remote control for a running server.
#[derive(Clone)]
pub struct ServerHandle {
    shutdown: Arc<AtomicBool>,
}

impl ServerHandle {
    /// Asks the server to drain in-flight requests and exit; returns
    /// immediately.
    pub fn shutdown(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
    }
}

/// A bound-but-not-yet-running HTTP server over a [`GraficsFleet`].
pub struct HttpServer {
    listener: TcpListener,
    state: Arc<FleetState>,
    config: ServeConfig,
    shutdown: Arc<AtomicBool>,
}

impl HttpServer {
    /// Binds `addr` (e.g. `"127.0.0.1:8080"`, port `0` for ephemeral)
    /// and wraps `fleet` for serving. Nothing runs until
    /// [`HttpServer::run`] / [`HttpServer::spawn`].
    ///
    /// # Errors
    ///
    /// Propagates the bind error.
    pub fn bind<A: ToSocketAddrs>(
        fleet: GraficsFleet,
        addr: A,
        config: ServeConfig,
    ) -> std::io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        let mut state = FleetState::new(fleet, config.seed);
        state.set_auth_token(config.auth_token.clone());
        Ok(HttpServer {
            listener,
            state: Arc::new(state),
            config,
            shutdown: Arc::new(AtomicBool::new(false)),
        })
    }

    /// The bound address (read the ephemeral port here).
    ///
    /// # Errors
    ///
    /// Propagates the socket error.
    pub fn local_addr(&self) -> std::io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// A shutdown handle, usable from any thread.
    #[must_use]
    pub fn handle(&self) -> ServerHandle {
        ServerHandle {
            shutdown: Arc::clone(&self.shutdown),
        }
    }

    /// The shared serving state (fleet access, counters).
    #[must_use]
    pub fn state(&self) -> &Arc<FleetState> {
        &self.state
    }

    /// Runs the accept loop on the calling thread until shutdown, then
    /// drains: queued connections get their current request answered
    /// with `Connection: close`, workers and the daemon are joined.
    ///
    /// # Errors
    ///
    /// Propagates listener errors other than the expected non-blocking
    /// `WouldBlock`.
    pub fn run(self) -> std::io::Result<ServeReport> {
        if self.config.handle_signals {
            sig::install();
        }
        // Before any thread spawns: an error here can still early-return
        // without leaking workers or the daemon.
        self.listener.set_nonblocking(true)?;
        let access_log = match &self.config.access_log {
            Some(path) => Some(Arc::new(AccessLog::open(path)?)),
            None => None,
        };
        let queue = Arc::new(ConnQueue::new(self.config.queue_depth));
        let registry = Arc::new(ConnRegistry::default());
        let daemon = MaintenanceDaemon::spawn(
            Arc::clone(&self.state),
            self.state.fleet().maintenance(),
            self.config.maintenance_tick,
            self.config.seed,
        );

        let mut workers = Vec::with_capacity(self.config.workers);
        for _ in 0..self.config.workers.max(1) {
            let queue = Arc::clone(&queue);
            let registry = Arc::clone(&registry);
            let state = Arc::clone(&self.state);
            let config = self.config.clone();
            let shutdown = Arc::clone(&self.shutdown);
            let access_log = access_log.clone();
            workers.push(std::thread::spawn(move || {
                while let Some(conn) = queue.pop() {
                    let id = registry.register(&conn);
                    handle_connection(conn, &state, &config, &shutdown, access_log.as_deref());
                    if let Some(id) = id {
                        registry.deregister(id);
                    }
                }
            }));
        }

        // Non-blocking accept + short sleep: the loop notices shutdown
        // (handle or signal) within ~5 ms without platform-specific
        // polling APIs.
        while !self.shutdown.load(Ordering::SeqCst) && !sig::tripped() {
            match self.listener.accept() {
                Ok((stream, _peer)) => {
                    if stream.set_nonblocking(false).is_err() {
                        continue; // the socket is already dead; drop it
                    }
                    let _ = stream.set_read_timeout(Some(self.config.read_timeout));
                    let _ = stream.set_nodelay(true);
                    if !queue.push(stream, &self.shutdown) {
                        break;
                    }
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => {
                    std::thread::sleep(Duration::from_millis(5));
                }
                Err(e) if e.kind() == ErrorKind::Interrupted => {}
                Err(_) => {
                    // ECONNABORTED, EMFILE, and friends are transient
                    // under load; one of them must not take the whole
                    // service down (and an early return here would leak
                    // the workers parked on the still-open queue).
                    std::thread::sleep(Duration::from_millis(10));
                }
            }
        }
        // Drain: stop handing out new work once the queue empties, and
        // half-close the read side of every live connection — a worker
        // blocked waiting for the *next* keep-alive request wakes to a
        // clean EOF immediately, while a response being written still
        // goes out (with `Connection: close`). Requests already received
        // are answered; nothing new is read.
        self.shutdown.store(true, Ordering::SeqCst);
        queue.close();
        registry.drain();
        for worker in workers {
            let _ = worker.join();
        }
        let maintenance = daemon.stop();
        if let Some(log) = &access_log {
            log.flush();
        }
        // The durability contract's last step: every acknowledged absorb
        // is on disk before the process exits. A failure here is loud —
        // exiting quietly would silently demote acknowledged durability.
        self.state
            .fleet()
            .drain_wal()
            .map_err(|e| std::io::Error::other(e.to_string()))?;
        Ok(ServeReport {
            requests: self.state.request_count(),
            absorbs: self.state.absorb_count(),
            maintenance_publishes: maintenance.publishes,
            maintenance_refreshes: maintenance.refreshes,
        })
    }

    /// [`HttpServer::run`] on a background thread; returns once the
    /// socket is accepting.
    ///
    /// # Errors
    ///
    /// Propagates the `local_addr` error.
    pub fn spawn(self) -> std::io::Result<RunningServer> {
        let addr = self.local_addr()?;
        let handle = self.handle();
        let thread = std::thread::spawn(move || self.run());
        Ok(RunningServer {
            addr,
            handle,
            thread,
        })
    }
}

/// A server running on a background thread (tests, benches, smoke
/// tools).
pub struct RunningServer {
    addr: SocketAddr,
    handle: ServerHandle,
    thread: std::thread::JoinHandle<std::io::Result<ServeReport>>,
}

impl RunningServer {
    /// The bound address.
    #[must_use]
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// A shutdown handle.
    #[must_use]
    pub fn handle(&self) -> ServerHandle {
        self.handle.clone()
    }

    /// Triggers shutdown and joins the server thread.
    ///
    /// # Errors
    ///
    /// Propagates the server's exit error.
    pub fn shutdown(self) -> std::io::Result<ServeReport> {
        self.handle.shutdown();
        self.thread
            .join()
            .unwrap_or_else(|_| Err(std::io::Error::other("server thread panicked")))
    }
}

/// Serves one connection until it closes, errors, goes idle past the
/// read timeout, or the server drains.
fn handle_connection(
    stream: TcpStream,
    state: &FleetState,
    config: &ServeConfig,
    shutdown: &AtomicBool,
    access_log: Option<&AccessLog>,
) {
    let limits = Limits {
        max_head_bytes: config.max_head_bytes,
        max_body_bytes: config.max_body_bytes,
    };
    let Ok(read_half) = stream.try_clone() else {
        return;
    };
    let mut reader = BufReader::new(read_half);
    let mut writer = BufWriter::new(stream);
    // Per-connection reusable buffers: every keep-alive request on this
    // worker parses into and answers out of the same allocations.
    let mut req = http::Request::new();
    let mut response = String::new();
    loop {
        match http::read_request_into(&mut reader, &mut writer, &limits, &mut req) {
            Ok(false) => break,
            Ok(true) => {
                state.count_request();
                let started = Instant::now();
                let mut meta = api::RequestMeta::default();
                let (status, content_type) = api::dispatch_meta(
                    state,
                    &req.method,
                    &req.path,
                    &req.body,
                    &req.authorization,
                    &mut response,
                    &mut meta,
                );
                if let Some(log) = access_log {
                    log.record(&req.method, &req.path, status, started.elapsed(), meta);
                }
                let keep = req.keep_alive && !shutdown.load(Ordering::SeqCst);
                if http::write_response_typed(&mut writer, status, content_type, &response, keep)
                    .is_err()
                    || !keep
                {
                    break;
                }
            }
            Err(e) => {
                if let Some((status, message)) = e.response() {
                    state.count_request();
                    let body = serde_json::to_string(&serde_json::json!({ "error": message }))
                        .unwrap_or_default();
                    if http::write_response(&mut writer, status, &body, false).is_ok() {
                        // Drain what the client already sent (e.g. the
                        // oversized body behind a 413) before closing:
                        // on Linux, close() with unread received data
                        // sends RST, which can discard the error
                        // response still in flight. Bounded in both
                        // bytes and time.
                        let _ = writer
                            .get_ref()
                            .set_read_timeout(Some(Duration::from_millis(250)));
                        let mut sink = [0u8; 8192];
                        let mut drained = 0usize;
                        while drained < (8 << 20) {
                            match reader.read(&mut sink) {
                                Ok(0) | Err(_) => break,
                                Ok(n) => drained += n,
                            }
                        }
                    }
                }
                break;
            }
        }
    }
    let _ = writer.flush();
}

/// The structured access log: one JSON line per handled request,
/// appended through a shared buffered writer. Logging is off the
/// durability path — a failed write drops the line rather than failing
/// the request.
struct AccessLog {
    writer: Mutex<BufWriter<std::fs::File>>,
}

impl AccessLog {
    fn open(path: &std::path::Path) -> std::io::Result<Self> {
        let file = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)?;
        Ok(AccessLog {
            writer: Mutex::new(BufWriter::new(file)),
        })
    }

    fn record(
        &self,
        method: &str,
        path: &str,
        status: u16,
        latency: Duration,
        meta: api::RequestMeta,
    ) {
        let line = serde_json::json!({
            "method": method,
            "endpoint": path,
            "status": status,
            "latency_us": u64::try_from(latency.as_micros()).unwrap_or(u64::MAX),
            "shard": meta.shard,
            "fallback": meta.fallback,
        });
        let Ok(text) = serde_json::to_string(&line) else {
            return;
        };
        let mut w = self.writer.lock().expect("access log");
        let _ = writeln!(w, "{text}");
    }

    fn flush(&self) {
        let _ = self.writer.lock().expect("access log").flush();
    }
}

/// Tracks live connections so a drain can half-close their read sides,
/// unblocking workers parked on idle keep-alive reads without waiting
/// out the read timeout.
#[derive(Default)]
struct ConnRegistry {
    inner: Mutex<RegistryInner>,
}

#[derive(Default)]
struct RegistryInner {
    conns: HashMap<u64, TcpStream>,
    next_id: u64,
    draining: bool,
}

impl ConnRegistry {
    /// Registers a connection (a `try_clone` of its stream); if the
    /// server is already draining, the read side is closed on the spot.
    fn register(&self, stream: &TcpStream) -> Option<u64> {
        let clone = stream.try_clone().ok()?;
        let mut inner = self.inner.lock().expect("conn registry");
        if inner.draining {
            let _ = clone.shutdown(Shutdown::Read);
        }
        let id = inner.next_id;
        inner.next_id += 1;
        inner.conns.insert(id, clone);
        Some(id)
    }

    fn deregister(&self, id: u64) {
        self.inner.lock().expect("conn registry").conns.remove(&id);
    }

    fn drain(&self) {
        let mut inner = self.inner.lock().expect("conn registry");
        inner.draining = true;
        for conn in inner.conns.values() {
            let _ = conn.shutdown(Shutdown::Read);
        }
    }
}

/// A bounded MPMC queue of accepted connections (std mutex + condvars —
/// no external dependency for a queue this small).
struct ConnQueue {
    inner: Mutex<QueueInner>,
    capacity: usize,
    /// Signalled when the queue gains an item or closes.
    takers: Condvar,
    /// Signalled when the queue loses an item or closes.
    givers: Condvar,
}

struct QueueInner {
    items: VecDeque<TcpStream>,
    closed: bool,
}

impl ConnQueue {
    fn new(capacity: usize) -> Self {
        ConnQueue {
            inner: Mutex::new(QueueInner {
                items: VecDeque::new(),
                closed: false,
            }),
            capacity: capacity.max(1),
            takers: Condvar::new(),
            givers: Condvar::new(),
        }
    }

    /// Blocks while full; returns `false` if the queue closed (or
    /// shutdown/a signal tripped) instead of accepting the connection.
    fn push(&self, conn: TcpStream, shutdown: &AtomicBool) -> bool {
        let mut inner = self.inner.lock().expect("conn queue");
        while inner.items.len() >= self.capacity && !inner.closed {
            // Also poll the signal flag: Ctrl-C must not hang behind a
            // full queue whose workers are all parked on keep-alive
            // connections.
            if shutdown.load(Ordering::SeqCst) || sig::tripped() {
                return false;
            }
            let (next, _) = self
                .givers
                .wait_timeout(inner, Duration::from_millis(20))
                .expect("conn queue");
            inner = next;
        }
        if inner.closed {
            return false;
        }
        inner.items.push_back(conn);
        drop(inner);
        self.takers.notify_one();
        true
    }

    /// Blocks until an item arrives; `None` once closed *and* drained.
    fn pop(&self) -> Option<TcpStream> {
        let mut inner = self.inner.lock().expect("conn queue");
        loop {
            if let Some(conn) = inner.items.pop_front() {
                drop(inner);
                self.givers.notify_one();
                return Some(conn);
            }
            if inner.closed {
                return None;
            }
            inner = self.takers.wait(inner).expect("conn queue");
        }
    }

    fn close(&self) {
        self.inner.lock().expect("conn queue").closed = true;
        self.takers.notify_all();
        self.givers.notify_all();
    }
}

/// SIGINT/SIGTERM → graceful drain, without a signal-handling crate: the
/// handler only flips an atomic the accept loop polls.
#[cfg(unix)]
#[allow(unsafe_code)]
mod sig {
    use std::sync::atomic::{AtomicBool, Ordering};

    static TRIPPED: AtomicBool = AtomicBool::new(false);

    type Handler = extern "C" fn(i32);

    extern "C" {
        /// `signal(2)` from the C library std already links. The return
        /// value (the previous handler) is deliberately ignored.
        fn signal(signum: i32, handler: Handler) -> usize;
    }

    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;

    extern "C" fn on_signal(_signum: i32) {
        // A relaxed atomic store is async-signal-safe; everything else
        // (draining, joining) happens on normal threads that observe it.
        TRIPPED.store(true, Ordering::SeqCst);
    }

    pub fn install() {
        // SAFETY: `signal` is the libc function with this exact
        // signature; `on_signal` only stores to a static atomic, which
        // is async-signal-safe.
        unsafe {
            signal(SIGINT, on_signal);
            signal(SIGTERM, on_signal);
        }
    }

    pub fn tripped() -> bool {
        TRIPPED.load(Ordering::SeqCst)
    }
}

#[cfg(not(unix))]
mod sig {
    pub fn install() {}

    pub fn tripped() -> bool {
        false
    }
}
