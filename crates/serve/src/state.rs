//! The shared serving state: the fleet plus the counters and signals the
//! HTTP handlers and the maintenance daemon coordinate through.

use grafics_core::GraficsFleet;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Condvar, Mutex};
use std::time::{Duration, Instant};

/// Everything the request handlers and the [`crate::MaintenanceDaemon`]
/// share: the fleet (absorb and serve take `&self`), the deterministic
/// absorb sequence, request counters, and the daemon wake-up signal.
pub struct FleetState {
    fleet: GraficsFleet,
    /// Base seed of the absorb RNG streams: absorb `i` (zero-based,
    /// process-wide) draws from `record_rng(seed, i)`, so an absorb
    /// stream replayed in order reproduces the same write-side state as
    /// the in-process path.
    seed: u64,
    absorb_attempts: AtomicU64,
    absorbs_accepted: AtomicU64,
    requests: AtomicU64,
    started: Instant,
    cadence: CadenceSignal,
    endpoints: EndpointCounters,
    /// `true` while crash-recovery replay/finalization is in progress —
    /// `/healthz` answers 503 `degraded` until it clears.
    recovering: AtomicBool,
    /// Crash recoveries this fleet has been through (`recoveries_total`).
    recoveries: AtomicU64,
    /// Bearer token required on the write endpoints; `None` = open.
    auth_token: Option<String>,
}

impl FleetState {
    /// Wraps a fleet for serving. `seed` anchors the absorb RNG streams.
    #[must_use]
    pub fn new(fleet: GraficsFleet, seed: u64) -> Self {
        FleetState {
            fleet,
            seed,
            absorb_attempts: AtomicU64::new(0),
            absorbs_accepted: AtomicU64::new(0),
            requests: AtomicU64::new(0),
            started: Instant::now(),
            cadence: CadenceSignal::default(),
            endpoints: EndpointCounters::default(),
            recovering: AtomicBool::new(false),
            recoveries: AtomicU64::new(0),
            auth_token: None,
        }
    }

    /// Requires `Bearer <token>` on `/v1/absorb` and `/v1/publish`
    /// (`None` leaves writes open). Set before the state is shared.
    pub fn set_auth_token(&mut self, token: Option<String>) {
        self.auth_token = token;
    }

    /// The configured write-endpoint bearer token, if any.
    #[must_use]
    pub fn auth_token(&self) -> Option<&str> {
        self.auth_token.as_deref()
    }

    /// Resumes the absorb sequence at `next` (from
    /// [`RecoveryReport::next_rng_index`]) so no RNG stream index is ever
    /// reused across a crash — reuse would make the replayed state
    /// diverge from the never-crashed one.
    ///
    /// [`RecoveryReport::next_rng_index`]:
    /// grafics_core::RecoveryReport::next_rng_index
    pub fn resume_absorb_seq(&self, next: u64) {
        self.absorb_attempts.fetch_max(next, Ordering::Relaxed);
    }

    /// Flags recovery replay/finalization as in progress (`/healthz`
    /// reports `degraded` with a 503 until cleared).
    pub fn set_recovering(&self, recovering: bool) {
        self.recovering.store(recovering, Ordering::SeqCst);
    }

    /// `true` while recovery is in progress.
    #[must_use]
    pub fn is_recovering(&self) -> bool {
        self.recovering.load(Ordering::SeqCst)
    }

    /// Records one completed crash recovery.
    pub fn count_recovery(&self) {
        self.recoveries.fetch_add(1, Ordering::Relaxed);
    }

    /// Crash recoveries recorded so far.
    #[must_use]
    pub fn recovery_count(&self) -> u64 {
        self.recoveries.load(Ordering::Relaxed)
    }

    /// The served fleet.
    #[must_use]
    pub fn fleet(&self) -> &GraficsFleet {
        &self.fleet
    }

    /// The absorb-stream base seed.
    #[must_use]
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Claims the next absorb sequence number (zero-based). Every
    /// *attempt* claims one — a rejected absorb wastes its RNG stream
    /// index deterministically, so replaying a request log (including
    /// the rejects) reproduces the same write-side state.
    pub fn next_absorb_seq(&self) -> u64 {
        self.absorb_attempts.fetch_add(1, Ordering::Relaxed)
    }

    /// Records one accepted absorb.
    pub fn count_absorb_accepted(&self) {
        self.absorbs_accepted.fetch_add(1, Ordering::Relaxed);
    }

    /// Absorbs accepted (routed + embedded) so far.
    #[must_use]
    pub fn absorb_count(&self) -> u64 {
        self.absorbs_accepted.load(Ordering::Relaxed)
    }

    /// Counts one handled request; returns the running total.
    pub fn count_request(&self) -> u64 {
        self.requests.fetch_add(1, Ordering::Relaxed) + 1
    }

    /// Requests handled so far.
    #[must_use]
    pub fn request_count(&self) -> u64 {
        self.requests.load(Ordering::Relaxed)
    }

    /// Seconds since the state was created.
    #[must_use]
    pub fn uptime_secs(&self) -> f64 {
        self.started.elapsed().as_secs_f64()
    }

    /// The daemon wake-up signal (notified by the absorb handler when a
    /// publish threshold is crossed).
    #[must_use]
    pub fn cadence(&self) -> &CadenceSignal {
        &self.cadence
    }

    /// Per-endpoint request counters (fed by the dispatcher, drained by
    /// `/metrics`).
    #[must_use]
    pub fn endpoints(&self) -> &EndpointCounters {
        &self.endpoints
    }
}

/// One monotonically increasing counter per API endpoint, for the
/// `/metrics` observability endpoint. Relaxed atomics — the counters
/// order nothing, they are only read for reporting.
#[derive(Default)]
pub struct EndpointCounters {
    infer: AtomicU64,
    infer_batch: AtomicU64,
    absorb: AtomicU64,
    publish: AtomicU64,
    stat: AtomicU64,
    route_table: AtomicU64,
    healthz: AtomicU64,
    metrics: AtomicU64,
    other: AtomicU64,
}

impl EndpointCounters {
    /// Counts one request routed to `path` (unknown paths land in
    /// `other`).
    pub fn count(&self, path: &str) {
        let counter = match path {
            "/v1/infer" => &self.infer,
            "/v1/infer_batch" => &self.infer_batch,
            "/v1/absorb" => &self.absorb,
            "/v1/publish" => &self.publish,
            "/v1/stat" => &self.stat,
            "/v1/route_table" => &self.route_table,
            "/healthz" => &self.healthz,
            "/metrics" => &self.metrics,
            _ => &self.other,
        };
        counter.fetch_add(1, Ordering::Relaxed);
    }

    /// `(endpoint label, count)` snapshot in stable order.
    #[must_use]
    pub fn snapshot(&self) -> [(&'static str, u64); 9] {
        let get = |c: &AtomicU64| c.load(Ordering::Relaxed);
        [
            ("infer", get(&self.infer)),
            ("infer_batch", get(&self.infer_batch)),
            ("absorb", get(&self.absorb)),
            ("publish", get(&self.publish)),
            ("stat", get(&self.stat)),
            ("route_table", get(&self.route_table)),
            ("healthz", get(&self.healthz)),
            ("metrics", get(&self.metrics)),
            ("other", get(&self.other)),
        ]
    }
}

/// A level-triggered wake-up: the absorb path [`CadenceSignal::notify`]s,
/// the daemon [`CadenceSignal::wait_timeout`]s — returning early when
/// something happened, on schedule otherwise.
#[derive(Default)]
pub struct CadenceSignal {
    pending: Mutex<bool>,
    cv: Condvar,
}

impl CadenceSignal {
    /// Wakes the waiter now (e.g. a shard crossed its publish threshold).
    pub fn notify(&self) {
        *self.pending.lock().expect("cadence mutex") = true;
        self.cv.notify_all();
    }

    /// Blocks until notified or `timeout` elapses, clearing the pending
    /// flag. Returns `true` if woken by a notification.
    pub fn wait_timeout(&self, timeout: Duration) -> bool {
        let guard = self.pending.lock().expect("cadence mutex");
        let (mut guard, _) = self
            .cv
            .wait_timeout_while(guard, timeout, |pending| !*pending)
            .expect("cadence mutex");
        std::mem::take(&mut guard)
    }
}
