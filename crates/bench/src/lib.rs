//! The experiment harness behind the per-figure binaries.
//!
//! Every figure of the paper's evaluation (§VI) has a binary in this crate
//! (`cargo run -p grafics-bench --release --bin fig11_labels_sweep`).
//! This library holds the shared machinery: CLI parsing, the algorithm
//! zoo, per-building evaluation, fleet-parallel execution and result
//! output (console tables + JSON under `results/`).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod algo;
mod config;
mod runner;

pub use algo::{evaluate, train_and_score, Algo};
pub use config::ExperimentConfig;
pub use runner::{
    mean_report, run_fleet, run_fleet_custom, run_fleet_serving, train_serving_fleet, write_json,
    AlgoSummary, BuildingResult, FleetServeSummary, PrepareFn,
};

/// Builds the two evaluation fleets (Microsoft-like sub-fleet + the five
/// Hong Kong archetypes) at the configured scale.
#[must_use]
pub fn fleets(cfg: &ExperimentConfig) -> Vec<(&'static str, Vec<grafics_data::BuildingModel>)> {
    use rand::SeedableRng;
    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(cfg.seed);
    vec![
        (
            "Microsoft",
            grafics_data::FleetPreset::Microsoft.generate(
                cfg.buildings,
                cfg.records_per_floor,
                &mut rng,
            ),
        ),
        (
            "HongKong",
            grafics_data::FleetPreset::HongKong.generate(5, cfg.records_per_floor, &mut rng),
        ),
    ]
}

/// Prints one summary table row per algorithm.
pub fn print_summaries(title: &str, summaries: &[AlgoSummary]) {
    println!("\n== {title} ==");
    println!(
        "{:<16} {:>8} {:>8} {:>8} {:>8} {:>8} {:>8} {:>8}",
        "algorithm", "micro-P", "micro-R", "micro-F", "macro-P", "macro-R", "macro-F", "±std"
    );
    for s in summaries {
        println!(
            "{:<16} {:>8.3} {:>8.3} {:>8.3} {:>8.3} {:>8.3} {:>8.3} {:>8.3}",
            s.algo,
            s.micro.0,
            s.micro.1,
            s.micro.2,
            s.macro_.0,
            s.macro_.1,
            s.macro_.2,
            s.micro_f_std
        );
    }
}
