//! The algorithm zoo: GRAFICS, its LINE ablation, and the four baselines,
//! behind one evaluation entry point.

use grafics_baselines::{
    AutoencoderProx, BaselineConfig, FloorClassifier, MatrixProx, MdsProx, Sae, ScalableDnn,
};
use grafics_core::{Grafics, GraficsConfig};
use grafics_embed::Objective;
use grafics_graph::WeightFunction;
use grafics_metrics::{ClassificationReport, ConfusionMatrix};
use grafics_types::Dataset;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

/// Which system to evaluate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
#[non_exhaustive]
pub enum Algo {
    /// GRAFICS with E-LINE (the paper's system).
    Grafics,
    /// GRAFICS with plain LINE second-order (Fig. 13 ablation).
    GraficsLine,
    /// GRAFICS with the power weight function `g(RSS)` (Fig. 16 ablation).
    GraficsPowerWeight,
    /// GRAFICS without the merge constraint (extra ablation).
    GraficsUnconstrained,
    /// Scalable-DNN (Kim et al.).
    ScalableDnn,
    /// Stacked autoencoders (Nowicki & Wietrzykowski).
    Sae,
    /// 1-D conv autoencoder + Prox.
    AutoencoderProx,
    /// Classical MDS + Prox.
    MdsProx,
    /// Raw matrix rows + Prox (Fig. 14).
    MatrixProx,
}

impl Algo {
    /// Display name matching the paper's legends.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Algo::Grafics => "GRAFICS",
            Algo::GraficsLine => "GRAFICS(LINE)",
            Algo::GraficsPowerWeight => "GRAFICS(g)",
            Algo::GraficsUnconstrained => "GRAFICS(uncon)",
            Algo::ScalableDnn => "Scalable-DNN",
            Algo::Sae => "SAE",
            Algo::AutoencoderProx => "Autoencoder",
            Algo::MdsProx => "MDS",
            Algo::MatrixProx => "Matrix+Prox",
        }
    }

    /// The five-algorithm comparison set of Figs. 11–12.
    #[must_use]
    pub fn comparison_set() -> Vec<Algo> {
        vec![
            Algo::Grafics,
            Algo::ScalableDnn,
            Algo::Sae,
            Algo::MdsProx,
            Algo::AutoencoderProx,
        ]
    }
}

/// Trains `algo` on `train` and scores it on `test`, with an optional
/// GRAFICS config override (dimension sweeps etc.). Records that cannot be
/// scored (no MAC overlap with training) are skipped, mirroring the
/// paper's outside-building rule.
#[must_use]
pub fn train_and_score(
    algo: Algo,
    train: &Dataset,
    test: &Dataset,
    grafics_override: Option<GraficsConfig>,
    rng: &mut ChaCha8Rng,
) -> ClassificationReport {
    let mut cm = ConfusionMatrix::new();
    let base = grafics_override.unwrap_or_default();
    match algo {
        Algo::Grafics
        | Algo::GraficsLine
        | Algo::GraficsPowerWeight
        | Algo::GraficsUnconstrained => {
            let config = match algo {
                Algo::GraficsLine => GraficsConfig {
                    objective: Objective::LineSecond,
                    ..base
                },
                Algo::GraficsPowerWeight => GraficsConfig {
                    weight_function: WeightFunction::Power,
                    ..base
                },
                Algo::GraficsUnconstrained => GraficsConfig {
                    constrained_clustering: false,
                    ..base
                },
                _ => base,
            };
            let Ok(mut model) = Grafics::train(train, &config, rng) else {
                return cm.report();
            };
            for s in test.samples() {
                if let Ok(pred) = model.infer(&s.record, rng) {
                    cm.observe(s.ground_truth, pred.floor);
                }
            }
        }
        Algo::ScalableDnn => {
            let cfg = BaselineConfig {
                dim: base.dim,
                ..Default::default()
            };
            if let Ok(mut model) = ScalableDnn::train(train, &cfg, rng) {
                score_classifier(&mut model, test, &mut cm);
            }
        }
        Algo::Sae => {
            let cfg = BaselineConfig {
                dim: base.dim,
                ..Default::default()
            };
            if let Ok(mut model) = Sae::train(train, &cfg, rng) {
                score_classifier(&mut model, test, &mut cm);
            }
        }
        Algo::AutoencoderProx => {
            let cfg = BaselineConfig {
                dim: base.dim,
                epochs: 20,
                ..Default::default()
            };
            if let Ok(mut model) = AutoencoderProx::train(train, &cfg, rng) {
                score_classifier(&mut model, test, &mut cm);
            }
        }
        Algo::MdsProx => {
            if let Ok(mut model) = MdsProx::train(train, base.dim, rng) {
                score_classifier(&mut model, test, &mut cm);
            }
        }
        Algo::MatrixProx => {
            if let Ok(mut model) = MatrixProx::train(train) {
                score_classifier(&mut model, test, &mut cm);
            }
        }
    }
    cm.report()
}

/// Scores any [`FloorClassifier`] against a test set.
pub fn evaluate<C: FloorClassifier>(model: &mut C, test: &Dataset) -> ClassificationReport {
    let mut cm = ConfusionMatrix::new();
    score_classifier(model, test, &mut cm);
    cm.report()
}

fn score_classifier<C: FloorClassifier + ?Sized>(
    model: &mut C,
    test: &Dataset,
    cm: &mut ConfusionMatrix,
) {
    for s in test.samples() {
        if let Some(pred) = model.predict(&s.record) {
            cm.observe(s.ground_truth, pred);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use grafics_data::BuildingModel;
    use rand::SeedableRng;

    #[test]
    fn comparison_set_matches_paper_legend() {
        let names: Vec<&str> = Algo::comparison_set().iter().map(|a| a.name()).collect();
        assert_eq!(
            names,
            vec!["GRAFICS", "Scalable-DNN", "SAE", "MDS", "Autoencoder"]
        );
    }

    #[test]
    fn grafics_beats_matrix_prox_on_mall() {
        // A mall floor has hundreds of MACs but records carry < 40 (paper
        // Fig. 1), which is where the missing-value problem bites the
        // matrix representation (paper Fig. 14). Averaged over seeds to
        // damp simulator variance.
        let (mut g_sum, mut m_sum) = (0.0, 0.0);
        for seed in 0..3u64 {
            let mut rng = ChaCha8Rng::seed_from_u64(seed);
            let ds = BuildingModel::mall("cmp", 4)
                .with_records_per_floor(100)
                .simulate(&mut rng)
                .filter_rare_macs(2);
            let split = ds.split(0.7, &mut rng).unwrap();
            let train = split.train.with_label_budget(4, &mut rng);
            g_sum += train_and_score(Algo::Grafics, &train, &split.test, None, &mut rng).micro_f;
            m_sum += train_and_score(Algo::MatrixProx, &train, &split.test, None, &mut rng).micro_f;
        }
        let (g, m) = (g_sum / 3.0, m_sum / 3.0);
        assert!(
            g > m + 0.1,
            "GRAFICS {g:.3} should clearly beat Matrix+Prox {m:.3}"
        );
        assert!(g > 0.8, "GRAFICS micro-F {g:.3}");
    }
}
