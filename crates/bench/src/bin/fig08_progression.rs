//! Fig. 8 — the proximity clustering progression in a three-storey
//! building with four labels per floor: snapshots at 20/40/60/80/100 % of
//! the merges, coloured by the cluster each point currently belongs to.
//! Writes `results/fig08_{20,40,60,80,100}.svg`.

use grafics_bench::ExperimentConfig;
use grafics_cluster::{ClusterModel, ClusteringConfig};
use grafics_data::BuildingModel;
use grafics_embed::{ElineTrainer, EmbeddingConfig};
use grafics_graph::{BipartiteGraph, WeightFunction};
use grafics_types::RecordId;
use grafics_viz::{ScatterPlot, Series, Tsne, TsneConfig};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn main() {
    let cfg = ExperimentConfig::from_args();
    let mut rng = ChaCha8Rng::seed_from_u64(cfg.seed);
    let building = BuildingModel::office("fig8", 3).with_records_per_floor(60);
    let ds = building.simulate(&mut rng).with_label_budget(4, &mut rng);

    let graph = BipartiteGraph::from_dataset(&ds, WeightFunction::default());
    let model = ElineTrainer::new(EmbeddingConfig::default())
        .train(&graph, &mut rng)
        .expect("train");
    let mut points = grafics_types::RowMatrix::with_capacity(ds.len(), model.dim());
    for i in 0..ds.len() {
        points.push_row_widen(model.ego(graph.record_node(RecordId(i as u32)).expect("live")));
    }
    let labels: Vec<_> = ds.samples().iter().map(|s| s.floor).collect();

    let cluster_cfg = ClusteringConfig {
        record_history: true,
        ..Default::default()
    };
    let fitted = ClusterModel::fit(&points, &labels, &cluster_cfg).expect("cluster");
    let history = fitted.history();
    println!(
        "{} merges to {} clusters",
        history.len(),
        fitted.clusters().len()
    );

    // 2-D map for drawing.
    let tsne = Tsne::new(TsneConfig {
        perplexity: 25.0,
        iterations: 300,
        ..Default::default()
    })
    .run(
        &points.iter_rows().map(<[f64]>::to_vec).collect::<Vec<_>>(),
        &mut rng,
    )
    .expect("tsne");

    std::fs::create_dir_all("results").ok();
    for pct in [20usize, 40, 60, 80, 100] {
        let upto = history.len() * pct / 100;
        // Union-find replay of the first `upto` merges.
        let mut parent: Vec<usize> = (0..points.rows()).collect();
        fn root(parent: &mut [usize], mut i: usize) -> usize {
            while parent[i] != i {
                parent[i] = parent[parent[i]];
                i = parent[i];
            }
            i
        }
        for step in &history[..upto] {
            let (rk, ra) = (
                root(&mut parent, step.kept),
                root(&mut parent, step.absorbed),
            );
            parent[ra] = rk;
        }
        // Colour = root's eventual floor if the root's component contains a
        // labelled point; grey otherwise ("unlabelled" in the paper figure).
        let mut plot = ScatterPlot::new(&format!("Fig 8: clustering progression {pct}%"));
        let mut series: Vec<Vec<(f64, f64)>> = vec![Vec::new(); ds.floors().len()];
        let mut unmerged: Vec<(f64, f64)> = Vec::new();
        let floors = ds.floors();
        #[allow(clippy::needless_range_loop)]
        for i in 0..points.rows() {
            let r = root(&mut parent, i);
            // Find a labelled member of this component.
            let label = (0..points.rows())
                .find(|&j| root(&mut parent, j) == r && labels[j].is_some())
                .and_then(|j| labels[j]);
            match label {
                Some(f) => {
                    let fi = floors.iter().position(|&x| x == f).expect("known floor");
                    series[fi].push((tsne[i][0], tsne[i][1]));
                }
                None => unmerged.push((tsne[i][0], tsne[i][1])),
            }
        }
        for (fi, pts) in series.into_iter().enumerate() {
            plot.add_series(Series::new(
                &floors[fi].to_string(),
                ScatterPlot::palette(fi),
                pts,
            ));
        }
        plot.add_series(Series::new("unlabeled", "#bbbbbb", unmerged));
        let path = format!("results/fig08_{pct}.svg");
        std::fs::write(&path, plot.render()).expect("write svg");
        println!("wrote {path}");
    }
}
