//! Extension experiment: GRAFICS (no AP locations) against the related
//! work that *requires* them. The ViFi-style baseline (§II [29]) gets the
//! simulator's true AP map — oracle information no crowdsourced system
//! has — plus the same labelled samples; HELM and SVM-OvO (§II [16],
//! [12]) get the standard matrix inputs. GRAFICS matching the oracle
//! while using strictly less information is the strongest form of the
//! paper's "independent of AP locations" claim.

use grafics_baselines::{BaselineConfig, FloorClassifier, Helm, StoryTeller, SvmOvO, ViFi};
use grafics_bench::{write_json, ExperimentConfig};
use grafics_core::{Grafics, GraficsConfig};
use grafics_data::BuildingModel;
use grafics_metrics::ConfusionMatrix;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn main() {
    let cfg = ExperimentConfig::from_args();
    let buildings = [
        BuildingModel::office("oracle-office", 5),
        BuildingModel::mall("oracle-mall", 4),
        BuildingModel::hospital("oracle-hospital", 6),
    ];
    let mut all = Vec::new();
    println!(
        "{:<18} {:>9} {:>12} {:>13} {:>9} {:>9}",
        "building", "GRAFICS", "ViFi(oracle)", "StoryT(oracle)", "HELM", "SVM-OvO"
    );
    for b in buildings {
        let b = b.with_records_per_floor(cfg.records_per_floor);
        let (mut g_sum, mut v_sum, mut st_sum, mut h_sum, mut s_sum, mut n) =
            (0.0, 0.0, 0.0, 0.0, 0.0, 0);
        for run in 0..cfg.runs {
            let mut rng = ChaCha8Rng::seed_from_u64(cfg.seed + run as u64);
            let layout = b.layout(&mut rng);
            let ds = b
                .simulate_with_layout(&layout, &mut rng)
                .filter_rare_macs(2);
            let Ok(split) = ds.split(cfg.train_ratio, &mut rng) else {
                continue;
            };
            let train = split
                .train
                .with_label_budget(cfg.labels_per_floor, &mut rng);

            // GRAFICS (crowdsourced info only).
            let mut cm = ConfusionMatrix::new();
            if let Ok(mut m) = Grafics::train(&train, &GraficsConfig::default(), &mut rng) {
                for s in split.test.samples() {
                    if let Ok(p) = m.infer(&s.record, &mut rng) {
                        cm.observe(s.ground_truth, p.floor);
                    }
                }
            }
            g_sum += cm.report().micro_f;

            // ViFi with oracle AP locations.
            let mut cm = ConfusionMatrix::new();
            if let Ok(v) = ViFi::train(
                &train,
                &layout,
                b.width_m,
                b.depth_m,
                b.floors,
                b.propagation.floor_height_m,
                8,
            ) {
                for s in split.test.samples() {
                    if let Some(f) = v.predict(&s.record) {
                        cm.observe(s.ground_truth, f);
                    }
                }
            }
            v_sum += cm.report().micro_f;

            // StoryTeller with oracle AP positions.
            let bl = BaselineConfig::default();
            let mut cm = ConfusionMatrix::new();
            if let Ok(mut m) =
                StoryTeller::train(&train, &layout, b.width_m, b.depth_m, 12, &bl, &mut rng)
            {
                for s in split.test.samples() {
                    if let Some(f) = m.predict(&s.record) {
                        cm.observe(s.ground_truth, f);
                    }
                }
            }
            st_sum += cm.report().micro_f;

            // HELM and SVM (matrix inputs, pseudo-labels).
            let mut cm = ConfusionMatrix::new();
            if let Ok(mut m) = Helm::train(&train, &bl, &mut rng) {
                for s in split.test.samples() {
                    if let Some(f) = m.predict(&s.record) {
                        cm.observe(s.ground_truth, f);
                    }
                }
            }
            h_sum += cm.report().micro_f;

            let mut cm = ConfusionMatrix::new();
            if let Ok(mut m) = SvmOvO::train(&train, &bl, &mut rng) {
                for s in split.test.samples() {
                    if let Some(f) = m.predict(&s.record) {
                        cm.observe(s.ground_truth, f);
                    }
                }
            }
            s_sum += cm.report().micro_f;
            n += 1;
        }
        let nf = n as f64;
        println!(
            "{:<18} {:>9.3} {:>12.3} {:>13.3} {:>9.3} {:>9.3}",
            b.name,
            g_sum / nf,
            v_sum / nf,
            st_sum / nf,
            h_sum / nf,
            s_sum / nf
        );
        all.push(serde_json::json!({
            "building": b.name,
            "grafics": g_sum / nf,
            "vifi_oracle": v_sum / nf,
            "storyteller_oracle": st_sum / nf,
            "helm": h_sum / nf,
            "svm_ovo": s_sum / nf,
        }));
    }
    write_json("extension_oracle.json", &all);
}
