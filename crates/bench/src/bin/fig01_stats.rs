//! Fig. 1 — heterogeneity statistics of crowdsourced RF records on one
//! mall floor: (a) CDF of #MACs per record, (b) CDF of pairwise overlap
//! ratios. The paper reports 8 274 records / 805 MACs, most records < 40
//! MACs, 78 % of pairs overlapping < 0.5; this regenerates the two CDFs
//! from the simulated mall floor.

use grafics_bench::{write_json, ExperimentConfig};
use grafics_data::{stats, BuildingModel};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn main() {
    let cfg = ExperimentConfig::from_args();
    let records = cfg.records_per_floor.max(1000);
    let mut rng = ChaCha8Rng::seed_from_u64(cfg.seed);
    let floor = BuildingModel::mall("fig1-mall", 1).with_records_per_floor(records);
    let ds = floor.simulate(&mut rng);
    let st = ds.stats();
    println!(
        "mall floor: {} records, {} distinct MACs",
        st.records, st.macs
    );

    let macs_cdf = stats::macs_per_record_cdf(&ds);
    println!("\n(a) CDF of #MACs in a signal record");
    for x in [10.0, 20.0, 30.0, 40.0, 50.0, 60.0] {
        println!("  F({x:>4}) = {:.3}", macs_cdf.at(x));
    }
    println!("  median = {:.0} MACs", macs_cdf.quantile(0.5));

    let overlap_cdf = stats::overlap_ratio_cdf(&ds, 20_000, &mut rng);
    println!("\n(b) CDF of pairwise overlap ratio");
    for x in [0.0, 0.2, 0.4, 0.5, 0.6, 0.8, 1.0] {
        println!("  F({x:.1}) = {:.3}", overlap_cdf.at(x));
    }
    println!(
        "\npaper: most records < 40 MACs (here F(40) = {:.2}); \
         78% of pairs overlap < 0.5 (here F(0.5) = {:.2})",
        macs_cdf.at(40.0),
        overlap_cdf.at(0.5)
    );
    write_json(
        "fig01_stats.json",
        &serde_json::json!({
            "records": st.records,
            "macs": st.macs,
            "macs_per_record_cdf": macs_cdf.points.iter().step_by(50).collect::<Vec<_>>(),
            "overlap_ratio_cdf": overlap_cdf.points.iter().step_by(200).collect::<Vec<_>>(),
        }),
    );
}
