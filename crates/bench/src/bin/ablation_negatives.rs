//! Accuracy ablation of the negative-sample count `K` in Eq. (10). The
//! paper fixes K implicitly; this sweep shows the accuracy/cost trade-off.

use grafics_bench::{fleets, mean_report, run_fleet, write_json, Algo, ExperimentConfig};
use grafics_core::GraficsConfig;

fn main() {
    let cfg = ExperimentConfig::from_args();
    let ks = [1usize, 2, 5, 10, 20];
    let mut all = Vec::new();
    for (fleet_name, fleet) in fleets(&cfg) {
        println!("\n== {fleet_name} ==");
        println!("{:>4} {:>9} {:>9}", "K", "micro-F", "macro-F");
        for &negatives in &ks {
            let over = GraficsConfig {
                negatives,
                ..Default::default()
            };
            let results = run_fleet(&fleet, &[Algo::Grafics], &cfg, Some(over));
            let s = &mean_report(&results)[0];
            println!("{negatives:>4} {:>9.3} {:>9.3}", s.micro.2, s.macro_.2);
            all.push(serde_json::json!({
                "fleet": fleet_name,
                "negatives": negatives,
                "micro_f": s.micro.2,
                "macro_f": s.macro_.2,
            }));
        }
    }
    write_json("ablation_negatives.json", &all);
}
