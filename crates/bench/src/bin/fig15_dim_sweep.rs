//! Fig. 15 — GRAFICS F-scores as the embedding dimension sweeps 2²…2⁸.
//! Expected shape: essentially flat (insensitivity to the dimension).

use grafics_bench::{fleets, mean_report, run_fleet, write_json, Algo, ExperimentConfig};
use grafics_core::GraficsConfig;

fn main() {
    let cfg = ExperimentConfig::from_args();
    let dims = [4usize, 8, 16, 32, 64, 128, 256];
    let mut all = Vec::new();
    for (fleet_name, fleet) in fleets(&cfg) {
        println!("\n== {fleet_name} ==");
        println!("{:>5} {:>9} {:>9}", "dim", "micro-F", "macro-F");
        for &dim in &dims {
            let over = GraficsConfig {
                dim,
                ..Default::default()
            };
            let results = run_fleet(&fleet, &[Algo::Grafics], &cfg, Some(over));
            let s = &mean_report(&results)[0];
            println!("{:>5} {:>9.3} {:>9.3}", dim, s.micro.2, s.macro_.2);
            all.push(serde_json::json!({
                "fleet": fleet_name,
                "dim": dim,
                "micro_f": s.micro.2,
                "macro_f": s.macro_.2,
            }));
        }
    }
    write_json("fig15_dim_sweep.json", &all);
}
