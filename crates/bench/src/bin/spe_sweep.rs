//! Accuracy of online inference vs the per-query refinement budget — the
//! evidence behind `GraficsConfig::serving()`'s fixed budget (40) and the
//! adaptive early-stop policy riding on top of it.
//!
//! Two sweeps over each corpus (easy 3-floor office with 4 labels/floor,
//! hard 5-floor mall with 2 labels/floor), printed as JSON:
//!
//! - **fixed** — the historical `online_samples_per_edge` grid
//!   {200, 120, 60, 40, 30, 20, 10}: accuracy stays flat down to ~40 and
//!   only degrades below ~30.
//! - **adaptive** — the `margin_ratio × min_spe` grid at the serving
//!   ceiling (`max_spe = 40`): each cell reports mean/min accuracy, the
//!   early-stop rate, and the mean refinement samples actually run per
//!   served query. Every cell reports an `in_envelope` flag (within 5
//!   points of the fixed-40 baseline it short-circuits); the flag is
//!   *asserted* only for the recommended region `min_spe >= 10` — the
//!   sweep's point is that probing the margin after just 5 samples/edge
//!   is too eager on hard corpora (mall drops ~9 points there), while
//!   every `min_spe >= 10` cell holds on both corpora.
//!
//! Models are trained once per (corpus, seed) — the budget knobs are pure
//! serving-session state ([`ServingPolicy`]), so every cell reuses the
//! same trained model.

use grafics_core::{Grafics, GraficsConfig, GraficsServer, OnlineBudget, ServingPolicy};
use grafics_data::BuildingModel;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

const SEEDS: [u64; 5] = [1, 2, 3, 4, 5];
const MAX_SPE: usize = 40;

/// Accuracy of one serving policy over one trained model's held-out set,
/// plus the session counters behind the adaptive cells.
fn evaluate(
    model: &Grafics,
    test: &grafics_types::Dataset,
    policy: ServingPolicy,
) -> (f64, grafics_core::ServeCounters, usize) {
    let mut server = GraficsServer::with_policy(model, policy);
    let mut rng = ChaCha8Rng::seed_from_u64(99);
    let (mut hits, mut total) = (0usize, 0usize);
    for s in test.samples() {
        if let Ok(p) = server.infer(&s.record, &mut rng) {
            total += 1;
            hits += usize::from(p.floor == s.ground_truth);
        }
    }
    (hits as f64 / total.max(1) as f64, server.counters(), total)
}

fn main() {
    let corpora: [(&str, BuildingModel, usize); 2] = [
        (
            "office-3f-4lab",
            BuildingModel::office("sweep", 3).with_records_per_floor(60),
            4,
        ),
        (
            "mall-5f-2lab",
            BuildingModel::mall("sweep", 5).with_records_per_floor(40),
            2,
        ),
    ];
    let mut corpus_reports = Vec::new();
    for (name, building, labels) in &corpora {
        // One trained model + held-out set per seed; every cell below is
        // a read-only serving pass over these.
        let trained: Vec<(Grafics, grafics_types::Dataset)> = SEEDS
            .iter()
            .map(|&seed| {
                let mut rng = ChaCha8Rng::seed_from_u64(seed);
                let ds = building.simulate(&mut rng);
                let split = ds.split(0.7, &mut rng).unwrap();
                let train = split.train.with_label_budget(*labels, &mut rng);
                let model = Grafics::train(&train, &GraficsConfig::fast(), &mut rng).unwrap();
                (model, split.test)
            })
            .collect();

        let sweep_fixed = |spe: usize| -> (f64, f64) {
            let accs: Vec<f64> = trained
                .iter()
                .map(|(model, test)| {
                    let policy = ServingPolicy {
                        budget: Some(OnlineBudget::Fixed(spe)),
                        precision: None,
                    };
                    evaluate(model, test, policy).0
                })
                .collect();
            let mean = accs.iter().sum::<f64>() / accs.len() as f64;
            (mean, accs.iter().copied().fold(f64::INFINITY, f64::min))
        };

        let mut fixed_cells = Vec::new();
        let mut fixed_40_mean = 0.0;
        for spe in [200, 120, 60, MAX_SPE, 30, 20, 10] {
            let (mean, min) = sweep_fixed(spe);
            if spe == MAX_SPE {
                fixed_40_mean = mean;
            }
            fixed_cells.push(serde_json::json!({
                "spe": spe, "mean": mean, "min": min,
            }));
        }

        let mut adaptive_cells = Vec::new();
        for margin_ratio in [0.1, 0.25, 0.5] {
            for min_spe in [5, 10, 20] {
                let mut accs = Vec::new();
                let (mut stops, mut samples, mut served) = (0u64, 0u64, 0usize);
                for (model, test) in &trained {
                    let policy = ServingPolicy {
                        budget: Some(OnlineBudget::Adaptive {
                            max_spe: MAX_SPE,
                            min_spe,
                            margin_ratio,
                        }),
                        precision: None,
                    };
                    let (acc, counters, total) = evaluate(model, test, policy);
                    accs.push(acc);
                    stops += counters.early_stops;
                    samples += counters.refine_samples;
                    served += total;
                }
                let mean = accs.iter().sum::<f64>() / accs.len() as f64;
                let min = accs.iter().copied().fold(f64::INFINITY, f64::min);
                // Envelope: early stopping may not cost real accuracy
                // against the fixed ceiling it short-circuits. Hard-assert
                // only the recommended region (min_spe >= 10): probing
                // after 5 samples/edge stops on noise for hard corpora,
                // and the sweep exists to document exactly that edge.
                let in_envelope = mean >= fixed_40_mean - 0.05;
                assert!(
                    in_envelope || min_spe < 10,
                    "{name}: adaptive cell (ratio={margin_ratio}, min={min_spe}) \
                     fell out of the fixed-{MAX_SPE} envelope: {mean:.3} vs {fixed_40_mean:.3}"
                );
                adaptive_cells.push(serde_json::json!({
                    "max_spe": MAX_SPE,
                    "min_spe": min_spe,
                    "margin_ratio": margin_ratio,
                    "mean": mean,
                    "min": min,
                    "in_envelope": in_envelope,
                    "early_stop_rate": stops as f64 / served.max(1) as f64,
                    "refine_samples_per_query": samples as f64 / served.max(1) as f64,
                }));
            }
        }
        corpus_reports.push(serde_json::json!({
            "corpus": name,
            "labels_per_floor": labels,
            "fixed": fixed_cells,
            "adaptive": adaptive_cells,
        }));
    }
    let payload = serde_json::json!({
        "benchmark": "spe_sweep",
        "seeds": SEEDS.len(),
        "corpora": corpus_reports,
        "method": "one model per (corpus, seed); every cell is a read-only serving pass under a ServingPolicy over the same trained models",
    });
    println!("{}", serde_json::to_string_pretty(&payload).unwrap());
}
