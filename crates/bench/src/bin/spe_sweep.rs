//! Accuracy of online inference vs `online_samples_per_edge` — the
//! evidence behind `GraficsConfig::serving()`'s per-query budget (40):
//! floor accuracy stays flat from 200 down to ~40 and only degrades
//! below ~30, on both an easy corpus (3-floor office, 4 labels/floor)
//! and a hard one (5-floor mall, 2 labels/floor).

use grafics_core::{Grafics, GraficsConfig};
use grafics_data::BuildingModel;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn main() {
    let corpora: [(&str, BuildingModel, usize); 2] = [
        (
            "office-3f-4lab",
            BuildingModel::office("sweep", 3).with_records_per_floor(60),
            4,
        ),
        (
            "mall-5f-2lab",
            BuildingModel::mall("sweep", 5).with_records_per_floor(40),
            2,
        ),
    ];
    for (name, building, labels) in &corpora {
        println!("# corpus {name}");
        for spe in [200, 120, 60, 40, 30, 20, 10] {
            let mut accs = Vec::new();
            for seed in [1u64, 2, 3, 4, 5] {
                let mut rng = ChaCha8Rng::seed_from_u64(seed);
                let ds = building.simulate(&mut rng);
                let split = ds.split(0.7, &mut rng).unwrap();
                let train = split.train.with_label_budget(*labels, &mut rng);
                let cfg = GraficsConfig {
                    online_samples_per_edge: spe,
                    ..GraficsConfig::fast()
                };
                let model = Grafics::train(&train, &cfg, &mut rng).unwrap();
                let mut server = model.server();
                let mut rng2 = ChaCha8Rng::seed_from_u64(99);
                let (mut hits, mut total) = (0usize, 0usize);
                for s in split.test.samples() {
                    if let Ok(p) = server.infer(&s.record, &mut rng2) {
                        total += 1;
                        hits += usize::from(p.floor == s.ground_truth);
                    }
                }
                accs.push(hits as f64 / total.max(1) as f64);
            }
            let mean = accs.iter().sum::<f64>() / accs.len() as f64;
            let min = accs.iter().cloned().fold(f64::INFINITY, f64::min);
            println!("spe={spe:3}  mean={mean:.3}  min={min:.3}  {accs:?}");
        }
    }
}
