//! HTTP-serving smoke: the network front end vs the in-process engine on
//! the same workload, printed as JSON for BENCH_*.json trajectories.
//!
//! Three arms over one trained fleet and one fixed query set:
//!
//! - **in-process** — `GraficsFleet::serve_batch(queries, seed, 1)`, the
//!   engine the server wraps; its qps is the ceiling.
//! - **http-single** — K client threads, each holding one keep-alive
//!   connection, partition the query set and POST one `/v1/infer` per
//!   record; per-request latency is recorded for p50/p99. Every request
//!   pays JSON parse + embed + JSON print + a loopback round trip.
//! - **http-batch** — one `/v1/infer_batch` call carrying the whole set:
//!   the amortised cost of the HTTP hop.
//!
//! All three arms serve the same record set (asserted). The batch arm is
//! bit-identical to the in-process predictions (spot-checked here, fully
//! pinned in `crates/serve/tests/http.rs` and `tests/network_serving.rs`);
//! the single arm sends every record with the same batch seed — one
//! `record_rng(seed, 0)` stream per request — so it measures the same
//! workload without reproducing record `i`'s batch stream. The
//! acceptance bar is HTTP within 2× of in-process qps on this 1-core
//! container; the soft asserts trip well below that so CI noise (±15%)
//! cannot flake the job.
//!
//! ```sh
//! cargo run --release -p grafics-bench --bin http_smoke [-- --queries N --clients K --workers W]
//! ```

use grafics_bench::{train_serving_fleet, ExperimentConfig};
use grafics_core::{GraficsConfig, RetentionPolicy};
use grafics_data::BuildingModel;
use grafics_serve::{BatchBody, HttpClient, HttpServer, PredictionBody, ServeConfig};
use grafics_types::SignalRecord;
use std::time::Instant;

fn flag(args: &[String], name: &str, default: usize) -> usize {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn percentile(sorted_us: &[f64], p: f64) -> f64 {
    if sorted_us.is_empty() {
        return 0.0;
    }
    let idx = ((sorted_us.len() - 1) as f64 * p).round() as usize;
    sorted_us[idx]
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let queries = flag(&args, "--queries", 200);
    let clients = flag(&args, "--clients", 2);
    let workers = flag(&args, "--workers", 2);
    let buildings = flag(&args, "--buildings", 2);
    let records_per_floor = flag(&args, "--records-per-floor", 40);
    let seed = 2026u64;

    // One small fleet, serving-tuned, shared by every arm.
    let fleet_models: Vec<BuildingModel> = (0..buildings)
        .map(|i| {
            BuildingModel::office(&format!("http-{i}"), 3).with_records_per_floor(records_per_floor)
        })
        .collect();
    let cfg = ExperimentConfig {
        threads: 1,
        seed,
        ..Default::default()
    };
    let grafics = GraficsConfig {
        epochs: 30,
        ..GraficsConfig::serving()
    };
    let (fleet, tagged) =
        train_serving_fleet(&fleet_models, &cfg, Some(grafics), RetentionPolicy::KeepAll);
    let records: Vec<SignalRecord> = tagged
        .iter()
        .map(|(_, _, r)| r.clone())
        .cycle()
        .take(queries)
        .collect();

    // Arm 1: the in-process ceiling.
    let t = Instant::now();
    let reference = fleet.serve_batch(&records, seed, 1);
    let inproc_secs = t.elapsed().as_secs_f64();
    let served_inproc = reference.iter().flatten().count();
    let qps_inproc = served_inproc as f64 / inproc_secs;

    // Hand the same fleet to the server: arm 1 is done, serving is
    // read-only, and this bench never absorbs — no need to pay for a
    // second offline training run.
    let server = HttpServer::bind(
        fleet,
        "127.0.0.1:0",
        ServeConfig {
            workers,
            seed,
            ..ServeConfig::default()
        },
    )
    .expect("bind ephemeral port")
    .spawn()
    .expect("spawn server");
    let addr = server.addr();

    // Pre-serialized request bodies: the arm measures serving, not the
    // client's JSON encoder.
    let single_bodies: Vec<String> = records
        .iter()
        .map(|r| {
            format!(
                "{{\"record\":{},\"seed\":{seed}}}",
                serde_json::to_string(r).expect("record serializes")
            )
        })
        .collect();

    // Arm 2: K keep-alive clients, one /v1/infer per record.
    let t = Instant::now();
    let mut latencies_us: Vec<f64> = Vec::with_capacity(queries);
    let mut served_single = 0usize;
    std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for c in 0..clients.max(1) {
            let bodies = &single_bodies;
            handles.push(scope.spawn(move || {
                let mut client = HttpClient::connect(addr).expect("connect");
                let mut lat = Vec::new();
                let mut served = 0usize;
                let mut i = c;
                while i < bodies.len() {
                    let t = Instant::now();
                    let (status, response) = client.post("/v1/infer", &bodies[i]).expect("request");
                    lat.push(1e6 * t.elapsed().as_secs_f64());
                    assert!(
                        status == 200 || status == 422,
                        "unexpected status {status}: {response}"
                    );
                    served += usize::from(status == 200);
                    i += clients.max(1);
                }
                (lat, served)
            }));
        }
        for handle in handles {
            let (lat, served) = handle.join().expect("client thread");
            latencies_us.extend(lat);
            served_single += served;
        }
    });
    let single_secs = t.elapsed().as_secs_f64();
    let qps_single = served_single as f64 / single_secs;
    latencies_us.sort_by(f64::total_cmp);

    // Arm 3: the whole set in one /v1/infer_batch call.
    let mut client = HttpClient::connect(addr).expect("connect");
    let batch_body = format!(
        "{{\"records\":{},\"seed\":{seed}}}",
        serde_json::to_string(&records).expect("records serialize")
    );
    let t = Instant::now();
    let (status, response) = client.post("/v1/infer_batch", &batch_body).expect("batch");
    let batch_secs = t.elapsed().as_secs_f64();
    assert_eq!(status, 200, "{response}");
    let batch: BatchBody = serde_json::from_str(&response).expect("batch body");
    let qps_batch = batch.served as f64 / batch_secs;

    // All arms serve the same record set; spot-check bit-identity here
    // too (the full pin lives in the test suites).
    assert_eq!(served_single, served_inproc, "single arm served set");
    assert_eq!(batch.served, served_inproc, "batch arm served set");
    for (wire, local) in batch.predictions.iter().zip(&reference) {
        if let (Some(w), Some(l)) = (wire, local) {
            assert_eq!(w.distance.to_bits(), l.distance.to_bits());
        }
    }
    let _: Option<&PredictionBody> = batch.predictions[0].as_ref();

    let ratio_single = qps_single / qps_inproc;
    let ratio_batch = qps_batch / qps_inproc;
    // Soft floors: the acceptance bar is 0.5 (within 2×); tripping at
    // 0.25/0.4 catches a real regression without flaking on box noise.
    assert!(
        ratio_single > 0.25,
        "HTTP single-record qps collapsed: {ratio_single:.2} of in-process"
    );
    assert!(
        ratio_batch > 0.4,
        "HTTP batch qps collapsed: {ratio_batch:.2} of in-process"
    );

    let report = server.shutdown().expect("server exits cleanly");
    let in_process = serde_json::json!({
        "qps": qps_inproc,
        "us_per_query": 1e6 * inproc_secs / served_inproc.max(1) as f64,
    });
    let http_single = serde_json::json!({
        "qps": qps_single,
        "ratio_vs_in_process": ratio_single,
        "p50_us": percentile(&latencies_us, 0.50),
        "p95_us": percentile(&latencies_us, 0.95),
        "p99_us": percentile(&latencies_us, 0.99),
    });
    let http_batch = serde_json::json!({
        "qps": qps_batch,
        "ratio_vs_in_process": ratio_batch,
    });
    let payload = serde_json::json!({
        "benchmark": "http_smoke",
        "corpus": format!("{buildings}x office-3f, {records_per_floor}/floor"),
        "queries": queries,
        "served": served_inproc,
        "clients": clients,
        "workers": workers,
        "in_process": in_process,
        "http_single": http_single,
        "http_batch": http_batch,
        "server_requests": report.requests,
        "method": "same fleet + seed streams in every arm; responses bit-identical to serve_batch (pinned in tests); single-record arm pays one JSON+loopback round trip per query",
    });
    println!("{}", serde_json::to_string_pretty(&payload).unwrap());
}
